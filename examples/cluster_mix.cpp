// cluster_mix: the paper's motivating scenario — a cluster batch mixing
// serial jobs with MPI (PC) and embarrassingly-parallel (PE) jobs.
//
// Demonstrates:
//  * building a mixed batch with communication patterns,
//  * why parallel jobs need max-aggregation (Eq. 13) — we schedule the same
//    batch with OA*-SE, OA*-PE and OA*-PC and evaluate all three under the
//    true objective (the paper's Figs. 6-7 methodology),
//  * reading per-job degradations out of an evaluation.
#include <iostream>

#include "astar/search.hpp"
#include "core/builders.hpp"
#include "util/table.hpp"

int main() {
  using namespace cosched;

  CatalogProblemSpec spec;
  spec.cores = 4;
  spec.serial_programs = {"BT", "IS", "UA", "DC", "art", "equake"};
  // One MPI job with halo exchanges (PC) and one Monte-Carlo style PE job.
  spec.parallel_jobs.push_back({"MG-Par", 4, /*with_comm=*/true, 3.0e5});
  spec.parallel_jobs.push_back({"MCM", 2, /*with_comm=*/false});
  Problem problem = build_catalog_problem(spec);

  std::cout << "Cluster batch: " << problem.batch.job_count() << " jobs, "
            << problem.n() << " processes (incl. padding) on "
            << problem.machine_count() << " machines\n\n";

  // Schedule the same batch under three objective variants.
  SearchOptions se;
  se.aggregation = Aggregation::SumAllProcesses;  // OA*-SE: Eq. 12
  SearchOptions pe;
  pe.use_comm_model = false;                      // OA*-PE: Eq. 13, no comm
  pe.dismiss = DismissPolicy::ParetoDominance;
  SearchOptions pc;                               // OA*-PC: the full Eq. 9+13
  pc.dismiss = DismissPolicy::ParetoDominance;

  auto r_se = solve_oastar(problem, se);
  auto r_pe = solve_oastar(problem, pe);
  auto r_pc = solve_oastar(problem, pc);
  if (!r_se.found || !r_pe.found || !r_pc.found) {
    std::cerr << "search failed\n";
    return 1;
  }

  // Judge every variant under the true objective (comm-combined, Eq. 13).
  TextTable table({"variant", "true objective", "avg per job"});
  for (auto& [name, res] :
       {std::pair<const char*, SearchResult&>{"OA*-SE", r_se},
        {"OA*-PE", r_pe},
        {"OA*-PC", r_pc}}) {
    auto ev = evaluate_solution(problem, res.solution);
    table.add_row({name, TextTable::fmt(ev.total),
                   TextTable::fmt(ev.average_per_job)});
  }
  std::cout << table.render() << "\n";

  auto best = evaluate_solution(problem, r_pc.solution);
  std::cout << "Per-job degradation under the OA*-PC schedule:\n";
  for (const Job& job : problem.batch.jobs()) {
    if (job.kind == JobKind::Imaginary) continue;
    std::cout << "  " << job.name << " (" << to_string(job.kind)
              << "): " << best.per_job[static_cast<std::size_t>(job.id)]
              << "\n";
  }
  std::cout << "\nPlacement:\n" << r_pc.solution.to_string(problem.batch);

  // The comm-aware schedule can never lose under the true objective.
  auto se_true = evaluate_solution(problem, r_se.solution).total;
  auto pc_true = best.total;
  if (pc_true > se_true + 1e-9) {
    std::cerr << "BUG: OA*-PC lost to OA*-SE under the true objective\n";
    return 1;
  }
  return 0;
}
