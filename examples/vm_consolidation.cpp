// vm_consolidation: the paper's stated future-work direction — mapping
// virtual machines onto physical hosts with shared-cache contention.
//
// A VM is modelled as a serial job with the cache profile of the workload
// it runs; a multi-VM tenant "placement group" whose completion time is
// gated by its slowest VM maps naturally onto a PE job. We solve the
// placement with HA* and report the consolidation quality, demonstrating
// that the library's abstractions carry beyond the OS-scheduler setting.
#include <iostream>
#include <string>
#include <vector>

#include "astar/search.hpp"
#include "baseline/pg_greedy.hpp"
#include "core/builders.hpp"
#include "util/table.hpp"

int main() {
  using namespace cosched;

  // Hosts: 8 cores each. Tenants: web caches (memory hungry), batch
  // analytics (streaming), CI runners (compute-bound), plus one 6-VM
  // map-reduce placement group whose job finishes with its slowest VM.
  CatalogProblemSpec spec;
  spec.cores = 8;
  // VM fleet; catalog programs stand in for the VM workloads.
  std::vector<std::string> vms = {"RA",  "RA",     "DC", "DC", "FT",
                                  "EP",  "PI",     "MCM", "galgel",
                                  "vpr", "equake", "art"};
  spec.serial_programs = vms;
  spec.parallel_jobs.push_back({"CG-Par", 6, /*with_comm=*/true, 2.0e5});
  Problem problem = build_catalog_problem(spec);

  std::cout << "VM fleet: " << problem.batch.real_process_count()
            << " VMs (incl. a 6-VM placement group) on "
            << problem.machine_count() << " hosts x " << spec.cores
            << " cores\n\n";

  Solution first_fit;  // naive consolidation: fill hosts in id order
  first_fit.machines.resize(
      static_cast<std::size_t>(problem.machine_count()));
  for (std::int32_t p = 0; p < problem.n(); ++p)
    first_fit.machines[static_cast<std::size_t>(p / problem.u())]
        .push_back(p);

  auto ha = solve_hastar(problem);
  if (!ha.found) {
    std::cerr << "placement search failed\n";
    return 1;
  }
  Solution pg = solve_pg_greedy(problem);

  TextTable table({"placement", "total degradation", "avg per job"});
  for (auto& [name, sol] :
       {std::pair<const char*, Solution&>{"first-fit", first_fit},
        {"PG greedy", pg},
        {"HA*", ha.solution}}) {
    auto ev = evaluate_solution(problem, sol);
    table.add_row({name, TextTable::fmt(ev.total),
                   TextTable::fmt(ev.average_per_job)});
  }
  std::cout << table.render() << "\nHA* placement:\n"
            << ha.solution.to_string(problem.batch);

  Real ha_obj = evaluate_solution(problem, ha.solution).total;
  Real ff_obj = evaluate_solution(problem, first_fit).total;
  if (ha_obj > ff_obj + 1e-9) {
    std::cerr << "BUG: HA* placement lost to first-fit\n";
    return 1;
  }
  return 0;
}
