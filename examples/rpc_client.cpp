// rpc_client: drive a running rpc_server from the command line.
//
//   ./rpc_client --port 7717 --jobs 20          # submit a generated mix
//   ./rpc_client --port 7717 --status 3         # query one job
//   ./rpc_client --port 7717 --timeline 3       # explain job 3's placement
//   ./rpc_client --port 7717 --snapshot 1       # fleet placement view
//   ./rpc_client --port 7717 --metrics 1        # scheduler counters
//   ./rpc_client --port 7717 --drain 1          # stop admissions, finish all
//   ./rpc_client --port 7717 --shutdown 1       # stop the server
//   ./rpc_client --port 7717 --trace-dump t.json --trace-text t.txt
//
// Submissions use the same seeded generator as the benchmarks (--seed), so
// a job mix is reproducible; each submission prints the placement and the
// predicted Eq. 1/9 degradation the scheduler answered with. --trace-id N
// stamps every request with that trace id (against a router, the id is
// forwarded to the shards — the handle for a stitched fabric timeline);
// --trace-dump pulls the server's trace as Chrome JSON (merged and
// shard-namespaced when the server is a router), --trace-text the
// deterministic text form.
#include <fstream>
#include <iostream>

#include "harness/experiment.hpp"
#include "rpc/client.hpp"

namespace {

bool spill_to_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (out) out << content;
  if (!out) {
    std::cerr << "rpc_client: cannot write " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cosched;
  ArgParser args(argc, argv);

  ClientOptions options;
  options.host = args.get_string("host", "127.0.0.1");
  options.port = static_cast<std::uint16_t>(args.get_int("port", 7717));
  options.request_timeout_seconds = args.get_real("timeout", 5.0);
  options.max_attempts = static_cast<int>(args.get_int("attempts", 3));
  CoschedClient client(options);
  if (args.has("trace-id"))
    client.set_trace_id(static_cast<std::uint64_t>(args.get_int("trace-id", 0)));

  auto fail = [](const char* what, const RpcError& error) {
    std::cerr << "rpc_client: " << what << ": " << error.describe() << "\n";
    return 1;
  };

  if (args.has("trace-dump") || args.has("trace-text")) {
    TraceDumpResponse reply;
    RpcError error = client.trace_dump(reply);
    if (!error.ok()) return fail("trace-dump", error);
    std::cout << "trace dump: " << reply.event_count << " events, tracing "
              << (reply.enabled ? "enabled" : "disabled") << "\n";
    std::string json_path = args.get_string("trace-dump", "");
    if (!json_path.empty() && !spill_to_file(json_path, reply.chrome_json))
      return 1;
    std::string text_path = args.get_string("trace-text", "");
    if (!text_path.empty() && !spill_to_file(text_path, reply.text))
      return 1;
    return 0;
  }

  if (args.has("status")) {
    std::int64_t id = args.get_int("status", 0);
    JobStatusResponse reply;
    RpcError error = client.query_job_status(id, reply);
    if (!error.ok()) return fail("status", error);
    const JobStatusView& s = reply.status;
    std::cout << "job " << s.id << " (" << s.name << "): " << to_string(s.phase)
              << ", arrived " << TextTable::fmt(s.arrival_time, 2);
    if (s.admit_time >= 0.0)
      std::cout << ", admitted " << TextTable::fmt(s.admit_time, 2);
    if (s.finish_time >= 0.0)
      std::cout << ", finished " << TextTable::fmt(s.finish_time, 2);
    std::cout << "\n";
    for (const JobProcView& p : s.procs)
      std::cout << "  proc " << p.gid << " on machine " << p.machine
                << ", degradation " << TextTable::fmt(p.degradation, 3)
                << ", remaining " << TextTable::fmt(p.remaining_work, 2)
                << "\n";
    return 0;
  }

  if (args.has("timeline")) {
    // "Explain this placement": the decision journal's events of one job —
    // admission trigger, placement (policy, machine, co-runners, predicted
    // degradation delta), migrations, completion — each with the trace id
    // that resolves into the replan span of a --trace-dump.
    std::int64_t id = args.get_int("timeline", 0);
    JobTimelineResponse reply;
    RpcError error = client.query_job_timeline(id, reply);
    if (!error.ok()) return fail("timeline", error);
    std::cout << "job " << reply.job_id << ": " << reply.events.size()
              << " events at t=" << TextTable::fmt(reply.virtual_now, 2)
              << (reply.truncated ? " (truncated: older events evicted)" : "")
              << "\n";
    for (const JournalEvent& event : reply.events)
      std::cout << "  " << render_journal_event(event) << "\n";
    return 0;
  }

  if (args.has("snapshot")) {
    ServiceSnapshot snap;
    RpcError error = client.query_snapshot(snap);
    if (!error.ok()) return fail("snapshot", error);
    std::cout << "t=" << TextTable::fmt(snap.now, 2) << ": "
              << snap.pending_jobs << " pending, " << snap.free_slots
              << " free slots, " << snap.completions
              << " completed, mean live degradation "
              << TextTable::fmt(snap.mean_live_degradation, 3) << "\n";
    for (std::size_t m = 0; m < snap.machines.size(); ++m) {
      std::cout << "  machine " << m << ":";
      for (const auto& proc : snap.machines[m])
        std::cout << " j" << proc.job << "/p" << proc.gid << "(d="
                  << TextTable::fmt(proc.degradation, 2) << ")";
      std::cout << "\n";
    }
    return 0;
  }

  if (args.has("metrics")) {
    MetricsResponse reply;
    RpcError error = client.get_metrics(reply);
    if (!error.ok()) return fail("metrics", error);
    std::cout << "t=" << TextTable::fmt(reply.virtual_now, 2) << ": "
              << reply.arrivals << " arrivals, " << reply.admissions
              << " admissions, " << reply.completions << " completions, "
              << reply.replans << " replans, " << reply.migrations
              << " migrations\n"
              << "oracle cache: " << reply.cache.entries << " entries, "
              << reply.cache.evictions << " evicted, "
              << TextTable::fmt(100.0 * reply.cache.hit_rate(), 1)
              << "% hit rate\n";
    return 0;
  }

  if (args.has("drain")) {
    DrainResponse reply;
    RpcError error = client.drain(reply);
    if (!error.ok()) return fail("drain", error);
    std::cout << "drained: " << reply.completions
              << " jobs completed, virtual time "
              << TextTable::fmt(reply.virtual_now, 2) << "\n";
    return 0;
  }

  if (args.has("shutdown")) {
    ShutdownResponse reply;
    RpcError error = client.shutdown_server(reply);
    if (!error.ok()) return fail("shutdown", error);
    std::cout << "server shutting down at virtual time "
              << TextTable::fmt(reply.virtual_now, 2) << "\n";
    return 0;
  }

  // Default: submit a generated mix. --name-prefix tags every job name —
  // against a shard_router, "tenantA/" makes the whole batch one tenant key
  // so the router keeps it on one shard.
  TraceSpec spec;
  spec.job_count = static_cast<std::int32_t>(args.get_int("jobs", 10));
  spec.parallel_fraction = args.get_real("parallel", 0.2);
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  WorkloadTrace trace = generate_trace(spec);
  std::string name_prefix = args.get_string("name-prefix", "");
  if (!name_prefix.empty())
    for (TraceJob& job : trace.jobs) job.name = name_prefix + job.name;

  for (const TraceJob& job : trace.jobs) {
    SubmitJobResponse reply;
    RpcError error = client.submit_job(job, reply);
    if (!error.ok()) return fail("submit", error);
    std::cout << "job " << reply.job_id << " (" << job.name << ", "
              << job.processes << " proc): " << to_string(reply.status.phase);
    if (!reply.status.procs.empty()) {
      std::cout << " on";
      for (const JobProcView& p : reply.status.procs)
        std::cout << " m" << p.machine << "(d="
                  << TextTable::fmt(p.degradation, 2) << ")";
    }
    std::cout << " at t=" << TextTable::fmt(reply.virtual_now, 2) << "\n";
  }
  std::cout << "submitted " << trace.job_count() << " jobs\n";
  return 0;
}
