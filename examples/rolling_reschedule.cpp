// rolling_reschedule: the paper's future-work scenario in action — a
// running placement drifts out of tune as the workload changes, and the
// operator replans with an explicit price per VM migration.
//
// Demonstrates the migration extension: Hungarian alignment of a fresh
// schedule to the running placement, and the degradation-vs-migrations
// trade-off curve.
#include <iostream>

#include "baseline/random_schedule.hpp"
#include "core/builders.hpp"
#include "util/table.hpp"
#include "vm/migration.hpp"

int main() {
  using namespace cosched;

  // A 24-job synthetic fleet on quad-core hosts whose current placement
  // was made without contention awareness (random).
  SyntheticProblemSpec spec;
  spec.cores = 4;
  spec.serial_jobs = 24;
  spec.seed = 2026;
  Problem problem = build_synthetic_problem(spec);

  Rng rng(7);
  Solution current = solve_random(problem, rng);
  Real current_obj = evaluate_solution(problem, current).total;
  std::cout << "Running placement: total degradation "
            << TextTable::fmt(current_obj) << " on "
            << problem.machine_count() << " hosts\n\n";

  TextTable table({"migration cost", "degradation", "migrations",
                   "combined objective"});
  for (Real cost : {0.0, 0.01, 0.05, 0.2, 1.0}) {
    ReplanOptions opt;
    opt.migration_cost = cost;
    ReplanResult r = replan_with_migrations(problem, current, opt);
    table.add_row({TextTable::fmt(cost, 2), TextTable::fmt(r.degradation),
                   TextTable::fmt_int(r.migrations),
                   TextTable::fmt(r.combined)});
    if (r.combined > current_obj + 1e-9) {
      std::cerr << "BUG: replanning made things worse\n";
      return 1;
    }
  }
  std::cout << table.render();
  std::cout << "\nReading: cheap migrations buy most of the attainable "
               "degradation\nreduction; as the per-move price rises the "
               "replanner keeps more VMs in\nplace until it pins the "
               "current placement entirely.\n";
  return 0;
}
