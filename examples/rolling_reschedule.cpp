// rolling_reschedule: the paper's future-work scenario in action — a
// running fleet drifts out of tune as jobs come and go, and the operator
// replans with an explicit price per VM migration.
//
// Rebuilt on the online subsystem: instead of a single offline
// replan_with_migrations call, a full event-driven service run is repeated
// at several migration prices on the same arrival trace. Cheap migrations
// buy lower degradation; expensive ones pin processes in place.
#include <iostream>

#include "online/scheduler.hpp"

int main() {
  using namespace cosched;

  TraceSpec trace_spec;
  trace_spec.job_count = 48;
  trace_spec.mean_interarrival = 1.8;
  trace_spec.work_lo = 8.0;
  trace_spec.work_hi = 40.0;
  trace_spec.seed = 2026;
  WorkloadTrace trace = generate_trace(trace_spec);

  OnlineSchedulerOptions base;
  base.cores = 4;
  base.machines = 5;
  base.solver = OnlineSolverKind::HAStar;
  base.admission.trigger = ReplanTrigger::EveryKArrivals;
  base.log_process_finish = false;

  std::cout << "Rolling rescheduling: " << trace.job_count()
            << " jobs streamed onto " << base.machines << " machines x "
            << base.cores << " cores, HA* replans at five migration prices\n\n";

  TextTable table({"migration cost", "mean degradation", "migrations",
                   "migrations/replan", "replans"});
  for (Real cost : {0.0, 0.01, 0.05, 0.2, 1.0}) {
    OnlineSchedulerOptions options = base;
    options.migration_cost = cost;
    OnlineScheduler service(options);
    service.run(trace);
    const SchedulerMetrics& m = service.metrics();

    // Every replan must beat (or match) staying put — the service never
    // adopts a placement whose combined objective is worse than inaction.
    for (const ReplanRecord& r : m.replan_records()) {
      if (r.combined > r.stay_combined + 1e-9) {
        std::cerr << "BUG: replanning made things worse at t="
                  << TextTable::fmt(r.time, 3) << "\n";
        return 1;
      }
    }

    table.add_row({TextTable::fmt(cost, 2),
                   TextTable::fmt(m.running_mean_degradation()),
                   TextTable::fmt_int(static_cast<std::int64_t>(m.migrations())),
                   TextTable::fmt(m.mean_migrations_per_replan()),
                   TextTable::fmt_int(static_cast<std::int64_t>(m.replans()))});
  }
  std::cout << table.render();
  std::cout << "\nReading: cheap migrations buy most of the attainable "
               "degradation\nreduction; as the per-move price rises the "
               "replanner keeps more VMs in\nplace until it pins the "
               "running placement entirely.\n";
  return 0;
}
