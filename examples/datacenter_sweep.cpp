// datacenter_sweep: offline capacity analysis for a large synthetic batch —
// the paper's second use case ("how much performance could a perfectly
// tuned scheduler extract?").
//
// Sweeps batch sizes, comparing HA* against PG greedy and random placement,
// and reports the headroom a contention-aware co-scheduler buys. Uses the
// synthetic degradation model (miss rates uniform in [15%, 75%]), the same
// workload family as the paper's Figs. 12-13.
#include <iostream>

#include "astar/search.hpp"
#include "baseline/pg_greedy.hpp"
#include "baseline/random_schedule.hpp"
#include "core/builders.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace cosched;
  // Optional: ./datacenter_sweep <max_jobs>
  std::int32_t max_jobs = argc > 1 ? std::atoi(argv[1]) : 240;

  TextTable table({"jobs", "machines", "random", "PG", "HA*",
                   "HA* vs PG", "HA* time (s)"});
  for (std::int32_t jobs = 120; jobs <= max_jobs; jobs *= 2) {
    SyntheticProblemSpec spec;
    spec.cores = 4;
    spec.serial_jobs = jobs;
    spec.seed = 1000 + static_cast<std::uint64_t>(jobs);
    Problem problem = build_synthetic_problem(spec);

    Rng rng(42);
    Real rnd = evaluate_solution(problem, solve_random(problem, rng))
                   .average_per_job;
    Real pg =
        evaluate_solution(problem, solve_pg_greedy(problem)).average_per_job;

    WallTimer timer;
    auto ha = solve_hastar(problem);
    double ha_seconds = timer.seconds();
    if (!ha.found) {
      std::cerr << "HA* failed at " << jobs << " jobs\n";
      return 1;
    }
    Real ha_avg =
        evaluate_solution(problem, ha.solution).average_per_job;

    table.add_row({TextTable::fmt_int(jobs),
                   TextTable::fmt_int(problem.machine_count()),
                   TextTable::fmt(rnd), TextTable::fmt(pg),
                   TextTable::fmt(ha_avg),
                   TextTable::fmt((pg - ha_avg) / pg * 100.0, 1) + "%",
                   TextTable::fmt(ha_seconds, 2)});
  }
  std::cout << "Average per-job degradation by scheduler "
               "(synthetic batches, quad-core):\n\n"
            << table.render();
  std::cout << "\nReading: 'HA* vs PG' is the extra degradation PG leaves on "
               "the table;\nthe paper reports 20-25% on quad-core machines "
               "(Fig. 12a).\n";
  return 0;
}
