#!/usr/bin/env bash
# Multi-process RemoteShard smoke test.
#
# Launches two CoschedServer shard processes (rpc_server --shard-id 0/1),
# fronts them with a shard_router --remote deployment in a third process,
# and drives the router with benchmark_app --connect. The run fails unless
#   * every request succeeds,
#   * the router's GetMetrics fan-in reports exactly 2 shards whose summed
#     counters equal the fleet totals (checked by --expect-shards), and
#   * both shard processes and the router shut down cleanly over RPC.
#
# Usage: examples/remote_shard_smoke.sh [build-dir]   (default: build)
set -u

BUILD_DIR="${1:-build}"
BIN_EX="$BUILD_DIR/examples"
BIN_BENCH="$BUILD_DIR/bench"
HOST=127.0.0.1
SHARD_A_PORT="${SHARD_A_PORT:-7731}"
SHARD_B_PORT="${SHARD_B_PORT:-7732}"
ROUTER_PORT="${ROUTER_PORT:-7733}"
OUT_DIR="${OUT_DIR:-traces}"
mkdir -p "$OUT_DIR"

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

wait_port() {
  local port="$1" tries=50
  while ((tries-- > 0)); do
    if (exec 3<>"/dev/tcp/$HOST/$port") 2>/dev/null; then
      exec 3>&- 3<&-
      return 0
    fi
    sleep 0.2
  done
  echo "remote_shard_smoke: port $port never came up" >&2
  return 1
}

# Shard processes: virtual-time mode so arrivals come from the submitted
# stamps (deterministic load), generous deadline so a drain that has to
# finish the whole backlog cannot time out, HTTP side door disabled (two
# processes would race for the default metrics port).
"$BIN_EX/rpc_server" --port "$SHARD_A_PORT" --shard-id 0 --virtual 1 \
  --machines 4 --cores 4 --deadline 300 --metrics-port -1 \
  --out "$OUT_DIR/remote_shard0" >"$OUT_DIR/remote_shard0.log" 2>&1 &
PIDS+=($!)
"$BIN_EX/rpc_server" --port "$SHARD_B_PORT" --shard-id 1 --virtual 1 \
  --machines 4 --cores 4 --deadline 300 --metrics-port -1 \
  --out "$OUT_DIR/remote_shard1" >"$OUT_DIR/remote_shard1.log" 2>&1 &
PIDS+=($!)
wait_port "$SHARD_A_PORT" || exit 1
wait_port "$SHARD_B_PORT" || exit 1

"$BIN_EX/shard_router" --port "$ROUTER_PORT" \
  --remote "$HOST:$SHARD_A_PORT,$HOST:$SHARD_B_PORT" --remote-cores 16 \
  --shard-timeout 300 --metrics-port -1 \
  >"$OUT_DIR/remote_router.log" 2>&1 &
PIDS+=($!)
wait_port "$ROUTER_PORT" || exit 1

# Drive through the router. --expect-shards 2 makes benchmark_app fetch the
# fan-in metrics and fail unless the two remote shards account for every
# routed request and completion.
"$BIN_BENCH/benchmark_app" --mode open --rate 20 --requests 60 --warmup 10 \
  --depth 4 --tenants 8 --connect "$HOST:$ROUTER_PORT" --expect-shards 2 \
  --bench-out "$OUT_DIR/BENCH_remote_smoke.json"
BENCH_STATUS=$?

# Orderly teardown: the router answers Shutdown itself (it does not forward
# it), so each shard process is stopped directly.
"$BIN_EX/rpc_client" --port "$ROUTER_PORT" --shutdown 1 >/dev/null 2>&1
"$BIN_EX/rpc_client" --port "$SHARD_A_PORT" --shutdown 1 >/dev/null 2>&1
"$BIN_EX/rpc_client" --port "$SHARD_B_PORT" --shutdown 1 >/dev/null 2>&1

STATUS=0
for pid in "${PIDS[@]}"; do
  if ! wait "$pid"; then
    echo "remote_shard_smoke: process $pid exited nonzero" >&2
    STATUS=1
  fi
done
PIDS=()

if [[ $BENCH_STATUS -ne 0 ]]; then
  echo "remote_shard_smoke: benchmark_app exited $BENCH_STATUS" >&2
  cat "$OUT_DIR/remote_router.log" >&2 || true
  exit "$BENCH_STATUS"
fi
if [[ $STATUS -ne 0 ]]; then
  exit "$STATUS"
fi
echo "remote_shard_smoke: PASS (2 remote shards, fan-in verified)"
