#!/usr/bin/env bash
# Multi-process RemoteShard smoke test.
#
# Launches two CoschedServer shard processes (rpc_server --shard-id 0/1),
# fronts them with a shard_router --remote deployment in a third process,
# and drives the router with benchmark_app --connect. The run fails unless
#   * the router's SLO watchdog, armed with a deliberately tight burn-rate
#     rule, walks the full lifecycle under injected overload: /alerts shows
#     the rule firing (fan-in entries for both shards stamped with their
#     ids), /healthz folds to degraded with the rule in firing_alerts, and
#     the alert resolves once the overload stops,
#   * every request succeeds,
#   * the router's GetMetrics fan-in reports exactly 2 shards whose summed
#     counters equal the fleet totals (checked by --expect-shards),
#   * a TraceDump against the router returns the merged fabric timeline:
#     a correlated batch's trace id appears both on the router's request
#     span and on a shard's replan span (namespaced shard<k>/, on its own
#     Perfetto pid, linked by flow events with the same id),
#   * the router's /healthz answers ok with both shards up, then degraded
#     after one shard process is killed, and /debug/profile serves a
#     non-empty collapsed stack,
#   * the router and the surviving shard shut down cleanly over RPC.
#
# Usage: examples/remote_shard_smoke.sh [build-dir]   (default: build)
set -u

BUILD_DIR="${1:-build}"
BIN_EX="$BUILD_DIR/examples"
BIN_BENCH="$BUILD_DIR/bench"
HOST=127.0.0.1
SHARD_A_PORT="${SHARD_A_PORT:-7731}"
SHARD_B_PORT="${SHARD_B_PORT:-7732}"
ROUTER_PORT="${ROUTER_PORT:-7733}"
ROUTER_HTTP_PORT="${ROUTER_HTTP_PORT:-7734}"
OUT_DIR="${OUT_DIR:-traces}"
TRACE_ID=48879  # 0xBEEF: the correlated batch below is tagged with it
mkdir -p "$OUT_DIR"

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

wait_port() {
  local port="$1" tries=50
  while ((tries-- > 0)); do
    if (exec 3<>"/dev/tcp/$HOST/$port") 2>/dev/null; then
      exec 3>&- 3<&-
      return 0
    fi
    sleep 0.2
  done
  echo "remote_shard_smoke: port $port never came up" >&2
  return 1
}

# Plain HTTP/1.0 GET over /dev/tcp (no curl dependency): prints the whole
# response, status line included.
http_get() {
  local port="$1" path="$2"
  exec 3<>"/dev/tcp/$HOST/$port" || return 1
  printf 'GET %s HTTP/1.0\r\n\r\n' "$path" >&3
  cat <&3
  exec 3>&- 3<&-
}

# Shard processes: virtual-time mode so arrivals come from the submitted
# stamps (deterministic load), generous deadline so a drain that has to
# finish the whole backlog cannot time out, HTTP side door disabled (two
# processes would race for the default metrics port). Tracing on, so the
# router's TraceDump fan-in has shard timelines to pull.
"$BIN_EX/rpc_server" --port "$SHARD_A_PORT" --shard-id 0 --virtual 1 \
  --machines 4 --cores 4 --deadline 300 --metrics-port -1 --trace 1 \
  --out "$OUT_DIR/remote_shard0" >"$OUT_DIR/remote_shard0.log" 2>&1 &
PIDS+=($!)
"$BIN_EX/rpc_server" --port "$SHARD_B_PORT" --shard-id 1 --virtual 1 \
  --machines 4 --cores 4 --deadline 300 --metrics-port -1 --trace 1 \
  --out "$OUT_DIR/remote_shard1" >"$OUT_DIR/remote_shard1.log" 2>&1 &
SHARD_B_PID=$!
PIDS+=($SHARD_B_PID)
wait_port "$SHARD_A_PORT" || exit 1
wait_port "$SHARD_B_PORT" || exit 1

# The router's watchdog gets a deliberately absurd burn-rate rule: a
# 0.0001 ms latency budget makes every routed submit "bad", so any real
# traffic burns the error budget 10x over (objective 0.9) and the rule must
# fire — a deterministic overload injection without slowing anything down.
# It watches the router-side submit histogram, which health probes never
# touch, so the rule drains (and resolves) the moment submissions stop.
cat >"$OUT_DIR/alert_rules_tight.json" <<'EOF'
{"rules": [{
  "name": "smoke_latency_burn",
  "kind": "burn_rate",
  "severity": "critical",
  "histogram": "cosched_router_request_seconds",
  "budget_ms": 0.0001,
  "objective": 0.9,
  "fast_window_seconds": 3,
  "slow_window_seconds": 6,
  "burn_factor": 2,
  "for_seconds": 1,
  "clear_seconds": 2,
  "resolved_hold_seconds": 60
}]}
EOF

"$BIN_EX/shard_router" --port "$ROUTER_PORT" \
  --remote "$HOST:$SHARD_A_PORT,$HOST:$SHARD_B_PORT" --remote-cores 16 \
  --shard-timeout 300 --metrics-port "$ROUTER_HTTP_PORT" --trace 1 \
  --alert-rules "$OUT_DIR/alert_rules_tight.json" --tsdb-interval 0.5 \
  >"$OUT_DIR/remote_router.log" 2>&1 &
PIDS+=($!)
wait_port "$ROUTER_PORT" || exit 1
wait_port "$ROUTER_HTTP_PORT" || exit 1

# Both shards up: /healthz must fold the fleet to ok.
HEALTH_OK=$(http_get "$ROUTER_HTTP_PORT" /healthz)
case "$HEALTH_OK" in
  *'"status":"ok"'*) : ;;
  *)
    echo "remote_shard_smoke: expected ok /healthz, got:" >&2
    echo "$HEALTH_OK" >&2
    exit 1
    ;;
esac

# A correlated batch: one tenant (so one shard), every request stamped with
# a fixed trace id. The id must survive the client -> router -> RemoteShard
# -> shard-server hops and come back in the merged TraceDump. Submitted as
# the FIRST traffic: its submissions trigger the first admission replans, so
# those replans carry the batch's context (under the overload backlog below
# replan commands coalesce and the context would be lost).
"$BIN_EX/rpc_client" --port "$ROUTER_PORT" --jobs 6 --trace-id "$TRACE_ID" \
  --name-prefix tenantZ/ >"$OUT_DIR/remote_traced_batch.log" 2>&1 \
  || { echo "remote_shard_smoke: traced batch failed" >&2; exit 1; }

# --- SLO watchdog lifecycle under injected overload ----------------------
# Sustained submissions make the tight burn rule breach both windows; the
# watchdog must walk inactive -> pending -> firing while the load runs.
FIRING=0
for i in $(seq 1 40); do
  "$BIN_EX/rpc_client" --port "$ROUTER_PORT" --jobs 10 \
    --name-prefix "tenantload$i/" >/dev/null 2>&1 || true
  ALERTS=$(http_get "$ROUTER_HTTP_PORT" /alerts)
  case "$ALERTS" in
    *'rule=smoke_latency_burn state=firing'*) FIRING=1; break ;;
  esac
  sleep 0.5
done
if [[ $FIRING -ne 1 ]]; then
  echo "remote_shard_smoke: watchdog never fired under overload" >&2
  echo "$ALERTS" >&2
  exit 1
fi

# The machine-readable snapshot ships with the CI artifacts. It must carry
# the firing rule plus the fan-in entries of both shards, stamped with
# their shard ids (the shards run the default watchdog rules).
http_get "$ROUTER_HTTP_PORT" "/alerts?format=json" \
  >"$OUT_DIR/remote_alerts_firing.json"
ALERTS_JSON=$(cat "$OUT_DIR/remote_alerts_firing.json")
for want in '"rule":"smoke_latency_burn"' '"state":"firing"' \
            '"shard":0' '"shard":1'; do
  case "$ALERTS_JSON" in
    *"$want"*) : ;;
    *)
      echo "remote_shard_smoke: /alerts JSON is missing $want:" >&2
      echo "$ALERTS_JSON" >&2
      exit 1
      ;;
  esac
done

# A firing watchdog demotes /healthz to degraded (transports are all up)
# and names the rule, so a dumb probe sees the page without parsing /alerts.
HEALTH_FIRING=$(http_get "$ROUTER_HTTP_PORT" /healthz)
case "$HEALTH_FIRING" in
  *'"status":"degraded"'*smoke_latency_burn*) : ;;
  *)
    echo "remote_shard_smoke: /healthz did not fold the firing alert:" >&2
    echo "$HEALTH_FIRING" >&2
    exit 1
    ;;
esac

# Overload stops -> the windowed deltas drain -> the rule must resolve on
# its own (clear_seconds of hysteresis, then the resolved rest state).
RESOLVED=0
for _ in $(seq 1 40); do
  ALERTS=$(http_get "$ROUTER_HTTP_PORT" /alerts)
  case "$ALERTS" in
    *'rule=smoke_latency_burn state=resolved'*) RESOLVED=1; break ;;
    *'rule=smoke_latency_burn state=inactive'*) RESOLVED=1; break ;;
  esac
  sleep 0.5
done
if [[ $RESOLVED -ne 1 ]]; then
  echo "remote_shard_smoke: watchdog never resolved after the overload" >&2
  echo "$ALERTS" >&2
  exit 1
fi
http_get "$ROUTER_HTTP_PORT" "/alerts?format=json" \
  >"$OUT_DIR/remote_alerts_resolved.json"
echo "remote_shard_smoke: watchdog fired under overload and resolved after"

# Drive through the router. --expect-shards 2 makes benchmark_app fetch the
# fan-in metrics and fail unless the two remote shards account for every
# routed request and completion.
"$BIN_BENCH/benchmark_app" --mode open --rate 20 --requests 60 --warmup 10 \
  --depth 4 --tenants 8 --connect "$HOST:$ROUTER_PORT" --expect-shards 2 \
  --bench-out "$OUT_DIR/BENCH_remote_smoke.json"
BENCH_STATUS=$?

"$BIN_EX/rpc_client" --port "$ROUTER_PORT" \
  --trace-dump "$OUT_DIR/remote_trace_merged.json" \
  --trace-text "$OUT_DIR/remote_trace_merged.txt" \
  || { echo "remote_shard_smoke: trace dump failed" >&2; exit 1; }

# The merged timeline: router span and shard replan span share the id, the
# shard's section is namespaced onto its own Perfetto pid, and flow events
# with the id exist on both sides of the process boundary.
python3 - "$OUT_DIR" "$TRACE_ID" <<'EOF' || exit 1
import re, sys
out_dir, trace_id = sys.argv[1], sys.argv[2]
text = open(f'{out_dir}/remote_trace_merged.txt').read()
assert re.search(rf'span router\.request.*trace={trace_id}\b', text), \
    'router span does not carry the batch trace id'
assert re.search(rf'span shard\d+/online\.replan.*trace={trace_id}\b', text), \
    'no shard replan span carries the batch trace id'
chrome = open(f'{out_dir}/remote_trace_merged.json').read()
assert re.search(r'"name":"shard\d+/online\.replan"', chrome), \
    'merged chrome trace lost the namespaced shard spans'
flow_pids = set(re.findall(
    rf'"cat":"flow","ph":"[stf]","id":{trace_id},"ts":[0-9.]+,"pid":(\d+)',
    chrome))
assert len(flow_pids) >= 2, \
    f'flow events of trace {trace_id} span pids {flow_pids}, expected >= 2'
print(f'OK: merged trace stitched across pids {sorted(flow_pids)}')
EOF

# "Explain this placement" across processes: QueryJobTimeline for a job of
# the traced batch must cross router -> RemoteShard -> shard server and come
# back as a non-empty, time-ordered decision journal. The job id is global
# (rewritten by the router), pulled from the batch's submit log.
TRACED_JOB=$(sed -n 's/^job \([0-9][0-9]*\) .*/\1/p' \
  "$OUT_DIR/remote_traced_batch.log" | head -1)
if [[ -z "$TRACED_JOB" ]]; then
  echo "remote_shard_smoke: no job id in remote_traced_batch.log" >&2
  exit 1
fi
"$BIN_EX/rpc_client" --port "$ROUTER_PORT" --timeline "$TRACED_JOB" \
  >"$OUT_DIR/remote_timeline.txt" 2>&1 \
  || { echo "remote_shard_smoke: timeline query failed" >&2;
       cat "$OUT_DIR/remote_timeline.txt" >&2; exit 1; }

# The journal firehose of the router's own routing decisions, archived with
# the CI artifacts next to the merged trace.
http_get "$ROUTER_HTTP_PORT" "/debug/events" \
  >"$OUT_DIR/remote_journal_events.txt" || true
http_get "$ROUTER_HTTP_PORT" "/debug/events?job=$TRACED_JOB" \
  >"$OUT_DIR/remote_journal_job.txt" || true

python3 - "$OUT_DIR" "$TRACED_JOB" <<'EOF' || exit 1
import re, sys
out_dir, job = sys.argv[1], sys.argv[2]
text = open(f'{out_dir}/remote_timeline.txt').read()
events = [l for l in text.splitlines() if l.strip().startswith('t=')]
assert events, f'timeline for job {job} is empty:\n{text}'
kinds = [re.search(r'kind=(\S+)', l).group(1) for l in events]
assert 'admission' in kinds, f'no admission event in {kinds}'
assert 'placement' in kinds, f'no placement event in {kinds}'
times = [float(re.search(r't=([0-9.]+)', l).group(1)) for l in events]
assert times == sorted(times), f'timeline timestamps not monotonic: {times}'
for line in events:
    assert f'job={job} ' in line, f'event not rewritten to global id: {line}'
# Every decision carries the trace that made it: the placement's trace id
# must resolve into a replan span of the merged fabric TraceDump.
placement = events[kinds.index('placement')]
trace = re.search(r'trace=(\d+)', placement).group(1)
merged = open(f'{out_dir}/remote_trace_merged.txt').read()
assert trace != '0' and re.search(
    rf'span shard\d+/online\.replan.*trace={trace}\b', merged), \
    f'placement trace id {trace} does not resolve in the merged TraceDump'
print(f'OK: job {job} explains itself across the process boundary '
      f'({len(events)} events, placement trace {trace})')
EOF

# The router profiles itself continuously: under load the collapsed stack
# must be non-empty (it ships with the CI artifacts for flamegraphs).
http_get "$ROUTER_HTTP_PORT" /debug/profile \
  >"$OUT_DIR/remote_router_profile.collapsed"
if ! grep -q "router.request" "$OUT_DIR/remote_router_profile.collapsed"; then
  echo "remote_shard_smoke: /debug/profile has no router.request samples" >&2
  exit 1
fi

# Kill one shard the hard way: /healthz must fold the fleet to degraded
# once the bounded-staleness health cache re-probes (2 s default).
kill -9 "$SHARD_B_PID" 2>/dev/null || true
DEGRADED=0
for _ in $(seq 1 30); do
  HEALTH=$(http_get "$ROUTER_HTTP_PORT" /healthz)
  case "$HEALTH" in
    *'"status":"degraded"'*) DEGRADED=1; break ;;
  esac
  sleep 0.5
done
if [[ $DEGRADED -ne 1 ]]; then
  echo "remote_shard_smoke: /healthz never reported degraded after kill" >&2
  echo "$HEALTH" >&2
  exit 1
fi

# Orderly teardown of the survivors: the router answers Shutdown itself (it
# does not forward it), so the remaining shard process is stopped directly.
"$BIN_EX/rpc_client" --port "$ROUTER_PORT" --shutdown 1 >/dev/null 2>&1
"$BIN_EX/rpc_client" --port "$SHARD_A_PORT" --shutdown 1 >/dev/null 2>&1

STATUS=0
for pid in "${PIDS[@]}"; do
  if [[ "$pid" == "$SHARD_B_PID" ]]; then
    wait "$pid" 2>/dev/null  # killed on purpose; nonzero is the point
    continue
  fi
  if ! wait "$pid"; then
    echo "remote_shard_smoke: process $pid exited nonzero" >&2
    STATUS=1
  fi
done
PIDS=()

if [[ $BENCH_STATUS -ne 0 ]]; then
  echo "remote_shard_smoke: benchmark_app exited $BENCH_STATUS" >&2
  cat "$OUT_DIR/remote_router.log" >&2 || true
  exit "$BENCH_STATUS"
fi
if [[ $STATUS -ne 0 ]]; then
  exit "$STATUS"
fi
echo "remote_shard_smoke: PASS (2 remote shards, fan-in + merged trace + alert lifecycle + degraded health verified)"
