// shard_router: a sharded co-scheduling deployment behind one front door.
//
//   ./shard_router --port 7720 --shards 4 --machines-per-shard 2
//
// Stands up N independent LiveSchedulerService shards (each with its own
// scheduler thread and virtual clock) behind a ShardRouter + RouterServer.
// Jobs are admitted by consistent hashing on their tenant key — the job-name
// prefix before the first '/' — so "tenantA/train" and "tenantA/etl" land on
// the same shard and keep degrading each other honestly, while different
// tenants spread across the fleet. A shard whose command queue backs up past
// --spill-depth sheds new tenants to the least-loaded shard (the remap is
// recorded, so job-status lookups keep resolving).
//
// The router speaks the same wire protocol as a single CoschedServer, so the
// ordinary client works unchanged:
//
//   ./rpc_client --port 7720 --jobs 20 --name-prefix tenantA/
//   curl http://127.0.0.1:7721/metrics     # merged fleet page
//   ./rpc_client --port 7720 --shutdown 1
//
// The /metrics page fans in all shards: router routing counters, per-shard
// queue/clock gauges (one series per shard label — point Grafana at it for a
// fleet view), and the per-shard latency histograms merged with exemplars
// intact. Runs until an RPC Shutdown arrives.
// A multi-process deployment uses --remote instead of local shards:
//
//   ./rpc_server --port 7731 --shard-id 0 --virtual 1 &
//   ./rpc_server --port 7732 --shard-id 1 --virtual 1 &
//   ./shard_router --port 7720 --remote 127.0.0.1:7731,127.0.0.1:7732
//
// Each entry becomes a RemoteShard backend speaking protocol v7 to that
// server; shard ids follow list order, so start server k with --shard-id k.
// --remote-cores tells the router each backend's capacity (the spillover
// signal); --remote-timeout bounds each proxied RPC. With --trace 1 the
// router records its own request spans and forwards each request's trace
// id to the shard it routes to — a TraceDump against the router then
// returns the merged, shard-namespaced fabric timeline.
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "loadgen/slo.hpp"
#include "obs/log.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "shard/router.hpp"
#include "shard/router_server.hpp"

namespace {

/// Splits "host:port,host:port" into client options, one per backend.
std::vector<cosched::ClientOptions> parse_remotes(const std::string& spec,
                                                  double timeout_seconds) {
  std::vector<cosched::ClientOptions> remotes;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    cosched::ClientOptions options;
    options.request_timeout_seconds = timeout_seconds;
    std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos) {
      options.host = entry;
    } else {
      options.host = entry.substr(0, colon);
      options.port =
          static_cast<std::uint16_t>(std::stoi(entry.substr(colon + 1)));
    }
    remotes.push_back(std::move(options));
  }
  return remotes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cosched;
  ArgParser args(argc, argv);

  std::int64_t shard_count = args.get_int("shards", 4);
  if (shard_count < 1) shard_count = 1;
  // --trace 1: record router request spans (and forward trace ids to the
  // shards) so TraceDump answers the merged fabric timeline.
  if (args.get_int("trace", 0) != 0) Tracer::global().set_enabled(true);
  Tracer::global().set_max_events_per_thread(
      static_cast<std::size_t>(args.get_int("trace-ring", 4096)));
  std::vector<ClientOptions> remotes = parse_remotes(
      args.get_string("remote", ""), args.get_real("remote-timeout", 60.0));

  // Structured logging: --log-level debug|info|warn|error|off filters the
  // global logger, --log-json 1 switches the sink to JSON lines, --log-out
  // FILE appends every accepted record to a file (the tail -f surface).
  {
    std::string level_text = args.get_string("log-level", "info");
    LogLevel level = LogLevel::Info;
    if (!parse_log_level(level_text, level))
      std::cerr << "shard_router: unknown --log-level '" << level_text
                << "' (want debug|info|warn|error|off)\n";
    Logger::global().set_level(level);
    Logger::global().set_json(args.get_int("log-json", 0) != 0);
    std::string log_out = args.get_string("log-out", "");
    if (!log_out.empty()) Logger::global().set_sink_path(log_out);
  }

  RouterOptions router_options;
  router_options.vnodes_per_shard =
      static_cast<std::int32_t>(args.get_int("vnodes", 64));
  router_options.spill_queue_depth =
      static_cast<std::size_t>(args.get_int("spill-depth", 64));
  router_options.spill_replan_p95_seconds = args.get_real("spill-p95", 0.0);
  router_options.shard_timeout_seconds = args.get_real("shard-timeout", 30.0);
  ShardRouter router(router_options);

  if (!remotes.empty()) {
    shard_count = static_cast<std::int64_t>(remotes.size());
    std::int32_t cores_per_remote = static_cast<std::int32_t>(
        args.get_int("remote-cores",
                     args.get_int("machines-per-shard", 2) *
                         args.get_int("cores", 4)));
    for (ClientOptions& remote : remotes)
      router.add_remote_shard(std::move(remote), cores_per_remote);
  } else {
    for (std::int64_t s = 0; s < shard_count; ++s) {
      LiveServiceOptions service;
      service.wall_clock = args.get_int("virtual", 0) == 0;
      service.wall_time_scale = args.get_real("wall-scale", 4.0);
      service.scheduler.cores =
          static_cast<std::uint32_t>(args.get_int("cores", 4));
      service.scheduler.machines =
          static_cast<std::int32_t>(args.get_int("machines-per-shard", 2));
      service.scheduler.admission.trigger = ReplanTrigger::EveryKArrivals;
      service.scheduler.admission.every_k =
          static_cast<std::int32_t>(args.get_int("every-k", 2));
      service.scheduler.cache_compaction_jobs =
          static_cast<std::uint32_t>(args.get_int("compact-jobs", 16));
      service.scheduler.log_process_finish = false;
      router.add_local_shard(service);
    }
  }

  RouterServerOptions options;
  options.host = args.get_string("host", "127.0.0.1");
  options.port = static_cast<std::uint16_t>(args.get_int("port", 7720));
  options.worker_threads = static_cast<std::size_t>(args.get_int("workers", 2));
  std::int64_t metrics_port = args.get_int("metrics-port", 7721);
  options.enable_http = metrics_port >= 0;
  if (options.enable_http)
    options.http_port = static_cast<std::uint16_t>(metrics_port);

  // SLO watchdog over the fleet page: --alerts 0 disables the router's
  // engine; --alert-rules FILE loads a rule set (default: burn-rate guards
  // on the merged RPC latency histogram); --slo FILE points the default
  // rules at that budget's p95; --tsdb-* size the embedded store. GET
  // /alerts fans in remote shards' engines shard-labelled.
  options.enable_alerts = args.get_int("alerts", 1) != 0;
  options.alerts.scrape_interval_seconds = args.get_real("tsdb-interval", 1.0);
  options.alerts.tsdb.raw_capacity =
      static_cast<std::size_t>(args.get_int("tsdb-raw", 600));
  options.alerts.tsdb.max_series =
      static_cast<std::size_t>(args.get_int("tsdb-series", 1024));
  {
    std::string rules_path = args.get_string("alert-rules", "");
    if (!rules_path.empty()) {
      std::string rules_error;
      if (!load_alert_rules(rules_path, options.alerts.rules, rules_error)) {
        std::cerr << "shard_router: --alert-rules: " << rules_error << "\n";
        return 1;
      }
    }
    std::string slo_path = args.get_string("slo", "");
    if (!slo_path.empty()) {
      SloBudget budget;
      std::string slo_error;
      if (!load_slo_budget(slo_path, budget, slo_error)) {
        std::cerr << "shard_router: --slo: " << slo_error << "\n";
        return 1;
      }
      if (budget.p95_ms > 0.0) options.alert_budget_ms = budget.p95_ms;
    }
  }

  RouterServer server(router, options);
  std::string error;
  if (!server.start(error)) {
    std::cerr << "shard_router: " << error << "\n";
    return 1;
  }

  std::cout << "cosched shard_router listening on " << options.host << ":"
            << server.port() << "\n"
            << "  fleet: " << shard_count << " shards x "
            << args.get_int("machines-per-shard", 2) << " machines x "
            << args.get_int("cores", 4) << " cores\n";
  if (server.http_port() != 0) {
    std::cout << "  fleet metrics: curl http://" << options.host << ":"
              << server.http_port() << "/metrics\n";
    if (server.alert_engine() != nullptr)
      std::cout << "  fleet alerts:  curl http://" << options.host << ":"
                << server.http_port() << "/alerts\n";
  }
  std::cout << "  submit jobs with: ./rpc_client --port " << server.port()
            << " --jobs 20\n"
            << "  stop with:        ./rpc_client --port " << server.port()
            << " --shutdown 1\n";

  server.wait();

  // Fan-in summary: fleet totals are exactly the sum of the shard entries.
  MetricsResponse metrics;
  std::string metrics_error;
  if (router.metrics(metrics, metrics_error) == RpcStatus::Ok) {
    std::cout << "\nfinal state: " << metrics.completions
              << " jobs completed across " << metrics.shards.size()
              << " shards";
    RouterStats stats = router.stats();
    std::cout << " (" << stats.spillovers << " spillovers, "
              << stats.remapped_keys << " remapped keys)\n";
    for (const ShardMetricsEntry& entry : metrics.shards)
      std::cout << "  shard " << entry.shard_id << ": " << entry.completions
                << " completed, " << entry.replans << " replans, clock "
                << TextTable::fmt(entry.virtual_now, 2) << "\n";
  }
  server.stop();
  // --profile-out FILE drops the router process's collapsed-stack profile
  // (what /debug/profile serves live) for flamegraph tooling.
  std::string profile_out = args.get_string("profile-out", "");
  if (!profile_out.empty() && Profiler::global().write_collapsed(profile_out))
    std::cout << "wrote " << profile_out << "\n";
  return 0;
}
