// Quickstart: co-schedule eight benchmark programs on quad-core machines,
// find the optimal assignment with OA*, and compare it against the naive
// ordering and the PG greedy heuristic.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "astar/search.hpp"
#include "baseline/pg_greedy.hpp"
#include "core/builders.hpp"

int main() {
  using namespace cosched;

  // 1. Describe the batch: eight serial programs from the NPB/SPEC catalog,
  //    to be placed on quad-core machines (two machines).
  CatalogProblemSpec spec;
  spec.cores = 4;
  spec.serial_programs = {"BT", "CG", "EP", "FT", "IS", "LU", "MG", "art"};
  Problem problem = build_catalog_problem(spec);

  std::cout << "Batch: " << problem.batch.real_process_count()
            << " processes on " << problem.machine_count() << " x "
            << problem.machine.name << "\n\n";

  // 2. Naive schedule: first four programs on machine 0, rest on machine 1.
  Solution naive;
  naive.machines = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  Real naive_obj = evaluate_solution(problem, naive).total;

  // 3. PG greedy (the heuristic baseline from the literature).
  Solution greedy = solve_pg_greedy(problem);
  Real greedy_obj = evaluate_solution(problem, greedy).total;

  // 4. Optimal co-schedule via OA*.
  SearchResult optimal = solve_oastar(problem);
  if (!optimal.found) {
    std::cerr << "search failed\n";
    return 1;
  }

  std::cout << "Naive order     total degradation: " << naive_obj << "\n";
  std::cout << "PG greedy       total degradation: " << greedy_obj << "\n";
  std::cout << "OA* (optimal)   total degradation: " << optimal.objective
            << "\n\n";
  std::cout << "Optimal placement:\n"
            << optimal.solution.to_string(problem.batch) << "\n";
  std::cout << "OA* search: " << optimal.stats.expanded
            << " expansions, " << optimal.stats.visited_paths
            << " subpaths, "
            << optimal.stats.total_seconds() * 1e3 << " ms\n";

  // Sanity: the optimum can never lose to the alternatives.
  if (optimal.objective > naive_obj + 1e-9 ||
      optimal.objective > greedy_obj + 1e-9) {
    std::cerr << "BUG: optimal schedule worse than a baseline\n";
    return 1;
  }
  return 0;
}
