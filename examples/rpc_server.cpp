// rpc_server: stand up the co-scheduling service behind its TCP front-end.
//
//   ./rpc_server --port 7717 --machines 6 --cores 4 --wall-scale 4
//
// Runs until an RPC Shutdown arrives (see rpc_client). In wall-clock mode
// (the default here) arrivals are stamped from real elapsed time, so jobs
// submitted from another terminal land "now" on the virtual clock; pass
// --virtual 1 to drive the clock purely from submitted arrival times
// (deterministic replay mode). On exit the scheduler metrics are written as
// CSVs under --out (directory is created if missing).
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "loadgen/slo.hpp"
#include "obs/log.hpp"
#include "obs/otlp.hpp"
#include "obs/profiler.hpp"
#include "obs/tail_sampler.hpp"
#include "obs/trace.hpp"
#include "rpc/server.hpp"

int main(int argc, char** argv) {
  using namespace cosched;
  ArgParser args(argc, argv);

  ServerOptions options;
  options.host = args.get_string("host", "127.0.0.1");
  options.port = static_cast<std::uint16_t>(args.get_int("port", 7717));
  options.worker_threads =
      static_cast<std::size_t>(args.get_int("workers", 2));
  options.max_connections =
      static_cast<std::size_t>(args.get_int("max-connections", 32));
  options.request_deadline_seconds = args.get_real("deadline", 10.0);
  // --shard-id N makes this server an RPC-addressable shard: the id is
  // advertised on v5 SubmitJob acks and the GetMetrics shard block so a
  // ShardRouter started with --remote can adopt it as a backend. -1 (the
  // default) keeps it a standalone server.
  options.shard_id = static_cast<std::int32_t>(args.get_int("shard-id", -1));
  // Observability side door (GET /metrics, /healthz). 0 picks an ephemeral
  // port; --metrics-port -1 disables the endpoint entirely.
  std::int64_t metrics_port = args.get_int("metrics-port", 7718);
  options.enable_http = metrics_port >= 0;
  if (options.enable_http)
    options.http_port = static_cast<std::uint16_t>(metrics_port);
  // Tracer knobs mirror the acceptance configuration: --trace 1 enables
  // recording, --trace-ring bounds each thread's ring, --trace-sample-every
  // keeps 1-in-N traces head-based (deterministic under --trace-seed), and
  // --trace-keep is a comma-separated list of span-name prefixes recorded
  // even for sampled-out traces.
  if (args.get_int("trace", 0) != 0) Tracer::global().set_enabled(true);
  Tracer::global().set_max_events_per_thread(
      static_cast<std::size_t>(args.get_int("trace-ring", 4096)));
  Tracer::global().set_sample_every(
      static_cast<std::uint64_t>(args.get_int("trace-sample-every", 1)));
  Tracer::global().set_sample_seed(
      static_cast<std::uint64_t>(args.get_int("trace-seed", 0)));
  {
    std::string keep = args.get_string("trace-keep", "");
    std::vector<std::string> prefixes;
    std::size_t start = 0;
    while (start < keep.size()) {
      std::size_t comma = keep.find(',', start);
      if (comma == std::string::npos) comma = keep.size();
      if (comma > start) prefixes.push_back(keep.substr(start, comma - start));
      start = comma + 1;
    }
    if (!prefixes.empty())
      Tracer::global().set_always_keep(std::move(prefixes));
  }
  // Tail-sampling knobs: keep/drop is decided at span *end*, so these
  // compose with --trace-sample-every (head sampling) — a slow span is
  // retained even when its trace lost the head coin flip.
  // --tail-keep-slow-us N keeps spans matching --tail-prefix that ran at
  // least N microseconds; --tail-top-k K keeps the K slowest per
  // --tail-window completed spans; --tail-keep-errors keeps error spans.
  {
    std::vector<TailPolicy> policies;
    std::int64_t slow_us = args.get_int("tail-keep-slow-us", 0);
    std::int64_t top_k = args.get_int("tail-top-k", 0);
    std::string prefix = args.get_string("tail-prefix", "");
    if (slow_us > 0 || top_k > 0 || args.get_int("tail-keep-errors", 0) != 0) {
      TailPolicy policy;
      policy.name = args.get_string("tail-policy-name", "cli");
      policy.span_prefix = prefix;
      policy.min_duration_us =
          slow_us > 0 ? static_cast<Real>(slow_us) : 0.0;
      policy.top_k = top_k > 0 ? static_cast<std::size_t>(top_k) : 0;
      policy.keep_errors = args.get_int("tail-keep-errors", 0) != 0;
      policies.push_back(std::move(policy));
      TailSamplerOptions tail_options;
      tail_options.window_spans =
          static_cast<std::size_t>(args.get_int("tail-window", 64));
      TailSampler::global().configure(std::move(policies), tail_options);
    }
  }

  // Structured logging: --log-level debug|info|warn|error|off filters the
  // global logger, --log-json 1 switches the sink to JSON lines, --log-out
  // FILE appends every accepted record to a file (the tail -f surface).
  {
    std::string level_text = args.get_string("log-level", "info");
    LogLevel level = LogLevel::Info;
    if (!parse_log_level(level_text, level))
      std::cerr << "rpc_server: unknown --log-level '" << level_text
                << "' (want debug|info|warn|error|off)\n";
    Logger::global().set_level(level);
    Logger::global().set_json(args.get_int("log-json", 0) != 0);
    std::string log_out = args.get_string("log-out", "");
    if (!log_out.empty()) Logger::global().set_sink_path(log_out);
  }

  // SLO watchdog: --alerts 0 disables the engine; --alert-rules FILE loads
  // a declarative rule set (default: fast+slow burn-rate guards on the RPC
  // latency histogram); --slo FILE points the default rules at that
  // budget's p95; --tsdb-interval/--tsdb-raw/--tsdb-series size the
  // embedded store. GET /alerts (text, ?format=json) serves the state.
  options.enable_alerts = args.get_int("alerts", 1) != 0;
  options.alerts.scrape_interval_seconds = args.get_real("tsdb-interval", 1.0);
  options.alerts.tsdb.raw_capacity =
      static_cast<std::size_t>(args.get_int("tsdb-raw", 600));
  options.alerts.tsdb.max_series =
      static_cast<std::size_t>(args.get_int("tsdb-series", 1024));
  {
    std::string rules_path = args.get_string("alert-rules", "");
    if (!rules_path.empty()) {
      std::string rules_error;
      if (!load_alert_rules(rules_path, options.alerts.rules, rules_error)) {
        std::cerr << "rpc_server: --alert-rules: " << rules_error << "\n";
        return 1;
      }
    }
    std::string slo_path = args.get_string("slo", "");
    if (!slo_path.empty()) {
      SloBudget budget;
      std::string slo_error;
      if (!load_slo_budget(slo_path, budget, slo_error)) {
        std::cerr << "rpc_server: --slo: " << slo_error << "\n";
        return 1;
      }
      if (budget.p95_ms > 0.0) options.alert_budget_ms = budget.p95_ms;
    }
  }

  options.service.wall_clock = args.get_int("virtual", 0) == 0;
  options.service.wall_time_scale = args.get_real("wall-scale", 4.0);
  options.service.scheduler.cores =
      static_cast<std::uint32_t>(args.get_int("cores", 4));
  options.service.scheduler.machines =
      static_cast<std::int32_t>(args.get_int("machines", 6));
  options.service.scheduler.admission.trigger = ReplanTrigger::EveryKArrivals;
  options.service.scheduler.admission.every_k =
      static_cast<std::int32_t>(args.get_int("every-k", 2));
  options.service.scheduler.admission.max_wait = args.get_real("max-wait", 8.0);
  options.service.scheduler.cache_compaction_jobs =
      static_cast<std::uint32_t>(args.get_int("compact-jobs", 16));
  options.service.scheduler.log_process_finish = false;

  CoschedServer server(options);
  std::string error;
  if (!server.start(error)) {
    std::cerr << "rpc_server: " << error << "\n";
    return 1;
  }

  std::cout << "cosched rpc_server listening on " << options.host << ":"
            << server.port() << "\n";
  if (server.http_port() != 0) {
    std::cout << "  metrics: curl http://" << options.host << ":"
              << server.http_port() << "/metrics\n";
    if (server.alert_engine() != nullptr)
      std::cout << "  alerts:  curl http://" << options.host << ":"
                << server.http_port() << "/alerts\n";
  }
  std::cout << "  fleet: " << options.service.scheduler.machines
            << " machines x " << options.service.scheduler.cores << " cores, "
            << (options.service.wall_clock ? "wall-clock" : "virtual-time")
            << " mode\n"
            << "  submit jobs with: ./rpc_client --port " << server.port()
            << " --jobs 20\n"
            << "  stop with:        ./rpc_client --port " << server.port()
            << " --shutdown 1\n";

  server.wait();

  MetricsOutcome metrics;
  bool have_metrics = server.service().metrics(metrics, 5.0);
  server.stop();

  if (have_metrics) {
    std::cout << "\nfinal state: " << metrics.completions << " jobs completed, "
              << metrics.replans << " replans, virtual time "
              << TextTable::fmt(metrics.virtual_now, 2) << "\n";
  }
  std::string out_dir = args.get_string("out", "results/rpc_server");
  for (const std::string& path :
       server.service().write_metrics_csvs(out_dir, "service"))
    std::cout << "wrote " << path << "\n";

  // OTLP sinks: --otlp-out DIR drops otlp_traces.json + otlp_metrics.json
  // (the collector-less path, same files CI archives from the soak);
  // --otlp-endpoint host[:port] POSTs both bodies to a live OTLP/HTTP
  // collector (4318 is the conventional port).
  TailSampler* tail =
      TailSampler::global().active() ? &TailSampler::global() : nullptr;
  std::string otlp_out = args.get_string("otlp-out", "");
  if (!otlp_out.empty()) {
    std::vector<std::string> written;
    if (otlp_write_files(otlp_out, Tracer::global(),
                         MetricsRegistry::global(), tail, {}, &written,
                         &Logger::global(), &server.service().journal()))
      for (const std::string& path : written)
        std::cout << "wrote " << path << "\n";
  }
  std::string otlp_spec = args.get_string("otlp-endpoint", "");
  if (!otlp_spec.empty()) {
    OtlpEndpoint endpoint;
    std::string otlp_error;
    if (!parse_otlp_endpoint(otlp_spec, endpoint, otlp_error)) {
      std::cerr << "rpc_server: --otlp-endpoint: " << otlp_error << "\n";
    } else {
      if (!otlp_post(endpoint, "/v1/traces",
                     otlp_traces_json(Tracer::global(), tail), otlp_error))
        std::cerr << "rpc_server: OTLP trace export failed: " << otlp_error
                  << "\n";
      if (!otlp_post(endpoint, "/v1/metrics",
                     otlp_metrics_json(MetricsRegistry::global()), otlp_error))
        std::cerr << "rpc_server: OTLP metric export failed: " << otlp_error
                  << "\n";
    }
  }
  // --profile-out FILE drops the lifetime collapsed-stack profile (the same
  // text /debug/profile serves live) for flamegraph.pl / speedscope.
  std::string profile_out = args.get_string("profile-out", "");
  if (!profile_out.empty() && Profiler::global().write_collapsed(profile_out))
    std::cout << "wrote " << profile_out << "\n";
  return 0;
}
