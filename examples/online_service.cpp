// online_service: the event-driven co-scheduling service end to end — jobs
// arrive over virtual time, queue under an admission policy, get placed by
// HA*-backed migration-aware replans on a fixed fleet, and complete at
// contention-stretched rates.
//
// Prints a slice of the event log, the replan history and the service
// metrics. Everything is a pure function of the seed: run it twice and the
// tables are byte-identical.
#include <iostream>

#include "online/scheduler.hpp"

int main() {
  using namespace cosched;

  TraceSpec trace_spec;
  trace_spec.job_count = 60;
  trace_spec.mean_interarrival = 1.5;
  trace_spec.work_lo = 8.0;
  trace_spec.work_hi = 40.0;
  trace_spec.parallel_fraction = 0.2;  // every 5th job is an MPI-style PE job
  trace_spec.seed = 2026;
  WorkloadTrace trace = generate_trace(trace_spec);

  OnlineSchedulerOptions options;
  options.cores = 4;
  options.machines = 6;  // 24 cores serving ~40 concurrent processes' worth
  options.solver = OnlineSolverKind::HAStar;
  options.admission.trigger = ReplanTrigger::EveryKArrivals;
  options.admission.every_k = 4;
  options.migration_cost = 0.05;
  options.log_process_finish = false;

  std::cout << "Online co-scheduling service: " << trace.job_count()
            << " jobs (" << trace.process_count() << " processes) onto "
            << options.machines << " machines x " << options.cores
            << " cores\n\n";

  OnlineScheduler service(options);
  service.run(trace);

  const auto& entries = service.log().entries();
  std::cout << "First events of the run:\n";
  TextTable head({"time", "event", "detail"});
  for (std::size_t i = 0; i < entries.size() && head.row_count() < 12; ++i)
    head.add_row({TextTable::fmt(entries[i].time, 3),
                  to_string(entries[i].kind), entries[i].detail});
  std::cout << head.render() << "\n";

  std::cout << "Replan history (virtual-time deterministic):\n"
            << service.metrics().replans_table().render() << "\n";

  std::cout << "Service metrics:\n"
            << service.metrics().summary_table().render() << "\n";

  auto cache = service.oracle_cache().stats();
  std::cout << "Degradation-oracle cache: " << cache.entries << " entries, "
            << cache.hits << " hits / " << cache.misses << " misses ("
            << TextTable::fmt(100.0 * cache.hit_rate(), 1)
            << "% hit rate across replans)\n";

  std::cout << "\nReading: arrivals batch up under the every-k policy, each\n"
               "replan packs the batch around the jobs already running, and\n"
               "the shared oracle cache keeps successive replans cheap.\n";
  return service.metrics().completions() ==
      static_cast<std::uint64_t>(trace.job_count()) ? 0 : 1;
}
