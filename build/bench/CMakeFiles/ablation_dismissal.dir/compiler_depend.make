# Empty compiler generated dependencies file for ablation_dismissal.
# This may be replaced when dependencies are built.
