file(REMOVE_RECURSE
  "CMakeFiles/ablation_dismissal.dir/ablation_dismissal.cpp.o"
  "CMakeFiles/ablation_dismissal.dir/ablation_dismissal.cpp.o.d"
  "ablation_dismissal"
  "ablation_dismissal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dismissal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
