# Empty dependencies file for table2_mix_optimality.
# This may be replaced when dependencies are built.
