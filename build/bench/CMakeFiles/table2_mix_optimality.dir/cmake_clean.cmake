file(REMOVE_RECURSE
  "CMakeFiles/table2_mix_optimality.dir/table2_mix_optimality.cpp.o"
  "CMakeFiles/table2_mix_optimality.dir/table2_mix_optimality.cpp.o.d"
  "table2_mix_optimality"
  "table2_mix_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_mix_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
