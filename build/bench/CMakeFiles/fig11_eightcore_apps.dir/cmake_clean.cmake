file(REMOVE_RECURSE
  "CMakeFiles/fig11_eightcore_apps.dir/fig11_eightcore_apps.cpp.o"
  "CMakeFiles/fig11_eightcore_apps.dir/fig11_eightcore_apps.cpp.o.d"
  "fig11_eightcore_apps"
  "fig11_eightcore_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_eightcore_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
