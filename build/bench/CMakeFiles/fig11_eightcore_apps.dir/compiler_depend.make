# Empty compiler generated dependencies file for fig11_eightcore_apps.
# This may be replaced when dependencies are built.
