file(REMOVE_RECURSE
  "CMakeFiles/table3_efficiency.dir/table3_efficiency.cpp.o"
  "CMakeFiles/table3_efficiency.dir/table3_efficiency.cpp.o.d"
  "table3_efficiency"
  "table3_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
