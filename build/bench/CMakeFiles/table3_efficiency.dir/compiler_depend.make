# Empty compiler generated dependencies file for table3_efficiency.
# This may be replaced when dependencies are built.
