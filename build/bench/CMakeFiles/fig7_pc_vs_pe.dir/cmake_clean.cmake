file(REMOVE_RECURSE
  "CMakeFiles/fig7_pc_vs_pe.dir/fig7_pc_vs_pe.cpp.o"
  "CMakeFiles/fig7_pc_vs_pe.dir/fig7_pc_vs_pe.cpp.o.d"
  "fig7_pc_vs_pe"
  "fig7_pc_vs_pe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_pc_vs_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
