# Empty dependencies file for fig7_pc_vs_pe.
# This may be replaced when dependencies are built.
