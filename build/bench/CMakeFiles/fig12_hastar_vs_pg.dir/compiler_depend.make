# Empty compiler generated dependencies file for fig12_hastar_vs_pg.
# This may be replaced when dependencies are built.
