file(REMOVE_RECURSE
  "CMakeFiles/fig12_hastar_vs_pg.dir/fig12_hastar_vs_pg.cpp.o"
  "CMakeFiles/fig12_hastar_vs_pg.dir/fig12_hastar_vs_pg.cpp.o.d"
  "fig12_hastar_vs_pg"
  "fig12_hastar_vs_pg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hastar_vs_pg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
