file(REMOVE_RECURSE
  "CMakeFiles/fig10_quadcore_apps.dir/fig10_quadcore_apps.cpp.o"
  "CMakeFiles/fig10_quadcore_apps.dir/fig10_quadcore_apps.cpp.o.d"
  "fig10_quadcore_apps"
  "fig10_quadcore_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_quadcore_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
