# Empty compiler generated dependencies file for fig10_quadcore_apps.
# This may be replaced when dependencies are built.
