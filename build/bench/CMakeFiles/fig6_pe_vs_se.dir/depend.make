# Empty dependencies file for fig6_pe_vs_se.
# This may be replaced when dependencies are built.
