file(REMOVE_RECURSE
  "CMakeFiles/fig6_pe_vs_se.dir/fig6_pe_vs_se.cpp.o"
  "CMakeFiles/fig6_pe_vs_se.dir/fig6_pe_vs_se.cpp.o.d"
  "fig6_pe_vs_se"
  "fig6_pe_vs_se.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pe_vs_se.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
