# Empty compiler generated dependencies file for fig8_condensation.
# This may be replaced when dependencies are built.
