file(REMOVE_RECURSE
  "CMakeFiles/fig8_condensation.dir/fig8_condensation.cpp.o"
  "CMakeFiles/fig8_condensation.dir/fig8_condensation.cpp.o.d"
  "fig8_condensation"
  "fig8_condensation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_condensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
