file(REMOVE_RECURSE
  "CMakeFiles/table4_hv_strategies.dir/table4_hv_strategies.cpp.o"
  "CMakeFiles/table4_hv_strategies.dir/table4_hv_strategies.cpp.o.d"
  "table4_hv_strategies"
  "table4_hv_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_hv_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
