# Empty dependencies file for table4_hv_strategies.
# This may be replaced when dependencies are built.
