# Empty compiler generated dependencies file for fig13_hastar_scalability.
# This may be replaced when dependencies are built.
