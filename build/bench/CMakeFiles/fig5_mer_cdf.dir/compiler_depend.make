# Empty compiler generated dependencies file for fig5_mer_cdf.
# This may be replaced when dependencies are built.
