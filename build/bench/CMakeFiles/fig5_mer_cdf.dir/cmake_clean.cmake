file(REMOVE_RECURSE
  "CMakeFiles/fig5_mer_cdf.dir/fig5_mer_cdf.cpp.o"
  "CMakeFiles/fig5_mer_cdf.dir/fig5_mer_cdf.cpp.o.d"
  "fig5_mer_cdf"
  "fig5_mer_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mer_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
