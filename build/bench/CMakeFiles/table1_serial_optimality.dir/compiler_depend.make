# Empty compiler generated dependencies file for table1_serial_optimality.
# This may be replaced when dependencies are built.
