file(REMOVE_RECURSE
  "CMakeFiles/table1_serial_optimality.dir/table1_serial_optimality.cpp.o"
  "CMakeFiles/table1_serial_optimality.dir/table1_serial_optimality.cpp.o.d"
  "table1_serial_optimality"
  "table1_serial_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_serial_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
