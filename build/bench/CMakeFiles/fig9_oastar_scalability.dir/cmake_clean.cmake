file(REMOVE_RECURSE
  "CMakeFiles/fig9_oastar_scalability.dir/fig9_oastar_scalability.cpp.o"
  "CMakeFiles/fig9_oastar_scalability.dir/fig9_oastar_scalability.cpp.o.d"
  "fig9_oastar_scalability"
  "fig9_oastar_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_oastar_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
