# Empty compiler generated dependencies file for fig9_oastar_scalability.
# This may be replaced when dependencies are built.
