# Empty compiler generated dependencies file for cluster_mix.
# This may be replaced when dependencies are built.
