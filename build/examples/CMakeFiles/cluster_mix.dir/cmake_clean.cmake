file(REMOVE_RECURSE
  "CMakeFiles/cluster_mix.dir/cluster_mix.cpp.o"
  "CMakeFiles/cluster_mix.dir/cluster_mix.cpp.o.d"
  "cluster_mix"
  "cluster_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
