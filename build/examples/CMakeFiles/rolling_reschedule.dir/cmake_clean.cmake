file(REMOVE_RECURSE
  "CMakeFiles/rolling_reschedule.dir/rolling_reschedule.cpp.o"
  "CMakeFiles/rolling_reschedule.dir/rolling_reschedule.cpp.o.d"
  "rolling_reschedule"
  "rolling_reschedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rolling_reschedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
