# Empty dependencies file for rolling_reschedule.
# This may be replaced when dependencies are built.
