file(REMOVE_RECURSE
  "CMakeFiles/datacenter_sweep.dir/datacenter_sweep.cpp.o"
  "CMakeFiles/datacenter_sweep.dir/datacenter_sweep.cpp.o.d"
  "datacenter_sweep"
  "datacenter_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
