# Empty compiler generated dependencies file for datacenter_sweep.
# This may be replaced when dependencies are built.
