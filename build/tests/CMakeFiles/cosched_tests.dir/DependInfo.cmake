
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline.cpp" "tests/CMakeFiles/cosched_tests.dir/test_baseline.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_baseline.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/cosched_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_comm.cpp" "tests/CMakeFiles/cosched_tests.dir/test_comm.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_comm.cpp.o.d"
  "/root/repo/tests/test_condensation.cpp" "tests/CMakeFiles/cosched_tests.dir/test_condensation.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_condensation.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/cosched_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/cosched_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_hastar.cpp" "tests/CMakeFiles/cosched_tests.dir/test_hastar.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_hastar.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/cosched_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_ip.cpp" "tests/CMakeFiles/cosched_tests.dir/test_ip.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_ip.cpp.o.d"
  "/root/repo/tests/test_mer.cpp" "tests/CMakeFiles/cosched_tests.dir/test_mer.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_mer.cpp.o.d"
  "/root/repo/tests/test_migration.cpp" "tests/CMakeFiles/cosched_tests.dir/test_migration.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_migration.cpp.o.d"
  "/root/repo/tests/test_more_properties.cpp" "tests/CMakeFiles/cosched_tests.dir/test_more_properties.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_more_properties.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/cosched_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_search.cpp" "tests/CMakeFiles/cosched_tests.dir/test_search.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_search.cpp.o.d"
  "/root/repo/tests/test_simplex.cpp" "tests/CMakeFiles/cosched_tests.dir/test_simplex.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_simplex.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/cosched_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/cosched_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/cosched_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cosched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
