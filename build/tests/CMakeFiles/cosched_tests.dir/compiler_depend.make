# Empty compiler generated dependencies file for cosched_tests.
# This may be replaced when dependencies are built.
