file(REMOVE_RECURSE
  "libcosched.a"
)
