
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/astar/mer.cpp" "src/CMakeFiles/cosched.dir/astar/mer.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/astar/mer.cpp.o.d"
  "/root/repo/src/astar/search.cpp" "src/CMakeFiles/cosched.dir/astar/search.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/astar/search.cpp.o.d"
  "/root/repo/src/baseline/brute_force.cpp" "src/CMakeFiles/cosched.dir/baseline/brute_force.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/baseline/brute_force.cpp.o.d"
  "/root/repo/src/baseline/local_search.cpp" "src/CMakeFiles/cosched.dir/baseline/local_search.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/baseline/local_search.cpp.o.d"
  "/root/repo/src/baseline/pg_greedy.cpp" "src/CMakeFiles/cosched.dir/baseline/pg_greedy.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/baseline/pg_greedy.cpp.o.d"
  "/root/repo/src/baseline/random_schedule.cpp" "src/CMakeFiles/cosched.dir/baseline/random_schedule.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/baseline/random_schedule.cpp.o.d"
  "/root/repo/src/cache/cpu_time_model.cpp" "src/CMakeFiles/cosched.dir/cache/cpu_time_model.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/cache/cpu_time_model.cpp.o.d"
  "/root/repo/src/cache/lru_cache_sim.cpp" "src/CMakeFiles/cosched.dir/cache/lru_cache_sim.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/cache/lru_cache_sim.cpp.o.d"
  "/root/repo/src/cache/machine_config.cpp" "src/CMakeFiles/cosched.dir/cache/machine_config.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/cache/machine_config.cpp.o.d"
  "/root/repo/src/cache/sdc_model.cpp" "src/CMakeFiles/cosched.dir/cache/sdc_model.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/cache/sdc_model.cpp.o.d"
  "/root/repo/src/cache/stack_distance.cpp" "src/CMakeFiles/cosched.dir/cache/stack_distance.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/cache/stack_distance.cpp.o.d"
  "/root/repo/src/cache/trace_gen.cpp" "src/CMakeFiles/cosched.dir/cache/trace_gen.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/cache/trace_gen.cpp.o.d"
  "/root/repo/src/comm/comm_topology.cpp" "src/CMakeFiles/cosched.dir/comm/comm_topology.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/comm/comm_topology.cpp.o.d"
  "/root/repo/src/comm/decomposition.cpp" "src/CMakeFiles/cosched.dir/comm/decomposition.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/comm/decomposition.cpp.o.d"
  "/root/repo/src/core/builders.cpp" "src/CMakeFiles/cosched.dir/core/builders.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/core/builders.cpp.o.d"
  "/root/repo/src/core/degradation_models.cpp" "src/CMakeFiles/cosched.dir/core/degradation_models.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/core/degradation_models.cpp.o.d"
  "/root/repo/src/core/node_eval.cpp" "src/CMakeFiles/cosched.dir/core/node_eval.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/core/node_eval.cpp.o.d"
  "/root/repo/src/core/objective.cpp" "src/CMakeFiles/cosched.dir/core/objective.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/core/objective.cpp.o.d"
  "/root/repo/src/graph/condensation.cpp" "src/CMakeFiles/cosched.dir/graph/condensation.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/graph/condensation.cpp.o.d"
  "/root/repo/src/graph/level_stats.cpp" "src/CMakeFiles/cosched.dir/graph/level_stats.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/graph/level_stats.cpp.o.d"
  "/root/repo/src/graph/node_enumerator.cpp" "src/CMakeFiles/cosched.dir/graph/node_enumerator.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/graph/node_enumerator.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/cosched.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/ip/branch_and_bound.cpp" "src/CMakeFiles/cosched.dir/ip/branch_and_bound.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/ip/branch_and_bound.cpp.o.d"
  "/root/repo/src/ip/ip_model.cpp" "src/CMakeFiles/cosched.dir/ip/ip_model.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/ip/ip_model.cpp.o.d"
  "/root/repo/src/ip/simplex.cpp" "src/CMakeFiles/cosched.dir/ip/simplex.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/ip/simplex.cpp.o.d"
  "/root/repo/src/util/combinatorics.cpp" "src/CMakeFiles/cosched.dir/util/combinatorics.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/util/combinatorics.cpp.o.d"
  "/root/repo/src/util/dynamic_bitset.cpp" "src/CMakeFiles/cosched.dir/util/dynamic_bitset.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/util/dynamic_bitset.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/cosched.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/cosched.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/util/table.cpp.o.d"
  "/root/repo/src/vm/hungarian.cpp" "src/CMakeFiles/cosched.dir/vm/hungarian.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/vm/hungarian.cpp.o.d"
  "/root/repo/src/vm/migration.cpp" "src/CMakeFiles/cosched.dir/vm/migration.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/vm/migration.cpp.o.d"
  "/root/repo/src/workload/benchmark_catalog.cpp" "src/CMakeFiles/cosched.dir/workload/benchmark_catalog.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/workload/benchmark_catalog.cpp.o.d"
  "/root/repo/src/workload/job_batch.cpp" "src/CMakeFiles/cosched.dir/workload/job_batch.cpp.o" "gcc" "src/CMakeFiles/cosched.dir/workload/job_batch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
