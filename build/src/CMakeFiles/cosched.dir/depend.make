# Empty dependencies file for cosched.
# This may be replaced when dependencies are built.
