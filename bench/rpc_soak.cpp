// rpc_soak: sustained-load soak of the observability stack.
//
// Runs a CoschedServer under continuous loopback traffic with tracing
// enabled the way a long-lived deployment would run it — a small
// fixed-capacity ring per thread, 1-in-N head-based trace sampling and an
// always-keep override for replan commits — plus one streaming-telemetry
// subscriber writing every received frame to a capture file.
//
// The point is not a number but a set of invariants that must hold after
// minutes of load (CI runs ~30 s, the default is 8 s):
//   1. the tracer's buffered event count plateaus at the ring capacity
//      instead of growing without bound;
//   2. /metrics reports the overwritten events
//      (cosched_tracer_dropped_events_total > 0) and sampling did shed
//      traces (cosched_tracer_sampled_out_traces_total > 0);
//   3. always-keep span categories (replan.commit) are still present in
//      the buffers despite the sampling;
//   4. the telemetry stream delivered frames throughout.
// Any violated invariant makes the exit status nonzero.
//
//   ./rpc_soak --seconds 30 --ring 4096 --sample-every 8 \
//              --capture traces/soak_telemetry.jsonl
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"

namespace {

using namespace cosched;

std::atomic<bool> g_stop{false};

void drive_client(std::uint16_t port, std::uint64_t seed,
                  std::uint64_t* requests) {
  ClientOptions options;
  options.port = port;
  CoschedClient client(options);
  std::uint64_t round = 0;
  std::int64_t last_job = -1;
  while (!g_stop.load(std::memory_order_acquire)) {
    TraceSpec spec;
    spec.job_count = 32;
    spec.parallel_fraction = 0.2;
    spec.mean_interarrival = 4.0;
    spec.work_lo = 2.0;
    spec.work_hi = 8.0;
    spec.seed = seed + round;
    // Arrival times must keep climbing across rounds: restarting at zero
    // would pile every round's jobs onto "now", the fleet would never
    // drain, and replans would grow until they throttle the soak.
    const Real offset = static_cast<Real>(round) * 32.0 * 4.0;
    ++round;
    for (TraceJob job : generate_trace(spec).jobs) {
      if (g_stop.load(std::memory_order_acquire)) return;
      job.arrival_time += offset;
      SubmitJobResponse reply;
      if (client.submit_job(job, reply).ok()) {
        ++*requests;
        last_job = reply.job_id;
      }
      // Pace the submit stream: a closed-loop submitter would pin the
      // scheduler thread in replans and starve every other request class
      // of the FIFO command queue.
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  (void)last_job;
}

/// Read-mostly load: hammers query_job_status as fast as the transport
/// allows. Pollers are what actually fill the worker-thread rings — the
/// submit path is solver-bound and tops out at tens of requests a second.
void drive_poller(std::uint16_t port, std::uint64_t* requests) {
  ClientOptions options;
  options.port = port;
  CoschedClient client(options);
  while (!g_stop.load(std::memory_order_acquire)) {
    JobStatusResponse status;
    if (client.query_job_status(0, status).ok()) ++*requests;
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Drains telemetry frames until the soak stops, appending one JSON line
/// per frame to `capture` (CI uploads the file as an artifact).
void drive_subscriber(std::uint16_t port, const std::string& capture,
                      std::uint64_t* frames, std::uint64_t* spans) {
  ClientOptions options;
  options.port = port;
  CoschedClient streamer(options);
  TelemetrySubscribeRequest subscribe;
  subscribe.interval_ms = 100;
  subscribe.max_spans_per_frame = 512;
  TelemetrySubscribeAck ack;
  RpcError error = streamer.subscribe_telemetry(subscribe, ack);
  if (!error.ok()) {
    std::cerr << "rpc_soak: subscribe: " << error.describe() << "\n";
    return;
  }

  std::ofstream out;
  if (!capture.empty()) {
    std::error_code ec;
    std::filesystem::path parent = std::filesystem::path(capture).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
    out.open(capture);
  }

  auto write_frame = [&](const TelemetryFrame& frame) {
    ++*frames;
    *spans += frame.spans.size();
    if (!out) return;
    out << "{\"frame_seq\":" << frame.frame_seq
        << ",\"last\":" << (frame.last ? "true" : "false")
        << ",\"dropped_spans\":" << frame.dropped_spans << ",\"metrics\":{";
    for (std::size_t i = 0; i < frame.metrics.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << json_escape(frame.metrics[i].name)
          << "\":" << frame.metrics[i].value;
    }
    out << "},\"spans\":[";
    for (std::size_t i = 0; i < frame.spans.size(); ++i) {
      const TelemetrySpanSample& s = frame.spans[i];
      if (i > 0) out << ",";
      out << "{\"name\":\"" << json_escape(s.name)
          << "\",\"phase\":" << static_cast<int>(s.phase)
          << ",\"trace_id\":" << s.trace_id << ",\"seq\":" << s.seq << "}";
    }
    out << "]}\n";
  };

  while (!g_stop.load(std::memory_order_acquire)) {
    TelemetryFrame frame;
    RpcError frame_error = streamer.read_telemetry_frame(frame, 1.0);
    if (!frame_error.ok()) {
      if (streamer.streaming()) continue;  // timeout slice, keep waiting
      return;                              // stream is gone
    }
    write_frame(frame);
    if (frame.last) return;
  }

  // Polite unsubscribe: ask for the final frame and drain until it lands.
  if (streamer.stop_telemetry().ok()) {
    for (int i = 0; i < 50; ++i) {
      TelemetryFrame frame;
      if (!streamer.read_telemetry_frame(frame, 1.0).ok()) break;
      write_frame(frame);
      if (frame.last) break;
    }
  }
}

std::string http_get_body(const std::string& host, std::uint16_t port,
                          const std::string& path) {
  NetStatus status = NetStatus::Ok;
  Deadline deadline = Deadline::after(5.0);
  Socket socket = Socket::connect_to(host, port, deadline, status);
  if (status != NetStatus::Ok) return {};
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (socket.send_all(request.data(), request.size(), deadline) !=
      NetStatus::Ok)
    return {};
  socket.shutdown_send();
  std::string response;
  char chunk[4096];
  while (true) {
    std::size_t got = 0;
    NetStatus recv_status =
        socket.recv_some(chunk, sizeof(chunk), got, deadline);
    if (recv_status == NetStatus::Closed) break;
    if (recv_status != NetStatus::Ok) return {};
    response.append(chunk, got);
  }
  std::size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) return {};
  if (response.rfind("HTTP/1.0 200", 0) != 0) return {};
  return response.substr(body_at + 4);
}

bool check(bool ok, const std::string& what) {
  std::cout << (ok ? "PASS  " : "FAIL  ") << what << "\n";
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  double seconds = static_cast<double>(args.get_int("seconds", 8));
  std::int64_t ring = args.get_int("ring", 4096);
  std::int64_t sample_every = args.get_int("sample-every", 8);
  std::int64_t client_count = args.get_int("clients", 2);
  std::int64_t poller_count = args.get_int("pollers", 3);
  std::string capture =
      args.get_string("capture", "traces/soak_telemetry.jsonl");

  print_experiment_header(
      "rpc_soak",
      "long-lived observability soak: bounded tracer rings, head-based "
      "sampling with always-keep, streaming telemetry under load");

  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.set_max_events_per_thread(static_cast<std::size_t>(ring));
  tracer.set_sample_every(static_cast<std::uint64_t>(sample_every));
  tracer.set_always_keep({"replan.commit"});

  ServerOptions server_options;
  server_options.port = 0;
  server_options.worker_threads =
      static_cast<std::size_t>(client_count + poller_count) +
      1;  // +1 for the subscriber
  server_options.service.wall_clock = false;
  server_options.service.scheduler.cores = 4;
  server_options.service.scheduler.machines = 8;
  // Replan every other admission: enough commit-span traffic for the
  // always-keep override to matter without pinning the scheduler thread.
  server_options.service.scheduler.admission.every_k = 2;
  server_options.service.scheduler.cache_compaction_jobs = 16;
  server_options.service.scheduler.log_process_finish = false;

  CoschedServer server(server_options);
  std::string error;
  if (!server.start(error)) {
    std::cerr << "rpc_soak: " << error << "\n";
    return 1;
  }

  std::vector<std::uint64_t> requests(
      static_cast<std::size_t>(client_count + poller_count), 0);
  std::uint64_t frames = 0;
  std::uint64_t streamed_spans = 0;
  std::vector<std::thread> threads;
  threads.emplace_back(drive_subscriber, server.port(), capture, &frames,
                       &streamed_spans);
  for (std::size_t c = 0; c < static_cast<std::size_t>(client_count); ++c)
    threads.emplace_back(drive_client, server.port(), 9000 + 17 * c,
                         &requests[c]);
  for (std::size_t c = 0; c < static_cast<std::size_t>(poller_count); ++c)
    threads.emplace_back(drive_poller, server.port(),
                         &requests[static_cast<std::size_t>(client_count) + c]);

  // Mid-soak and end-of-soak samples of the buffered event count: once
  // every active ring is full the count must plateau.
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds * 0.6));
  std::uint64_t events_mid = tracer.event_count();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds * 0.4));
  std::uint64_t events_end = tracer.event_count();

  std::string exposition =
      http_get_body(server_options.host, server.http_port(), "/metrics");

  g_stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  server.stop();

  std::uint64_t total_requests = 0;
  for (std::uint64_t r : requests) total_requests += r;

  double dropped_metric = -1.0;
  double sampled_out_metric = -1.0;
  std::vector<PrometheusSample> samples;
  if (parse_prometheus_text(exposition, samples)) {
    for (const PrometheusSample& s : samples) {
      if (s.name == "cosched_tracer_dropped_events_total")
        dropped_metric = s.value;
      if (s.name == "cosched_tracer_sampled_out_traces_total")
        sampled_out_metric = s.value;
    }
  }

  Tracer::TelemetryBatch commits = tracer.collect_since(0, "replan.commit", 0);

  std::cout << "requests ok          " << total_requests << "\n"
            << "telemetry frames     " << frames << "\n"
            << "streamed spans       " << streamed_spans << "\n"
            << "events mid/end       " << events_mid << " / " << events_end
            << "\n"
            << "dropped events       " << tracer.dropped_events() << "\n"
            << "sampled-out traces   " << tracer.sampled_out_traces() << "\n"
            << "capture file         " << capture << "\n\n";

  // The ring bound: at most `ring` events per registered thread buffer.
  // Threads here: main, accept, workers, scheduler, HTTP, clients — 16 is
  // a generous process-wide ceiling.
  const std::uint64_t hard_cap = static_cast<std::uint64_t>(ring) * 16;

  bool ok = true;
  ok &= check(total_requests > 0, "loopback traffic flowed");
  ok &= check(events_end <= hard_cap,
              "event count bounded by ring capacity x threads");
  ok &= check(events_end <= events_mid + static_cast<std::uint64_t>(ring),
              "event count plateaued (grew < one ring in the last 40%)");
  ok &= check(tracer.dropped_events() > 0,
              "ring overwrites happened under sustained load");
  ok &= check(dropped_metric > 0.0,
              "/metrics reports cosched_tracer_dropped_events_total > 0");
  ok &= check(sampled_out_metric > 0.0,
              "/metrics reports cosched_tracer_sampled_out_traces_total > 0");
  ok &= check(!commits.events.empty(),
              "always-keep replan.commit spans survived sampling");
  ok &= check(frames > 0, "telemetry stream delivered frames");
  ok &= check(streamed_spans > 0, "telemetry frames carried span samples");

  tracer.set_enabled(false);
  return ok ? 0 : 1;
}
