// rpc_soak: sustained-load soak of the observability stack.
//
// Runs a CoschedServer under continuous loopback traffic with tracing
// enabled the way a long-lived deployment would run it — a small
// fixed-capacity ring per thread, 1-in-N head-based trace sampling and an
// always-keep override for replan commits — plus one streaming-telemetry
// subscriber writing every received frame to a capture file.
//
// The point is not a number but a set of invariants that must hold after
// minutes of load (CI runs ~30 s, the default is 8 s):
//   1. the tracer's buffered event count plateaus at the ring capacity
//      instead of growing without bound;
//   2. /metrics reports the overwritten events
//      (cosched_tracer_dropped_events_total > 0) and sampling did shed
//      traces (cosched_tracer_sampled_out_traces_total > 0);
//   3. always-keep span categories (replan.commit) are still present in
//      the buffers despite the sampling;
//   4. the telemetry stream delivered frames throughout;
//   5. tail sampling: after a warmup measuring the replan-duration p95, a
//      "keep replans slower than p95" tail policy is armed on top of the
//      1-in-N head sampler. Every above-threshold replan must be retained
//      (over_threshold_seen == over_threshold_kept), the pending window
//      must stay bounded, the drop counters must be monotone across
//      samples, and /metrics must expose at least one replan-duration
//      exemplar whose trace_id belongs to a tail-retained trace;
//   6. the OTLP JSON export (traces + metrics) is written and non-empty.
// Any violated invariant makes the exit status nonzero.
//
//   ./rpc_soak --seconds 30 --ring 4096 --sample-every 64
//              --capture traces/soak_telemetry.jsonl --otlp-out traces/otlp
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/http.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/otlp.hpp"
#include "obs/tail_sampler.hpp"
#include "obs/trace.hpp"
#include "online/metrics.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"

namespace {

using namespace cosched;

std::atomic<bool> g_stop{false};

void drive_client(std::uint16_t port, std::uint64_t seed,
                  std::uint64_t* requests) {
  ClientOptions options;
  options.port = port;
  CoschedClient client(options);
  std::uint64_t round = 0;
  std::int64_t last_job = -1;
  while (!g_stop.load(std::memory_order_acquire)) {
    TraceSpec spec;
    spec.job_count = 32;
    spec.parallel_fraction = 0.2;
    spec.mean_interarrival = 4.0;
    spec.work_lo = 2.0;
    spec.work_hi = 8.0;
    spec.seed = seed + round;
    // Arrival times must keep climbing across rounds: restarting at zero
    // would pile every round's jobs onto "now", the fleet would never
    // drain, and replans would grow until they throttle the soak.
    const Real offset = static_cast<Real>(round) * 32.0 * 4.0;
    ++round;
    for (TraceJob job : generate_trace(spec).jobs) {
      if (g_stop.load(std::memory_order_acquire)) return;
      job.arrival_time += offset;
      SubmitJobResponse reply;
      if (client.submit_job(job, reply).ok()) {
        ++*requests;
        last_job = reply.job_id;
      }
      // Pace the submit stream: a closed-loop submitter would pin the
      // scheduler thread in replans and starve every other request class
      // of the FIFO command queue.
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  (void)last_job;
}

/// Read-mostly load: hammers query_job_status as fast as the transport
/// allows. Pollers are what actually fill the worker-thread rings — the
/// submit path is solver-bound and tops out at tens of requests a second.
void drive_poller(std::uint16_t port, std::uint64_t* requests) {
  ClientOptions options;
  options.port = port;
  CoschedClient client(options);
  while (!g_stop.load(std::memory_order_acquire)) {
    JobStatusResponse status;
    if (client.query_job_status(0, status).ok()) ++*requests;
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Drains telemetry frames until the soak stops, appending one JSON line
/// per frame to `capture` (CI uploads the file as an artifact).
void drive_subscriber(std::uint16_t port, const std::string& capture,
                      std::uint64_t* frames, std::uint64_t* spans) {
  ClientOptions options;
  options.port = port;
  CoschedClient streamer(options);
  TelemetrySubscribeRequest subscribe;
  subscribe.interval_ms = 100;
  subscribe.max_spans_per_frame = 512;
  TelemetrySubscribeAck ack;
  RpcError error = streamer.subscribe_telemetry(subscribe, ack);
  if (!error.ok()) {
    std::cerr << "rpc_soak: subscribe: " << error.describe() << "\n";
    return;
  }

  std::ofstream out;
  if (!capture.empty()) {
    std::error_code ec;
    std::filesystem::path parent = std::filesystem::path(capture).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
    out.open(capture);
  }

  auto write_frame = [&](const TelemetryFrame& frame) {
    ++*frames;
    *spans += frame.spans.size();
    if (!out) return;
    out << "{\"frame_seq\":" << frame.frame_seq
        << ",\"last\":" << (frame.last ? "true" : "false")
        << ",\"dropped_spans\":" << frame.dropped_spans << ",\"metrics\":{";
    for (std::size_t i = 0; i < frame.metrics.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << json_escape(frame.metrics[i].name)
          << "\":" << frame.metrics[i].value;
    }
    out << "},\"spans\":[";
    for (std::size_t i = 0; i < frame.spans.size(); ++i) {
      const TelemetrySpanSample& s = frame.spans[i];
      if (i > 0) out << ",";
      out << "{\"name\":\"" << json_escape(s.name)
          << "\",\"phase\":" << static_cast<int>(s.phase)
          << ",\"trace_id\":" << s.trace_id << ",\"seq\":" << s.seq << "}";
    }
    out << "]}\n";
  };

  while (!g_stop.load(std::memory_order_acquire)) {
    TelemetryFrame frame;
    RpcError frame_error = streamer.read_telemetry_frame(frame, 1.0);
    if (!frame_error.ok()) {
      if (streamer.streaming()) continue;  // timeout slice, keep waiting
      return;                              // stream is gone
    }
    write_frame(frame);
    if (frame.last) return;
  }

  // Polite unsubscribe: ask for the final frame and drain until it lands.
  if (streamer.stop_telemetry().ok()) {
    for (int i = 0; i < 50; ++i) {
      TelemetryFrame frame;
      if (!streamer.read_telemetry_frame(frame, 1.0).ok()) break;
      write_frame(frame);
      if (frame.last) break;
    }
  }
}

bool check(bool ok, const std::string& what) {
  std::cout << (ok ? "PASS  " : "FAIL  ") << what << "\n";
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  double seconds = static_cast<double>(args.get_int("seconds", 8));
  // Ring sized to still overflow under 1-in-64 head sampling: the point of
  // the soak is overwrite pressure, not headroom.
  std::int64_t ring = args.get_int("ring", 384);
  std::int64_t sample_every = args.get_int("sample-every", 64);
  std::int64_t client_count = args.get_int("clients", 2);
  std::int64_t poller_count = args.get_int("pollers", 3);
  std::int64_t tail_window = args.get_int("tail-window", 64);
  std::string capture =
      args.get_string("capture", "traces/soak_telemetry.jsonl");
  std::string otlp_out = args.get_string("otlp-out", "traces/otlp");

  print_experiment_header(
      "rpc_soak",
      "long-lived observability soak: bounded tracer rings, head sampling "
      "with a p95-latency tail policy on top, streaming telemetry, OTLP "
      "export");

  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.set_max_events_per_thread(static_cast<std::size_t>(ring));
  tracer.set_sample_every(static_cast<std::uint64_t>(sample_every));
  tracer.set_always_keep({"replan.commit"});

  ServerOptions server_options;
  server_options.port = 0;
  server_options.worker_threads =
      static_cast<std::size_t>(client_count + poller_count) +
      1;  // +1 for the subscriber
  server_options.service.wall_clock = false;
  server_options.service.scheduler.cores = 4;
  server_options.service.scheduler.machines = 8;
  // Replan every other admission: enough commit-span traffic for the
  // always-keep override to matter without pinning the scheduler thread.
  server_options.service.scheduler.admission.every_k = 2;
  server_options.service.scheduler.cache_compaction_jobs = 16;
  server_options.service.scheduler.log_process_finish = false;

  CoschedServer server(server_options);
  std::string error;
  if (!server.start(error)) {
    std::cerr << "rpc_soak: " << error << "\n";
    return 1;
  }

  std::vector<std::uint64_t> requests(
      static_cast<std::size_t>(client_count + poller_count), 0);
  std::uint64_t frames = 0;
  std::uint64_t streamed_spans = 0;
  std::vector<std::thread> threads;
  threads.emplace_back(drive_subscriber, server.port(), capture, &frames,
                       &streamed_spans);
  for (std::size_t c = 0; c < static_cast<std::size_t>(client_count); ++c)
    threads.emplace_back(drive_client, server.port(), 9000 + 17 * c,
                         &requests[c]);
  for (std::size_t c = 0; c < static_cast<std::size_t>(poller_count); ++c)
    threads.emplace_back(drive_poller, server.port(),
                         &requests[static_cast<std::size_t>(client_count) + c]);

  // ---- warmup: measure the replan-duration p95, then arm the tail ------
  // The tail policy is configured *from measured data* — "keep every replan
  // slower than the warmup p95" — which is how a deployment would pick the
  // threshold. Arming after warmup also means the survival invariant below
  // only covers spans the policy actually saw.
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds * 0.3));
  Histogram warmup_replans =
      MetricsRegistry::global()
          .histogram(kReplanDurationMetricName, kReplanDurationMetricHelp,
                     replan_duration_metric_edges())
          .snapshot();
  Real p95_seconds = warmup_replans.quantile(0.95);
  // No replans yet (cold warmup) degrades to a 1 us threshold: every replan
  // is "slow", which keeps the survival invariant meaningful either way.
  Real threshold_us = p95_seconds > 0.0 ? p95_seconds * 1e6 : 1.0;
  {
    TailPolicy slow_replans;
    slow_replans.name = "slow-replans";
    slow_replans.span_prefix = "online.replan";
    slow_replans.min_duration_us = threshold_us;
    // A top-K policy on the request firehose exercises the pending window
    // (latency keeps are immediate and never park spans): requests queue up
    // to one window and get their verdict at the window boundary.
    TailPolicy top_requests;
    top_requests.name = "top-requests";
    top_requests.span_prefix = "rpc.request";
    top_requests.top_k = 4;
    TailSamplerOptions tail_options;
    tail_options.window_spans = static_cast<std::size_t>(tail_window);
    TailSampler::global().configure(
        {std::move(slow_replans), std::move(top_requests)}, tail_options);
  }

  // Mid-soak and end-of-soak samples of the buffered event count: once
  // every active ring is full the count must plateau. The tail-sampler
  // stats are sampled at the same two points for the monotonicity and
  // bounded-pending invariants.
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds * 0.3));
  std::uint64_t events_mid = tracer.event_count();
  TailSamplerStats tail_mid = TailSampler::global().stats();
  std::size_t tail_pending_mid = TailSampler::global().pending();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds * 0.4));
  std::uint64_t events_end = tracer.event_count();
  TailSamplerStats tail_end = TailSampler::global().stats();
  std::size_t tail_pending_end = TailSampler::global().pending();

  std::string exposition =
      http_get(server_options.host, server.http_port(), "/metrics");

  g_stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  server.stop();

  std::uint64_t total_requests = 0;
  for (std::uint64_t r : requests) total_requests += r;

  double dropped_metric = -1.0;
  double sampled_out_metric = -1.0;
  std::vector<PrometheusSample> samples;
  if (parse_prometheus_text(exposition, samples)) {
    for (const PrometheusSample& s : samples) {
      if (s.name == "cosched_tracer_dropped_events_total")
        dropped_metric = s.value;
      if (s.name == "cosched_tracer_sampled_out_traces_total")
        sampled_out_metric = s.value;
    }
  }

  Tracer::TelemetryBatch commits = tracer.collect_since(0, "replan.commit", 0);

  // Tail-sampler verdicts: the per-policy accounting for the survival
  // invariant, and the /metrics exemplars cross-checked against the set of
  // retained traces.
  TailSampler& tail = TailSampler::global();
  tail.flush();  // park nothing: give window-parked spans their verdict
  TailPolicyStats slow_replans_stats;
  for (const TailPolicyStats& p : tail.policy_stats())
    if (p.policy == "slow-replans") slow_replans_stats = p;

  std::uint64_t replan_exemplars = 0;
  std::uint64_t retained_exemplars = 0;
  for (const PrometheusSample& s : samples) {
    if (s.name != "cosched_replan_duration_seconds_bucket" || !s.has_exemplar)
      continue;
    ++replan_exemplars;
    // exemplar_labels is `trace_id="<16 hex>"`; recover the id and ask
    // the tail sampler whether that trace was retained.
    std::size_t open = s.exemplar_labels.find('"');
    std::size_t close = s.exemplar_labels.rfind('"');
    if (open == std::string::npos || close <= open) continue;
    std::uint64_t id = std::strtoull(
        s.exemplar_labels.substr(open + 1, close - open - 1).c_str(), nullptr,
        16);
    if (tail.trace_retained(id)) ++retained_exemplars;
  }

  // OTLP export: the CI artifact and the collector-compatibility check.
  std::vector<std::string> otlp_written;
  bool otlp_ok = false;
  if (!otlp_out.empty())
    otlp_ok = otlp_write_files(otlp_out, tracer, MetricsRegistry::global(),
                               &tail, {}, &otlp_written);

  std::cout << "requests ok          " << total_requests << "\n"
            << "telemetry frames     " << frames << "\n"
            << "streamed spans       " << streamed_spans << "\n"
            << "events mid/end       " << events_mid << " / " << events_end
            << "\n"
            << "dropped events       " << tracer.dropped_events() << "\n"
            << "sampled-out traces   " << tracer.sampled_out_traces() << "\n"
            << "replan p95 (warmup)  " << TextTable::fmt(p95_seconds * 1e6)
            << " us\n"
            << "tail considered      " << tail_end.considered << "\n"
            << "tail kept/dropped    " << tail_end.kept() << " / "
            << tail_end.dropped << "\n"
            << "tail slow replans    " << slow_replans_stats.over_threshold_kept
            << " kept of " << slow_replans_stats.over_threshold_seen
            << " over threshold\n"
            << "replan exemplars     " << replan_exemplars << " ("
            << retained_exemplars << " tail-retained)\n"
            << "capture file         " << capture << "\n";
  for (const std::string& path : otlp_written)
    std::cout << "otlp export          " << path << "\n";
  std::cout << "\n";

  // The ring bound: at most `ring` events per registered thread buffer.
  // Threads here: main, accept, workers, scheduler, HTTP, clients — 16 is
  // a generous process-wide ceiling.
  const std::uint64_t hard_cap = static_cast<std::uint64_t>(ring) * 16;

  bool ok = true;
  ok &= check(total_requests > 0, "loopback traffic flowed");
  ok &= check(events_end <= hard_cap,
              "event count bounded by ring capacity x threads");
  ok &= check(events_end <= events_mid + static_cast<std::uint64_t>(ring),
              "event count plateaued (grew < one ring in the last 40%)");
  ok &= check(tracer.dropped_events() > 0,
              "ring overwrites happened under sustained load");
  ok &= check(dropped_metric > 0.0,
              "/metrics reports cosched_tracer_dropped_events_total > 0");
  ok &= check(sampled_out_metric > 0.0,
              "/metrics reports cosched_tracer_sampled_out_traces_total > 0");
  ok &= check(!commits.events.empty(),
              "always-keep replan.commit spans survived sampling");
  ok &= check(frames > 0, "telemetry stream delivered frames");
  ok &= check(streamed_spans > 0, "telemetry frames carried span samples");

  // ---- tail-sampling invariants ----------------------------------------
  ok &= check(tail_end.considered > 0, "tail sampler saw completed spans");
  ok &= check(slow_replans_stats.over_threshold_seen > 0,
              "replans slower than the warmup p95 occurred");
  ok &= check(slow_replans_stats.over_threshold_kept ==
                  slow_replans_stats.over_threshold_seen,
              "every above-threshold replan trace was retained (100% "
              "slow-span survival)");
  ok &= check(tail_pending_mid <= static_cast<std::size_t>(tail_window) &&
                  tail_pending_end <= static_cast<std::size_t>(tail_window),
              "tail pending window stayed bounded (<= window size)");
  ok &= check(tail.retained() <= TailSamplerOptions{}.max_retained_spans,
              "tail retained ring stayed bounded");
  ok &= check(tail_end.considered >= tail_mid.considered &&
                  tail_end.dropped >= tail_mid.dropped &&
                  tail_end.kept() >= tail_mid.kept(),
              "tail considered/kept/dropped counters are monotone");
  ok &= check(replan_exemplars > 0,
              "/metrics exposes replan-duration exemplars");
  ok &= check(retained_exemplars > 0,
              "at least one exemplar trace_id matches a tail-retained trace");
  if (!otlp_out.empty()) {
    ok &= check(otlp_ok && otlp_written.size() == 2,
                "OTLP trace + metric JSON export written");
    for (const std::string& path : otlp_written) {
      std::error_code ec;
      std::uintmax_t size = std::filesystem::file_size(path, ec);
      ok &= check(!ec && size > 2, "OTLP export non-empty: " + path);
    }
  }

  TailSampler::global().configure({}, {});  // deactivate
  tracer.set_enabled(false);
  return ok ? 0 : 1;
}
