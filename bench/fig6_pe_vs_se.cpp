// Figure 6 — "Comparing the degradation under OA*-PE and OA*-SE for a mix
// of PE and serial benchmark programs" (quad-core and 8-core).
//
// Five PE programs (PI, MMS, RA, MCM, EP-Par) mixed with NPB-SER serials +
// art; OA*-SE ignores the parallel structure (Eq. 12), OA*-PE uses the
// correct max-aggregation (Eq. 13). Both schedules are evaluated under the
// true Eq. 13 objective, per benchmark program.
#include <iostream>

#include "astar/search.hpp"
#include "core/builders.hpp"
#include "harness/experiment.hpp"
#include "workload/benchmark_catalog.hpp"

using namespace cosched;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  print_experiment_header(
      "Figure 6 (ICPP'15)",
      "OA*-PE vs OA*-SE average degradation, PE + serial mixes");
  const std::int64_t pe_procs = args.get_int("pe-procs", 4);

  for (std::uint32_t cores : {4u, 8u}) {
    CatalogProblemSpec spec;
    spec.cores = cores;
    spec.trace_length =
        static_cast<std::size_t>(args.get_int("trace", 50000));
    // Paper: each parallel program runs 10 processes; that makes exact OA*
    // instances large, so default to 4 per job on quad-core and 2 on
    // 8-core (u = 8 grows the graph as C(n,8); --pe-procs scales both).
    std::int32_t procs_here =
        cores == 8 ? std::max<std::int64_t>(3, pe_procs * 3 / 4) : pe_procs;
    for (const auto& name : pe_program_names())
      spec.parallel_jobs.push_back(
          {name, static_cast<std::int32_t>(procs_here), false});
    spec.serial_programs = {"BT", "DC", "UA", "IS", "art"};
    Problem p = build_catalog_problem(spec);

    // Exact searches (condensation collapses the PE jobs' symmetric
    // processes, keeping these instances small).
    SearchOptions se;
    se.aggregation = Aggregation::SumAllProcesses;
    auto r_se = solve_oastar(p, se);
    SearchOptions pe;
    pe.dismiss = DismissPolicy::ParetoDominance;
    auto r_pe = solve_oastar(p, pe);
    if (!r_se.found || !r_pe.found) {
      std::cerr << "search failed\n";
      return 1;
    }
    auto ev_se = evaluate_solution(p, r_se.solution);
    auto ev_pe = evaluate_solution(p, r_pe.solution);

    TextTable table({"job", "kind", "OA*-PE", "OA*-SE"});
    for (const Job& job : p.batch.jobs()) {
      if (job.kind == JobKind::Imaginary) continue;
      table.add_row({job.name, to_string(job.kind),
                     TextTable::fmt(
                         ev_pe.per_job[static_cast<std::size_t>(job.id)], 3),
                     TextTable::fmt(
                         ev_se.per_job[static_cast<std::size_t>(job.id)], 3)});
    }
    table.add_row({"AVG", "-", TextTable::fmt(ev_pe.average_per_job, 3),
                   TextTable::fmt(ev_se.average_per_job, 3)});
    std::cout << "\n--- " << cores << "-core machines ---\n"
              << table.render();
    Real gap = (ev_se.average_per_job - ev_pe.average_per_job) /
               ev_pe.average_per_job * 100.0;
    std::cout << "OA*-SE average is worse than OA*-PE by "
              << TextTable::fmt(gap, 1)
              << "% (paper: 31.9% quad / 34.8% 8-core)\n";
    write_csv(args.get_string("out-dir", "results"),
              "fig6_" + std::to_string(cores) + "core", table);
  }
  return 0;
}
