// Figure 5 — "Cumulative Distribution Function (CDF) of MER".
//
// Random SDC-backed synthetic graphs (miss rate uniform over discrete
// values in [15%, 75%], per the paper's generator); OA* computes the
// shortest path and MER is measured against the weight-sorted levels.
//
// REPRODUCTION NOTE (see EXPERIMENTS.md): the paper reports MER <= n/u for
// ~98-99% of graphs. Under our degradation synthesis the MER distribution
// is wider — the optimal schedule's early machines do not hug the cheap
// end of their levels — so this bench reports the *measured* CDF next to
// the paper's bound rather than asserting it. The operative downstream
// claim (HA* with cap n/u stays within ~10% of OA*) is reproduced
// independently by fig10/fig11/fig12.
#include <iostream>

#include "astar/mer.hpp"
#include "astar/search.hpp"
#include "core/builders.hpp"
#include "harness/experiment.hpp"
#include "util/stats.hpp"

using namespace cosched;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  print_experiment_header("Figure 5 (ICPP'15)",
                          "CDF of MER over random co-scheduling graphs");
  // Paper: 24/32/48/56 jobs, K = 1000 graphs. OA* on SDC-synthetic
  // instances is plateau-heavy, so defaults are scaled down; raise with
  // --graphs / --jobs-list-style flags as time allows.
  const std::int64_t K = args.get_int("graphs", 8);
  const std::int64_t max_jobs = args.get_int("max-jobs", 16);
  const Real solve_limit = args.get_real("point-limit", 30.0);

  TextTable table({"cores", "jobs", "n/u", "P[MER<=n/u]", "p50", "p90",
                   "max", "solved"});
  for (std::uint32_t cores : {4u, 8u}) {
    for (std::int32_t jobs : {16, 24, 32, 48, 56}) {
      if (jobs > max_jobs) continue;
      std::vector<Real> mers;
      for (std::int64_t g = 0; g < K; ++g) {
        SdcSyntheticSpec spec;
        spec.cores = cores;
        spec.serial_jobs = jobs;
        spec.seed = static_cast<std::uint64_t>(g) * 977 +
                    static_cast<std::uint64_t>(jobs) * 13 + cores;
        Problem p = build_sdc_synthetic_problem(spec);
        SearchOptions opt;
        opt.time_limit_seconds = solve_limit;
        auto r = solve_oastar(p, opt);
        if (!r.found) continue;  // timed-out graph: skip
        NodeEvaluator eval(p, *p.full_model);
        mers.push_back(
            static_cast<Real>(compute_mer(eval, r.solution).mer));
      }
      if (mers.empty()) continue;
      Real bound = static_cast<Real>(jobs) / cores;
      auto cdf_at_bound = empirical_cdf(mers, {bound});
      table.add_row(
          {TextTable::fmt_int(cores), TextTable::fmt_int(jobs),
           TextTable::fmt(bound, 0),
           TextTable::fmt(cdf_at_bound[0].fraction * 100.0, 1) + "%",
           TextTable::fmt(percentile(mers, 0.50), 0),
           TextTable::fmt(percentile(mers, 0.90), 0),
           TextTable::fmt(percentile(mers, 1.0), 0),
           TextTable::fmt_int(static_cast<std::int64_t>(mers.size())) +
               "/" + TextTable::fmt_int(K)});
    }
  }
  std::cout << table.render();
  std::cout << "\nPaper: P[MER <= n/u] ≈ 98-100% and MER shrinks with more "
               "cores (Fig. 5).\nMeasured: our MER distribution is wider "
               "(see the reproduction note in this\nfile and EXPERIMENTS.md)"
               " — the n/u cap is a genuine heuristic here, whose\nquality "
               "cost is quantified by fig10/fig11/fig12.\n";
  write_csv(args.get_string("out-dir", "results"), "fig5", table);
  return 0;
}
