// rpc_loopback: latency/throughput of the RPC front-end over loopback.
//
// Starts a CoschedServer on an ephemeral port, drives it with one or more
// client threads submitting a seeded job mix, and reports per-request
// latency percentiles plus aggregate request throughput. Virtual-time mode
// is used so the numbers measure the transport + scheduler-thread handoff,
// not simulated job durations.
//
//   ./rpc_loopback --jobs 200 --clients 4 --scale 1
#include <algorithm>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"

namespace {

using namespace cosched;

struct ClientLoad {
  std::vector<double> latencies_ms;
  std::uint64_t errors = 0;
};

void drive_client(std::uint16_t port, const WorkloadTrace& trace,
                  ClientLoad& load) {
  ClientOptions options;
  options.port = port;
  CoschedClient client(options);
  load.latencies_ms.reserve(trace.jobs.size());
  // Arrival times are kept from the generated trace: flooding everything at
  // t=0 would saturate the fleet and every replan would be a dense 32-slot
  // solve — that benchmarks HA*, not the transport.
  for (const TraceJob& job : trace.jobs) {
    auto begin = std::chrono::steady_clock::now();
    SubmitJobResponse reply;
    RpcError error = client.submit_job(job, reply);
    auto end = std::chrono::steady_clock::now();
    if (!error.ok()) {
      ++load.errors;
      continue;
    }
    load.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(end - begin).count());
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) / 100.0 + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  std::int64_t scale = args.get_int("scale", 1);
  std::int64_t jobs_per_client = args.get_int("jobs", 100) * scale;
  std::int64_t client_count = args.get_int("clients", 2);

  print_experiment_header(
      "rpc_loopback",
      "RPC front-end loopback latency/throughput (transport + scheduler "
      "thread handoff, virtual-time mode)");

  ServerOptions server_options;
  server_options.port = 0;  // ephemeral
  server_options.worker_threads =
      static_cast<std::size_t>(std::max<std::int64_t>(client_count, 1));
  server_options.service.wall_clock = false;
  server_options.service.scheduler.cores = 4;
  server_options.service.scheduler.machines = 8;
  server_options.service.scheduler.admission.every_k = 4;
  server_options.service.scheduler.cache_compaction_jobs = 16;
  server_options.service.scheduler.log_process_finish = false;

  CoschedServer server(server_options);
  std::string error;
  if (!server.start(error)) {
    std::cerr << "rpc_loopback: " << error << "\n";
    return 1;
  }

  std::vector<WorkloadTrace> traces(static_cast<std::size_t>(client_count));
  for (std::size_t c = 0; c < traces.size(); ++c) {
    TraceSpec spec;
    spec.job_count = static_cast<std::int32_t>(jobs_per_client);
    spec.parallel_fraction = 0.2;
    // Spread arrivals so the aggregate offered load stays around half the
    // fleet regardless of the client count.
    spec.mean_interarrival = 2.0 * static_cast<Real>(client_count);
    spec.seed = 1000 + c;
    traces[c] = generate_trace(spec);
  }

  std::vector<ClientLoad> loads(traces.size());
  auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < traces.size(); ++c)
    clients.emplace_back(drive_client, server.port(), std::cref(traces[c]),
                         std::ref(loads[c]));
  for (std::thread& t : clients) t.join();
  auto end = std::chrono::steady_clock::now();

  DrainResponse drained;
  {
    ClientOptions options;
    options.port = server.port();
    CoschedClient client(options);
    RpcError drain_error = client.drain(drained);
    if (!drain_error.ok()) {
      std::cerr << "rpc_loopback: drain: " << drain_error.describe() << "\n";
      return 1;
    }
  }
  ServerStats stats = server.stats();
  server.stop();

  std::vector<double> all;
  std::uint64_t errors = 0;
  for (const ClientLoad& load : loads) {
    all.insert(all.end(), load.latencies_ms.begin(), load.latencies_ms.end());
    errors += load.errors;
  }
  std::sort(all.begin(), all.end());
  double wall_seconds = std::chrono::duration<double>(end - begin).count();
  double sum = 0.0;
  for (double v : all) sum += v;

  TextTable table({"metric", "value"});
  table.add_row({"clients", TextTable::fmt_int(client_count)});
  table.add_row({"requests ok",
                 TextTable::fmt_int(static_cast<std::int64_t>(all.size()))});
  table.add_row(
      {"requests failed", TextTable::fmt_int(static_cast<std::int64_t>(errors))});
  table.add_row({"wall seconds", TextTable::fmt(wall_seconds, 3)});
  table.add_row(
      {"throughput req/s",
       TextTable::fmt(wall_seconds > 0.0
                          ? static_cast<double>(all.size()) / wall_seconds
                          : 0.0,
                      1)});
  table.add_row({"latency mean ms",
                 TextTable::fmt(all.empty() ? 0.0 : sum / all.size(), 3)});
  table.add_row({"latency p50 ms", TextTable::fmt(percentile(all, 50), 3)});
  table.add_row({"latency p95 ms", TextTable::fmt(percentile(all, 95), 3)});
  table.add_row({"latency p99 ms", TextTable::fmt(percentile(all, 99), 3)});
  table.add_row({"jobs completed",
                 TextTable::fmt_int(static_cast<std::int64_t>(
                     drained.completions))});
  table.add_row({"server frames rejected",
                 TextTable::fmt_int(static_cast<std::int64_t>(
                     stats.malformed_frames))});
  std::cout << table.render() << "\n";
  write_csv(args.get_string("out", "results"), "rpc_loopback", table);

  std::uint64_t expected = static_cast<std::uint64_t>(all.size());
  return drained.completions == expected && errors == 0 ? 0 : 1;
}
