// rpc_loopback: latency/throughput of the RPC front-end over loopback.
//
// Starts a CoschedServer on an ephemeral port, drives it with one or more
// client threads submitting a seeded job mix, and reports per-request
// latency percentiles plus aggregate request throughput. Virtual-time mode
// is used so the numbers measure the transport + scheduler-thread handoff,
// not simulated job durations.
//
// Latencies are accumulated in the shared fixed-bucket Histogram (one per
// client, merged at the end), so the p50/p95/p99 reported here are the same
// bucket-interpolated quantiles the /metrics exposition serves — not a
// second, subtly different sort-based estimator.
//
// Besides the human-readable table (and CSV), the run always writes a
// machine-readable summary (default BENCH_rpc_loopback.json, override with
// --bench-out) so CI can diff throughput and p50/p95/p99 against the
// checked-in baseline.
//
//   ./rpc_loopback --jobs 200 --clients 4 --scale 1
//   ./rpc_loopback --trace-out traces/loopback.json --metrics-out
//                  traces/loopback_metrics.txt --bench-out bench.json
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "shard/router.hpp"
#include "shard/router_server.hpp"

namespace {

using namespace cosched;

// Bucket edges in milliseconds; the overflow bucket catches outliers and
// quantile() clamps into it using the observed max.
std::vector<Real> latency_edges_ms() {
  return {0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
          250.0, 500.0, 1000.0};
}

struct ClientLoad {
  Histogram latency_ms{latency_edges_ms()};
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
};

void drive_client(std::uint16_t port, const WorkloadTrace& trace,
                  ClientLoad& load) {
  ClientOptions options;
  options.port = port;
  CoschedClient client(options);
  // Arrival times are kept from the generated trace: flooding everything at
  // t=0 would saturate the fleet and every replan would be a dense 32-slot
  // solve — that benchmarks HA*, not the transport.
  for (const TraceJob& job : trace.jobs) {
    auto begin = std::chrono::steady_clock::now();
    SubmitJobResponse reply;
    RpcError error = client.submit_job(job, reply);
    auto end = std::chrono::steady_clock::now();
    if (!error.ok()) {
      ++load.errors;
      continue;
    }
    ++load.requests;
    load.latency_ms.add(
        std::chrono::duration<double, std::milli>(end - begin).count());
  }
}

/// One-shot HTTP/1.0 GET against the server's observability port; returns
/// the response body (headers stripped) or empty on any failure.
std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path) {
  NetStatus status = NetStatus::Ok;
  Deadline deadline = Deadline::after(5.0);
  Socket socket = Socket::connect_to(host, port, deadline, status);
  if (status != NetStatus::Ok) return {};
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (socket.send_all(request.data(), request.size(), deadline) !=
      NetStatus::Ok)
    return {};
  socket.shutdown_send();
  std::string response;
  char chunk[4096];
  while (true) {
    std::size_t got = 0;
    NetStatus recv_status =
        socket.recv_some(chunk, sizeof(chunk), got, deadline);
    if (recv_status == NetStatus::Closed) break;
    if (recv_status != NetStatus::Ok) return {};
    response.append(chunk, got);
  }
  std::size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) return {};
  if (response.rfind("HTTP/1.0 200", 0) != 0 &&
      response.rfind("HTTP/1.1 200", 0) != 0)
    return {};
  return response.substr(body_at + 4);
}

bool write_text_file(const std::string& path, const std::string& content) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) fs::create_directories(parent, ec);
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

// ---- --router mode ---------------------------------------------------------
//
// Same workload, two deployments: the 8-machine fleet as ONE scheduler versus
// the same 8 machines split across N shards behind a ShardRouter. The win is
// not parallelism (CI runs single-core): HA* solve cost grows super-linearly
// in fleet size, so N small solves are cheaper than one big one even run
// back-to-back. The run doubles as the fan-in smoke: it fetches GetMetrics
// through the router and fails (nonzero exit) unless every fleet total equals
// the sum of its per-shard entries.

constexpr std::int64_t kTotalMachines = 8;
constexpr int kTenants = 32;

/// Prefix every job name with a stable tenant key ("t7/...") so the router's
/// consistent hash has something to spread. Tenant assignment is a function
/// of (client, job index) only — identical across shard counts, so the two
/// configurations see byte-identical workloads.
void tenantize(std::vector<WorkloadTrace>& traces) {
  int k = 0;
  for (WorkloadTrace& trace : traces)
    for (TraceJob& job : trace.jobs)
      job.name = "t" + std::to_string(k++ % kTenants) + "/" + job.name;
}

struct RouterRunResult {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t completions = 0;
  double wall_seconds = 0.0;
  Histogram latency_ms{latency_edges_ms()};
  bool fan_in_ok = false;
  std::uint64_t spillovers = 0;
  std::vector<std::uint64_t> shard_requests;

  double throughput_rps() const {
    return wall_seconds > 0.0 ? static_cast<double>(requests) / wall_seconds
                              : 0.0;
  }
};

/// One full run against a ShardRouter fronting `shard_count` local shards.
/// Returns false only on infrastructure failure (bind, drain, metrics RPC);
/// fan-in and completion checks land in `result` for the caller to judge.
bool run_router_config(std::int64_t shard_count,
                       const std::vector<WorkloadTrace>& traces,
                       const std::string& metrics_out,
                       RouterRunResult& result) {
  ShardRouter router{RouterOptions{}};
  for (std::int64_t s = 0; s < shard_count; ++s) {
    LiveServiceOptions service;
    service.wall_clock = false;
    service.scheduler.cores = 4;
    service.scheduler.machines = static_cast<std::int32_t>(
        std::max<std::int64_t>(1, kTotalMachines / shard_count));
    service.scheduler.admission.every_k = 4;
    service.scheduler.cache_compaction_jobs = 16;
    service.scheduler.log_process_finish = false;
    router.add_local_shard(service);
  }

  RouterServerOptions server_options;
  server_options.port = 0;
  server_options.worker_threads = std::max<std::size_t>(traces.size(), 1);
  RouterServer server(router, server_options);
  std::string error;
  if (!server.start(error)) {
    std::cerr << "rpc_loopback: router start: " << error << "\n";
    return false;
  }

  std::vector<ClientLoad> loads(traces.size());
  auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < traces.size(); ++c)
    clients.emplace_back(drive_client, server.port(), std::cref(traces[c]),
                         std::ref(loads[c]));
  for (std::thread& t : clients) t.join();
  auto end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(end - begin).count();
  for (const ClientLoad& load : loads) {
    result.latency_ms.merge(load.latency_ms);
    result.requests += load.requests;
    result.errors += load.errors;
  }

  ClientOptions client_options;
  client_options.port = server.port();
  CoschedClient client(client_options);
  DrainResponse drained;
  RpcError drain_error = client.drain(drained);
  if (!drain_error.ok()) {
    std::cerr << "rpc_loopback: router drain: " << drain_error.describe()
              << "\n";
    server.stop();
    return false;
  }
  result.completions = drained.completions;

  MetricsResponse metrics;
  RpcError metrics_error = client.get_metrics(metrics);
  if (!metrics_error.ok()) {
    std::cerr << "rpc_loopback: router metrics: " << metrics_error.describe()
              << "\n";
    server.stop();
    return false;
  }

  // The Σ invariant the router promises: each fan-in total is exactly the
  // sum of the shard entries it ships alongside, and routed requests add up
  // to what the clients sent.
  std::uint64_t sum_requests = 0, sum_arrivals = 0, sum_admissions = 0;
  std::uint64_t sum_completions = 0, sum_replans = 0, sum_migrations = 0;
  for (const ShardMetricsEntry& entry : metrics.shards) {
    sum_requests += entry.requests;
    sum_arrivals += entry.arrivals;
    sum_admissions += entry.admissions;
    sum_completions += entry.completions;
    sum_replans += entry.replans;
    sum_migrations += entry.migrations;
    result.shard_requests.push_back(entry.requests);
  }
  result.fan_in_ok =
      metrics.shards.size() == static_cast<std::size_t>(shard_count) &&
      metrics.arrivals == sum_arrivals &&
      metrics.admissions == sum_admissions &&
      metrics.completions == sum_completions &&
      metrics.replans == sum_replans && metrics.migrations == sum_migrations &&
      sum_requests == result.requests &&
      metrics.completions == result.completions;
  result.spillovers = metrics.router_spillovers;

  if (!metrics_out.empty()) {
    std::string exposition =
        http_get(server_options.host, server.http_port(), "/metrics");
    if (exposition.empty())
      std::cerr << "rpc_loopback: GET /metrics (router) failed\n";
    else if (write_text_file(metrics_out, exposition))
      std::cout << "wrote " << metrics_out << "\n";
  }

  server.stop();
  return true;
}

void print_router_table(const std::string& title, const RouterRunResult& r) {
  TextTable table({"metric", title});
  table.add_row({"requests ok",
                 TextTable::fmt_int(static_cast<std::int64_t>(r.requests))});
  table.add_row({"requests failed",
                 TextTable::fmt_int(static_cast<std::int64_t>(r.errors))});
  table.add_row({"wall seconds", TextTable::fmt(r.wall_seconds, 3)});
  table.add_row({"throughput req/s", TextTable::fmt(r.throughput_rps(), 1)});
  table.add_row({"latency p50 ms", TextTable::fmt(r.latency_ms.quantile(0.5), 3)});
  table.add_row({"latency p95 ms", TextTable::fmt(r.latency_ms.quantile(0.95), 3)});
  table.add_row({"latency p99 ms", TextTable::fmt(r.latency_ms.quantile(0.99), 3)});
  table.add_row({"jobs completed",
                 TextTable::fmt_int(static_cast<std::int64_t>(r.completions))});
  table.add_row({"spillovers",
                 TextTable::fmt_int(static_cast<std::int64_t>(r.spillovers))});
  table.add_row({"fan-in invariant", r.fan_in_ok ? "ok" : "VIOLATED"});
  std::cout << table.render() << "\n";
}

void append_router_json(std::ostringstream& json, const std::string& key,
                        std::int64_t shards, const RouterRunResult& r) {
  json << "  \"" << key << "\": {\n"
       << "    \"shards\": " << shards << ",\n"
       << "    \"requests_ok\": " << r.requests << ",\n"
       << "    \"requests_failed\": " << r.errors << ",\n"
       << "    \"wall_seconds\": " << r.wall_seconds << ",\n"
       << "    \"throughput_rps\": " << r.throughput_rps() << ",\n"
       << "    \"spillovers\": " << r.spillovers << ",\n"
       << "    \"shard_requests\": [";
  for (std::size_t i = 0; i < r.shard_requests.size(); ++i)
    json << (i ? ", " : "") << r.shard_requests[i];
  json << "],\n"
       << "    \"latency_ms\": {\n"
       << "      \"mean\": " << r.latency_ms.mean() << ",\n"
       << "      \"p50\": " << r.latency_ms.quantile(0.5) << ",\n"
       << "      \"p95\": " << r.latency_ms.quantile(0.95) << ",\n"
       << "      \"p99\": " << r.latency_ms.quantile(0.99) << ",\n"
       << "      \"max\": " << r.latency_ms.max() << "\n"
       << "    }\n"
       << "  }";
}

/// --router entry point: 1-shard baseline then the N-shard fleet over the
/// same tenantized workload; writes the comparison to `bench_out`.
int run_router_mode(std::int64_t shard_count, std::int64_t jobs_per_client,
                    std::int64_t client_count, const std::string& metrics_out,
                    const std::string& bench_out) {
  print_experiment_header(
      "rpc_sharded",
      "ShardRouter loopback: one scheduler vs " +
          std::to_string(shard_count) +
          " consistent-hash shards over the same " +
          std::to_string(kTotalMachines) + "-machine fleet");

  std::vector<WorkloadTrace> traces(static_cast<std::size_t>(client_count));
  for (std::size_t c = 0; c < traces.size(); ++c) {
    TraceSpec spec;
    spec.job_count = static_cast<std::int32_t>(jobs_per_client);
    spec.parallel_fraction = 0.2;
    spec.mean_interarrival = 2.0 * static_cast<Real>(client_count);
    spec.seed = 1000 + c;
    traces[c] = generate_trace(spec);
  }
  tenantize(traces);

  RouterRunResult single;
  RouterRunResult sharded;
  if (!run_router_config(1, traces, "", single)) return 1;
  if (!run_router_config(shard_count, traces, metrics_out, sharded)) return 1;

  print_router_table("1 shard", single);
  print_router_table(std::to_string(shard_count) + " shards", sharded);

  double speedup = single.throughput_rps() > 0.0
                       ? sharded.throughput_rps() / single.throughput_rps()
                       : 0.0;
  std::cout << "sharded speedup vs single shard: "
            << TextTable::fmt(speedup, 2) << "x\n";

  if (!bench_out.empty()) {
    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(4);
    json << "{\n"
         << "  \"bench\": \"rpc_sharded\",\n"
         << "  \"clients\": " << client_count << ",\n"
         << "  \"jobs_per_client\": " << jobs_per_client << ",\n"
         << "  \"tenants\": " << kTenants << ",\n"
         << "  \"total_machines\": " << kTotalMachines << ",\n";
    append_router_json(json, "single_shard", 1, single);
    json << ",\n";
    append_router_json(json, "sharded", shard_count, sharded);
    json << ",\n"
         << "  \"speedup_vs_single_shard\": " << speedup << ",\n"
         << "  \"fan_in_invariant_ok\": "
         << (single.fan_in_ok && sharded.fan_in_ok ? "true" : "false") << "\n"
         << "}\n";
    if (write_text_file(bench_out, json.str()))
      std::cout << "wrote " << bench_out << "\n";
  }

  bool clean = single.fan_in_ok && sharded.fan_in_ok &&
               single.errors == 0 && sharded.errors == 0 &&
               single.completions == single.requests &&
               sharded.completions == sharded.requests;
  return clean ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  std::int64_t scale = args.get_int("scale", 1);
  std::int64_t jobs_per_client = args.get_int("jobs", 100) * scale;
  std::int64_t client_count = args.get_int("clients", 2);
  std::string trace_out = args.get_string("trace-out", "");
  std::string metrics_out = args.get_string("metrics-out", "");

  if (args.has("router")) {
    // Sharded comparison mode: separate default bench-out so the single-
    // scheduler baseline JSON is never clobbered by a router run.
    return run_router_mode(args.get_int("shards", 4), jobs_per_client,
                           client_count, metrics_out,
                           args.get_string("bench-out",
                                           "BENCH_rpc_sharded.json"));
  }

  std::string bench_out =
      args.get_string("bench-out", "BENCH_rpc_loopback.json");

  if (!trace_out.empty()) Tracer::global().set_enabled(true);

  print_experiment_header(
      "rpc_loopback",
      "RPC front-end loopback latency/throughput (transport + scheduler "
      "thread handoff, virtual-time mode)");

  ServerOptions server_options;
  server_options.port = 0;  // ephemeral
  server_options.worker_threads =
      static_cast<std::size_t>(std::max<std::int64_t>(client_count, 1));
  server_options.service.wall_clock = false;
  server_options.service.scheduler.cores = 4;
  server_options.service.scheduler.machines = 8;
  server_options.service.scheduler.admission.every_k = 4;
  server_options.service.scheduler.cache_compaction_jobs = 16;
  server_options.service.scheduler.log_process_finish = false;

  CoschedServer server(server_options);
  std::string error;
  if (!server.start(error)) {
    std::cerr << "rpc_loopback: " << error << "\n";
    return 1;
  }

  std::vector<WorkloadTrace> traces(static_cast<std::size_t>(client_count));
  for (std::size_t c = 0; c < traces.size(); ++c) {
    TraceSpec spec;
    spec.job_count = static_cast<std::int32_t>(jobs_per_client);
    spec.parallel_fraction = 0.2;
    // Spread arrivals so the aggregate offered load stays around half the
    // fleet regardless of the client count.
    spec.mean_interarrival = 2.0 * static_cast<Real>(client_count);
    spec.seed = 1000 + c;
    traces[c] = generate_trace(spec);
  }

  std::vector<ClientLoad> loads(traces.size());
  auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < traces.size(); ++c)
    clients.emplace_back(drive_client, server.port(), std::cref(traces[c]),
                         std::ref(loads[c]));
  for (std::thread& t : clients) t.join();
  auto end = std::chrono::steady_clock::now();

  DrainResponse drained;
  {
    ClientOptions options;
    options.port = server.port();
    CoschedClient client(options);
    RpcError drain_error = client.drain(drained);
    if (!drain_error.ok()) {
      std::cerr << "rpc_loopback: drain: " << drain_error.describe() << "\n";
      return 1;
    }
  }

  if (!metrics_out.empty()) {
    std::string exposition =
        http_get(server_options.host, server.http_port(), "/metrics");
    if (exposition.empty())
      std::cerr << "rpc_loopback: GET /metrics failed\n";
    else if (write_text_file(metrics_out, exposition))
      std::cout << "wrote " << metrics_out << "\n";
  }

  ServerStats stats = server.stats();
  server.stop();

  Histogram all(latency_edges_ms());
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  for (const ClientLoad& load : loads) {
    all.merge(load.latency_ms);
    requests += load.requests;
    errors += load.errors;
  }
  double wall_seconds = std::chrono::duration<double>(end - begin).count();

  TextTable table({"metric", "value"});
  table.add_row({"clients", TextTable::fmt_int(client_count)});
  table.add_row({"requests ok",
                 TextTable::fmt_int(static_cast<std::int64_t>(requests))});
  table.add_row(
      {"requests failed", TextTable::fmt_int(static_cast<std::int64_t>(errors))});
  table.add_row({"wall seconds", TextTable::fmt(wall_seconds, 3)});
  table.add_row(
      {"throughput req/s",
       TextTable::fmt(wall_seconds > 0.0
                          ? static_cast<double>(requests) / wall_seconds
                          : 0.0,
                      1)});
  table.add_row({"latency mean ms", TextTable::fmt(all.mean(), 3)});
  table.add_row({"latency p50 ms", TextTable::fmt(all.quantile(0.5), 3)});
  table.add_row({"latency p95 ms", TextTable::fmt(all.quantile(0.95), 3)});
  table.add_row({"latency p99 ms", TextTable::fmt(all.quantile(0.99), 3)});
  table.add_row({"latency max ms", TextTable::fmt(all.max(), 3)});
  table.add_row({"jobs completed",
                 TextTable::fmt_int(static_cast<std::int64_t>(
                     drained.completions))});
  table.add_row({"server frames rejected",
                 TextTable::fmt_int(static_cast<std::int64_t>(
                     stats.malformed_frames))});
  std::cout << table.render() << "\n";
  write_csv(args.get_string("out", "results"), "rpc_loopback", table);

  if (!trace_out.empty()) {
    if (Tracer::global().write_chrome_json(trace_out))
      std::cout << "wrote " << trace_out << "\n";
  }

  if (!bench_out.empty()) {
    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(4);
    json << "{\n"
         << "  \"bench\": \"rpc_loopback\",\n"
         << "  \"clients\": " << client_count << ",\n"
         << "  \"jobs_per_client\": " << jobs_per_client << ",\n"
         << "  \"requests_ok\": " << requests << ",\n"
         << "  \"requests_failed\": " << errors << ",\n"
         << "  \"wall_seconds\": " << wall_seconds << ",\n"
         << "  \"throughput_rps\": "
         << (wall_seconds > 0.0 ? static_cast<double>(requests) / wall_seconds
                                : 0.0)
         << ",\n"
         << "  \"latency_ms\": {\n"
         << "    \"mean\": " << all.mean() << ",\n"
         << "    \"p50\": " << all.quantile(0.5) << ",\n"
         << "    \"p95\": " << all.quantile(0.95) << ",\n"
         << "    \"p99\": " << all.quantile(0.99) << ",\n"
         << "    \"max\": " << all.max() << "\n"
         << "  }\n"
         << "}\n";
    if (write_text_file(bench_out, json.str()))
      std::cout << "wrote " << bench_out << "\n";
  }

  return drained.completions == requests && errors == 0 ? 0 : 1;
}
