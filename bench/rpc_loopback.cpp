// rpc_loopback: latency/throughput of the RPC front-end over loopback.
//
// Starts a CoschedServer on an ephemeral port, drives it with one or more
// client threads submitting a seeded job mix, and reports per-request
// latency percentiles plus aggregate request throughput. Virtual-time mode
// is used so the numbers measure the transport + scheduler-thread handoff,
// not simulated job durations.
//
// Measurement goes through src/loadgen: each client's first --warmup
// requests are classified Warmup by the phase controller and excluded from
// every reported figure (they still run — cold connections, cold caches
// and the first dense replans warm the service up for the measure window).
// Latencies are accumulated in the shared fixed-bucket Histogram (one per
// client phase, merged at the end), so the p50/p95/p99 reported here are
// the same bucket-interpolated quantiles the /metrics exposition serves.
// Throughput is measure-phase completions over the measure window, not the
// whole wall clock including warm-up.
//
// Besides the human-readable table (and CSV), the run always writes a
// machine-readable summary (default BENCH_rpc_loopback.json, override with
// --bench-out) in the loadgen BenchReport schema so CI can diff throughput
// and p50/p95/p99 against the checked-in baseline.
//
//   ./rpc_loopback --jobs 200 --clients 4 --warmup 8 --scale 1
//   ./rpc_loopback --trace-out traces/loopback.json --metrics-out
//                  traces/loopback_metrics.txt --bench-out bench.json
#include <chrono>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "loadgen/phase.hpp"
#include "loadgen/report.hpp"
#include "obs/http.hpp"
#include "obs/trace.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "shard/router.hpp"
#include "shard/router_server.hpp"

namespace {

using namespace cosched;

using Clock = std::chrono::steady_clock;

/// One client thread's accumulators, split by phase (no cool-down here —
/// the trace is finite and the tail is as interesting as the middle).
struct ClientLoad {
  PhaseStats warmup;
  PhaseStats measure;
};

void drive_client(std::uint16_t port, const WorkloadTrace& trace,
                  std::uint64_t warmup_count, Clock::time_point t0,
                  ClientLoad& load) {
  ClientOptions options;
  options.port = port;
  CoschedClient client(options);
  PhaseController phases(
      trace.jobs.size(),
      std::min<std::uint64_t>(warmup_count, trace.jobs.size()), 0);
  // Arrival times are kept from the generated trace: flooding everything at
  // t=0 would saturate the fleet and every replan would be a dense 32-slot
  // solve — that benchmarks HA*, not the transport.
  std::uint64_t index = 0;
  for (const TraceJob& job : trace.jobs) {
    PhaseStats& bucket = phases.classify(index++) == LoadPhase::Warmup
                             ? load.warmup
                             : load.measure;
    auto begin = Clock::now();
    SubmitJobResponse reply;
    RpcError error = client.submit_job(job, reply);
    auto end = Clock::now();
    bucket.first_send_s = std::min(
        bucket.first_send_s, std::chrono::duration<double>(begin - t0).count());
    bucket.last_finish_s = std::max(
        bucket.last_finish_s, std::chrono::duration<double>(end - t0).count());
    if (!error.ok()) {
      ++bucket.errors;
      continue;
    }
    ++bucket.requests;
    bucket.latency_ms.add(
        std::chrono::duration<double, std::milli>(end - begin).count());
  }
}

/// Runs all client threads against `port`, merging per-client loads.
ClientLoad drive_all(std::uint16_t port,
                     const std::vector<WorkloadTrace>& traces,
                     std::uint64_t warmup_count) {
  std::vector<ClientLoad> loads(traces.size());
  Clock::time_point t0 = Clock::now();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < traces.size(); ++c)
    clients.emplace_back(drive_client, port, std::cref(traces[c]),
                         warmup_count, t0, std::ref(loads[c]));
  for (std::thread& t : clients) t.join();
  ClientLoad all;
  for (const ClientLoad& load : loads) {
    all.warmup.merge(load.warmup);
    all.measure.merge(load.measure);
  }
  return all;
}

// ---- --router mode ---------------------------------------------------------
//
// Same workload, two deployments: the 8-machine fleet as ONE scheduler versus
// the same 8 machines split across N shards behind a ShardRouter. The win is
// not parallelism (CI runs single-core): HA* solve cost grows super-linearly
// in fleet size, so N small solves are cheaper than one big one even run
// back-to-back. The run doubles as the fan-in smoke: it fetches GetMetrics
// through the router and fails (nonzero exit) unless every fleet total equals
// the sum of its per-shard entries.

constexpr std::int64_t kTotalMachines = 8;
constexpr int kTenants = 32;

/// Prefix every job name with a stable tenant key ("t7/...") so the router's
/// consistent hash has something to spread. Tenant assignment is a function
/// of (client, job index) only — identical across shard counts, so the two
/// configurations see byte-identical workloads.
void tenantize(std::vector<WorkloadTrace>& traces) {
  int k = 0;
  for (WorkloadTrace& trace : traces)
    for (TraceJob& job : trace.jobs)
      job.name = "t" + std::to_string(k++ % kTenants) + "/" + job.name;
}

struct RouterRunResult {
  ClientLoad load;
  std::uint64_t completions = 0;
  bool fan_in_ok = false;
  std::uint64_t spillovers = 0;
  std::vector<std::uint64_t> shard_requests;

  std::uint64_t requests() const { return load.measure.requests; }
  std::uint64_t warmup_requests() const {
    return load.warmup.requests + load.warmup.errors;
  }
  std::uint64_t errors() const {
    return load.warmup.errors + load.measure.errors;
  }
  double throughput_rps() const {
    Real window = load.measure.window_seconds();
    return window > 0.0 ? static_cast<double>(requests()) / window : 0.0;
  }
};

/// One full run against a ShardRouter fronting `shard_count` local shards.
/// Returns false only on infrastructure failure (bind, drain, metrics RPC);
/// fan-in and completion checks land in `result` for the caller to judge.
bool run_router_config(std::int64_t shard_count,
                       const std::vector<WorkloadTrace>& traces,
                       std::uint64_t warmup_count,
                       const std::string& metrics_out,
                       RouterRunResult& result) {
  ShardRouter router{RouterOptions{}};
  for (std::int64_t s = 0; s < shard_count; ++s) {
    LiveServiceOptions service;
    service.wall_clock = false;
    service.scheduler.cores = 4;
    service.scheduler.machines = static_cast<std::int32_t>(
        std::max<std::int64_t>(1, kTotalMachines / shard_count));
    service.scheduler.admission.every_k = 4;
    service.scheduler.cache_compaction_jobs = 16;
    service.scheduler.log_process_finish = false;
    router.add_local_shard(service);
  }

  RouterServerOptions server_options;
  server_options.port = 0;
  server_options.worker_threads = std::max<std::size_t>(traces.size(), 1);
  RouterServer server(router, server_options);
  std::string error;
  if (!server.start(error)) {
    std::cerr << "rpc_loopback: router start: " << error << "\n";
    return false;
  }

  result.load = drive_all(server.port(), traces, warmup_count);

  ClientOptions client_options;
  client_options.port = server.port();
  CoschedClient client(client_options);
  DrainResponse drained;
  RpcError drain_error = client.drain(drained);
  if (!drain_error.ok()) {
    std::cerr << "rpc_loopback: router drain: " << drain_error.describe()
              << "\n";
    server.stop();
    return false;
  }
  result.completions = drained.completions;

  MetricsResponse metrics;
  RpcError metrics_error = client.get_metrics(metrics);
  if (!metrics_error.ok()) {
    std::cerr << "rpc_loopback: router metrics: " << metrics_error.describe()
              << "\n";
    server.stop();
    return false;
  }

  // The Σ invariant the router promises: each fan-in total is exactly the
  // sum of the shard entries it ships alongside, and routed requests add up
  // to what the clients sent (warm-up included — the router routed those
  // too, they are only excluded from the *latency* report).
  std::uint64_t all_requests =
      result.load.warmup.requests + result.load.measure.requests;
  std::uint64_t sum_requests = 0, sum_arrivals = 0, sum_admissions = 0;
  std::uint64_t sum_completions = 0, sum_replans = 0, sum_migrations = 0;
  for (const ShardMetricsEntry& entry : metrics.shards) {
    sum_requests += entry.requests;
    sum_arrivals += entry.arrivals;
    sum_admissions += entry.admissions;
    sum_completions += entry.completions;
    sum_replans += entry.replans;
    sum_migrations += entry.migrations;
    result.shard_requests.push_back(entry.requests);
  }
  result.fan_in_ok =
      metrics.shards.size() == static_cast<std::size_t>(shard_count) &&
      metrics.arrivals == sum_arrivals &&
      metrics.admissions == sum_admissions &&
      metrics.completions == sum_completions &&
      metrics.replans == sum_replans && metrics.migrations == sum_migrations &&
      sum_requests == all_requests &&
      metrics.completions == result.completions;
  result.spillovers = metrics.router_spillovers;

  if (!metrics_out.empty()) {
    std::string exposition =
        http_get(server_options.host, server.http_port(), "/metrics");
    if (exposition.empty())
      std::cerr << "rpc_loopback: GET /metrics (router) failed\n";
    else if (write_text_file(metrics_out, exposition))
      std::cout << "wrote " << metrics_out << "\n";
  }

  server.stop();
  return true;
}

void print_router_table(const std::string& title, const RouterRunResult& r) {
  TextTable table({"metric", title});
  table.add_row({"requests measured",
                 TextTable::fmt_int(static_cast<std::int64_t>(r.requests()))});
  table.add_row({"warm-up requests (excluded)",
                 TextTable::fmt_int(
                     static_cast<std::int64_t>(r.warmup_requests()))});
  table.add_row({"requests failed",
                 TextTable::fmt_int(static_cast<std::int64_t>(r.errors()))});
  table.add_row({"measure window s",
                 TextTable::fmt(r.load.measure.window_seconds(), 3)});
  table.add_row({"throughput req/s", TextTable::fmt(r.throughput_rps(), 1)});
  table.add_row({"latency p50 ms",
                 TextTable::fmt(r.load.measure.latency_ms.quantile(0.5), 3)});
  table.add_row({"latency p95 ms",
                 TextTable::fmt(r.load.measure.latency_ms.quantile(0.95), 3)});
  table.add_row({"latency p99 ms",
                 TextTable::fmt(r.load.measure.latency_ms.quantile(0.99), 3)});
  table.add_row({"jobs completed",
                 TextTable::fmt_int(static_cast<std::int64_t>(r.completions))});
  table.add_row({"spillovers",
                 TextTable::fmt_int(static_cast<std::int64_t>(r.spillovers))});
  table.add_row({"fan-in invariant", r.fan_in_ok ? "ok" : "VIOLATED"});
  std::cout << table.render() << "\n";
}

void append_router_json(std::ostringstream& json, const std::string& key,
                        std::int64_t shards, const RouterRunResult& r) {
  const Histogram& latency = r.load.measure.latency_ms;
  json << "  \"" << key << "\": {\n"
       << "    \"shards\": " << shards << ",\n"
       << "    \"requests_ok\": " << r.requests() << ",\n"
       << "    \"requests_failed\": " << r.errors() << ",\n"
       << "    \"warmup_requests\": " << r.warmup_requests() << ",\n"
       << "    \"wall_seconds\": " << r.load.measure.window_seconds() << ",\n"
       << "    \"throughput_rps\": " << r.throughput_rps() << ",\n"
       << "    \"spillovers\": " << r.spillovers << ",\n"
       << "    \"shard_requests\": [";
  for (std::size_t i = 0; i < r.shard_requests.size(); ++i)
    json << (i ? ", " : "") << r.shard_requests[i];
  json << "],\n"
       << "    \"latency_ms\": {\n"
       << "      \"mean\": " << latency.mean() << ",\n"
       << "      \"p50\": " << latency.quantile(0.5) << ",\n"
       << "      \"p95\": " << latency.quantile(0.95) << ",\n"
       << "      \"p99\": " << latency.quantile(0.99) << ",\n"
       << "      \"max\": " << latency.max() << "\n"
       << "    }\n"
       << "  }";
}

/// --router entry point: 1-shard baseline then the N-shard fleet over the
/// same tenantized workload; writes the comparison to `bench_out`.
int run_router_mode(std::int64_t shard_count, std::int64_t jobs_per_client,
                    std::int64_t client_count, std::uint64_t warmup_count,
                    const std::string& metrics_out,
                    const std::string& bench_out) {
  print_experiment_header(
      "rpc_sharded",
      "ShardRouter loopback: one scheduler vs " +
          std::to_string(shard_count) +
          " consistent-hash shards over the same " +
          std::to_string(kTotalMachines) + "-machine fleet");

  std::vector<WorkloadTrace> traces(static_cast<std::size_t>(client_count));
  for (std::size_t c = 0; c < traces.size(); ++c) {
    TraceSpec spec;
    spec.job_count = static_cast<std::int32_t>(jobs_per_client);
    spec.parallel_fraction = 0.2;
    spec.mean_interarrival = 2.0 * static_cast<Real>(client_count);
    spec.seed = 1000 + c;
    traces[c] = generate_trace(spec);
  }
  tenantize(traces);

  RouterRunResult single;
  RouterRunResult sharded;
  if (!run_router_config(1, traces, warmup_count, "", single)) return 1;
  if (!run_router_config(shard_count, traces, warmup_count, metrics_out,
                         sharded))
    return 1;

  print_router_table("1 shard", single);
  print_router_table(std::to_string(shard_count) + " shards", sharded);

  double speedup = single.throughput_rps() > 0.0
                       ? sharded.throughput_rps() / single.throughput_rps()
                       : 0.0;
  std::cout << "sharded speedup vs single shard: "
            << TextTable::fmt(speedup, 2) << "x\n";

  if (!bench_out.empty()) {
    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(4);
    json << "{\n"
         << "  \"bench\": \"rpc_sharded\",\n"
         << "  \"mode\": \"closed\",\n"
         << "  \"clients\": " << client_count << ",\n"
         << "  \"jobs_per_client\": " << jobs_per_client << ",\n"
         << "  \"tenants\": " << kTenants << ",\n"
         << "  \"total_machines\": " << kTotalMachines << ",\n";
    append_router_json(json, "single_shard", 1, single);
    json << ",\n";
    append_router_json(json, "sharded", shard_count, sharded);
    json << ",\n"
         << "  \"speedup_vs_single_shard\": " << speedup << ",\n"
         << "  \"fan_in_invariant_ok\": "
         << (single.fan_in_ok && sharded.fan_in_ok ? "true" : "false") << "\n"
         << "}\n";
    if (write_text_file(bench_out, json.str()))
      std::cout << "wrote " << bench_out << "\n";
  }

  bool clean = single.fan_in_ok && sharded.fan_in_ok &&
               single.errors() == 0 && sharded.errors() == 0 &&
               single.completions ==
                   single.requests() + single.warmup_requests() &&
               sharded.completions ==
                   sharded.requests() + sharded.warmup_requests();
  return clean ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  std::int64_t scale = args.get_int("scale", 1);
  std::int64_t jobs_per_client = args.get_int("jobs", 100) * scale;
  std::int64_t client_count = args.get_int("clients", 2);
  // Per-client warm-up: the first N requests of every client thread warm
  // the connection, the oracle cache and the scheduler before measurement
  // starts. They run, they are counted, they never reach the histograms.
  std::int64_t warmup = args.get_int("warmup", 5);
  if (warmup < 0 || warmup >= jobs_per_client) {
    std::cerr << "rpc_loopback: need 0 <= --warmup < --jobs\n";
    return 1;
  }
  std::uint64_t warmup_count = static_cast<std::uint64_t>(warmup);
  std::string trace_out = args.get_string("trace-out", "");
  std::string metrics_out = args.get_string("metrics-out", "");

  if (args.has("router")) {
    // Sharded comparison mode: separate default bench-out so the single-
    // scheduler baseline JSON is never clobbered by a router run.
    return run_router_mode(args.get_int("shards", 4), jobs_per_client,
                           client_count, warmup_count, metrics_out,
                           args.get_string("bench-out",
                                           "BENCH_rpc_sharded.json"));
  }

  std::string bench_out =
      args.get_string("bench-out", "BENCH_rpc_loopback.json");

  if (!trace_out.empty()) Tracer::global().set_enabled(true);

  print_experiment_header(
      "rpc_loopback",
      "RPC front-end loopback latency/throughput (transport + scheduler "
      "thread handoff, virtual-time mode)");

  ServerOptions server_options;
  server_options.port = 0;  // ephemeral
  server_options.worker_threads =
      static_cast<std::size_t>(std::max<std::int64_t>(client_count, 1));
  server_options.service.wall_clock = false;
  server_options.service.scheduler.cores = 4;
  server_options.service.scheduler.machines = 8;
  server_options.service.scheduler.admission.every_k = 4;
  server_options.service.scheduler.cache_compaction_jobs = 16;
  server_options.service.scheduler.log_process_finish = false;

  CoschedServer server(server_options);
  std::string error;
  if (!server.start(error)) {
    std::cerr << "rpc_loopback: " << error << "\n";
    return 1;
  }

  std::vector<WorkloadTrace> traces(static_cast<std::size_t>(client_count));
  for (std::size_t c = 0; c < traces.size(); ++c) {
    TraceSpec spec;
    spec.job_count = static_cast<std::int32_t>(jobs_per_client);
    spec.parallel_fraction = 0.2;
    // Spread arrivals so the aggregate offered load stays around half the
    // fleet regardless of the client count.
    spec.mean_interarrival = 2.0 * static_cast<Real>(client_count);
    spec.seed = 1000 + c;
    traces[c] = generate_trace(spec);
  }

  ClientLoad all = drive_all(server.port(), traces, warmup_count);

  DrainResponse drained;
  {
    ClientOptions options;
    options.port = server.port();
    CoschedClient client(options);
    RpcError drain_error = client.drain(drained);
    if (!drain_error.ok()) {
      std::cerr << "rpc_loopback: drain: " << drain_error.describe() << "\n";
      return 1;
    }
  }

  if (!metrics_out.empty()) {
    std::string exposition =
        http_get(server_options.host, server.http_port(), "/metrics");
    if (exposition.empty())
      std::cerr << "rpc_loopback: GET /metrics failed\n";
    else if (write_text_file(metrics_out, exposition))
      std::cout << "wrote " << metrics_out << "\n";
  }

  ServerStats stats = server.stats();
  server.stop();

  BenchReport report;
  report.bench = "rpc_loopback";
  report.mode = "closed";
  report.deployment = "single";
  report.clients = client_count;
  report.jobs_per_client = jobs_per_client;
  report.requests_ok = all.measure.requests;
  report.requests_failed = all.warmup.errors + all.measure.errors;
  report.warmup_requests = all.warmup.requests + all.warmup.errors;
  report.achieved_rps =
      all.measure.window_seconds() > 0.0
          ? static_cast<double>(all.measure.requests) /
                all.measure.window_seconds()
          : 0.0;
  report.wall_seconds = all.measure.window_seconds();
  report.latency = LatencySummary::from(all.measure.latency_ms);

  TextTable table({"metric", "value"});
  table.add_row({"clients", TextTable::fmt_int(client_count)});
  table.add_row({"requests measured",
                 TextTable::fmt_int(
                     static_cast<std::int64_t>(report.requests_ok))});
  table.add_row({"warm-up requests (excluded)",
                 TextTable::fmt_int(
                     static_cast<std::int64_t>(report.warmup_requests))});
  table.add_row({"requests failed",
                 TextTable::fmt_int(
                     static_cast<std::int64_t>(report.requests_failed))});
  table.add_row({"measure window s", TextTable::fmt(report.wall_seconds, 3)});
  table.add_row({"throughput req/s", TextTable::fmt(report.achieved_rps, 1)});
  table.add_row({"latency mean ms", TextTable::fmt(report.latency.mean, 3)});
  table.add_row({"latency p50 ms", TextTable::fmt(report.latency.p50, 3)});
  table.add_row({"latency p95 ms", TextTable::fmt(report.latency.p95, 3)});
  table.add_row({"latency p99 ms", TextTable::fmt(report.latency.p99, 3)});
  table.add_row({"latency max ms", TextTable::fmt(report.latency.max, 3)});
  table.add_row({"jobs completed",
                 TextTable::fmt_int(static_cast<std::int64_t>(
                     drained.completions))});
  table.add_row({"server frames rejected",
                 TextTable::fmt_int(static_cast<std::int64_t>(
                     stats.malformed_frames))});
  std::cout << table.render() << "\n";
  write_csv(args.get_string("out", "results"), "rpc_loopback", table);

  if (!trace_out.empty()) {
    if (Tracer::global().write_chrome_json(trace_out))
      std::cout << "wrote " << trace_out << "\n";
  }

  if (!bench_out.empty()) {
    if (write_text_file(bench_out, report.to_json()))
      std::cout << "wrote " << bench_out << "\n";
  }

  std::uint64_t all_ok = all.warmup.requests + all.measure.requests;
  return drained.completions == all_ok && report.requests_failed == 0 ? 0 : 1;
}
