// Google-benchmark microbenches for the library's hot paths: the
// degradation oracles, node evaluation, candidate generation, cache
// simulation, the SDC merge, and small end-to-end solves.
#include <benchmark/benchmark.h>

#include "astar/search.hpp"
#include "cache/lru_cache_sim.hpp"
#include "cache/sdc_model.hpp"
#include "core/builders.hpp"
#include "core/node_eval.hpp"
#include "graph/node_enumerator.hpp"
#include "ip/ip_model.hpp"
#include "ip/branch_and_bound.hpp"
#include "vm/hungarian.hpp"
#include "vm/migration.hpp"
#include "baseline/random_schedule.hpp"
#include "util/rng.hpp"

namespace {

using namespace cosched;

Problem make_problem(std::int32_t jobs, std::uint32_t cores) {
  SyntheticProblemSpec spec;
  spec.cores = cores;
  spec.serial_jobs = jobs;
  spec.seed = 7;
  return build_synthetic_problem(spec);
}

void BM_SyntheticOracle(benchmark::State& state) {
  Problem p = make_problem(64, 4);
  ProcessId co[3] = {1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.full_model->degradation(0, co));
  }
}
BENCHMARK(BM_SyntheticOracle);

void BM_SdcOracle(benchmark::State& state) {
  SdcSyntheticSpec spec;
  spec.cores = 4;
  spec.serial_jobs = 16;
  Problem p = build_sdc_synthetic_problem(spec);
  ProcessId co[3] = {1, 2, 3};
  // First call memoizes; steady state measures the memo hit path.
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.full_model->degradation(0, co));
  }
}
BENCHMARK(BM_SdcOracle);

void BM_NodeWeight(benchmark::State& state) {
  Problem p = make_problem(64, 4);
  NodeEvaluator eval(p, *p.full_model);
  std::vector<ProcessId> node{0, 5, 17, 40};
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.weight(node));
  }
}
BENCHMARK(BM_NodeWeight);

void BM_LruCacheAccess(benchmark::State& state) {
  LruCacheSim sim(CacheConfig{64, 16, 128});
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.access(line));
    line = (line * 2862933555777941757ULL + 3037000493ULL) % 4096;
  }
}
BENCHMARK(BM_LruCacheAccess);

void BM_SdcCompete(benchmark::State& state) {
  StackDistanceProfile a({9, 8, 7, 6, 5, 4, 4, 3, 3, 2, 2, 2, 1, 1, 1, 1},
                         20);
  StackDistanceProfile b = a.scaled(0.7);
  StackDistanceProfile c = a.scaled(1.4);
  StackDistanceProfile d = a.scaled(0.2);
  std::vector<const StackDistanceProfile*> profiles{&a, &b, &c, &d};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdc_compete(profiles));
  }
}
BENCHMARK(BM_SdcCompete);

void BM_KBestExact(benchmark::State& state) {
  Problem p = make_problem(static_cast<std::int32_t>(state.range(0)), 4);
  NodeEvaluator eval(p, *p.full_model);
  std::vector<ProcessId> pool;
  for (ProcessId q = 1; q < p.n(); ++q) pool.push_back(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k_best_valid_nodes(
        eval, 0, pool, 4, p.machine_count(),
        CandidateSelection::ExactSort));
  }
}
BENCHMARK(BM_KBestExact)->Arg(16)->Arg(24)->Arg(32);

void BM_KBestSurrogate(benchmark::State& state) {
  Problem p = make_problem(static_cast<std::int32_t>(state.range(0)), 4);
  NodeEvaluator eval(p, *p.full_model);
  std::vector<ProcessId> pool;
  for (ProcessId q = 1; q < p.n(); ++q) pool.push_back(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k_best_valid_nodes(
        eval, 0, pool, 4, p.machine_count(),
        CandidateSelection::SurrogateHeap));
  }
}
BENCHMARK(BM_KBestSurrogate)->Arg(64)->Arg(128)->Arg(256);

void BM_OaStarSolve(benchmark::State& state) {
  Problem p = make_problem(static_cast<std::int32_t>(state.range(0)), 4);
  for (auto _ : state) {
    auto r = solve_oastar(p);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_OaStarSolve)->Arg(12)->Arg(16)->Unit(
    benchmark::kMillisecond);

void BM_HaStarSolve(benchmark::State& state) {
  Problem p = make_problem(static_cast<std::int32_t>(state.range(0)), 4);
  SearchOptions opt;
  opt.beam_width = p.machine_count();  // uniform beam regime across sizes
  for (auto _ : state) {
    auto r = solve_hastar(p, opt);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_HaStarSolve)->Arg(24)->Arg(48)->Arg(96)->Unit(
    benchmark::kMillisecond);

void BM_Hungarian(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<std::vector<Real>> cost(n, std::vector<Real>(n));
  for (auto& row : cost)
    for (auto& c : row) c = rng.uniform_real(0.0, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_assignment_min(cost));
  }
}
BENCHMARK(BM_Hungarian)->Arg(16)->Arg(64)->Arg(256);

void BM_MinMigrations(benchmark::State& state) {
  Problem p = make_problem(static_cast<std::int32_t>(state.range(0)), 4);
  Rng rng(5);
  Solution a = solve_random(p, rng);
  Solution b = solve_random(p, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_migrations(a, b));
  }
}
BENCHMARK(BM_MinMigrations)->Arg(64)->Arg(256);

void BM_IpRootLp(benchmark::State& state) {
  Problem p = make_problem(12, 4);
  auto model = build_ip_model(p, *p.full_model,
                              Aggregation::MaxPerParallelJob);
  for (auto _ : state) {
    SimplexSolver solver;
    benchmark::DoNotOptimize(solver.solve(model.lp));
  }
}
BENCHMARK(BM_IpRootLp)->Unit(benchmark::kMillisecond);

}  // namespace
