// Table II — "Comparison of IP and OA* for serial and parallel jobs".
//
// MG-Par and LU-Par (2-4 processes each) mixed with SPEC/NPB serial
// programs exactly as the paper lists:
//   8 procs:  MG-Par, LU-Par + applu, art, equake, vpr
//   12 procs: MG-Par, LU-Par + applu, art, ammp, equake, galgel, vpr
//   16 procs: MG-Par, LU-Par + BT, IS, applu, art, ammp, equake, galgel, vpr
#include <iostream>

#include "astar/search.hpp"
#include "core/builders.hpp"
#include "harness/experiment.hpp"
#include "ip/branch_and_bound.hpp"
#include "ip/ip_model.hpp"

using namespace cosched;

namespace {

CatalogProblemSpec mix_spec(std::int32_t total_procs, std::uint32_t cores) {
  CatalogProblemSpec spec;
  spec.cores = cores;
  // Parallel process counts grow with the batch (paper: "varies from 2 to
  // 4"): 2+2 serialless -> at 8 procs use 2+2, at 12 use 3+3, at 16 use 4+4.
  std::int32_t par = total_procs == 8 ? 2 : (total_procs == 12 ? 3 : 4);
  spec.parallel_jobs.push_back({"MG-Par", par, true, 2.0e5});
  spec.parallel_jobs.push_back({"LU-Par", par, true, 2.0e5});
  std::vector<std::string> serial;
  if (total_procs == 8)
    serial = {"applu", "art", "equake", "vpr"};
  else if (total_procs == 12)
    serial = {"applu", "art", "ammp", "equake", "galgel", "vpr"};
  else
    serial = {"BT", "IS", "applu", "art", "ammp", "equake", "galgel", "vpr"};
  spec.serial_programs = std::move(serial);
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  print_experiment_header(
      "Table II (ICPP'15)",
      "IP vs OA*, mixed serial + parallel (PC) jobs, dual & quad core");

  TextTable table({"processes", "dual IP", "dual OA*", "quad IP",
                   "quad OA*"});
  for (std::int32_t procs : {8, 12, 16}) {
    std::vector<std::string> row{TextTable::fmt_int(procs)};
    for (std::uint32_t cores : {2u, 4u}) {
      CatalogProblemSpec spec = mix_spec(procs, cores);
      spec.trace_length =
          static_cast<std::size_t>(args.get_int("trace", 50000));
      Problem p = build_catalog_problem(spec);

      auto model = build_ip_model(p, *p.full_model,
                                  Aggregation::MaxPerParallelJob);
      auto ip = solve_branch_and_bound(model);
      SearchOptions oa_opt;
      oa_opt.dismiss = DismissPolicy::ParetoDominance;  // exact w/ parallel
      auto oa = solve_oastar(p, oa_opt);
      if (!ip.optimal || !oa.found) {
        std::cerr << "solver failure at " << procs << " processes\n";
        return 1;
      }
      Real ip_avg = evaluate_solution(p, ip.solution).average_per_job;
      Real oa_avg = evaluate_solution(p, oa.solution).average_per_job;
      row.push_back(TextTable::fmt(ip_avg, 3));
      row.push_back(TextTable::fmt(oa_avg, 3));
      if (std::abs(ip_avg - oa_avg) > 1e-6) {
        std::cerr << "MISMATCH: IP and OA* disagree\n";
        return 1;
      }
    }
    table.add_row(std::move(row));
  }
  std::cout << table.render();
  std::cout << "\nPaper: identical degradation for IP and OA* in every cell "
               "(Table II),\nverifying OA* optimality on mixed batches.\n";
  write_csv(args.get_string("out-dir", "results"), "table2", table);
  return 0;
}
