// Table III — "Efficiency of different methods on Quad-core machines".
//
// Solving time for 8/12/16 processes in three flavours (se / pe / pc), for
// four MILP configurations (standing in for CPLEX, CBC, SCIP, GLPK — see
// DESIGN.md "Substitutions"), OA*, and O-SVP. The paper's headline — the
// graph search beats general MILP by orders of magnitude, and OA* beats
// O-SVP — is the shape to reproduce; absolute times differ from 2015
// hardware.
#include <iostream>

#include "astar/search.hpp"
#include "core/builders.hpp"
#include "harness/experiment.hpp"
#include "ip/branch_and_bound.hpp"
#include "ip/ip_model.hpp"
#include "util/timer.hpp"
#include "workload/benchmark_catalog.hpp"

using namespace cosched;

namespace {

Problem make_problem(std::int32_t procs, const std::string& flavour,
                     std::size_t trace) {
  CatalogProblemSpec spec;
  spec.cores = 4;
  spec.trace_length = trace;
  std::vector<std::string> serial = npb_serial_names();
  for (const auto& s : spec_serial_names()) serial.push_back(s);
  if (flavour == "se") {
    serial.resize(static_cast<std::size_t>(procs));
    spec.serial_programs = serial;
  } else {
    // Two parallel jobs, remainder serial (Table II's combination style).
    std::int32_t par = procs == 8 ? 2 : (procs == 12 ? 3 : 4);
    bool comm = flavour == "pc";
    spec.parallel_jobs.push_back({comm ? "MG-Par" : "RA", par, comm, 2e5});
    spec.parallel_jobs.push_back({comm ? "LU-Par" : "MCM", par, comm, 2e5});
    serial.resize(static_cast<std::size_t>(procs - 2 * par));
    spec.serial_programs = serial;
  }
  return build_catalog_problem(spec);
}

struct SolverConfig {
  std::string name;
  BnBOptions options;
};

std::vector<SolverConfig> ip_configs(Real time_limit) {
  // Four configurations mirroring the relative spread of the paper's
  // solvers: best-bound + most-fractional is the strongest (CPLEX-like),
  // DFS + first-fractional the weakest (GLPK-like).
  SolverConfig best{"bb-best (CPLEX-like)", {}};
  best.options.node_order = BnBOptions::NodeOrder::BestBound;
  best.options.branch_rule = BnBOptions::BranchRule::MostFractional;

  SolverConfig dfs{"bb-dfs (CBC-like)", {}};
  dfs.options.node_order = BnBOptions::NodeOrder::DepthFirst;
  dfs.options.branch_rule = BnBOptions::BranchRule::MostFractional;

  SolverConfig bestff{"bb-bestff (SCIP-like)", {}};
  bestff.options.node_order = BnBOptions::NodeOrder::BestBound;
  bestff.options.branch_rule = BnBOptions::BranchRule::FirstFractional;

  SolverConfig dfsff{"bb-dfsff (GLPK-like)", {}};
  dfsff.options.node_order = BnBOptions::NodeOrder::DepthFirst;
  dfsff.options.branch_rule = BnBOptions::BranchRule::FirstFractional;

  std::vector<SolverConfig> configs{best, dfs, bestff, dfsff};
  for (auto& c : configs) c.options.time_limit_seconds = time_limit;
  return configs;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  print_experiment_header(
      "Table III (ICPP'15)",
      "Solving time: 4 MILP configs vs OA* vs O-SVP, quad-core");
  const std::size_t trace =
      static_cast<std::size_t>(args.get_int("trace", 50000));
  const Real ip_limit = args.get_real("ip-limit", 20.0);

  auto configs = ip_configs(ip_limit);
  std::vector<std::string> headers{"case"};
  for (const auto& c : configs) headers.push_back(c.name);
  headers.push_back("OA*");
  headers.push_back("O-SVP");
  TextTable table(headers);

  for (std::int32_t procs : {8, 12, 16}) {
    for (const std::string& flavour : {"se", "pe", "pc"}) {
      Problem p = make_problem(procs, flavour, trace);
      std::vector<std::string> row{std::to_string(procs) + "(" + flavour +
                                   ")"};

      auto model = build_ip_model(p, *p.full_model,
                                  Aggregation::MaxPerParallelJob);
      Real reference = -1.0;
      for (const auto& cfg : configs) {
        auto result = solve_branch_and_bound(model, cfg.options);
        std::string cell = TextTable::fmt(result.seconds, 3);
        if (!result.optimal) cell += " (limit)";
        if (result.optimal) {
          if (reference < 0) reference = result.objective;
          else if (std::abs(reference - result.objective) > 1e-6) {
            std::cerr << "MISMATCH between IP configs\n";
            return 1;
          }
        }
        row.push_back(std::move(cell));
      }

      SearchOptions oa_opt;
      oa_opt.dismiss = DismissPolicy::ParetoDominance;
      WallTimer t1;
      auto oa = solve_oastar(p, oa_opt);
      row.push_back(TextTable::fmt(t1.seconds(), 4));

      SearchOptions osvp_opt;
      osvp_opt.dismiss = DismissPolicy::ParetoDominance;
      WallTimer t2;
      auto osvp = solve_osvp(p, osvp_opt);
      row.push_back(TextTable::fmt(t2.seconds(), 4));

      if (!oa.found || !osvp.found ||
          std::abs(oa.objective - osvp.objective) > 1e-9 ||
          (reference >= 0 && std::abs(reference - oa.objective) > 1e-6)) {
        std::cerr << "OPTIMALITY MISMATCH in case " << row[0] << "\n";
        return 1;
      }
      table.add_row(std::move(row));
    }
  }
  std::cout << table.render();
  std::cout << "\nPaper shape: every MILP column is orders of magnitude "
               "slower than OA*;\nOA* is consistently faster than O-SVP "
               "(Table III).\n";
  write_csv(args.get_string("out-dir", "results"), "table3", table);
  return 0;
}
