// Ablation (beyond the paper): the dismissal policy with parallel jobs.
//
// DESIGN.md §3 notes that the paper's per-process-set min-distance
// dismissal (Theorem 1) is not exact once parallel jobs introduce
// max-aggregation. This bench quantifies the gap between
// DismissPolicy::PaperMinDistance and the exact ParetoDominance mode over
// random PE mixes, alongside the cost (visited paths) of exactness.
#include <iostream>

#include "astar/search.hpp"
#include "core/builders.hpp"
#include "harness/experiment.hpp"

using namespace cosched;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  print_experiment_header(
      "Ablation (this work)",
      "Paper min-distance dismissal vs exact Pareto dismissal, PE mixes");
  const std::int64_t trials = args.get_int("trials", 20);

  TextTable table({"seed", "paper obj", "pareto obj", "gap %",
                   "paper paths", "pareto paths"});
  int suboptimal = 0;
  Real worst_gap = 0.0;
  for (std::int64_t seed = 1; seed <= trials; ++seed) {
    SyntheticProblemSpec spec;
    spec.cores = 2;
    spec.serial_jobs = 5;
    spec.parallel_job_sizes = {3, 2};
    spec.seed = static_cast<std::uint64_t>(seed);
    Problem p = build_synthetic_problem(spec);

    SearchOptions paper;
    paper.dismiss = DismissPolicy::PaperMinDistance;
    SearchOptions pareto;
    pareto.dismiss = DismissPolicy::ParetoDominance;
    auto r_paper = solve_oastar(p, paper);
    auto r_pareto = solve_oastar(p, pareto);
    if (!r_paper.found || !r_pareto.found) {
      std::cerr << "search failed\n";
      return 1;
    }
    if (r_paper.objective < r_pareto.objective - 1e-9) {
      std::cerr << "BUG: paper dismissal beat the exact optimum\n";
      return 1;
    }
    Real gap = (r_paper.objective - r_pareto.objective) /
               r_pareto.objective * 100.0;
    if (gap > 1e-6) ++suboptimal;
    worst_gap = std::max(worst_gap, gap);
    table.add_row(
        {TextTable::fmt_int(seed), TextTable::fmt(r_paper.objective, 4),
         TextTable::fmt(r_pareto.objective, 4), TextTable::fmt(gap, 2),
         TextTable::fmt_int(
             static_cast<std::int64_t>(r_paper.stats.visited_paths)),
         TextTable::fmt_int(
             static_cast<std::int64_t>(r_pareto.stats.visited_paths))});
  }
  std::cout << table.render();
  std::cout << "\nFinding: the paper's dismissal returned a suboptimal "
               "schedule on " << suboptimal << "/" << trials
            << " instances (worst gap " << TextTable::fmt(worst_gap, 2)
            << "%); Pareto dismissal is exact at the cost of a larger "
               "priority list.\n";
  write_csv(args.get_string("out-dir", "results"), "ablation_dismissal",
            table);
  return 0;
}
