// benchmark_app: the production load-generation driver (src/loadgen).
//
// One tool for every speed claim: open-loop (Poisson/uniform arrivals,
// bounded async in-flight depth, late-send accounting) and closed-loop
// (N streams + think time) generation, warm-up/measure/cool-down phases,
// heavy-tailed and diurnal workload shapes, tenant key mixes for the shard
// ring, a BENCH_*.json report sharing the rpc_loopback schema, an SLO gate
// and a baseline regression gate. Replaces the measurement half of the old
// rpc_loopback/rpc_soak split.
//
//   # open loop, 20 rps Poisson offered at depth 8 against the embedded
//   # single-scheduler deployment; first 20 requests are warm-up
//   ./benchmark_app --mode open --rate 20 --requests 200 --depth 8 --warmup 20
//
//   # closed loop, 4 streams, sharded deployment, heavy-tailed sizes
//   ./benchmark_app --mode closed --streams 4 --router --shards 4
//                   --shape pareto --tenant-skew 1.1
//
//   # CI gates: absolute SLO budgets and a committed-baseline comparison
//   ./benchmark_app --slo slo.json --compare BENCH_rpc_loopback.json
//                   --tolerance 0.25
//
//   # drive an external deployment (e.g. the multi-process RemoteShard
//   # smoke) and assert the router's metric fan-in over 2 shards
//   ./benchmark_app --connect 127.0.0.1:7733 --expect-shards 2
//
// Hint presets (--hint latency|throughput) pick the concurrency and the
// embedded scheduler's admission batching the way OpenVINO's benchmark_app
// picks stream counts: latency = depth/streams 1 + replan every arrival,
// throughput = depth/streams 8 + every-8 batching. Explicit flags override
// the preset.
//
// Exit codes: 0 ok; 1 infrastructure/correctness failure (errors, lost
// completions, fan-in violation); 2 SLO budget violated; 3 baseline
// regression; 4 --fail-on-alert and the deployment's SLO watchdog fired
// during the run.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "loadgen/arrival.hpp"
#include "loadgen/report.hpp"
#include "loadgen/runner.hpp"
#include "loadgen/shapes.hpp"
#include "loadgen/slo.hpp"
#include "obs/http.hpp"
#include "obs/log.hpp"
#include "obs/profiler.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "shard/router.hpp"
#include "shard/router_server.hpp"

namespace {

using namespace cosched;

/// The deployment under test: an embedded single CoschedServer, an embedded
/// RouterServer over local shards, or an external address (--connect).
struct Deployment {
  std::string kind = "single";  ///< single | router | remote
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint16_t http_port = 0;     ///< 0 = no scrapeable side door
  std::int64_t expect_shards = 0;  ///< > 0: assert the metric fan-in

  std::unique_ptr<CoschedServer> single;
  std::unique_ptr<ShardRouter> router;
  std::unique_ptr<RouterServer> router_server;

  void stop() {
    if (router_server) router_server->stop();
    if (single) single->stop();
  }
};

bool split_host_port(const std::string& address, std::string& host,
                     std::uint16_t& port) {
  std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon + 1 >= address.size()) return false;
  host = address.substr(0, colon);
  int p = std::atoi(address.c_str() + colon + 1);
  if (p <= 0 || p > 65535) return false;
  port = static_cast<std::uint16_t>(p);
  return true;
}

/// The router's Σ promise, checked through the front door: every fleet
/// total equals the sum of its per-shard entries, the routed request count
/// equals what this run submitted, and nothing was lost before drain.
/// Fleet totals must equal the shard sums, and this run's share of them —
/// everything past `baseline_requests` (what the deployment had already
/// served when benchmark_app attached) — must match what the runner
/// submitted. Keeps the invariant meaningful against a --connect deployment
/// with prior traffic (e.g. a correlated tracing batch in the smoke test).
bool fan_in_holds(const MetricsResponse& metrics, std::int64_t expect_shards,
                  std::uint64_t submitted_ok, std::uint64_t completions,
                  std::uint64_t baseline_requests) {
  std::uint64_t sum_requests = 0, sum_arrivals = 0, sum_admissions = 0;
  std::uint64_t sum_completions = 0, sum_replans = 0, sum_migrations = 0;
  for (const ShardMetricsEntry& entry : metrics.shards) {
    sum_requests += entry.requests;
    sum_arrivals += entry.arrivals;
    sum_admissions += entry.admissions;
    sum_completions += entry.completions;
    sum_replans += entry.replans;
    sum_migrations += entry.migrations;
  }
  return metrics.shards.size() == static_cast<std::size_t>(expect_shards) &&
         metrics.arrivals == sum_arrivals &&
         metrics.admissions == sum_admissions &&
         metrics.completions == sum_completions &&
         metrics.replans == sum_replans &&
         metrics.migrations == sum_migrations &&
         sum_requests == baseline_requests + submitted_ok &&
         metrics.completions == completions;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);

  // ---- hint presets (explicit flags override) ---------------------------
  std::string hint = args.get_string("hint", "");
  std::int64_t default_concurrency = 4;
  std::int64_t default_every_k = 4;
  if (hint == "latency") {
    default_concurrency = 1;
    default_every_k = 1;
  } else if (hint == "throughput") {
    default_concurrency = 8;
    default_every_k = 8;
  } else if (!hint.empty()) {
    std::cerr << "benchmark_app: unknown --hint " << hint
              << " (latency|throughput)\n";
    return 1;
  }

  // Structured logging: --log-level debug|info|warn|error|off filters the
  // global logger (the embedded deployment's scheduler shares it), --log-json
  // 1 switches to JSON lines, --log-out FILE appends accepted records.
  {
    std::string level_text = args.get_string("log-level", "warn");
    LogLevel level = LogLevel::Warn;
    if (!parse_log_level(level_text, level))
      std::cerr << "benchmark_app: unknown --log-level '" << level_text
                << "' (want debug|info|warn|error|off)\n";
    Logger::global().set_level(level);
    Logger::global().set_json(args.get_int("log-json", 0) != 0);
    std::string log_out = args.get_string("log-out", "");
    if (!log_out.empty()) Logger::global().set_sink_path(log_out);
  }

  // ---- SLO watchdog configuration ----------------------------------------
  // Embedded deployments run the servers' alert engine (--alerts 0 turns it
  // off); --alert-rules FILE replaces the default burn-rate guards, --slo
  // FILE points them at that budget's p95, --tsdb-* size the store, and
  // --fail-on-alert 1 makes the run exit 4 when the watchdog fired.
  bool alerts_on = args.get_int("alerts", 1) != 0;
  bool fail_on_alert = args.get_int("fail-on-alert", 0) != 0;
  AlertEngineOptions alert_options;
  alert_options.scrape_interval_seconds = args.get_real("tsdb-interval", 1.0);
  alert_options.tsdb.raw_capacity =
      static_cast<std::size_t>(args.get_int("tsdb-raw", 600));
  alert_options.tsdb.max_series =
      static_cast<std::size_t>(args.get_int("tsdb-series", 1024));
  double alert_budget_ms = 900.0;
  {
    std::string rules_path = args.get_string("alert-rules", "");
    if (!rules_path.empty()) {
      std::string rules_error;
      if (!load_alert_rules(rules_path, alert_options.rules, rules_error)) {
        std::cerr << "benchmark_app: --alert-rules: " << rules_error << "\n";
        return 1;
      }
    }
    std::string slo_path = args.get_string("slo", "");
    if (!slo_path.empty()) {
      SloBudget budget;
      std::string slo_error;
      if (!load_slo_budget(slo_path, budget, slo_error)) {
        std::cerr << "benchmark_app: --slo: " << slo_error << "\n";
        return 1;
      }
      if (budget.p95_ms > 0.0) alert_budget_ms = budget.p95_ms;
    }
  }

  // ---- generator configuration ------------------------------------------
  std::string mode_name = args.get_string("mode", "open");
  if (mode_name != "open" && mode_name != "closed") {
    std::cerr << "benchmark_app: unknown --mode " << mode_name
              << " (open|closed)\n";
    return 1;
  }
  LoadMode mode = mode_name == "open" ? LoadMode::Open : LoadMode::Closed;
  std::int64_t requests = args.get_int("requests", 200);
  std::int64_t warmup = args.get_int("warmup", requests / 10);
  std::int64_t cooldown = args.get_int("cooldown", 0);
  if (requests <= 0 || warmup < 0 || cooldown < 0 ||
      warmup + cooldown >= requests) {
    std::cerr << "benchmark_app: need warmup + cooldown < requests\n";
    return 1;
  }

  RunnerOptions runner_options;
  runner_options.mode = mode;
  runner_options.concurrency = static_cast<std::size_t>(
      mode == LoadMode::Open
          ? args.get_int("depth", default_concurrency)
          : args.get_int("streams", default_concurrency));
  runner_options.think_seconds = args.get_real("think-ms", 0.0) / 1000.0;
  runner_options.warmup = static_cast<std::uint64_t>(warmup);
  runner_options.cooldown = static_cast<std::uint64_t>(cooldown);
  // Simulated fleet load, decoupled from the RPC request rate: 0.5 jobs
  // per virtual second is the aggregate rate rpc_loopback has always
  // offered its 8-machine fleet (~27% utilization at mean work 17.5).
  runner_options.virtual_rate = args.get_real("virtual-rate", 0.5);
  if (runner_options.concurrency < 1) {
    std::cerr << "benchmark_app: need --depth/--streams >= 1\n";
    return 1;
  }

  ArrivalSpec arrival;
  arrival.rate_rps = args.get_real("rate", 20.0);
  arrival.count = static_cast<std::int32_t>(requests);
  arrival.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  std::string arrival_name = args.get_string("arrival", "poisson");
  if (arrival_name == "poisson") {
    arrival.process = ArrivalProcess::Poisson;
  } else if (arrival_name == "uniform") {
    arrival.process = ArrivalProcess::Uniform;
  } else {
    std::cerr << "benchmark_app: unknown --arrival " << arrival_name
              << " (poisson|uniform)\n";
    return 1;
  }
  Real diurnal_period = args.get_real("diurnal-period", 0.0);
  if (diurnal_period > 0.0) {
    arrival.diurnal.enabled = true;
    arrival.diurnal.period_seconds = diurnal_period;
    arrival.diurnal.amplitude = args.get_real("diurnal-amplitude", 0.6);
  }

  ShapeSpec shape;
  std::string shape_name = args.get_string("shape", "uniform");
  if (shape_name == "uniform") {
    shape.size = SizeDistribution::Uniform;
  } else if (shape_name == "pareto") {
    shape.size = SizeDistribution::Pareto;
    shape.pareto_shape = args.get_real("pareto-shape", 1.5);
    shape.pareto_scale = args.get_real("pareto-scale", 5.0);
  } else {
    std::cerr << "benchmark_app: unknown --shape " << shape_name
              << " (uniform|pareto)\n";
    return 1;
  }
  shape.parallel_fraction = args.get_real("parallel", 0.2);
  shape.tenants = static_cast<std::int32_t>(args.get_int("tenants", 32));
  shape.tenant_skew = args.get_real("tenant-skew", 0.0);
  shape.seed = arrival.seed + 0x10AD;  // decorrelate sizes from arrivals

  // ---- deployment under test --------------------------------------------
  print_experiment_header(
      "benchmark_app",
      "unified load generator: " + mode_name + " loop, " +
          std::string(to_string(arrival.process)) + " arrivals, " +
          shape_name + " sizes");

  Deployment deployment;
  std::string connect = args.get_string("connect", "");
  std::int64_t shards = args.get_int("shards", 4);
  std::int64_t machines = args.get_int("machines", 8);
  if (!connect.empty()) {
    deployment.kind = "remote";
    if (!split_host_port(connect, deployment.host, deployment.port)) {
      std::cerr << "benchmark_app: bad --connect " << connect
                << " (want host:port)\n";
      return 1;
    }
    deployment.expect_shards = args.get_int("expect-shards", 0);
  } else if (args.has("router")) {
    deployment.kind = "router";
    deployment.expect_shards = args.get_int("expect-shards", shards);
    RouterOptions router_options;
    router_options.shard_timeout_seconds = 300.0;  // per-shard drain budget
    deployment.router = std::make_unique<ShardRouter>(router_options);
    for (std::int64_t s = 0; s < shards; ++s) {
      LiveServiceOptions service;
      service.wall_clock = false;
      service.scheduler.cores =
          static_cast<std::uint32_t>(args.get_int("cores", 4));
      service.scheduler.machines = static_cast<std::int32_t>(
          std::max<std::int64_t>(1, machines / shards));
      service.scheduler.admission.every_k =
          static_cast<std::int32_t>(args.get_int("every-k", default_every_k));
      service.scheduler.cache_compaction_jobs = 16;
      service.scheduler.log_process_finish = false;
      deployment.router->add_local_shard(service);
    }
    RouterServerOptions options;
    options.port = 0;
    options.worker_threads =
        std::max<std::size_t>(runner_options.concurrency, 2);
    options.request_deadline_seconds = 300.0;  // drain outlives 10 s easily
    options.enable_alerts = alerts_on;
    options.alerts = alert_options;
    options.alert_budget_ms = alert_budget_ms;
    deployment.router_server =
        std::make_unique<RouterServer>(*deployment.router, options);
    std::string error;
    if (!deployment.router_server->start(error)) {
      std::cerr << "benchmark_app: router start: " << error << "\n";
      return 1;
    }
    deployment.port = deployment.router_server->port();
    deployment.http_port = deployment.router_server->http_port();
  } else {
    ServerOptions options;
    options.port = 0;
    options.worker_threads =
        std::max<std::size_t>(runner_options.concurrency, 2);
    options.request_deadline_seconds = 300.0;  // drain outlives 10 s easily
    options.enable_alerts = alerts_on;
    options.alerts = alert_options;
    options.alert_budget_ms = alert_budget_ms;
    options.service.wall_clock = false;
    options.service.scheduler.cores =
        static_cast<std::uint32_t>(args.get_int("cores", 4));
    options.service.scheduler.machines =
        static_cast<std::int32_t>(machines);
    options.service.scheduler.admission.every_k =
        static_cast<std::int32_t>(args.get_int("every-k", default_every_k));
    options.service.scheduler.cache_compaction_jobs = 16;
    options.service.scheduler.log_process_finish = false;
    deployment.single = std::make_unique<CoschedServer>(options);
    std::string error;
    if (!deployment.single->start(error)) {
      std::cerr << "benchmark_app: server start: " << error << "\n";
      return 1;
    }
    deployment.port = deployment.single->port();
    deployment.http_port = deployment.single->http_port();
  }
  runner_options.host = deployment.host;
  runner_options.port = deployment.port;

  // An external deployment may have served traffic before we attached;
  // snapshot its counters so the post-run accounting works on deltas. The
  // final drain completes that earlier backlog along with ours, so the
  // completions check is anchored on prior arrivals, not prior completions.
  std::uint64_t baseline_requests = 0, baseline_arrivals = 0;
  if (deployment.kind == "remote") {
    ClientOptions client_options;
    client_options.host = deployment.host;
    client_options.port = deployment.port;
    CoschedClient client(client_options);
    MetricsResponse before;
    if (client.get_metrics(before).ok()) {
      baseline_arrivals = before.arrivals;
      for (const ShardMetricsEntry& entry : before.shards)
        baseline_requests += entry.requests;
      if (before.shards.empty()) baseline_requests = before.arrivals;
    }
  }

  // ---- generate and run --------------------------------------------------
  std::vector<TraceJob> jobs =
      build_jobs(shape, static_cast<std::int32_t>(requests));
  std::vector<Real> schedule;
  if (mode == LoadMode::Open) schedule = build_arrival_schedule(arrival);

  LoadRunner runner(runner_options);
  LoadResult result = runner.run(jobs, schedule);

  // ---- drain, completions, fan-in ----------------------------------------
  int exit_code = 0;
  std::uint64_t completions = 0;
  {
    ClientOptions client_options;
    client_options.host = deployment.host;
    client_options.port = deployment.port;
    // Drain blocks until the whole backlog has run; give it minutes, not
    // the per-request seconds, and never retry it (a second drain arriving
    // while the first is mid-flight just queues more work).
    client_options.request_timeout_seconds = args.get_real("drain-timeout", 300.0);
    client_options.max_attempts = 1;
    CoschedClient client(client_options);
    DrainResponse drained;
    RpcError drain_error = client.drain(drained);
    if (!drain_error.ok()) {
      std::cerr << "benchmark_app: drain: " << drain_error.describe() << "\n";
      deployment.stop();
      return 1;
    }
    completions = drained.completions;

    if (deployment.expect_shards > 0) {
      MetricsResponse metrics;
      RpcError metrics_error = client.get_metrics(metrics);
      if (!metrics_error.ok() ||
          !fan_in_holds(metrics, deployment.expect_shards,
                        result.total_requests(), completions,
                        baseline_requests)) {
        std::cerr << "benchmark_app: metric fan-in VIOLATED ("
                  << metrics.shards.size() << " shards reported)\n";
        exit_code = 1;
      } else {
        std::cout << "fan-in invariant ok across " << metrics.shards.size()
                  << " shards\n";
      }
    }
  }

  if (completions - baseline_arrivals != result.total_requests()) {
    std::cerr << "benchmark_app: " << result.total_requests()
              << " accepted submissions but "
              << (completions - baseline_arrivals)
              << " completions after drain\n";
    exit_code = 1;
  }
  if (result.total_errors() != 0) {
    std::cerr << "benchmark_app: " << result.total_errors()
              << " requests failed\n";
    exit_code = 1;
  }

  std::string metrics_out = args.get_string("metrics-out", "");
  if (!metrics_out.empty() && deployment.http_port != 0) {
    std::string exposition =
        http_get(deployment.host, deployment.http_port, "/metrics");
    if (exposition.empty())
      std::cerr << "benchmark_app: GET /metrics failed\n";
    else if (write_text_file(metrics_out, exposition))
      std::cout << "wrote " << metrics_out << "\n";
  }
  // --profile-out FILE: the loaded deployment's collapsed-stack profile.
  // Embedded deployments are scraped through their own /debug/profile side
  // door (exercising the endpoint end to end); without one, fall back to
  // this process's profiler directly.
  std::string profile_out = args.get_string("profile-out", "");
  if (!profile_out.empty()) {
    std::string collapsed;
    if (deployment.http_port != 0)
      collapsed =
          http_get(deployment.host, deployment.http_port, "/debug/profile");
    if (collapsed.empty()) collapsed = Profiler::global().render_collapsed();
    if (write_text_file(profile_out, collapsed))
      std::cout << "wrote " << profile_out << "\n";
  }
  // --fail-on-alert: sample the watchdog before tearing the deployment
  // down. Embedded deployments expose their engine directly (lifetime
  // fired count survives resolution); a --connect deployment answers
  // GetAlerts — rules currently firing or resolved count as fired.
  std::uint64_t alerts_fired = 0;
  std::vector<std::string> fired_rules;
  if (fail_on_alert) {
    AlertEngine* engine = nullptr;
    if (deployment.single) engine = deployment.single->alert_engine();
    if (deployment.router_server)
      engine = deployment.router_server->alert_engine();
    if (engine != nullptr) {
      alerts_fired = engine->fired_total();
      fired_rules = engine->firing_rules();
    } else if (deployment.kind == "remote") {
      ClientOptions client_options;
      client_options.host = deployment.host;
      client_options.port = deployment.port;
      CoschedClient client(client_options);
      AlertsResponse remote;
      if (client.get_alerts(remote).ok()) {
        for (const AlertEntry& entry : remote.alerts) {
          if (entry.state != static_cast<std::uint8_t>(AlertState::Firing) &&
              entry.state != static_cast<std::uint8_t>(AlertState::Resolved))
            continue;
          ++alerts_fired;
          fired_rules.push_back(entry.rule);
        }
      }
    }
  }
  deployment.stop();

  // ---- report ------------------------------------------------------------
  BenchReport report;
  report.bench = "benchmark_app";
  report.mode = mode_name;
  report.deployment = deployment.kind;
  report.clients = static_cast<std::int64_t>(runner_options.concurrency);
  report.requests_ok = result.measure.requests;
  report.requests_failed = result.total_errors();
  report.warmup_requests = result.warmup.requests + result.warmup.errors;
  report.cooldown_requests =
      result.cooldown.requests + result.cooldown.errors;
  report.late_sends = result.measure.late_sends;
  report.max_late_ms = result.measure.max_late_ms;
  report.offered_rps = result.offered_rps;
  report.achieved_rps = result.achieved_rps();
  report.wall_seconds = result.measure.window_seconds();
  report.latency = LatencySummary::from(result.measure.latency_ms);

  TextTable table({"metric", "value"});
  table.add_row({"mode", mode_name + " / " + deployment.kind});
  table.add_row({"concurrency",
                 TextTable::fmt_int(
                     static_cast<std::int64_t>(runner_options.concurrency))});
  table.add_row({"measure requests",
                 TextTable::fmt_int(
                     static_cast<std::int64_t>(report.requests_ok))});
  table.add_row({"warm-up requests (excluded)",
                 TextTable::fmt_int(
                     static_cast<std::int64_t>(report.warmup_requests))});
  table.add_row({"cool-down requests (excluded)",
                 TextTable::fmt_int(
                     static_cast<std::int64_t>(report.cooldown_requests))});
  table.add_row({"requests failed",
                 TextTable::fmt_int(
                     static_cast<std::int64_t>(report.requests_failed))});
  table.add_row({"late sends",
                 TextTable::fmt_int(
                     static_cast<std::int64_t>(report.late_sends))});
  table.add_row({"max lateness ms", TextTable::fmt(report.max_late_ms, 3)});
  table.add_row({"offered req/s", TextTable::fmt(report.offered_rps, 2)});
  table.add_row({"achieved req/s", TextTable::fmt(report.achieved_rps, 2)});
  table.add_row({"measure window s", TextTable::fmt(report.wall_seconds, 3)});
  table.add_row({"latency mean ms", TextTable::fmt(report.latency.mean, 3)});
  table.add_row({"latency p50 ms", TextTable::fmt(report.latency.p50, 3)});
  table.add_row({"latency p95 ms", TextTable::fmt(report.latency.p95, 3)});
  table.add_row({"latency p99 ms", TextTable::fmt(report.latency.p99, 3)});
  table.add_row({"latency max ms", TextTable::fmt(report.latency.max, 3)});
  table.add_row({"jobs completed",
                 TextTable::fmt_int(static_cast<std::int64_t>(completions))});
  std::cout << table.render() << "\n";
  write_csv(args.get_string("out", "results"), "benchmark_app", table);

  std::string bench_out =
      args.get_string("bench-out", "BENCH_benchmark_app.json");
  if (!bench_out.empty()) {
    if (write_text_file(bench_out, report.to_json()))
      std::cout << "wrote " << bench_out << "\n";
  }

  // ---- gates: committed-baseline regression, then absolute SLO -----------
  std::string compare_path = args.get_string("compare", "");
  if (!compare_path.empty()) {
    FlatJson baseline_json;
    std::string error;
    if (!load_flat_json(compare_path, baseline_json, error)) {
      std::cerr << "benchmark_app: --compare: " << error << "\n";
      return 1;
    }
    BaselineStats baseline = extract_baseline(baseline_json);
    if (!baseline.ok) {
      std::cerr << "benchmark_app: --compare: no latency_ms.p95 in "
                << compare_path << "\n";
      return 1;
    }
    Real tolerance = args.get_real("tolerance", 0.25);
    CompareResult compared = compare_to_baseline(report, baseline, tolerance);
    std::cout << "baseline " << compare_path
              << (baseline.source_prefix.empty()
                      ? ""
                      : " (" + baseline.source_prefix + ")")
              << ", tolerance " << TextTable::fmt(tolerance, 2) << ":\n"
              << compared.describe();
    if (!compared.pass) {
      std::cerr << "benchmark_app: REGRESSION vs " << compare_path << "\n";
      if (exit_code == 0) exit_code = 3;
    }
  }

  std::string slo_path = args.get_string("slo", "");
  if (!slo_path.empty()) {
    SloBudget budget;
    std::string error;
    if (!load_slo_budget(slo_path, budget, error)) {
      std::cerr << "benchmark_app: --slo: " << error << "\n";
      return 1;
    }
    SloVerdict verdict = evaluate_slo(budget, report);
    std::cout << "SLO " << slo_path << ":\n" << verdict.describe();
    if (!verdict.pass) {
      std::cerr << "benchmark_app: SLO VIOLATED per " << slo_path << "\n";
      if (exit_code == 0) exit_code = 2;
    }
  }

  // ---- gate: the SLO watchdog itself (--fail-on-alert) -------------------
  if (fail_on_alert && alerts_fired > 0) {
    std::cerr << "benchmark_app: watchdog fired " << alerts_fired
              << " alert(s) during the run:";
    for (const std::string& rule : fired_rules) std::cerr << " " << rule;
    std::cerr << "\n";
    if (exit_code == 0) exit_code = 4;
  }

  return exit_code;
}
