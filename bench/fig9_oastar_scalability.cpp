// Figure 9 — "Scalability of OA*" on dual-core (9a) and quad-core (9b)
// machines as the number of serial processes grows.
#include <iostream>

#include "astar/search.hpp"
#include "core/builders.hpp"
#include "harness/experiment.hpp"
#include "util/timer.hpp"

using namespace cosched;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  print_experiment_header("Figure 9 (ICPP'15)",
                          "OA* solving time vs number of serial processes");
  // Paper sweeps 12..120 (dual) and 12..96 (quad). Defaults stop earlier
  // (--max-dual 120 --max-quad 96 for the full sweep, minutes of runtime).
  const std::int32_t max_dual =
      static_cast<std::int32_t>(args.get_int("max-dual", 72));
  const std::int32_t max_quad =
      static_cast<std::int32_t>(args.get_int("max-quad", 48));
  const Real time_limit = args.get_real("point-limit", 120.0);

  for (auto [cores, max_jobs, fig] :
       {std::tuple{2u, max_dual, "9a"}, std::tuple{4u, max_quad, "9b"}}) {
    TextTable table({"processes", "time (s)", "visited paths", "expanded"});
    for (std::int32_t jobs = 12; jobs <= max_jobs; jobs += 12) {
      SyntheticProblemSpec spec;
      spec.cores = cores;
      spec.serial_jobs = jobs;
      spec.seed = 900 + static_cast<std::uint64_t>(jobs);
      Problem p = build_synthetic_problem(spec);
      SearchOptions opt;
      opt.time_limit_seconds = time_limit;
      opt.max_stats_nodes = 20'000'000;
      WallTimer t;
      auto r = solve_oastar(p, opt);
      double secs = t.seconds();
      std::string time_cell = TextTable::fmt(secs, 3);
      if (r.timed_out) time_cell += " (limit)";
      table.add_row(
          {TextTable::fmt_int(jobs), time_cell,
           TextTable::fmt_int(static_cast<std::int64_t>(
               r.stats.visited_paths)),
           TextTable::fmt_int(static_cast<std::int64_t>(r.stats.expanded))});
      if (r.timed_out) break;  // larger points will only be slower
    }
    std::cout << "\n--- Fig. " << fig << ": " << cores
              << "-core machines ---\n"
              << table.render();
    write_csv(args.get_string("out-dir", "results"),
              std::string("fig") + fig, table);
  }
  std::cout << "\nPaper shape (Fig. 9): solving time grows steeply but "
               "remains tractable\n(seconds-to-minutes) through ~100 "
               "processes; quad-core costs more than dual\nbecause levels "
               "hold C(n-i-1, u-1) nodes.\n";
  return 0;
}
