// Figure 12 — "Comparing the degradation under HA* and PG algorithms" for
// large synthetic batches (paper: 120..1200 jobs) on quad-core (12a) and
// 8-core (12b) machines.
#include <iostream>

#include "astar/search.hpp"
#include "baseline/pg_greedy.hpp"
#include "core/builders.hpp"
#include "harness/experiment.hpp"

using namespace cosched;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  print_experiment_header(
      "Figure 12 (ICPP'15)",
      "HA* vs PG average degradation, large synthetic batches");
  const std::int64_t max_jobs = args.get_int("max-jobs", 480);

  for (auto [cores, fig] : {std::pair{4u, "12a"}, std::pair{8u, "12b"}}) {
    TextTable table({"jobs", "HA*", "PG", "HA* better by"});
    for (std::int32_t jobs : {120, 240, 480, 720, 1200}) {
      if (jobs > max_jobs) break;
      SyntheticProblemSpec spec;
      spec.cores = cores;
      spec.serial_jobs = jobs;
      spec.seed = 1200 + static_cast<std::uint64_t>(jobs) + cores;
      Problem p = build_synthetic_problem(spec);

      auto ha = solve_hastar(p);
      if (!ha.found) {
        std::cerr << "HA* failed at " << jobs << " jobs\n";
        return 1;
      }
      Real ha_avg = evaluate_solution(p, ha.solution).average_per_job;
      Real pg_avg =
          evaluate_solution(p, solve_pg_greedy(p)).average_per_job;
      table.add_row({TextTable::fmt_int(jobs), TextTable::fmt(ha_avg, 4),
                     TextTable::fmt(pg_avg, 4),
                     TextTable::fmt((pg_avg - ha_avg) / pg_avg * 100.0, 1) +
                         "%"});
    }
    std::cout << "\n--- Fig. " << fig << ": " << cores
              << "-core machines ---\n"
              << table.render();
    write_csv(args.get_string("out-dir", "results"),
              std::string("fig") + fig, table);
  }
  std::cout << "\nPaper shape (Fig. 12): HA* beats PG in every cell — by "
               "20-25% on\nquad-core and 16-18% on 8-core machines.\n";
  return 0;
}
