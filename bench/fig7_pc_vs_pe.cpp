// Figure 7 — "Comparing the Degradation obtained by OA*-PC and OA*-PE".
//
// Four MPI jobs (BT-Par, LU-Par, MG-Par, CG-Par) mixed with serial jobs;
// OA*-PE ignores inter-process communication when scheduling, OA*-PC
// models it (Eq. 9). Both schedules are then judged under the full
// communication-combined degradation (CCD).
#include <iostream>

#include "astar/search.hpp"
#include "core/builders.hpp"
#include "harness/experiment.hpp"
#include "workload/benchmark_catalog.hpp"

using namespace cosched;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  print_experiment_header(
      "Figure 7 (ICPP'15)",
      "OA*-PC vs OA*-PE communication-combined degradation");
  // Paper: 11 processes per MPI job. Default 3 keeps the bench fast
  // (--pc-procs 11 for the full setting).
  const std::int32_t pc_procs =
      static_cast<std::int32_t>(args.get_int("pc-procs", 3));

  for (std::uint32_t cores : {4u, 8u}) {
    CatalogProblemSpec spec;
    spec.cores = cores;
    spec.trace_length =
        static_cast<std::size_t>(args.get_int("trace", 50000));
    const Real halo = args.get_real("halo", 1.0e6);
    for (const auto& name : pc_program_names())
      spec.parallel_jobs.push_back({name, pc_procs, true, halo});
    spec.serial_programs = {"UA", "DC", "FT", "IS"};
    Problem p = build_catalog_problem(spec);

    SearchOptions pe;  // comm-blind scheduling (exact; Pareto dismissal)
    pe.use_comm_model = false;
    pe.dismiss = DismissPolicy::ParetoDominance;
    auto r_pe = solve_oastar(p, pe);
    SearchOptions pc;  // comm-aware scheduling
    pc.dismiss = DismissPolicy::ParetoDominance;
    auto r_pc = solve_oastar(p, pc);
    if (!r_pe.found || !r_pc.found) {
      std::cerr << "search failed\n";
      return 1;
    }
    // Judge both under the full model (Eq. 9 + Eq. 13).
    auto ev_pe = evaluate_solution(p, r_pe.solution);
    auto ev_pc = evaluate_solution(p, r_pc.solution);

    TextTable table({"job", "kind", "OA*-PC", "OA*-PE"});
    for (const Job& job : p.batch.jobs()) {
      if (job.kind == JobKind::Imaginary) continue;
      table.add_row({job.name, to_string(job.kind),
                     TextTable::fmt(
                         ev_pc.per_job[static_cast<std::size_t>(job.id)], 3),
                     TextTable::fmt(
                         ev_pe.per_job[static_cast<std::size_t>(job.id)], 3)});
    }
    table.add_row({"AVG", "-", TextTable::fmt(ev_pc.average_per_job, 3),
                   TextTable::fmt(ev_pe.average_per_job, 3)});
    std::cout << "\n--- " << cores << "-core machines ---\n"
              << table.render();
    Real gap = (ev_pe.average_per_job - ev_pc.average_per_job) /
               ev_pc.average_per_job * 100.0;
    std::cout << "OA*-PE average is worse than OA*-PC by "
              << TextTable::fmt(gap, 1)
              << "% (paper: 36.1% quad / 39.5% 8-core)\n";
    write_csv(args.get_string("out-dir", "results"),
              "fig7_" + std::to_string(cores) + "core", table);
  }
  return 0;
}
