// Table IV — "Comparison of the strategies for setting h(v)".
//
// Solving time and visited-path counts for OA* under Strategy 1 vs
// Strategy 2, with O-SVP (h ≡ 0) as the reference, on 16/20/24 synthetic
// serial jobs (quad-core). The paper's shape: Strategy 2 dominates by
// orders of magnitude in both metrics.
#include <iostream>

#include "astar/search.hpp"
#include "core/builders.hpp"
#include "harness/experiment.hpp"
#include "util/timer.hpp"

using namespace cosched;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  print_experiment_header(
      "Table IV (ICPP'15)",
      "h(v) Strategy 1 vs Strategy 2 vs O-SVP: time and visited paths");

  TextTable table({"jobs", "S1 time(s)", "S2 time(s)", "O-SVP time(s)",
                   "S1 paths", "S2 paths", "O-SVP paths"});
  std::int64_t max_jobs = args.get_int("max-jobs", 24);
  const Real point_limit = args.get_real("point-limit", 90.0);
  for (std::int32_t jobs = 16; jobs <= max_jobs; jobs += 4) {
    SyntheticProblemSpec spec;
    spec.landscape = SyntheticLandscape::Smooth;  // the h(v)-pruning regime
    spec.cores = 4;
    spec.serial_jobs = jobs;
    spec.seed = 4242 + static_cast<std::uint64_t>(jobs);
    Problem p = build_synthetic_problem(spec);

    auto run = [&](HeuristicKind h) {
      SearchOptions opt;
      opt.heuristic = h;
      opt.time_limit_seconds = point_limit;
      WallTimer t;
      auto r = solve_oastar(p, opt);
      return std::tuple{t.seconds(), r.stats.visited_paths, r.objective,
                        r.found};
    };
    auto [t1, v1, o1, f1] = run(HeuristicKind::Strategy1);
    auto [t2, v2, o2, f2] = run(HeuristicKind::Strategy2);
    auto [t0, v0, o0, f0] = run(HeuristicKind::None);  // O-SVP
    if (f1 && f2 && std::abs(o1 - o2) > 1e-9) {
      std::cerr << "optimality mismatch across strategies\n";
      return 1;
    }
    if (f0 && f2 && std::abs(o0 - o2) > 1e-9) {
      std::cerr << "optimality mismatch across strategies\n";
      return 1;
    }
    auto cell = [&](double secs, bool found) {
      std::string c = TextTable::fmt(secs, 3);
      if (!found) c += " (limit)";
      return c;
    };
    table.add_row({TextTable::fmt_int(jobs), cell(t1, f1), cell(t2, f2),
                   cell(t0, f0),
                   TextTable::fmt_int(static_cast<std::int64_t>(v1)),
                   TextTable::fmt_int(static_cast<std::int64_t>(v2)),
                   TextTable::fmt_int(static_cast<std::int64_t>(v0))});
  }
  std::cout << table.render();
  std::cout << "\nPaper shape (Table IV): Strategy 2 visits orders of "
               "magnitude fewer paths\nthan Strategy 1, which in turn beats "
               "O-SVP; same optimum everywhere.\n";
  write_csv(args.get_string("out-dir", "results"), "table4", table);
  return 0;
}
