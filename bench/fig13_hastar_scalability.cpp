// Figure 13 — "Scalability of HA* on Quad-core and 8-core machines":
// solving time for 48..1208 synthetic jobs.
//
// The paper's counter-intuitive shape: HA* is FASTER on 8-core machines
// than quad-core, because the MER function n/u caps fewer valid nodes per
// level when u is larger.
#include <iostream>

#include "astar/search.hpp"
#include "core/builders.hpp"
#include "harness/experiment.hpp"
#include "util/timer.hpp"

using namespace cosched;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  print_experiment_header("Figure 13 (ICPP'15)",
                          "HA* solving time vs batch size, quad vs 8-core");
  const std::int64_t max_jobs = args.get_int("max-jobs", 528);
  const Real point_limit = args.get_real("point-limit", 300.0);

  TextTable table({"jobs", "quad time (s)", "8-core time (s)"});
  for (std::int32_t jobs : {48, 144, 240, 336, 432, 528, 624, 720, 816,
                            912, 1008, 1208}) {
    if (jobs > max_jobs) break;
    std::vector<std::string> row{TextTable::fmt_int(jobs)};
    for (std::uint32_t cores : {4u, 8u}) {
      SyntheticProblemSpec spec;
      spec.cores = cores;
      spec.serial_jobs = jobs;
      spec.seed = 1300 + static_cast<std::uint64_t>(jobs) + cores;
      Problem p = build_synthetic_problem(spec);
      SearchOptions opt;
      opt.time_limit_seconds = point_limit;
      // Uniform methodology across the sweep: run every point in beam mode
      // (small points would otherwise run pure A*, whose cost is governed
      // by the landscape, not by n — the quantity this figure varies).
      opt.beam_width = p.machine_count();
      WallTimer t;
      auto r = solve_hastar(p, opt);
      std::string cell = TextTable::fmt(t.seconds(), 2);
      if (!r.found) cell += " (limit)";
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.render();
  std::cout << "\nPaper shape (Fig. 13): both curves grow polynomially; the "
               "8-core curve\nsits BELOW the quad-core curve (larger u ⇒ "
               "smaller MER cap n/u and\nfewer machines), unlike OA* whose "
               "cost grows with u.\n";
  write_csv(args.get_string("out-dir", "results"), "fig13", table);
  return 0;
}
