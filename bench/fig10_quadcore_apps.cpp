// Figure 10 — "Comparing performance degradations of benchmarking
// applications on Quad-core machines under OA*, HA* and PG".
//
// 12 applications (BT, CG, EP, FT, IS, LU, MG, SP, UA, DC, art, ammp); the
// algorithms optimize the batch average ("AVG"), not individual jobs.
#include <iostream>

#include "astar/search.hpp"
#include "baseline/pg_greedy.hpp"
#include "core/builders.hpp"
#include "harness/experiment.hpp"

using namespace cosched;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  print_experiment_header(
      "Figure 10 (ICPP'15)",
      "Per-application degradation under OA*, HA*, PG — quad-core");

  CatalogProblemSpec spec;
  spec.cores = 4;
  spec.serial_programs = {"BT", "CG", "EP", "FT", "IS", "LU",
                          "MG", "SP", "UA", "DC", "art", "ammp"};
  spec.trace_length = static_cast<std::size_t>(args.get_int("trace", 50000));
  Problem p = build_catalog_problem(spec);

  auto oa = solve_oastar(p);
  auto ha = solve_hastar(p);
  Solution pg = solve_pg_greedy(p);
  if (!oa.found || !ha.found) {
    std::cerr << "search failed\n";
    return 1;
  }
  auto ev_oa = evaluate_solution(p, oa.solution);
  auto ev_ha = evaluate_solution(p, ha.solution);
  auto ev_pg = evaluate_solution(p, pg);

  TextTable table({"app", "OA* (%)", "HA* (%)", "PG (%)"});
  for (const Job& job : p.batch.jobs()) {
    if (job.kind == JobKind::Imaginary) continue;
    auto cell = [&](const Evaluation& ev) {
      return TextTable::fmt(
          ev.per_job[static_cast<std::size_t>(job.id)] * 100.0, 2);
    };
    table.add_row({job.name, cell(ev_oa), cell(ev_ha), cell(ev_pg)});
  }
  table.add_row({"AVG", TextTable::fmt(ev_oa.average_per_job * 100.0, 2),
                 TextTable::fmt(ev_ha.average_per_job * 100.0, 2),
                 TextTable::fmt(ev_pg.average_per_job * 100.0, 2)});
  std::cout << table.render();

  Real ha_vs_oa =
      (ev_ha.average_per_job - ev_oa.average_per_job) /
      ev_oa.average_per_job * 100.0;
  Real pg_vs_ha =
      (ev_pg.average_per_job - ev_ha.average_per_job) /
      ev_ha.average_per_job * 100.0;
  std::cout << "\nHA* worse than OA* by " << TextTable::fmt(ha_vs_oa, 1)
            << "% (paper: 9.8%); HA* better than PG by "
            << TextTable::fmt(pg_vs_ha, 1) << "% (paper: 12.6%).\n";
  write_csv(args.get_string("out-dir", "results"), "fig10", table);
  return 0;
}
