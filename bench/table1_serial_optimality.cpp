// Table I — "Comparison between OA* and IP for serial jobs".
//
// 8/12/16 serial benchmark programs (NPB-SER + SPEC CPU 2000 stand-ins)
// co-scheduled on dual-core and quad-core machines; both the IP model
// (our branch & bound) and OA* must report the same average degradation,
// verifying OA*'s optimality.
#include <iostream>

#include "astar/search.hpp"
#include "core/builders.hpp"
#include "harness/experiment.hpp"
#include "ip/branch_and_bound.hpp"
#include "ip/ip_model.hpp"
#include "workload/benchmark_catalog.hpp"

using namespace cosched;

namespace {

std::vector<std::string> job_mix(std::size_t count) {
  std::vector<std::string> names = npb_serial_names();
  for (const auto& s : spec_serial_names()) names.push_back(s);
  names.resize(count);
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  print_experiment_header(
      "Table I (ICPP'15)",
      "IP vs OA* average degradation, serial jobs, dual & quad core");

  TextTable table({"jobs", "dual IP", "dual OA*", "quad IP", "quad OA*"});
  for (std::size_t count : {8u, 12u, 16u}) {
    std::vector<std::string> row{TextTable::fmt_int(
        static_cast<std::int64_t>(count))};
    for (std::uint32_t cores : {2u, 4u}) {
      CatalogProblemSpec spec;
      spec.cores = cores;
      spec.serial_programs = job_mix(count);
      spec.trace_length = static_cast<std::size_t>(
          args.get_int("trace", 50000));
      Problem p = build_catalog_problem(spec);

      auto model = build_ip_model(p, *p.full_model,
                                  Aggregation::MaxPerParallelJob);
      auto ip = solve_branch_and_bound(model);
      auto oa = solve_oastar(p);
      if (!ip.optimal || !oa.found) {
        std::cerr << "solver failure at " << count << " jobs\n";
        return 1;
      }
      Real ip_avg = evaluate_solution(p, ip.solution).average_per_job;
      Real oa_avg = evaluate_solution(p, oa.solution).average_per_job;
      row.push_back(TextTable::fmt(ip_avg, 3));
      row.push_back(TextTable::fmt(oa_avg, 3));
      if (std::abs(ip_avg - oa_avg) > 1e-6) {
        std::cerr << "MISMATCH: IP and OA* disagree\n";
        return 1;
      }
    }
    table.add_row(std::move(row));
  }
  std::cout << table.render();
  std::cout << "\nPaper: OA* achieves the same degradation as the IP model "
               "in every cell\n(Table I); reproduced when the two columns "
               "match per machine type.\n";
  write_csv(args.get_string("out-dir", "results"), "table1", table);
  return 0;
}
