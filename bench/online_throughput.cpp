// online_throughput: head-to-head comparison of online co-scheduling
// policies on one arrival trace — solver (HA* / PG / random) × replan
// trigger (every-k / degradation-threshold / periodic), plus the
// degradation-vs-migration-cost frontier.
//
// Emits two CSVs:
//   online_throughput.csv — per policy: sustained jobs/sec (virtual),
//     mean degradation, mean queue wait, migrations per replan, replans,
//     wall-clock solve time.
//   online_frontier.csv   — HA* vs random across migration costs: how much
//     degradation each solver buys per unit of migration budget.
//
// Exit code is nonzero if an HA*-backed policy fails to dominate the
// random baseline on degradation at the same migration budget.
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/tail_sampler.hpp"
#include "obs/trace.hpp"
#include "online/scheduler.hpp"
#include "util/timer.hpp"

using namespace cosched;

namespace {

struct PolicyResult {
  std::string label;
  Real virtual_jobs_per_sec = 0.0;
  Real mean_degradation = 0.0;
  Real mean_queue_wait = 0.0;
  Real migrations_per_replan = 0.0;
  std::uint64_t replans = 0;
  double solve_wall_seconds = 0.0;
};

PolicyResult run_policy(const WorkloadTrace& trace,
                        const OnlineSchedulerOptions& options,
                        std::string label) {
  OnlineScheduler service(options);
  service.run(trace);
  const SchedulerMetrics& m = service.metrics();
  PolicyResult r;
  r.label = std::move(label);
  r.virtual_jobs_per_sec =
      service.now() > 0.0
          ? static_cast<Real>(m.completions()) / service.now()
          : 0.0;
  r.mean_degradation = m.running_mean_degradation();
  r.mean_queue_wait = m.queue_wait().mean();
  r.migrations_per_replan = m.mean_migrations_per_replan();
  r.replans = m.replans();
  r.solve_wall_seconds = m.total_solve_wall_seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::int64_t scale = args.get_int("scale", 1);
  const std::int64_t jobs = args.get_int("jobs", 80 * scale);
  const std::int64_t machines = args.get_int("machines", 5);
  const std::int64_t cores = args.get_int("cores", 4);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 7));
  const std::string out_dir = args.get_string("out-dir", "results");
  // Tracing stays runtime-off by default (the overhead smoke compares
  // against exactly this configuration); --trace-out opts in and writes a
  // Chrome trace-event JSON loadable in Perfetto.
  const std::string trace_out = args.get_string("trace-out", "");
  if (!trace_out.empty()) Tracer::global().set_enabled(true);
  // --tail-idle 1 arms the tail sampler with a policy that matches no span
  // name: every replan pays the active-sampler observe path but nothing is
  // ever retained. CI gates this configuration against the compiled-out
  // build with the same budget as runtime-disabled tracing.
  if (args.get_int("tail-idle", 0) != 0) {
    TailPolicy noop;
    noop.name = "idle-gate";
    noop.span_prefix = "noop.";
    noop.min_duration_us = 1e12;
    TailSampler::global().configure({std::move(noop)}, {});
  }

  print_experiment_header(
      "online service throughput (extension; Aupy et al. online regime)",
      "solver x replan-trigger head-to-head on one arrival trace, plus the "
      "degradation-vs-migration-cost frontier");

  TraceSpec trace_spec;
  trace_spec.job_count = static_cast<std::int32_t>(jobs);
  trace_spec.mean_interarrival = 2.0;
  trace_spec.work_lo = 8.0;
  trace_spec.work_hi = 40.0;
  trace_spec.parallel_fraction = 0.15;
  trace_spec.seed = seed;
  WorkloadTrace trace = generate_trace(trace_spec);

  OnlineSchedulerOptions base;
  base.cores = static_cast<std::uint32_t>(cores);
  base.machines = static_cast<std::int32_t>(machines);
  base.migration_cost = 0.05;
  // One polish pass, shared by every policy: enough local search to make
  // migration costs bite, little enough that the fresh solver's placement
  // quality still shows through in the comparison.
  base.replan_passes = 1;
  base.log_process_finish = false;

  std::cout << "trace: " << trace.job_count() << " jobs ("
            << trace.process_count() << " processes), fleet " << machines
            << " x " << cores << " cores\n\n";

  // ---- policy table ----------------------------------------------------
  struct Config {
    OnlineSolverKind solver;
    ReplanTrigger trigger;
  };
  const std::vector<Config> configs = {
      {OnlineSolverKind::HAStar, ReplanTrigger::EveryKArrivals},
      {OnlineSolverKind::HAStar, ReplanTrigger::DegradationThreshold},
      {OnlineSolverKind::HAStar, ReplanTrigger::Periodic},
      {OnlineSolverKind::PgGreedy, ReplanTrigger::EveryKArrivals},
      {OnlineSolverKind::Random, ReplanTrigger::EveryKArrivals},
  };

  TextTable policy_table({"policy", "solver", "trigger", "jobs/sec",
                          "mean degradation", "mean queue wait",
                          "migrations/replan", "replans", "solve seconds"});
  Real hastar_everyk_degradation = -1.0;
  Real random_everyk_degradation = -1.0;
  WallTimer total;
  for (const Config& c : configs) {
    OnlineSchedulerOptions options = base;
    options.solver = c.solver;
    options.admission.trigger = c.trigger;
    std::string label =
        std::string(to_string(c.solver)) + "+" + to_string(c.trigger);
    PolicyResult r = run_policy(trace, options, label);
    policy_table.add_row(
        {r.label, to_string(c.solver), to_string(c.trigger),
         TextTable::fmt(r.virtual_jobs_per_sec),
         TextTable::fmt(r.mean_degradation),
         TextTable::fmt(r.mean_queue_wait),
         TextTable::fmt(r.migrations_per_replan),
         TextTable::fmt_int(static_cast<std::int64_t>(r.replans)),
         TextTable::fmt(r.solve_wall_seconds, 3)});
    if (c.trigger == ReplanTrigger::EveryKArrivals) {
      if (c.solver == OnlineSolverKind::HAStar)
        hastar_everyk_degradation = r.mean_degradation;
      if (c.solver == OnlineSolverKind::Random)
        random_everyk_degradation = r.mean_degradation;
    }
  }
  std::cout << policy_table.render() << "\n";
  write_csv(out_dir, "online_throughput", policy_table);

  // ---- degradation-vs-migration-cost frontier --------------------------
  TextTable frontier({"solver", "migration cost", "mean degradation",
                      "migrations/replan"});
  for (OnlineSolverKind solver :
       {OnlineSolverKind::HAStar, OnlineSolverKind::Random}) {
    for (Real cost : {0.01, 0.05, 0.2}) {
      OnlineSchedulerOptions options = base;
      options.solver = solver;
      options.admission.trigger = ReplanTrigger::EveryKArrivals;
      options.migration_cost = cost;
      PolicyResult r = run_policy(trace, options, "frontier");
      frontier.add_row({to_string(solver), TextTable::fmt(cost, 2),
                        TextTable::fmt(r.mean_degradation),
                        TextTable::fmt(r.migrations_per_replan)});
    }
  }
  std::cout << frontier.render() << "\n";
  write_csv(out_dir, "online_frontier", frontier);

  std::cout << "total bench wall time: " << TextTable::fmt(total.seconds(), 1)
            << " s\n";

  if (!trace_out.empty()) {
    if (Tracer::global().write_chrome_json(trace_out))
      std::cout << "wrote " << trace_out << "\n";
  }

  if (hastar_everyk_degradation < 0.0 || random_everyk_degradation < 0.0 ||
      hastar_everyk_degradation > random_everyk_degradation + 1e-9) {
    std::cerr << "FAIL: HA*-backed policy does not dominate random on "
                 "degradation at equal migration budget ("
              << hastar_everyk_degradation << " vs "
              << random_everyk_degradation << ")\n";
    return 1;
  }
  std::cout << "check: hastar mean degradation "
            << TextTable::fmt(hastar_everyk_degradation)
            << " <= random " << TextTable::fmt(random_everyk_degradation)
            << " at equal migration budget -- OK\n";
  return 0;
}
