// Figure 8 — "Solving time with and without process condensation as the
// number of processes per parallel job increases".
//
// A fixed total process count with several parallel jobs whose per-job
// process count grows; OA*-PC runs with and without the condensation
// technique. The paper's shape: without condensation the time grows
// steeply with processes-per-job; with it the time stays low (symmetric
// parallel processes collapse).
#include <iostream>

#include "astar/search.hpp"
#include "core/builders.hpp"
#include "harness/experiment.hpp"
#include "util/timer.hpp"

using namespace cosched;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  print_experiment_header(
      "Figure 8 (ICPP'15)",
      "OA*-PC solving time with/without process condensation");
  // Paper: 72 total processes, 6 parallel jobs of 1..12 processes. OA* at
  // 72 processes needs hours per point on general hardware, so we default
  // to a 24-process scaled variant with 3 parallel jobs (--total 72
  // --jobs 6 --max-ppj 12 approaches the paper's full setting).
  const std::int32_t total =
      static_cast<std::int32_t>(args.get_int("total", 24));
  const std::int32_t njobs =
      static_cast<std::int32_t>(args.get_int("jobs", 3));
  const std::int32_t max_ppj =
      static_cast<std::int32_t>(args.get_int("max-ppj", 6));

  TextTable table({"procs/job", "parallel procs", "serial jobs",
                   "time w/o condense (s)", "time w/ condense (s)",
                   "generated w/o", "generated w/"});
  for (std::int32_t ppj = 1; ppj <= max_ppj; ++ppj) {
    std::int32_t parallel_procs = njobs * ppj;
    if (parallel_procs > total) break;
    SyntheticProblemSpec spec;
    spec.landscape = SyntheticLandscape::Smooth;  // the h(v)-pruning regime
    spec.cores = 4;
    spec.serial_jobs = total - parallel_procs;
    spec.parallel_job_sizes.assign(static_cast<std::size_t>(njobs), ppj);
    spec.parallel_with_comm = true;
    spec.seed = 88 + static_cast<std::uint64_t>(ppj);
    Problem p = build_synthetic_problem(spec);

    const Real point_limit = args.get_real("point-limit", 40.0);
    auto run = [&](bool condense) {
      SearchOptions opt;
      opt.condense = condense;
      opt.time_limit_seconds = point_limit;
      WallTimer t;
      auto r = solve_oastar(p, opt);
      return std::tuple{t.seconds(), r.stats.generated, r.objective,
                        r.found};
    };
    auto [t_off, g_off, o_off, f_off] = run(false);
    auto [t_on, g_on, o_on, f_on] = run(true);
    if (f_off && f_on && std::abs(o_off - o_on) > 1e-9) {
      std::cerr << "condensation changed the optimum — bug\n";
      return 1;
    }
    auto cell = [](double secs, bool found) {
      std::string c = TextTable::fmt(secs, 3);
      if (!found) c += " (limit)";
      return c;
    };
    table.add_row({TextTable::fmt_int(ppj),
                   TextTable::fmt_int(parallel_procs),
                   TextTable::fmt_int(spec.serial_jobs),
                   cell(t_off, f_off), cell(t_on, f_on),
                   TextTable::fmt_int(static_cast<std::int64_t>(g_off)),
                   TextTable::fmt_int(static_cast<std::int64_t>(g_on))});
  }
  std::cout << table.render();
  std::cout << "\nPaper shape (Fig. 8): the gap between the two time "
               "columns widens as\nprocesses-per-job grows — condensation "
               "eliminates ever more symmetric nodes.\n";
  write_csv(args.get_string("out-dir", "results"), "fig8", table);
  return 0;
}
