// Open-loop arrival schedules.
//
// An open-loop generator decides *when* to send independently of how fast
// the service answers — the opposite of the closed-loop clients in
// bench/rpc_loopback, whose next request implicitly waits for the previous
// reply and therefore slows down exactly when the server is struggling
// (coordinated omission: the overload never shows up in the numbers, the
// central lesson of Berg et al., "Towards Optimality in Parallel
// Scheduling"). The schedule is materialised up front as absolute send
// offsets (seconds from test start), a pure function of the spec: the same
// seed yields the same send times on any platform.
//
// Rate curves: a constant rate, or a diurnal sinusoid
//     r(t) = rate_rps * (1 + amplitude * sin(2*pi*t / period))
// implemented by time-warping unit-rate event positions through the inverse
// cumulative intensity — exact for both Poisson and deterministic arrival
// processes, no thinning rejection loop.
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace cosched {

enum class ArrivalProcess {
  /// Exponential interarrivals — the memoryless stream a front door sees
  /// from many independent users.
  Poisson,
  /// Evenly spaced arrivals — the worst case for burst absorption is
  /// removed, isolating queueing from arrival variance.
  Uniform,
};

const char* to_string(ArrivalProcess process);

/// Sinusoidal rate modulation around the base rate. amplitude must stay in
/// [0, 1): at 1 the trough rate reaches zero and the cumulative intensity
/// stops being invertible.
struct DiurnalSpec {
  bool enabled = false;
  Real period_seconds = 60.0;
  Real amplitude = 0.0;
};

struct ArrivalSpec {
  ArrivalProcess process = ArrivalProcess::Poisson;
  Real rate_rps = 10.0;  ///< mean offered rate (averaged over a period)
  std::int32_t count = 100;
  std::uint64_t seed = 1;
  DiurnalSpec diurnal;
};

/// Builds the schedule: `count` strictly increasing send offsets in
/// seconds. Deterministic in the spec.
std::vector<Real> build_arrival_schedule(const ArrivalSpec& spec);

/// Mean offered rate of a schedule: arrivals over [0, last]. 0 for
/// schedules with fewer than one arrival or a zero horizon.
Real schedule_offered_rps(const std::vector<Real>& schedule);

}  // namespace cosched
