// Workload shapes: what each generated request carries.
//
// The arrival schedule (loadgen/arrival) decides *when*; this module
// decides *what* — job sizes, cache pressure, parallelism and the tenant
// key baked into the job name. Tenant keys matter because the shard
// router's consistent hash admits on them: a skewed (Zipfian) tenant mix
// produces the hot-shard imbalance its spillover policy exists for, while
// skew 0 spreads tenants evenly.
//
// Size distributions follow the two regimes the co-scheduling literature
// cares about: uniform (the source paper's methodology) and heavy-tailed
// Pareto in the style of the high-throughput mixes of Aupy et al.,
// "Co-Scheduling Algorithms for High-Throughput Workload Execution" —
// a few elephants dominating many mice, the shape that breaks schedulers
// tuned on uniform work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "online/trace.hpp"
#include "util/common.hpp"

namespace cosched {

enum class SizeDistribution {
  Uniform,  ///< work ~ U[work_lo, work_hi] (paper methodology)
  Pareto,   ///< work ~ pareto_scale * U^(-1/pareto_shape), capped
};

const char* to_string(SizeDistribution distribution);

struct ShapeSpec {
  SizeDistribution size = SizeDistribution::Uniform;
  Real work_lo = 5.0;
  Real work_hi = 30.0;
  /// Pareto tail index; <= 1 has infinite mean, 1 < shape < 2 infinite
  /// variance — 1.5 is the conventional "heavy but integrable" default.
  Real pareto_shape = 1.5;
  Real pareto_scale = 5.0;  ///< minimum work (the distribution's x_m)
  /// Hard cap so one astronomically unlucky draw cannot wedge a CI run.
  Real work_cap = 600.0;
  /// Paper methodology: cache miss rates uniform in [15%, 75%].
  Real miss_rate_lo = 0.15;
  Real miss_rate_hi = 0.75;
  Real parallel_fraction = 0.0;
  std::int32_t max_parallel_processes = 4;
  /// Tenant key mix: names are "t<k>/<name_prefix><i>" with k drawn from a
  /// Zipf(tenant_skew) distribution over `tenants` tenants; skew 0 is
  /// uniform. The prefix before '/' is what ShardRouter hashes on.
  std::int32_t tenants = 32;
  Real tenant_skew = 0.0;
  std::string name_prefix = "lg";
  std::uint64_t seed = 1;
};

/// Builds `count` jobs. arrival_time is left 0 — pairing jobs with an
/// arrival schedule is the runner's job. Deterministic in the spec.
std::vector<TraceJob> build_jobs(const ShapeSpec& spec, std::int32_t count);

}  // namespace cosched
