// Minimal JSON reader for the bench/SLO tooling.
//
// Every BENCH_*.json and slo.json in this repository is written by our own
// code: objects, arrays, numbers, strings and booleans, nothing exotic. The
// reader flattens that tree into dotted paths ("latency_ms.p95",
// "shard_requests.0") so the consumers — the --compare baseline loader and
// the SLO budget loader — do plain map lookups instead of walking a DOM.
// Parsing a document we did not write is a supported case (a hand-edited
// slo.json): malformed input fails with a position-carrying error rather
// than a partial result.
#pragma once

#include <map>
#include <string>

#include "util/common.hpp"

namespace cosched {

/// A parsed JSON document, flattened. Numbers and booleans land in
/// `numbers` (true = 1.0, false = 0.0), strings in `strings`; null is
/// recorded in neither (a lookup miss, which is what a null means here).
struct FlatJson {
  std::map<std::string, Real> numbers;
  std::map<std::string, std::string> strings;

  bool has_number(const std::string& key) const {
    return numbers.find(key) != numbers.end();
  }
  Real number(const std::string& key, Real fallback) const {
    auto it = numbers.find(key);
    return it == numbers.end() ? fallback : it->second;
  }
  std::string string(const std::string& key,
                     const std::string& fallback) const {
    auto it = strings.find(key);
    return it == strings.end() ? fallback : it->second;
  }
};

/// Parses `text` into `out`. On failure returns false and fills `error`
/// with a byte-offset diagnostic; `out` is left cleared.
bool parse_flat_json(const std::string& text, FlatJson& out,
                     std::string& error);

/// Reads and parses a file. Missing/unreadable files are an error.
bool load_flat_json(const std::string& path, FlatJson& out,
                    std::string& error);

}  // namespace cosched
