#include "loadgen/slo.hpp"

#include <sstream>

namespace cosched {

bool load_slo_budget(const std::string& path, SloBudget& out,
                     std::string& error) {
  FlatJson json;
  if (!load_flat_json(path, json, error)) return false;
  out = SloBudget{};
  out.p50_ms = json.number("p50_ms", 0.0);
  out.p95_ms = json.number("p95_ms", 0.0);
  out.p99_ms = json.number("p99_ms", 0.0);
  out.min_rps = json.number("min_rps", 0.0);
  out.max_error_rate = json.number("max_error_rate", -1.0);
  return true;
}

std::string SloVerdict::describe() const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(3);
  for (const SloCheck& check : checks)
    out << "  " << (check.pass ? "ok  " : "FAIL") << " " << check.name
        << ": observed " << check.observed << ", budget " << check.budget
        << "\n";
  return out.str();
}

SloVerdict evaluate_slo(const SloBudget& budget, const BenchReport& report) {
  SloVerdict verdict;
  auto ceiling = [&verdict](const std::string& name, Real limit,
                            Real observed) {
    if (limit <= 0.0) return;
    SloCheck check{name, limit, observed, observed <= limit};
    verdict.pass = verdict.pass && check.pass;
    verdict.checks.push_back(std::move(check));
  };
  ceiling("p50_ms", budget.p50_ms, report.latency.p50);
  ceiling("p95_ms", budget.p95_ms, report.latency.p95);
  ceiling("p99_ms", budget.p99_ms, report.latency.p99);
  if (budget.min_rps > 0.0) {
    SloCheck check{"min_rps", budget.min_rps, report.achieved_rps,
                   report.achieved_rps >= budget.min_rps};
    verdict.pass = verdict.pass && check.pass;
    verdict.checks.push_back(std::move(check));
  }
  if (budget.max_error_rate >= 0.0) {
    std::uint64_t total = report.requests_ok + report.requests_failed;
    Real rate = total == 0 ? 0.0
                           : static_cast<Real>(report.requests_failed) /
                                 static_cast<Real>(total);
    SloCheck check{"max_error_rate", budget.max_error_rate, rate,
                   rate <= budget.max_error_rate};
    verdict.pass = verdict.pass && check.pass;
    verdict.checks.push_back(std::move(check));
  }
  return verdict;
}

}  // namespace cosched
