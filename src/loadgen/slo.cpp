#include "loadgen/slo.hpp"

#include <cmath>
#include <sstream>

#include "loadgen/flat_json.hpp"

namespace cosched {

namespace {

/// Pulls one numeric budget field out of the flattened document with
/// field-specific diagnostics: a string where a number belongs, NaN/inf
/// (parseable JSON cannot produce them, but a caller-built FlatJson can)
/// and negative values all name the offending key. Absent keys leave
/// `value` at its unset default.
bool budget_field(const FlatJson& json, const std::string& key,
                  bool allow_zero, Real& value, std::string& error) {
  if (json.strings.count(key)) {
    error = key + ": expected a number, got a string";
    return false;
  }
  if (!json.has_number(key)) return true;
  Real raw = json.number(key, 0.0);
  if (!std::isfinite(raw)) {
    error = key + ": must be a finite number";
    return false;
  }
  if (raw < 0.0) {
    error = key + ": must not be negative (omit";
    error += allow_zero ? " the key to leave it unset)"
                        : " the key or use 0 to leave it unset)";
    return false;
  }
  value = raw;
  return true;
}

bool validate_slo_budget(const FlatJson& json, SloBudget& out,
                         std::string& error) {
  static const char* const kKeys[] = {"p50_ms", "p95_ms", "p99_ms", "min_rps",
                                      "max_error_rate"};
  auto known = [&](const std::string& key) {
    if (!key.empty() && key[0] == '_') return true;  // "_note" convention
    for (const char* k : kKeys)
      if (key == k) return true;
    return false;
  };
  for (const auto& [key, value] : json.numbers) {
    (void)value;
    if (!known(key)) {
      error = key + ": unknown budget field (known: p50_ms p95_ms p99_ms "
                    "min_rps max_error_rate)";
      return false;
    }
  }
  for (const auto& [key, value] : json.strings) {
    (void)value;
    if (key.empty() || key[0] != '_') {
      error = key + ": " + (known(key) ? "expected a number, got a string"
                                       : "unknown budget field (known: "
                                         "p50_ms p95_ms p99_ms min_rps "
                                         "max_error_rate)");
      return false;
    }
  }

  out = SloBudget{};
  if (!budget_field(json, "p50_ms", false, out.p50_ms, error)) return false;
  if (!budget_field(json, "p95_ms", false, out.p95_ms, error)) return false;
  if (!budget_field(json, "p99_ms", false, out.p99_ms, error)) return false;
  if (!budget_field(json, "min_rps", false, out.min_rps, error)) return false;
  if (!budget_field(json, "max_error_rate", true, out.max_error_rate, error))
    return false;
  if (out.max_error_rate > 1.0) {
    error = "max_error_rate: must be a fraction in [0, 1], got " +
            std::to_string(out.max_error_rate);
    return false;
  }

  // Set percentile budgets must not contradict each other — a p50 budget
  // looser than the p95 budget is a typo, not a gate.
  auto ordered = [&](const char* lo_name, Real lo, const char* hi_name,
                     Real hi) {
    if (lo <= 0.0 || hi <= 0.0 || lo <= hi) return true;
    error = std::string(lo_name) + ": must not exceed " + hi_name + " (" +
            std::to_string(lo) + " > " + std::to_string(hi) + ")";
    return false;
  };
  if (!ordered("p50_ms", out.p50_ms, "p95_ms", out.p95_ms)) return false;
  if (!ordered("p50_ms", out.p50_ms, "p99_ms", out.p99_ms)) return false;
  if (!ordered("p95_ms", out.p95_ms, "p99_ms", out.p99_ms)) return false;
  return true;
}

}  // namespace

bool load_slo_budget(const std::string& path, SloBudget& out,
                     std::string& error) {
  FlatJson json;
  if (!load_flat_json(path, json, error)) return false;
  if (validate_slo_budget(json, out, error)) return true;
  error = path + ": " + error;
  return false;
}

bool parse_slo_budget(const std::string& text, SloBudget& out,
                      std::string& error) {
  FlatJson json;
  if (!parse_flat_json(text, json, error)) return false;
  return validate_slo_budget(json, out, error);
}

std::string SloVerdict::describe() const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(3);
  for (const SloCheck& check : checks)
    out << "  " << (check.pass ? "ok  " : "FAIL") << " " << check.name
        << ": observed " << check.observed << ", budget " << check.budget
        << "\n";
  return out.str();
}

SloVerdict evaluate_slo(const SloBudget& budget, const BenchReport& report) {
  SloVerdict verdict;
  auto ceiling = [&verdict](const std::string& name, Real limit,
                            Real observed) {
    if (limit <= 0.0) return;
    SloCheck check{name, limit, observed, observed <= limit};
    verdict.pass = verdict.pass && check.pass;
    verdict.checks.push_back(std::move(check));
  };
  ceiling("p50_ms", budget.p50_ms, report.latency.p50);
  ceiling("p95_ms", budget.p95_ms, report.latency.p95);
  ceiling("p99_ms", budget.p99_ms, report.latency.p99);
  if (budget.min_rps > 0.0) {
    SloCheck check{"min_rps", budget.min_rps, report.achieved_rps,
                   report.achieved_rps >= budget.min_rps};
    verdict.pass = verdict.pass && check.pass;
    verdict.checks.push_back(std::move(check));
  }
  if (budget.max_error_rate >= 0.0) {
    std::uint64_t total = report.requests_ok + report.requests_failed;
    Real rate = total == 0 ? 0.0
                           : static_cast<Real>(report.requests_failed) /
                                 static_cast<Real>(total);
    SloCheck check{"max_error_rate", budget.max_error_rate, rate,
                   rate <= budget.max_error_rate};
    verdict.pass = verdict.pass && check.pass;
    verdict.checks.push_back(std::move(check));
  }
  return verdict;
}

}  // namespace cosched
