// Warm-up / measure / cool-down phase control.
//
// The first requests of any run hit cold caches, fresh connections and an
// empty scheduler — folding them into the latency report biases every
// percentile (the warm-up contamination bug the old rpc_loopback had). The
// controller classifies each request by its global submission index:
// [0, warmup) is Warmup, [warmup, total - cooldown) is Measure, the rest is
// Cooldown. Only Measure samples reach the report; warm-up and cool-down
// requests are still *sent* (they keep the service loaded so the measure
// window sees steady state), just not measured.
//
// PhaseStats is the accumulator one worker keeps per phase; merge() folds
// workers together. It carries the send/finish extremes so the measure
// throughput can be computed over the measure window alone, not the whole
// run including warm-up.
#pragma once

#include <cstdint>

#include "obs/histogram.hpp"
#include "util/common.hpp"

namespace cosched {

enum class LoadPhase { Warmup, Measure, Cooldown };

const char* to_string(LoadPhase phase);

class PhaseController {
 public:
  /// `warmup + cooldown <= total`; an empty measure window is legal (a
  /// pure warm-up run) but usually a configuration mistake the caller
  /// should surface.
  PhaseController(std::uint64_t total, std::uint64_t warmup,
                  std::uint64_t cooldown);

  LoadPhase classify(std::uint64_t index) const;

  std::uint64_t total() const { return total_; }
  std::uint64_t warmup_count() const { return warmup_; }
  std::uint64_t cooldown_count() const { return cooldown_; }
  std::uint64_t measure_count() const { return total_ - warmup_ - cooldown_; }

 private:
  std::uint64_t total_;
  std::uint64_t warmup_;
  std::uint64_t cooldown_;
};

/// Latency bucket edges shared by every loadgen consumer (milliseconds) —
/// the same edges bench/rpc_loopback has always used, so merged reports
/// and /metrics stay comparable.
std::vector<Real> loadgen_latency_edges_ms();

/// One worker's accumulator for one phase.
struct PhaseStats {
  Histogram latency_ms{loadgen_latency_edges_ms()};
  std::uint64_t requests = 0;  ///< completed with an Ok response
  std::uint64_t errors = 0;
  std::uint64_t late_sends = 0;  ///< open loop: sent behind schedule
  Real max_late_ms = 0.0;
  Real sum_late_ms = 0.0;
  /// Send/finish extremes in seconds since the run began; +inf/-inf when
  /// the phase saw no traffic.
  Real first_send_s = kInfinity;
  Real last_finish_s = -kInfinity;

  void merge(const PhaseStats& other);
  /// last_finish - first_send, or 0 when the phase saw no traffic.
  Real window_seconds() const;
};

}  // namespace cosched
