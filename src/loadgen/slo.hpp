// SLO budgets: the pass/fail contract a benchmark run is held to.
//
// A budget is a small JSON file (slo.json at the repo root is the committed
// default) of absolute limits:
//
//   { "p50_ms": 50, "p95_ms": 900, "p99_ms": 1200,
//     "min_rps": 8, "max_error_rate": 0.0 }
//
// Unset fields (absent, or <= 0 for latencies/throughput, < 0 for the
// error rate) are skipped — a budget can gate just p95 and nothing else.
// Boundary semantics: a measurement exactly at its budget PASSES; budgets
// are ceilings/floors, not strict bounds, so a regenerated baseline that
// exactly meets its own budget stays green.
//
// This is deliberately distinct from --compare (loadgen/report): the SLO is
// an absolute product promise ("p95 under 900 ms, ever"), the comparison a
// relative regression gate ("no worse than the committed baseline"). CI
// runs both.
#pragma once

#include <string>
#include <vector>

#include "loadgen/report.hpp"
#include "util/common.hpp"

namespace cosched {

struct SloBudget {
  Real p50_ms = 0.0;          ///< <= 0: unset
  Real p95_ms = 0.0;          ///< <= 0: unset
  Real p99_ms = 0.0;          ///< <= 0: unset
  Real min_rps = 0.0;         ///< <= 0: unset
  Real max_error_rate = -1.0; ///< < 0: unset; 0 means "no errors at all"
};

/// Loads a budget from a JSON file, validating every field: unknown keys
/// (except the "_"-prefixed comment-by-convention ones, "_note": "..."),
/// wrong-typed values, NaN/infinite/negative numbers and a percentile
/// ordering that contradicts itself (p50 > p95, p95 > p99 among the set
/// fields) all fail with a "<key>: why" diagnostic. Partial budgets are
/// fine — a file can gate just p95 and nothing else.
bool load_slo_budget(const std::string& path, SloBudget& out,
                     std::string& error);
/// Same, from already-loaded text (tests, embedded budgets).
bool parse_slo_budget(const std::string& text, SloBudget& out,
                      std::string& error);

struct SloCheck {
  std::string name;
  Real budget = 0.0;
  Real observed = 0.0;
  bool pass = true;
};

struct SloVerdict {
  bool pass = true;
  std::vector<SloCheck> checks;  ///< only the budgets that were set
  std::string describe() const;
};

SloVerdict evaluate_slo(const SloBudget& budget, const BenchReport& report);

}  // namespace cosched
