#include "loadgen/flat_json.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cosched {

namespace {

/// Recursive-descent parser over a string view with explicit position, so
/// errors can say where they happened.
class Parser {
 public:
  Parser(const std::string& text, FlatJson& out) : text_(text), out_(out) {}

  bool parse(std::string& error) {
    skip_ws();
    if (!parse_value("")) {
      error = error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing content at byte " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool fail(const std::string& what) {
    error_ = what + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool literal(const char* word) {
    std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  static std::string join(const std::string& prefix, const std::string& key) {
    return prefix.empty() ? key : prefix + "." + key;
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"')
      return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("dangling escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          // \uXXXX: our writers never emit it; keep the parse alive by
          // passing the escape through verbatim.
          case 'u':
            out += "\\u";
            break;
          default:
            return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool parse_value(const std::string& path) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return parse_object(path);
    if (c == '[') return parse_array(path);
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out_.strings[path] = std::move(s);
      return true;
    }
    if (literal("true")) {
      out_.numbers[path] = 1.0;
      return true;
    }
    if (literal("false")) {
      out_.numbers[path] = 0.0;
      return true;
    }
    if (literal("null")) return true;  // recorded nowhere: a lookup miss
    return parse_number(path);
  }

  bool parse_number(const std::string& path) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin) return fail("expected value");
    pos_ += static_cast<std::size_t>(end - begin);
    out_.numbers[path] = static_cast<Real>(v);
    return true;
  }

  bool parse_object(const std::string& path) {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':'");
      ++pos_;
      if (!parse_value(join(path, key))) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(const std::string& path) {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    std::size_t index = 0;
    while (true) {
      if (!parse_value(join(path, std::to_string(index++)))) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  FlatJson& out_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool parse_flat_json(const std::string& text, FlatJson& out,
                     std::string& error) {
  out = FlatJson{};
  Parser parser(text, out);
  if (parser.parse(error)) return true;
  out = FlatJson{};
  return false;
}

bool load_flat_json(const std::string& path, FlatJson& out,
                    std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!parse_flat_json(buffer.str(), out, error)) {
    error = path + ": " + error;
    return false;
  }
  return true;
}

}  // namespace cosched
