#include "loadgen/flat_json.hpp"

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cosched {

namespace {

/// Recursive-descent parser over a string view with explicit position, so
/// errors can say where they happened.
class Parser {
 public:
  Parser(const std::string& text, FlatJson& out) : text_(text), out_(out) {}

  bool parse(std::string& error) {
    skip_ws();
    if (!parse_value("")) {
      error = error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing content at byte " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool fail(const std::string& what) {
    error_ = what + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool literal(const char* word) {
    std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  static std::string join(const std::string& prefix, const std::string& key) {
    return prefix.empty() ? key : prefix + "." + key;
  }

  /// Four hex digits after a \u, or -1.
  std::int32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) return -1;
    std::int32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_ + static_cast<std::size_t>(i)];
      std::int32_t digit;
      if (h >= '0' && h <= '9') digit = h - '0';
      else if (h >= 'a' && h <= 'f') digit = 10 + (h - 'a');
      else if (h >= 'A' && h <= 'F') digit = 10 + (h - 'A');
      else return -1;
      value = value * 16 + digit;
    }
    pos_ += 4;
    return value;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  /// \uXXXX (pos_ just past the 'u') decoded to UTF-8. A high surrogate must
  /// be followed by \uDC00..\uDFFF (the pair decodes to one astral code
  /// point); a lone or out-of-order surrogate is a parse error, not U+FFFD —
  /// this parser feeds byte-exact baseline comparisons, so silently mangling
  /// input is worse than rejecting it.
  bool parse_unicode_escape(std::string& out) {
    std::int32_t unit = parse_hex4();
    if (unit < 0) return fail("bad \\u escape: want 4 hex digits");
    if (unit >= 0xDC00 && unit <= 0xDFFF)
      return fail("lone low surrogate in \\u escape");
    if (unit >= 0xD800 && unit <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u')
        return fail("high surrogate not followed by \\u escape");
      pos_ += 2;
      std::int32_t low = parse_hex4();
      if (low < 0) return fail("bad \\u escape: want 4 hex digits");
      if (low < 0xDC00 || low > 0xDFFF)
        return fail("high surrogate not followed by low surrogate");
      std::uint32_t cp = 0x10000u +
                         ((static_cast<std::uint32_t>(unit) - 0xD800u) << 10) +
                         (static_cast<std::uint32_t>(low) - 0xDC00u);
      append_utf8(out, cp);
      return true;
    }
    append_utf8(out, static_cast<std::uint32_t>(unit));
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"')
      return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("dangling escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (!parse_unicode_escape(out)) return false;
            break;
          default:
            return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool parse_value(const std::string& path) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return parse_object(path);
    if (c == '[') return parse_array(path);
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out_.strings[path] = std::move(s);
      return true;
    }
    if (literal("true")) {
      out_.numbers[path] = 1.0;
      return true;
    }
    if (literal("false")) {
      out_.numbers[path] = 0.0;
      return true;
    }
    if (literal("null")) return true;  // recorded nowhere: a lookup miss
    return parse_number(path);
  }

  bool parse_number(const std::string& path) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin) return fail("expected value");
    pos_ += static_cast<std::size_t>(end - begin);
    out_.numbers[path] = static_cast<Real>(v);
    return true;
  }

  bool parse_object(const std::string& path) {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':'");
      ++pos_;
      if (!parse_value(join(path, key))) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(const std::string& path) {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    std::size_t index = 0;
    while (true) {
      if (!parse_value(join(path, std::to_string(index++)))) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  FlatJson& out_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool parse_flat_json(const std::string& text, FlatJson& out,
                     std::string& error) {
  out = FlatJson{};
  Parser parser(text, out);
  if (parser.parse(error)) return true;
  out = FlatJson{};
  return false;
}

bool load_flat_json(const std::string& path, FlatJson& out,
                    std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!parse_flat_json(buffer.str(), out, error)) {
    error = path + ": " + error;
    return false;
  }
  return true;
}

}  // namespace cosched
