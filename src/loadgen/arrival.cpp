#include "loadgen/arrival.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace cosched {

const char* to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::Poisson: return "poisson";
    case ArrivalProcess::Uniform: return "uniform";
  }
  return "?";
}

namespace {

constexpr Real kTwoPi = 6.283185307179586476925286766559;

/// Cumulative intensity Lambda(t) = integral of r(s) ds over [0, t].
Real cumulative_intensity(const ArrivalSpec& spec, Real t) {
  Real base = spec.rate_rps * t;
  if (!spec.diurnal.enabled || spec.diurnal.amplitude <= 0.0) return base;
  const Real period = spec.diurnal.period_seconds;
  return base + spec.rate_rps * spec.diurnal.amplitude * period / kTwoPi *
                    (1.0 - std::cos(kTwoPi * t / period));
}

/// Inverts the (strictly increasing) cumulative intensity by bisection.
/// r(t) >= rate * (1 - amplitude) > 0 bounds the answer from above.
Real invert_intensity(const ArrivalSpec& spec, Real target) {
  Real amplitude =
      spec.diurnal.enabled ? spec.diurnal.amplitude : 0.0;
  Real floor_rate = spec.rate_rps * (1.0 - amplitude);
  Real hi = target / floor_rate + 1.0;
  Real lo = 0.0;
  for (int i = 0; i < 80; ++i) {
    Real mid = 0.5 * (lo + hi);
    if (cumulative_intensity(spec, mid) < target)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

std::vector<Real> build_arrival_schedule(const ArrivalSpec& spec) {
  COSCHED_EXPECTS(spec.count >= 0);
  COSCHED_EXPECTS(spec.rate_rps > 0.0);
  COSCHED_EXPECTS(spec.diurnal.amplitude >= 0.0 &&
                  spec.diurnal.amplitude < 1.0);
  COSCHED_EXPECTS(!spec.diurnal.enabled || spec.diurnal.period_seconds > 0.0);

  Rng rng(spec.seed);
  std::vector<Real> schedule;
  schedule.reserve(static_cast<std::size_t>(spec.count));
  // Unit-rate event positions, warped through the inverse intensity. For a
  // constant rate the warp degenerates to u / rate; keeping one code path
  // means the diurnal curve is exercised by every test of the plain one.
  Real u = 0.0;
  for (std::int32_t k = 0; k < spec.count; ++k) {
    if (spec.process == ArrivalProcess::Poisson)
      u += -std::log(1.0 - rng.uniform01());
    else
      u += 1.0;
    schedule.push_back(invert_intensity(spec, u));
  }
  return schedule;
}

Real schedule_offered_rps(const std::vector<Real>& schedule) {
  if (schedule.empty() || schedule.back() <= 0.0) return 0.0;
  return static_cast<Real>(schedule.size()) / schedule.back();
}

}  // namespace cosched
