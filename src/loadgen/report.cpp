#include "loadgen/report.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace cosched {

LatencySummary LatencySummary::from(const Histogram& histogram) {
  LatencySummary s;
  s.mean = histogram.mean();
  s.p50 = histogram.quantile(0.5);
  s.p95 = histogram.quantile(0.95);
  s.p99 = histogram.quantile(0.99);
  s.max = histogram.max();
  return s;
}

std::string BenchReport::to_json() const {
  std::ostringstream json;
  json.setf(std::ios::fixed);
  json.precision(4);
  json << "{\n"
       << "  \"bench\": \"" << bench << "\",\n"
       << "  \"mode\": \"" << mode << "\",\n"
       << "  \"deployment\": \"" << deployment << "\",\n"
       << "  \"clients\": " << clients << ",\n"
       << "  \"jobs_per_client\": " << jobs_per_client << ",\n"
       << "  \"requests_ok\": " << requests_ok << ",\n"
       << "  \"requests_failed\": " << requests_failed << ",\n"
       << "  \"warmup_requests\": " << warmup_requests << ",\n"
       << "  \"cooldown_requests\": " << cooldown_requests << ",\n"
       << "  \"late_sends\": " << late_sends << ",\n"
       << "  \"max_late_ms\": " << max_late_ms << ",\n"
       << "  \"offered_rps\": " << offered_rps << ",\n"
       << "  \"achieved_rps\": " << achieved_rps << ",\n"
       << "  \"throughput_rps\": " << achieved_rps << ",\n"
       << "  \"wall_seconds\": " << wall_seconds << ",\n"
       << "  \"latency_ms\": {\n"
       << "    \"mean\": " << latency.mean << ",\n"
       << "    \"p50\": " << latency.p50 << ",\n"
       << "    \"p95\": " << latency.p95 << ",\n"
       << "    \"p99\": " << latency.p99 << ",\n"
       << "    \"max\": " << latency.max << "\n"
       << "  }\n"
       << "}\n";
  return json.str();
}

bool write_text_file(const std::string& path, const std::string& content) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) fs::create_directories(parent, ec);
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

BaselineStats extract_baseline(const FlatJson& json) {
  BaselineStats stats;
  // The flat loopback/benchmark_app schema first; then the router schema,
  // whose interesting config is the sharded one (the single-shard block is
  // a baseline-of-the-baseline).
  for (const char* prefix : {"", "sharded."}) {
    std::string p(prefix);
    if (!json.has_number(p + "latency_ms.p95")) continue;
    stats.ok = true;
    stats.source_prefix = p;
    stats.throughput_rps =
        json.number(p + "achieved_rps", json.number(p + "throughput_rps", 0.0));
    stats.p50_ms = json.number(p + "latency_ms.p50", 0.0);
    stats.p95_ms = json.number(p + "latency_ms.p95", 0.0);
    stats.p99_ms = json.number(p + "latency_ms.p99", 0.0);
    return stats;
  }
  return stats;
}

std::string CompareResult::describe() const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(2);
  for (const CompareCheck& check : checks)
    out << "  " << (check.pass ? "ok  " : "FAIL") << " " << check.name
        << ": current " << check.current << " vs baseline " << check.baseline
        << " (limit " << check.limit << ")\n";
  return out.str();
}

CompareResult compare_to_baseline(const BenchReport& current,
                                  const BaselineStats& baseline,
                                  Real tolerance) {
  COSCHED_EXPECTS(tolerance >= 0.0);
  CompareResult result;
  auto gate = [&result](const std::string& name, Real base, Real value,
                        Real limit, bool is_floor) {
    CompareCheck check;
    check.name = name;
    check.baseline = base;
    check.current = value;
    check.limit = limit;
    check.pass = is_floor ? value >= limit : value <= limit;
    result.pass = result.pass && check.pass;
    result.checks.push_back(std::move(check));
  };
  gate("throughput_rps", baseline.throughput_rps, current.achieved_rps,
       baseline.throughput_rps * (1.0 - tolerance), /*is_floor=*/true);
  gate("latency_p95_ms", baseline.p95_ms, current.latency.p95,
       baseline.p95_ms * (1.0 + tolerance) + kCompareLatencySlackMs,
       /*is_floor=*/false);
  gate("latency_p99_ms", baseline.p99_ms, current.latency.p99,
       baseline.p99_ms * (1.0 + tolerance) + kCompareLatencySlackMs,
       /*is_floor=*/false);
  return result;
}

}  // namespace cosched
