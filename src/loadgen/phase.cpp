#include "loadgen/phase.hpp"

#include <algorithm>

namespace cosched {

const char* to_string(LoadPhase phase) {
  switch (phase) {
    case LoadPhase::Warmup: return "warmup";
    case LoadPhase::Measure: return "measure";
    case LoadPhase::Cooldown: return "cooldown";
  }
  return "?";
}

PhaseController::PhaseController(std::uint64_t total, std::uint64_t warmup,
                                 std::uint64_t cooldown)
    : total_(total), warmup_(warmup), cooldown_(cooldown) {
  COSCHED_EXPECTS(warmup + cooldown <= total);
}

LoadPhase PhaseController::classify(std::uint64_t index) const {
  COSCHED_EXPECTS(index < total_);
  if (index < warmup_) return LoadPhase::Warmup;
  if (index < total_ - cooldown_) return LoadPhase::Measure;
  return LoadPhase::Cooldown;
}

std::vector<Real> loadgen_latency_edges_ms() {
  return {0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
          250.0, 500.0, 1000.0};
}

void PhaseStats::merge(const PhaseStats& other) {
  latency_ms.merge(other.latency_ms);
  requests += other.requests;
  errors += other.errors;
  late_sends += other.late_sends;
  max_late_ms = std::max(max_late_ms, other.max_late_ms);
  sum_late_ms += other.sum_late_ms;
  first_send_s = std::min(first_send_s, other.first_send_s);
  last_finish_s = std::max(last_finish_s, other.last_finish_s);
}

Real PhaseStats::window_seconds() const {
  if (first_send_s > last_finish_s) return 0.0;
  return last_finish_s - first_send_s;
}

}  // namespace cosched
