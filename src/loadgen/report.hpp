// BENCH_*.json report writing and baseline comparison.
//
// The JSON schema is a strict superset of what bench/rpc_loopback has
// always written — clients, requests_ok/failed, wall_seconds,
// throughput_rps, latency_ms{mean,p50,p95,p99,max} — so committed history
// stays diffable. New fields: mode (open/closed), deployment, offered_rps,
// achieved_rps (== throughput_rps, kept under both names), warm-up /
// cool-down request counts (excluded from every latency figure) and
// late-send accounting for the open-loop generator.
//
// compare_to_baseline() is the CI regression gate: achieved throughput may
// not drop more than `tolerance` below the baseline, and p95/p99 may not
// rise more than `tolerance` above it (plus a small absolute slack so a
// sub-millisecond baseline does not fail on scheduler jitter). Baselines
// load through extract_baseline(), which understands both the flat loopback
// schema and the nested router schema ("sharded.latency_ms.p95").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "loadgen/flat_json.hpp"
#include "obs/histogram.hpp"
#include "util/common.hpp"

namespace cosched {

struct LatencySummary {
  Real mean = 0.0;
  Real p50 = 0.0;
  Real p95 = 0.0;
  Real p99 = 0.0;
  Real max = 0.0;

  static LatencySummary from(const Histogram& histogram);
};

struct BenchReport {
  std::string bench = "benchmark_app";
  std::string mode = "open";          ///< "open" | "closed"
  std::string deployment = "single";  ///< "single" | "router" | "remote"
  std::int64_t clients = 0;           ///< in-flight depth / stream count
  std::int64_t jobs_per_client = 0;   ///< 0 when requests are pooled
  std::uint64_t requests_ok = 0;      ///< measure phase only
  std::uint64_t requests_failed = 0;  ///< any phase
  std::uint64_t warmup_requests = 0;
  std::uint64_t cooldown_requests = 0;
  std::uint64_t late_sends = 0;
  Real max_late_ms = 0.0;
  Real offered_rps = 0.0;  ///< 0 in closed mode (no offered rate exists)
  Real achieved_rps = 0.0;
  Real wall_seconds = 0.0;  ///< measure window
  LatencySummary latency;   ///< measure phase only

  std::string to_json() const;
};

/// Writes `content` to `path`, creating parent directories. Shared by every
/// bench that emits a report or a scraped /metrics page.
bool write_text_file(const std::string& path, const std::string& content);

/// The four figures a regression check needs, pulled out of a parsed
/// baseline. `source_prefix` records where they were found ("" for the
/// flat schema, "sharded." for the router schema).
struct BaselineStats {
  bool ok = false;
  std::string source_prefix;
  Real throughput_rps = 0.0;
  Real p50_ms = 0.0;
  Real p95_ms = 0.0;
  Real p99_ms = 0.0;
};

BaselineStats extract_baseline(const FlatJson& json);

/// One gate of a comparison; `limit` is the value `current` must respect
/// (a floor for throughput, a ceiling for latency).
struct CompareCheck {
  std::string name;
  Real baseline = 0.0;
  Real current = 0.0;
  Real limit = 0.0;
  bool pass = true;
};

struct CompareResult {
  bool pass = true;
  std::vector<CompareCheck> checks;
  std::string describe() const;
};

/// Absolute slack added to latency ceilings (milliseconds) so relative
/// tolerances stay meaningful when the baseline is tiny.
inline constexpr Real kCompareLatencySlackMs = 2.0;

CompareResult compare_to_baseline(const BenchReport& current,
                                  const BaselineStats& baseline,
                                  Real tolerance);

}  // namespace cosched
