// LoadRunner — drives a CoschedServer/RouterServer with generated load.
//
// Two generator disciplines over the same worker pool:
//
//  * Open loop: requests are due at absolute schedule offsets regardless of
//    how fast the service answers. `concurrency` CoschedClient connections
//    bound the async in-flight depth; when every connection is busy a due
//    request is sent as soon as one frees up and counted as a *late send*
//    (with its lateness) instead of being silently rescheduled — coordinated
//    omission is measured, not hidden. A late-send count near zero means
//    the report reflects the offered arrival process; a large one means the
//    generator itself was the bottleneck and offered_rps overstates what
//    was actually applied.
//  * Closed loop: `concurrency` independent streams, each submitting its
//    next request when the previous reply lands (plus optional think time)
//    — the classic N-user model, useful for capacity probing but blind to
//    queueing collapse by construction.
//
// Every request is classified by the phase controller (warm-up / measure /
// cool-down on the global submission index); only Measure samples land in
// the reported histogram. Results are deterministic in shape (same jobs,
// same schedule, same phase split) though latencies are, of course, real
// wall-clock measurements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "loadgen/phase.hpp"
#include "online/trace.hpp"
#include "util/common.hpp"

namespace cosched {

enum class LoadMode { Open, Closed };

const char* to_string(LoadMode mode);

struct RunnerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  LoadMode mode = LoadMode::Open;
  /// Open loop: async in-flight depth (connection count). Closed loop:
  /// number of client streams.
  std::size_t concurrency = 4;
  /// Closed loop: pause between a reply and the stream's next request.
  Real think_seconds = 0.0;
  std::uint64_t warmup = 0;
  std::uint64_t cooldown = 0;
  /// A send this many ms behind its schedule slot counts as late.
  Real late_threshold_ms = 1.0;
  double request_timeout_seconds = 10.0;
  int max_attempts = 3;
  /// Simulated arrival rate stamped on submissions, jobs per *virtual*
  /// second. Virtual-time schedulers derive fleet load from these stamps,
  /// so leaving them equal to the real send times would couple the RPC
  /// request rate to simulated fleet utilization — a 30 rps transport test
  /// would stamp a 30 jobs/virtual-second arrival storm that saturates any
  /// fleet and turns every replan into a dense full-fleet solve. A positive
  /// value rescales: open-loop schedules are warped so their mean virtual
  /// rate is `virtual_rate` (preserving the Poisson/diurnal shape), closed
  /// streams stamp index / virtual_rate. 0 stamps real seconds unscaled
  /// (wall-clock servers, or when the coupling is the point).
  Real virtual_rate = 0.0;
};

struct LoadResult {
  PhaseStats warmup;
  PhaseStats measure;
  PhaseStats cooldown;
  /// Mean rate of the schedule (open loop); 0 in closed mode, where no
  /// offered rate exists independently of the service.
  Real offered_rps = 0.0;

  std::uint64_t total_requests() const {
    return warmup.requests + measure.requests + cooldown.requests;
  }
  std::uint64_t total_errors() const {
    return warmup.errors + measure.errors + cooldown.errors;
  }
  /// Measure-phase completions over the measure window.
  Real achieved_rps() const {
    Real window = measure.window_seconds();
    return window > 0.0 ? static_cast<Real>(measure.requests) / window : 0.0;
  }
};

class LoadRunner {
 public:
  explicit LoadRunner(RunnerOptions options);

  /// Runs the full job list. In open mode `schedule` must pair 1:1 with
  /// `jobs` (schedule[i] is job i's send offset in seconds) and each job's
  /// arrival_time is stamped from its slot; in closed mode `schedule` is
  /// ignored and arrivals are stamped from elapsed wall time, so a
  /// virtual-time scheduler tracks the real clock.
  LoadResult run(const std::vector<TraceJob>& jobs,
                 const std::vector<Real>& schedule) const;

 private:
  RunnerOptions options_;
};

}  // namespace cosched
