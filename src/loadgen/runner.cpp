#include "loadgen/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "loadgen/arrival.hpp"
#include "rpc/client.hpp"

namespace cosched {

const char* to_string(LoadMode mode) {
  switch (mode) {
    case LoadMode::Open: return "open";
    case LoadMode::Closed: return "closed";
  }
  return "?";
}

LoadRunner::LoadRunner(RunnerOptions options) : options_(std::move(options)) {
  COSCHED_EXPECTS(options_.concurrency >= 1);
  COSCHED_EXPECTS(options_.think_seconds >= 0.0);
  COSCHED_EXPECTS(options_.late_threshold_ms >= 0.0);
  COSCHED_EXPECTS(options_.virtual_rate >= 0.0);
}

namespace {

using Clock = std::chrono::steady_clock;

struct WorkerStats {
  PhaseStats phases[3];  ///< indexed by LoadPhase

  PhaseStats& of(LoadPhase phase) {
    return phases[static_cast<int>(phase)];
  }
};

/// One worker: pulls global indices until the list is exhausted. The
/// atomic counter is the only shared state — each worker owns its client
/// connection and its accumulator.
void worker_main(const RunnerOptions& options,
                 const std::vector<TraceJob>& jobs,
                 const std::vector<Real>& schedule,
                 const PhaseController& phases, Clock::time_point t0,
                 std::atomic<std::uint64_t>& next_index, WorkerStats& stats) {
  ClientOptions client_options;
  client_options.host = options.host;
  client_options.port = options.port;
  client_options.request_timeout_seconds = options.request_timeout_seconds;
  client_options.max_attempts = options.max_attempts;
  CoschedClient client(client_options);

  const bool open = options.mode == LoadMode::Open;
  while (true) {
    std::uint64_t i = next_index.fetch_add(1, std::memory_order_relaxed);
    if (i >= jobs.size()) break;
    PhaseStats& bucket = stats.of(phases.classify(i));

    Real late_ms = 0.0;
    if (open) {
      auto due = t0 + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(schedule[i]));
      auto now = Clock::now();
      if (now < due) {
        std::this_thread::sleep_until(due);
      } else {
        late_ms =
            std::chrono::duration<double, std::milli>(now - due).count();
      }
    }

    auto send_at = Clock::now();
    Real send_s = std::chrono::duration<double>(send_at - t0).count();
    TraceJob job = jobs[i];
    // Arrival stamp: the schedule slot (open) or the real elapsed time
    // (closed), rescaled to the configured virtual rate so fleet load does
    // not track the RPC request rate (see RunnerOptions::virtual_rate).
    Real stamp = open ? schedule[i] : send_s;
    if (options.virtual_rate > 0.0) {
      if (open) {
        // schedule carries `offered` arrivals per real second on average;
        // scaling by offered / virtual_rate re-times the same process to
        // virtual_rate arrivals per virtual second, shape preserved.
        Real offered = schedule_offered_rps(schedule);
        if (offered > 0.0) stamp = schedule[i] * (offered / options.virtual_rate);
      } else {
        stamp = static_cast<Real>(i) / options.virtual_rate;
      }
    }
    job.arrival_time = stamp;

    SubmitJobResponse reply;
    RpcError error = client.submit_job(job, reply);
    auto done_at = Clock::now();

    bucket.first_send_s = std::min(bucket.first_send_s, send_s);
    bucket.last_finish_s =
        std::max(bucket.last_finish_s,
                 std::chrono::duration<double>(done_at - t0).count());
    if (late_ms > options.late_threshold_ms) {
      ++bucket.late_sends;
      bucket.sum_late_ms += late_ms;
      bucket.max_late_ms = std::max(bucket.max_late_ms, late_ms);
    }
    if (error.ok()) {
      ++bucket.requests;
      bucket.latency_ms.add(
          std::chrono::duration<double, std::milli>(done_at - send_at)
              .count());
    } else {
      ++bucket.errors;
    }

    if (!open && options.think_seconds > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.think_seconds));
  }
}

}  // namespace

LoadResult LoadRunner::run(const std::vector<TraceJob>& jobs,
                           const std::vector<Real>& schedule) const {
  const bool open = options_.mode == LoadMode::Open;
  if (open) COSCHED_EXPECTS(schedule.size() == jobs.size());

  LoadResult result;
  if (jobs.empty()) return result;
  PhaseController phases(jobs.size(), options_.warmup, options_.cooldown);

  std::size_t worker_count = std::min(options_.concurrency, jobs.size());
  std::vector<WorkerStats> stats(worker_count);
  std::atomic<std::uint64_t> next_index{0};
  Clock::time_point t0 = Clock::now();

  std::vector<std::thread> workers;
  workers.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w)
    workers.emplace_back(worker_main, std::cref(options_), std::cref(jobs),
                         std::cref(schedule), std::cref(phases), t0,
                         std::ref(next_index), std::ref(stats[w]));
  for (std::thread& t : workers) t.join();

  for (WorkerStats& w : stats) {
    result.warmup.merge(w.of(LoadPhase::Warmup));
    result.measure.merge(w.of(LoadPhase::Measure));
    result.cooldown.merge(w.of(LoadPhase::Cooldown));
  }
  result.offered_rps = open ? schedule_offered_rps(schedule) : 0.0;
  return result;
}

}  // namespace cosched
