#include "loadgen/shapes.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace cosched {

const char* to_string(SizeDistribution distribution) {
  switch (distribution) {
    case SizeDistribution::Uniform: return "uniform";
    case SizeDistribution::Pareto: return "pareto";
  }
  return "?";
}

namespace {

/// Cumulative Zipf weights over `tenants` ranks: weight(r) = (r+1)^-skew.
/// Skew 0 degenerates to uniform.
std::vector<Real> zipf_cdf(std::int32_t tenants, Real skew) {
  std::vector<Real> cdf(static_cast<std::size_t>(tenants));
  Real total = 0.0;
  for (std::int32_t r = 0; r < tenants; ++r) {
    total += std::pow(static_cast<Real>(r + 1), -skew);
    cdf[static_cast<std::size_t>(r)] = total;
  }
  for (Real& v : cdf) v /= total;
  return cdf;
}

}  // namespace

std::vector<TraceJob> build_jobs(const ShapeSpec& spec, std::int32_t count) {
  COSCHED_EXPECTS(count >= 0);
  COSCHED_EXPECTS(spec.work_lo > 0.0 && spec.work_lo <= spec.work_hi);
  COSCHED_EXPECTS(spec.pareto_shape > 0.0 && spec.pareto_scale > 0.0);
  COSCHED_EXPECTS(spec.work_cap >= spec.pareto_scale);
  COSCHED_EXPECTS(spec.miss_rate_lo >= 0.0 &&
                  spec.miss_rate_lo <= spec.miss_rate_hi &&
                  spec.miss_rate_hi <= 1.0);
  COSCHED_EXPECTS(spec.parallel_fraction >= 0.0 &&
                  spec.parallel_fraction <= 1.0);
  COSCHED_EXPECTS(spec.max_parallel_processes >= 2);
  COSCHED_EXPECTS(spec.tenants >= 1);
  COSCHED_EXPECTS(spec.tenant_skew >= 0.0);

  Rng rng(spec.seed);
  std::vector<Real> tenant_cdf = zipf_cdf(spec.tenants, spec.tenant_skew);
  std::vector<TraceJob> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  for (std::int32_t i = 0; i < count; ++i) {
    TraceJob job;
    if (spec.size == SizeDistribution::Uniform) {
      job.work = rng.uniform_real(spec.work_lo, spec.work_hi);
    } else {
      // Inverse-CDF Pareto draw; u in (0, 1] avoids the pole at 0.
      Real u = 1.0 - rng.uniform01();
      job.work = std::min(spec.work_cap,
                          spec.pareto_scale *
                              std::pow(u, -1.0 / spec.pareto_shape));
    }
    job.miss_rate = rng.uniform_real(spec.miss_rate_lo, spec.miss_rate_hi);
    // Same sensitivity convention as generate_trace: correlated with cache
    // pressure plus an independent component.
    job.sensitivity = 0.3 + job.miss_rate + rng.uniform_real(-0.15, 0.15);
    if (rng.uniform01() < spec.parallel_fraction) {
      job.kind = JobKind::ParallelNoComm;
      job.processes = static_cast<std::int32_t>(
          rng.uniform_int(2, spec.max_parallel_processes));
    } else {
      job.kind = JobKind::Serial;
      job.processes = 1;
    }
    Real u = rng.uniform01();
    std::size_t tenant = static_cast<std::size_t>(
        std::lower_bound(tenant_cdf.begin(), tenant_cdf.end(), u) -
        tenant_cdf.begin());
    if (tenant >= tenant_cdf.size()) tenant = tenant_cdf.size() - 1;
    job.name = "t" + std::to_string(tenant) + "/" + spec.name_prefix +
               std::to_string(i);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace cosched
