// Communication-aware process condensation (paper Section III-E).
//
// Processes of the same parallel job are mutually interchangeable for
// contention purposes (they run the same code on equal shards). Two nodes
// of the same graph level are therefore equivalent — and only one needs to
// be expanded — when they contain (1) the same serial processes, (2) the
// same per-parallel-job member counts, and (3) identical communication
// properties (c_x, c_y, c_z) for every PC job present. PE jobs always have
// property (0,0,0), so for them condition (3) is vacuous, matching the
// paper's remark that condensation also applies to PE jobs.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "comm/comm_topology.hpp"
#include "workload/job_batch.hpp"

namespace cosched {

/// Opaque equivalence key of a node. Two nodes of the same level with equal
/// keys are interchangeable during expansion.
struct CondensationKey {
  std::string bytes;

  bool operator==(const CondensationKey& o) const { return bytes == o.bytes; }
};

struct CondensationKeyHash {
  std::size_t operator()(const CondensationKey& k) const {
    return std::hash<std::string>{}(k.bytes);
  }
};

/// Builds the key of `node` (sorted member ids). `topology` may be null
/// (no PC jobs); parallel jobs then key on job identity and count only.
CondensationKey condensation_key(std::span<const ProcessId> node,
                                 const JobBatch& batch,
                                 const CommTopology* topology);

}  // namespace cosched
