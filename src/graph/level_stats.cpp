#include "graph/level_stats.hpp"

#include <algorithm>

#include "util/combinatorics.hpp"

namespace cosched {

LevelStats LevelStats::build_exact(const NodeEvaluator& eval,
                                   HWeightMode mode,
                                   std::uint64_t max_nodes) {
  const Problem& problem = eval.problem();
  const std::int32_t n = problem.n();
  const std::int32_t u = problem.u();
  const std::uint64_t total =
      binomial(static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(u));
  COSCHED_EXPECTS(total <= max_nodes);

  LevelStats stats;
  stats.exact_ = true;
  stats.n_ = n;
  stats.u_ = u;
  stats.total_nodes_ = total;
  stats.min_level_weight_.assign(static_cast<std::size_t>(n), kInfinity);
  stats.sorted_nodes_.reserve(static_cast<std::size_t>(total));

  std::vector<ProcessId> node(static_cast<std::size_t>(u));
  // Levels exist for lead in [0, n-u].
  for (ProcessId lead = 0; lead + u <= n; ++lead) {
    std::vector<std::int32_t> pool;
    pool.reserve(static_cast<std::size_t>(n - lead - 1));
    for (ProcessId p = lead + 1; p < n; ++p) pool.push_back(p);
    for_each_combination(
        pool, static_cast<std::size_t>(u - 1),
        [&](const std::vector<std::int32_t>& comb) {
          node[0] = lead;
          for (std::size_t j = 0; j < comb.size(); ++j) node[j + 1] = comb[j];
          Real w = eval.h_weight(node, mode);
          auto& mw = stats.min_level_weight_[static_cast<std::size_t>(lead)];
          if (w < mw) mw = w;
          stats.sorted_nodes_.emplace_back(static_cast<float>(w), lead);
          return true;
        });
  }
  std::sort(stats.sorted_nodes_.begin(), stats.sorted_nodes_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return stats;
}

LevelStats LevelStats::build_approx(const NodeEvaluator& eval,
                                    HWeightMode mode) {
  const Problem& problem = eval.problem();
  const DegradationModel& model = eval.model();
  const std::int32_t n = problem.n();
  const std::int32_t u = problem.u();

  LevelStats stats;
  stats.exact_ = false;
  stats.n_ = n;
  stats.u_ = u;
  stats.total_nodes_ =
      binomial(static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(u));
  stats.min_level_weight_.assign(static_cast<std::size_t>(n), kInfinity);

  // Estimate each level's on-path node weight with *typical* (median-
  // pressure) co-runners rather than the globally cheapest ones: the
  // cheapest co-runners can each be used by only one level of a real path,
  // so a per-level "true minimum" underestimates the remaining cost so
  // badly that the search degenerates toward Dijkstra. A typical-co-runner
  // estimate keeps h near the real per-level cost; HA* (the only consumer
  // of approximate stats) does not require admissibility.
  std::vector<ProcessId> by_pressure(static_cast<std::size_t>(n));
  for (std::int32_t p = 0; p < n; ++p)
    by_pressure[static_cast<std::size_t>(p)] = p;
  std::sort(by_pressure.begin(), by_pressure.end(),
            [&](ProcessId a, ProcessId b) {
              return model.pressure(a) < model.pressure(b);
            });

  std::vector<ProcessId> node;
  for (ProcessId lead = 0; lead + u <= n; ++lead) {
    node.clear();
    node.push_back(lead);
    // Walk outward from the pressure median so the chosen co-runners are
    // representative of an average machine's load.
    std::size_t mid = by_pressure.size() / 2;
    for (std::size_t offset = 0;
         offset < by_pressure.size() &&
         static_cast<std::int32_t>(node.size()) < u;
         ++offset) {
      std::size_t idx =
          (offset % 2 == 0) ? mid + offset / 2
                            : mid - 1 - offset / 2 + (mid == 0 ? 1 : 0);
      if (idx >= by_pressure.size()) continue;
      ProcessId cand = by_pressure[idx];
      if (cand == lead) continue;
      node.push_back(cand);
    }
    COSCHED_ENSURES(static_cast<std::int32_t>(node.size()) == u);
    std::sort(node.begin(), node.end());
    stats.min_level_weight_[static_cast<std::size_t>(lead)] =
        eval.h_weight(node, mode);
  }
  return stats;
}

Real LevelStats::min_level_weight(ProcessId lead) const {
  COSCHED_EXPECTS(lead >= 0 && lead < n_);
  return min_level_weight_[static_cast<std::size_t>(lead)];
}

Real LevelStats::strategy2_h(const std::vector<ProcessId>& unscheduled,
                             std::int32_t k) const {
  if (k <= 0) return 0.0;
  thread_local std::vector<Real> weights;
  weights.clear();
  for (ProcessId p : unscheduled) {
    if (p + u_ > n_) continue;  // cannot lead a level
    Real w = min_level_weight_[static_cast<std::size_t>(p)];
    if (w < kInfinity) weights.push_back(w);
  }
  // Fewer candidate levels than remaining machines can only happen near the
  // end of the graph; the missing terms lower-bound to 0.
  std::int32_t take = std::min<std::int32_t>(
      k, static_cast<std::int32_t>(weights.size()));
  if (take <= 0) return 0.0;
  std::nth_element(weights.begin(), weights.begin() + (take - 1),
                   weights.end());
  Real h = 0.0;
  for (std::int32_t i = 0; i < take; ++i) h += weights[static_cast<std::size_t>(i)];
  return h;
}

Real LevelStats::strategy1_h(ProcessId level_gt, std::int32_t k) const {
  COSCHED_EXPECTS(exact_);
  if (k <= 0) return 0.0;
  Real h = 0.0;
  std::int32_t taken = 0;
  for (const auto& [w, level] : sorted_nodes_) {
    if (level <= level_gt) continue;
    h += static_cast<Real>(w);
    if (++taken == k) break;
  }
  return h;
}

}  // namespace cosched
