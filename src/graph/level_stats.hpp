// Static per-level statistics of the co-scheduling graph, backing the two
// h(v) strategies of the paper (Section III-D).
//
// Level i of the graph holds every u-subset whose smallest process id is i.
// Strategy 1 needs all node weights of levels > l sorted ascending;
// Strategy 2 needs the minimum node weight of each level. Both are static
// (path-independent), so they are computed once per search.
//
// Two build modes:
//  * exact  — enumerate all C(n,u) nodes (feasible up to a few million
//             nodes; every OA* experiment in the paper is in this range);
//  * approx — per-level greedy estimate using the model's pressure
//             surrogate; used by HA* at scales where enumeration is
//             impossible (Fig. 13 runs n = 1208 ⇒ C(n,4) ≈ 8.8e10).
//             Approximate stats are NOT admissible and are only used by the
//             heuristic search.
#pragma once

#include <cstdint>
#include <vector>

#include "core/node_eval.hpp"

namespace cosched {

class LevelStats {
 public:
  /// Exact enumeration. `mode` controls how parallel processes count in the
  /// h-weight (see HWeightMode). Aborts with ContractViolation if the graph
  /// exceeds `max_nodes` (guards against accidental blow-up).
  static LevelStats build_exact(const NodeEvaluator& eval, HWeightMode mode,
                                std::uint64_t max_nodes = 20'000'000);

  /// Greedy approximation: the minimum weight of level i is estimated by the
  /// node {i} ∪ {u-1 lowest-pressure ids > i}.
  static LevelStats build_approx(const NodeEvaluator& eval, HWeightMode mode);

  bool exact() const { return exact_; }
  std::uint64_t total_nodes() const { return total_nodes_; }

  /// Minimum h-weight among nodes of level `lead` (the level whose nodes
  /// start with process `lead`). Returns 0 for the last level... no: returns
  /// the computed value; levels exist for lead in [0, n-u].
  Real min_level_weight(ProcessId lead) const;

  /// Strategy 2: sum of the `k` smallest min_level_weight values over the
  /// given unscheduled process ids (only ids that can lead a level, i.e.
  /// id <= n-u, participate; others are ignored).
  Real strategy2_h(const std::vector<ProcessId>& unscheduled,
                   std::int32_t k) const;

  /// Strategy 1: sum of the `k` smallest node h-weights among all nodes in
  /// levels strictly greater than `level_gt`. Requires exact().
  Real strategy1_h(ProcessId level_gt, std::int32_t k) const;

 private:
  bool exact_ = false;
  std::int32_t n_ = 0;
  std::int32_t u_ = 0;
  std::uint64_t total_nodes_ = 0;
  std::vector<Real> min_level_weight_;  // indexed by lead id
  /// (h-weight, level) of every node, sorted by weight ascending (exact
  /// builds only). float keeps it compact; h is a bound, not an objective.
  std::vector<std::pair<float, std::int32_t>> sorted_nodes_;
};

}  // namespace cosched
