#include "graph/node_enumerator.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "util/combinatorics.hpp"

namespace cosched {

void for_each_valid_node(
    ProcessId lead, const std::vector<ProcessId>& pool, std::int32_t u,
    const std::function<bool(std::span<const ProcessId>)>& fn) {
  COSCHED_EXPECTS(u >= 1);
  COSCHED_EXPECTS(static_cast<std::int32_t>(pool.size()) >= u - 1);
  std::vector<ProcessId> node(static_cast<std::size_t>(u));
  node[0] = lead;
  if (u == 1) {
    fn(node);
    return;
  }
  for_each_combination(pool, static_cast<std::size_t>(u - 1),
                       [&](const std::vector<std::int32_t>& comb) {
                         for (std::size_t j = 0; j < comb.size(); ++j)
                           node[j + 1] = comb[j];
                         return fn(node);
                       });
}

namespace {

std::vector<NodeCandidate> k_best_exact(const NodeEvaluator& eval,
                                        ProcessId lead,
                                        const std::vector<ProcessId>& pool,
                                        std::int32_t u, std::int32_t k) {
  std::vector<NodeCandidate> all;
  std::vector<Real> d_scratch;
  for_each_valid_node(lead, pool, u, [&](std::span<const ProcessId> node) {
    NodeCandidate c;
    c.node.assign(node.begin(), node.end());
    c.weight = eval.weight(node, d_scratch);
    c.member_d = d_scratch;
    all.push_back(std::move(c));
    return true;
  });
  std::int32_t take =
      std::min<std::int32_t>(k, static_cast<std::int32_t>(all.size()));
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    [](const NodeCandidate& a, const NodeCandidate& b) {
                      if (a.weight != b.weight) return a.weight < b.weight;
                      return a.node < b.node;  // deterministic tie-break
                    });
  all.resize(static_cast<std::size_t>(take));
  return all;
}

/// Best-first generation of (u-1)-subsets of `sorted_pool` (sorted by
/// surrogate key ascending) in increasing key-sum order. Standard k-smallest
/// -sums frontier search over index tuples.
class SubsetHeap {
 public:
  SubsetHeap(const std::vector<ProcessId>& sorted_pool,
             const std::vector<Real>& keys, std::size_t m)
      : pool_(sorted_pool), keys_(keys), m_(m) {
    COSCHED_EXPECTS(m_ >= 1);
    COSCHED_EXPECTS(pool_.size() >= m_);
    std::vector<std::int32_t> first(m_);
    Real sum = 0.0;
    for (std::size_t j = 0; j < m_; ++j) {
      first[j] = static_cast<std::int32_t>(j);
      sum += keys_[j];
    }
    push(std::move(first), sum);
  }

  bool next(std::vector<ProcessId>& subset_out) {
    while (!heap_.empty()) {
      Entry top = heap_.top();
      heap_.pop();
      // Successors: advance any position j (keeping indices strictly
      // increasing); dedupe via the visited set.
      for (std::size_t j = 0; j < m_; ++j) {
        std::int32_t limit =
            (j + 1 < m_) ? top.idx[j + 1]
                         : static_cast<std::int32_t>(pool_.size());
        if (top.idx[j] + 1 < limit) {
          std::vector<std::int32_t> succ = top.idx;
          Real sum = top.sum - keys_[static_cast<std::size_t>(succ[j])] +
                     keys_[static_cast<std::size_t>(succ[j] + 1)];
          ++succ[j];
          push(std::move(succ), sum);
        }
      }
      subset_out.clear();
      for (std::int32_t i : top.idx)
        subset_out.push_back(pool_[static_cast<std::size_t>(i)]);
      return true;
    }
    return false;
  }

 private:
  struct Entry {
    Real sum;
    std::vector<std::int32_t> idx;
    bool operator>(const Entry& o) const { return sum > o.sum; }
  };

  void push(std::vector<std::int32_t> idx, Real sum) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::int32_t v : idx) {
      h ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL;
      h *= 0x100000001b3ULL;
    }
    if (!visited_.insert(h).second) return;
    heap_.push(Entry{sum, std::move(idx)});
  }

  const std::vector<ProcessId>& pool_;
  const std::vector<Real>& keys_;
  std::size_t m_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<std::uint64_t> visited_;
};

std::vector<NodeCandidate> k_best_surrogate(
    const NodeEvaluator& eval, ProcessId lead,
    const std::vector<ProcessId>& pool, std::int32_t u, std::int32_t k,
    std::size_t overgen) {
  if (u == 1) return k_best_exact(eval, lead, pool, u, k);
  const DegradationModel& model = eval.model();

  // Pool sorted by pressure (the surrogate for inflicted+suffered load).
  std::vector<ProcessId> sorted_pool = pool;
  std::sort(sorted_pool.begin(), sorted_pool.end(),
            [&](ProcessId a, ProcessId b) {
              Real pa = model.pressure(a), pb = model.pressure(b);
              if (pa != pb) return pa < pb;
              return a < b;
            });
  std::vector<Real> keys;
  keys.reserve(sorted_pool.size());
  for (ProcessId p : sorted_pool) keys.push_back(model.pressure(p));

  SubsetHeap gen(sorted_pool, keys, static_cast<std::size_t>(u - 1));
  std::size_t want = static_cast<std::size_t>(k) * overgen;
  std::vector<NodeCandidate> cands;
  std::vector<ProcessId> subset;
  std::vector<Real> d_scratch;
  std::vector<ProcessId> node(static_cast<std::size_t>(u));
  while (cands.size() < want && gen.next(subset)) {
    node[0] = lead;
    std::sort(subset.begin(), subset.end());
    for (std::size_t j = 0; j < subset.size(); ++j) node[j + 1] = subset[j];
    NodeCandidate c;
    c.node = node;
    c.weight = eval.weight(node, d_scratch);
    c.member_d = d_scratch;
    cands.push_back(std::move(c));
  }
  std::int32_t take =
      std::min<std::int32_t>(k, static_cast<std::int32_t>(cands.size()));
  std::partial_sort(cands.begin(), cands.begin() + take, cands.end(),
                    [](const NodeCandidate& a, const NodeCandidate& b) {
                      if (a.weight != b.weight) return a.weight < b.weight;
                      return a.node < b.node;
                    });
  cands.resize(static_cast<std::size_t>(take));
  return cands;
}

}  // namespace

std::vector<NodeCandidate> k_best_valid_nodes(
    const NodeEvaluator& eval, ProcessId lead,
    const std::vector<ProcessId>& pool, std::int32_t u, std::int32_t k,
    CandidateSelection selection, std::size_t overgen) {
  COSCHED_EXPECTS(k >= 1);
  if (selection == CandidateSelection::Auto) {
    std::uint64_t level_size =
        binomial(pool.size(), static_cast<std::uint64_t>(u - 1));
    selection = level_size <= 50'000 ? CandidateSelection::ExactSort
                                     : CandidateSelection::SurrogateHeap;
  }
  if (selection == CandidateSelection::ExactSort)
    return k_best_exact(eval, lead, pool, u, k);
  return k_best_surrogate(eval, lead, pool, u, k, overgen);
}

}  // namespace cosched
