#include "graph/condensation.hpp"

namespace cosched {
namespace {

void append_i32(std::string& s, std::int32_t v) {
  s.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

}  // namespace

CondensationKey condensation_key(std::span<const ProcessId> node,
                                 const JobBatch& batch,
                                 const CommTopology* topology) {
  CondensationKey key;
  key.bytes.reserve(node.size() * 8 + 16);

  // Member identity part: serial/imaginary processes keep their concrete id
  // (distinct programs are never interchangeable); parallel members are
  // reduced to their job id. Node members are sorted and processes of one
  // job are contiguous ids, so equal multisets serialize identically.
  JobId last_parallel_job = kInvalidJob;
  for (ProcessId p : node) {
    const Job& job = batch.job_of_process(p);
    if (job.is_parallel()) {
      append_i32(key.bytes, -2);  // tag: parallel member
      append_i32(key.bytes, job.id);
      last_parallel_job = job.id;
    } else {
      append_i32(key.bytes, -1);  // tag: concrete process
      append_i32(key.bytes, p);
    }
  }

  // Communication-property part: for every distinct parallel job in the
  // node, its (c_x, c_y, c_z) w.r.t. this node's members.
  if (topology != nullptr) {
    JobId prev = kInvalidJob;
    for (ProcessId p : node) {
      const Job& job = batch.job_of_process(p);
      if (!job.is_parallel() || job.id == prev) continue;
      prev = job.id;
      auto prop = topology->comm_property(job.id, node);
      append_i32(key.bytes, -3);  // tag: comm property record
      append_i32(key.bytes, job.id);
      for (std::int32_t c : prop) append_i32(key.bytes, c);
    }
  }
  (void)last_parallel_job;
  return key;
}

}  // namespace cosched
