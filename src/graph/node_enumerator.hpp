// Lazy enumeration of a level's valid nodes during search expansion.
//
// When the search expands a subpath, the valid level is led by the smallest
// unscheduled process id; valid nodes are {lead} ∪ any (u-1)-subset of the
// remaining unscheduled ids. OA* visits all of them; HA* only the k
// cheapest by node weight (k = n/u, the MER function). At small scale the k
// cheapest are found by full enumeration + partial selection; at large
// scale they are generated best-first over a separable pressure surrogate
// and re-ranked by true weight (DESIGN.md §3 "HA*").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/node_eval.hpp"

namespace cosched {

/// A candidate node with its evaluation.
struct NodeCandidate {
  std::vector<ProcessId> node;  ///< sorted; node[0] == lead
  Real weight = 0.0;            ///< Σ member degradations
  std::vector<Real> member_d;   ///< degradation per member, node order
};

/// Invokes `fn` for every valid node of the level led by `lead`, where
/// `pool` holds the unscheduled ids greater than `lead` (sorted ascending).
/// `fn` returns false to stop. The span passed to `fn` is reused.
void for_each_valid_node(
    ProcessId lead, const std::vector<ProcessId>& pool, std::int32_t u,
    const std::function<bool(std::span<const ProcessId>)>& fn);

enum class CandidateSelection {
  Auto,          ///< Exact when the level is small, surrogate otherwise
  ExactSort,     ///< enumerate + select k smallest true weights
  SurrogateHeap, ///< best-first over pressure sums, re-rank by true weight
};

/// Returns up to `k` valid nodes of the level, cheapest true weight first.
/// `overgen` (surrogate mode) controls how many candidates are generated per
/// requested node before re-ranking.
std::vector<NodeCandidate> k_best_valid_nodes(
    const NodeEvaluator& eval, ProcessId lead,
    const std::vector<ProcessId>& pool, std::int32_t u, std::int32_t k,
    CandidateSelection selection, std::size_t overgen = 4);

}  // namespace cosched
