#include "workload/job_batch.hpp"

namespace cosched {

const char* to_string(JobKind k) {
  switch (k) {
    case JobKind::Serial: return "serial";
    case JobKind::ParallelNoComm: return "PE";
    case JobKind::ParallelComm: return "PC";
    case JobKind::Imaginary: return "imaginary";
  }
  return "?";
}

JobId JobBatch::add_job(std::string name, JobKind kind,
                        std::int32_t process_count) {
  COSCHED_EXPECTS(process_count >= 1);
  if (kind == JobKind::Serial || kind == JobKind::Imaginary)
    COSCHED_EXPECTS(process_count == 1);
  // Imaginary padding must come last so real process ids stay contiguous.
  if (!jobs_.empty() && kind != JobKind::Imaginary)
    COSCHED_EXPECTS(jobs_.back().kind != JobKind::Imaginary);

  Job job;
  job.id = job_count();
  job.name = std::move(name);
  job.kind = kind;
  if (is_parallel_kind(kind)) job.parallel_index = parallel_job_count_++;
  for (std::int32_t r = 0; r < process_count; ++r) {
    ProcessId pid = this->process_count();
    job.processes.push_back(pid);
    process_job_.push_back(job.id);
  }
  if (kind != JobKind::Imaginary) real_process_count_ += process_count;
  jobs_.push_back(std::move(job));
  return jobs_.back().id;
}

std::int32_t JobBatch::pad_to_multiple(std::int32_t u) {
  COSCHED_EXPECTS(u >= 1);
  std::int32_t added = 0;
  while (process_count() % u != 0) {
    add_job("imaginary" + std::to_string(added), JobKind::Imaginary, 1);
    ++added;
  }
  return added;
}

std::string JobBatch::process_label(ProcessId p) const {
  const Job& j = job_of_process(p);
  if (j.processes.size() == 1) return j.name;
  for (std::size_t r = 0; r < j.processes.size(); ++r)
    if (j.processes[r] == p)
      return j.name + "[" + std::to_string(r) + "]";
  return j.name + "[?]";
}

}  // namespace cosched
