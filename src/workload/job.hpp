// Jobs and processes.
//
// The unit of placement is the *process*: a serial job owns one process, a
// parallel job owns several. Parallel jobs come in two flavours (paper
// Section II-B): PE (embarrassingly parallel, no communication) and PC
// (parallel with communications). Imaginary processes pad the batch to a
// multiple of the core count u; they neither suffer nor cause degradation.
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace cosched {

enum class JobKind {
  Serial,           ///< one process, degradation summed (Eq. 2)
  ParallelNoComm,   ///< PE job: max over processes (Eq. 5-6)
  ParallelComm,     ///< PC job: max over comm-combined degradation (Eq. 9)
  Imaginary,        ///< padding; zero degradation both ways
};

inline bool is_parallel_kind(JobKind k) {
  return k == JobKind::ParallelNoComm || k == JobKind::ParallelComm;
}

const char* to_string(JobKind k);

struct Job {
  JobId id = kInvalidJob;
  std::string name;
  JobKind kind = JobKind::Serial;
  /// Consecutive process ids owned by this job (exactly 1 for serial jobs).
  std::vector<ProcessId> processes;
  /// Index among parallel jobs (0..P-1) for per-job max bookkeeping in the
  /// search state; -1 for serial/imaginary jobs.
  std::int32_t parallel_index = -1;

  bool is_parallel() const { return is_parallel_kind(kind); }
};

}  // namespace cosched
