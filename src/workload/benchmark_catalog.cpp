#include "workload/benchmark_catalog.hpp"

#include <algorithm>

#include "cache/lru_cache_sim.hpp"

namespace cosched {
namespace {

// Hash a program name into a stable per-program trace seed component.
std::uint64_t name_seed(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<CatalogEntry> build_catalog() {
  using R = CatalogEntry::RegionSpec;
  std::vector<CatalogEntry> cat;

  // --- NPB3.3-SER stand-ins (problem size C flavour) -----------------------
  // Mix of a hot small region and a cold large region; compute intensity and
  // large-region size tuned so miss rates span cache-friendly to thrashing.
  cat.push_back({"BT", {R{0.05, 3.0}, R{0.60, 1.0}}, 0.00, 72.0});
  cat.push_back({"CG", {R{0.02, 1.0}, R{1.50, 2.0, 1, 0.50}}, 0.00, 24.0});
  cat.push_back({"EP", {R{0.002, 1.0}}, 0.00, 160.0});
  cat.push_back({"FT", {R{2.00, 1.0}, R{0.10, 1.0}}, 0.05, 40.0});
  cat.push_back({"IS", {R{1.20, 1.0, 1, 0.90}, R{0.05, 1.0}}, 0.00, 20.0});
  cat.push_back({"LU", {R{0.25, 2.0}, R{0.90, 1.0}}, 0.00, 56.0});
  cat.push_back({"MG", {R{1.80, 1.0, 2}, R{0.08, 1.0}}, 0.00, 32.0});
  cat.push_back({"SP", {R{0.30, 2.0}, R{0.80, 1.0}}, 0.00, 60.0});
  cat.push_back({"UA", {R{0.50, 1.0, 1, 0.30}, R{0.05, 2.0}}, 0.00, 48.0});
  cat.push_back({"DC", {R{1.00, 1.0, 1, 0.60}}, 0.25, 24.0});

  // --- SPEC CPU 2000 stand-ins ---------------------------------------------
  cat.push_back({"applu", {R{0.35, 2.0}, R{1.00, 1.0}}, 0.00, 52.0});
  cat.push_back({"art", {R{1.30, 3.0}, R{0.01, 1.0}}, 0.00, 16.0});
  cat.push_back({"ammp", {R{0.40, 1.0, 1, 0.20}, R{0.08, 2.0}}, 0.00, 48.0});
  cat.push_back({"equake", {R{1.10, 2.0}, R{0.05, 1.0}}, 0.00, 28.0});
  cat.push_back({"galgel", {R{0.15, 3.0}, R{0.50, 1.0}}, 0.00, 64.0});
  cat.push_back({"vpr", {R{0.45, 2.0, 1, 0.40}, R{0.03, 1.0}}, 0.00, 40.0});

  // --- Embarrassingly parallel (PE) programs -------------------------------
  // PI and MMS are compute-intensive (paper Section V); RA is the HPCC
  // RandomAccess kernel, the canonical memory-intensive antagonist.
  cat.push_back({"PI", {R{0.001, 1.0}}, 0.00, 200.0});
  cat.push_back({"MMS", {R{0.004, 1.0}}, 0.00, 180.0});
  cat.push_back({"RA", {R{4.00, 1.0, 1, 1.00}}, 0.00, 12.0});
  cat.push_back({"MCM", {R{0.01, 1.0}}, 0.00, 140.0});
  cat.push_back({"EP-Par", {R{0.002, 1.0}}, 0.00, 160.0});

  // --- NPB3.3-MPI (PC) stand-ins — per-process working sets ----------------
  cat.push_back({"BT-Par", {R{0.08, 3.0}, R{0.50, 1.0}}, 0.00, 64.0});
  cat.push_back({"CG-Par", {R{0.03, 1.0}, R{1.20, 2.0, 1, 0.50}}, 0.00, 24.0});
  cat.push_back({"LU-Par", {R{0.20, 2.0}, R{0.80, 1.0}}, 0.00, 52.0});
  cat.push_back({"MG-Par", {R{1.50, 1.0, 2}, R{0.06, 1.0}}, 0.00, 32.0});

  return cat;
}

}  // namespace

const std::vector<CatalogEntry>& benchmark_catalog() {
  static const std::vector<CatalogEntry> catalog = build_catalog();
  return catalog;
}

bool has_catalog_entry(const std::string& name) {
  const auto& cat = benchmark_catalog();
  return std::any_of(cat.begin(), cat.end(),
                     [&](const CatalogEntry& e) { return e.name == name; });
}

const CatalogEntry& catalog_entry(const std::string& name) {
  for (const auto& e : benchmark_catalog())
    if (e.name == name) return e;
  throw ContractViolation("unknown catalog program: " + name);
}

std::vector<std::string> npb_serial_names() {
  return {"BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP", "UA", "DC"};
}
std::vector<std::string> spec_serial_names() {
  return {"applu", "art", "ammp", "equake", "galgel", "vpr"};
}
std::vector<std::string> pe_program_names() {
  return {"PI", "MMS", "RA", "MCM", "EP-Par"};
}
std::vector<std::string> pc_program_names() {
  return {"BT-Par", "CG-Par", "LU-Par", "MG-Par"};
}

ProgramCharacterizer::ProgramCharacterizer(MachineConfig machine,
                                           std::size_t trace_length,
                                           std::uint64_t seed,
                                           std::uint32_t cache_scale)
    : machine_(std::move(machine)), trace_length_(trace_length), seed_(seed) {
  COSCHED_EXPECTS(trace_length_ >= 1000);
  COSCHED_EXPECTS(cache_scale >= 1);
  sim_cache_ = machine_.shared_cache;
  sim_cache_.num_sets = std::max<std::uint32_t>(
      16, machine_.shared_cache.num_sets / cache_scale);
}

const CharacterizedProgram& ProgramCharacterizer::characterize(
    const std::string& name) {
  auto it = cache_.find(name);
  if (it != cache_.end()) return *it->second;

  const CatalogEntry& entry = catalog_entry(name);
  // Build the absolute locality spec against the set-sampled cache (the
  // catalog sizes regions as cache fractions, so scaling is automatic).
  LocalitySpec spec;
  spec.streaming_prob = entry.streaming_prob;
  const Real cache_lines = static_cast<Real>(sim_cache_.size_lines());
  for (const auto& r : entry.regions) {
    LocalityRegion region;
    region.size_lines = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(r.size_frac * cache_lines));
    region.weight = r.weight;
    region.stride_lines = r.stride;
    region.jump_prob = r.jump_prob;
    spec.regions.push_back(region);
  }

  TraceGenerator gen(spec, seed_ ^ name_seed(name));
  std::vector<std::uint64_t> trace = gen.generate(trace_length_);
  CacheSimResult sim = LruCacheSim::simulate(sim_cache_, trace);

  auto prog = std::make_unique<CharacterizedProgram>();
  prog->name = name;
  prog->sdp = sim.sdp;
  prog->timing.base_cycles =
      static_cast<Real>(trace_length_) * entry.compute_cycles_per_access;
  prog->timing.solo_misses = static_cast<Real>(sim.misses);
  prog->solo_time_seconds =
      cpu_time_seconds(prog->timing, prog->timing.solo_misses, machine_);
  prog->solo_miss_rate = sim.miss_rate();

  auto [pos, inserted] = cache_.emplace(name, std::move(prog));
  COSCHED_ENSURES(inserted);
  return *pos->second;
}

}  // namespace cosched
