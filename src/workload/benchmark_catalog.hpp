// The benchmark catalog: parametric stand-ins for the programs the paper
// evaluates with (NPB3.3-SER, SPEC CPU 2000, NPB3.3-MPI and five
// embarrassingly-parallel codes).
//
// Each entry is a locality mixture (region sizes expressed as fractions of
// the shared cache so the same program exhibits different miss rates on the
// 4MB/8MB/20MB machines, as real programs do) plus a compute intensity.
// Characterization = generate the program's synthetic trace, run it through
// the machine's shared cache (LruCacheSim) to get its solo SDP/miss count,
// and derive the Eq. 14 timing. This mirrors the paper's measurement
// pipeline with the hardware replaced by simulation (DESIGN.md
// "Substitutions").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cpu_time_model.hpp"
#include "cache/machine_config.hpp"
#include "cache/stack_distance.hpp"
#include "cache/trace_gen.hpp"

namespace cosched {

struct CatalogEntry {
  struct RegionSpec {
    Real size_frac;   ///< region size as a fraction of shared-cache lines
    Real weight;      ///< mixture weight
    std::uint64_t stride = 1;
    Real jump_prob = 0.0;
  };

  std::string name;
  std::vector<RegionSpec> regions;
  Real streaming_prob = 0.0;
  /// Non-stall (compute) cycles per memory access; high = compute-bound.
  Real compute_cycles_per_access = 10.0;
};

/// All programs: NPB-SER (BT..DC), SPEC (applu..vpr), PE programs
/// (PI, MMS, RA, MCM, EP-Par) and PC MPI programs (BT-Par, CG-Par, LU-Par,
/// MG-Par).
const std::vector<CatalogEntry>& benchmark_catalog();

bool has_catalog_entry(const std::string& name);
const CatalogEntry& catalog_entry(const std::string& name);

/// Names of the serial programs used in the paper's experiments.
std::vector<std::string> npb_serial_names();   // 10 programs
std::vector<std::string> spec_serial_names();  // 6 programs
std::vector<std::string> pe_program_names();   // 5 programs
std::vector<std::string> pc_program_names();   // 4 programs

/// A program characterized on a concrete machine.
struct CharacterizedProgram {
  std::string name;
  StackDistanceProfile sdp;   ///< solo SDP on the machine's shared cache
  ProgramTiming timing;       ///< base cycles + solo misses
  Real solo_time_seconds = 0; ///< Eq. 14 with solo misses
  Real solo_miss_rate = 0;
};

/// Characterizes catalog programs on one machine, memoizing results.
/// Deterministic for a fixed (machine, trace_length, seed).
///
/// Simulation uses *set sampling*: the shared cache is simulated with
/// num_sets/cache_scale sets (associativity unchanged) and the catalog's
/// cache-relative region sizes shrink proportionally, so a short trace
/// still cycles each working set many times. This preserves the SDP shape
/// (which is all the SDC model consumes) while keeping characterization
/// milliseconds instead of minutes.
class ProgramCharacterizer {
 public:
  explicit ProgramCharacterizer(MachineConfig machine,
                                std::size_t trace_length = 200000,
                                std::uint64_t seed = 42,
                                std::uint32_t cache_scale = 64);

  const MachineConfig& machine() const { return machine_; }

  /// Characterizes `name` (must exist in the catalog).
  const CharacterizedProgram& characterize(const std::string& name);

 private:
  MachineConfig machine_;
  std::size_t trace_length_;
  std::uint64_t seed_;
  CacheConfig sim_cache_;  ///< set-sampled shared cache
  std::unordered_map<std::string, std::unique_ptr<CharacterizedProgram>>
      cache_;
};

}  // namespace cosched
