// JobBatch: the set of jobs (and their processes) to be co-scheduled.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace cosched {

class JobBatch {
 public:
  JobBatch() = default;

  /// Appends a job with `process_count` freshly numbered processes.
  /// Serial and imaginary jobs must have exactly one process.
  JobId add_job(std::string name, JobKind kind, std::int32_t process_count);

  /// Appends imaginary single-process jobs until process_count() is a
  /// multiple of u (paper Section II-A). Returns how many were added.
  std::int32_t pad_to_multiple(std::int32_t u);

  std::int32_t job_count() const {
    return static_cast<std::int32_t>(jobs_.size());
  }
  std::int32_t process_count() const {
    return static_cast<std::int32_t>(process_job_.size());
  }
  /// Processes excluding imaginary padding.
  std::int32_t real_process_count() const { return real_process_count_; }
  /// Number of parallel (PE or PC) jobs.
  std::int32_t parallel_job_count() const { return parallel_job_count_; }

  const Job& job(JobId id) const {
    COSCHED_EXPECTS(id >= 0 && id < job_count());
    return jobs_[static_cast<std::size_t>(id)];
  }
  const std::vector<Job>& jobs() const { return jobs_; }

  JobId job_of(ProcessId p) const {
    COSCHED_EXPECTS(p >= 0 && p < process_count());
    return process_job_[static_cast<std::size_t>(p)];
  }
  const Job& job_of_process(ProcessId p) const { return job(job_of(p)); }

  JobKind kind_of(ProcessId p) const { return job_of_process(p).kind; }
  bool is_imaginary(ProcessId p) const {
    return kind_of(p) == JobKind::Imaginary;
  }
  bool is_parallel_process(ProcessId p) const {
    return job_of_process(p).is_parallel();
  }
  /// Parallel index (0..P-1) of the process's job, or -1.
  std::int32_t parallel_index_of(ProcessId p) const {
    return job_of_process(p).parallel_index;
  }

  /// Human-readable "name[rank]" label of a process.
  std::string process_label(ProcessId p) const;

 private:
  std::vector<Job> jobs_;
  std::vector<JobId> process_job_;
  std::int32_t real_process_count_ = 0;
  std::int32_t parallel_job_count_ = 0;
};

}  // namespace cosched
