#include "harness/experiment.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

namespace cosched {

ArgParser::ArgParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    std::string name = arg.substr(2);
    std::string value;
    auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    args_.emplace_back(std::move(name), std::move(value));
  }
}

bool ArgParser::has(const std::string& name) const {
  for (const auto& [k, v] : args_)
    if (k == name) return true;
  return false;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  for (const auto& [k, v] : args_)
    if (k == name) return v;
  return fallback;
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  for (const auto& [k, v] : args_)
    if (k == name && !v.empty()) return std::stoll(v);
  return fallback;
}

Real ArgParser::get_real(const std::string& name, Real fallback) const {
  for (const auto& [k, v] : args_)
    if (k == name && !v.empty()) return std::stod(v);
  return fallback;
}

void print_experiment_header(const std::string& artefact,
                             const std::string& description) {
  std::cout << "==============================================================\n"
            << " Reproducing: " << artefact << "\n"
            << " " << description << "\n"
            << "==============================================================\n";
}

std::string write_csv(const std::string& out_dir, const std::string& name,
                      const TextTable& table) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  std::string path = out_dir + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return {};
  }
  out << table.render_csv();
  std::cout << "[csv] " << path << "\n";
  return path;
}

}  // namespace cosched
