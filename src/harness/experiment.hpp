// Shared glue for the bench binaries: a tiny flag parser, experiment
// banners, and CSV output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/table.hpp"

namespace cosched {

/// Minimal "--name value" / "--flag" parser. Unknown flags are ignored so
/// every bench accepts at least --scale and --out-dir.
class ArgParser {
 public:
  ArgParser(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  Real get_real(const std::string& name, Real fallback) const;

 private:
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Prints the standard banner identifying the paper artefact a bench
/// regenerates.
void print_experiment_header(const std::string& artefact,
                             const std::string& description);

/// Writes `table` as CSV to `<out_dir>/<name>.csv` (no-op with a warning if
/// the directory cannot be written). Returns the path written.
std::string write_csv(const std::string& out_dir, const std::string& name,
                      const TextTable& table);

}  // namespace cosched
