// Regular domain decompositions and the communication patterns they induce.
//
// A PC job decomposes its data set 1D/2D/3D across its processes (paper
// Fig. 2). Each process exchanges halo data with its grid neighbours; the
// data volume α_i(k) per neighbour is determined by the face size in that
// direction. In typical decompositions α is identical for the two
// neighbours of the same dimension (paper: α5(1) = α5(3)).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace cosched {

/// Dimension of a halo exchange; used for the communication property
/// (c_x, c_y, c_z) of the condensation technique (paper Section III-E).
enum class Direction : std::uint8_t { X = 0, Y = 1, Z = 2 };

struct CommEdge {
  std::int32_t peer_rank;  ///< local rank of the neighbour within the job
  Real bytes;              ///< α: data volume exchanged per step
  Direction dir;
};

/// Per-job communication pattern over local ranks 0..num_procs-1.
struct JobCommPattern {
  std::int32_t num_procs = 0;
  std::int32_t dims = 0;                      // 1, 2 or 3
  std::array<std::int32_t, 3> grid{1, 1, 1};  // process grid extents
  std::vector<std::vector<CommEdge>> neighbors;  // indexed by local rank

  bool empty() const { return neighbors.empty(); }
};

/// 1D chain: rank r talks to r-1 and r+1, exchanging `halo_bytes` each.
JobCommPattern make_1d_pattern(std::int32_t procs, Real halo_bytes);

/// 2D grid px × py (row-major ranks). X-neighbours exchange `halo_bytes_x`,
/// Y-neighbours `halo_bytes_y`.
JobCommPattern make_2d_pattern(std::int32_t px, std::int32_t py,
                               Real halo_bytes_x, Real halo_bytes_y);

/// 3D grid px × py × pz.
JobCommPattern make_3d_pattern(std::int32_t px, std::int32_t py,
                               std::int32_t pz, Real halo_bytes_x,
                               Real halo_bytes_y, Real halo_bytes_z);

/// Picks a near-balanced grid for `procs` processes in `dims` dimensions
/// (e.g. 12 procs, 2D -> 4x3) and builds the pattern with uniform halo
/// volume per dimension.
JobCommPattern make_grid_pattern(std::int32_t procs, std::int32_t dims,
                                 Real halo_bytes);

/// The decomposition the catalog assigns to each PC program:
/// BT-Par/LU-Par are 2D, MG-Par is 3D, CG-Par is 1D.
JobCommPattern default_pattern_for(const std::string& program_name,
                                   std::int32_t procs, Real halo_bytes);

}  // namespace cosched
