// CommTopology: maps global processes to their jobs' communication patterns
// and evaluates the Eq. 10-11 communication-time model.
//
//   c(i,S) = (1/B) * Σ_k α_i(k) * β_i(k,S)
//   β_i(k,S) = 0 if the k-th neighbour of p_i is co-scheduled with p_i
//              (same machine: intra-processor communication overlaps and is
//              faster), 1 otherwise.
#pragma once

#include <array>
#include <span>
#include <unordered_map>
#include <vector>

#include "comm/decomposition.hpp"
#include "util/common.hpp"

namespace cosched {

class CommTopology {
 public:
  /// Registers a PC job's pattern. `first_process` is the global id of the
  /// job's local rank 0; ranks are contiguous.
  void attach(JobId job, ProcessId first_process,
              const JobCommPattern& pattern);

  bool has_pattern(JobId job) const {
    return patterns_.contains(job);
  }
  const JobCommPattern* pattern_of(JobId job) const;

  /// Total bytes process i must send to neighbours NOT in `co_runners`
  /// (Eq. 10 numerator). Processes without a pattern communicate nothing.
  Real external_bytes(ProcessId i,
                      std::span<const ProcessId> co_runners) const;

  /// c(i,S) = external_bytes / bandwidth (Eq. 10).
  Real comm_time(ProcessId i, std::span<const ProcessId> co_runners,
                 Real bandwidth_bytes_per_s) const;

  /// Communication property (c_x, c_y, c_z) of job `job`'s processes inside
  /// the node `node_members` (paper Section III-E): the number of halo
  /// exchanges the member processes perform per direction with processes
  /// outside the node. Members not belonging to `job` are ignored.
  std::array<std::int32_t, 3> comm_property(
      JobId job, std::span<const ProcessId> node_members) const;

 private:
  struct Placement {
    JobId job;
    std::int32_t rank;
  };

  const Placement* placement_of(ProcessId i) const;

  std::unordered_map<JobId, JobCommPattern> patterns_;
  std::unordered_map<JobId, ProcessId> first_process_;
  std::unordered_map<ProcessId, Placement> process_placement_;
};

}  // namespace cosched
