#include "comm/decomposition.hpp"

#include <cmath>

namespace cosched {
namespace {

// Factor `procs` into `dims` near-equal extents, largest first.
std::array<std::int32_t, 3> balanced_grid(std::int32_t procs,
                                          std::int32_t dims) {
  COSCHED_EXPECTS(procs >= 1);
  COSCHED_EXPECTS(dims >= 1 && dims <= 3);
  std::array<std::int32_t, 3> grid{procs, 1, 1};
  if (dims == 1) return grid;
  if (dims == 2) {
    // Largest divisor pair closest to sqrt.
    std::int32_t best = 1;
    for (std::int32_t a = 1;
         static_cast<std::int64_t>(a) * a <= procs; ++a)
      if (procs % a == 0) best = a;
    grid = {procs / best, best, 1};
    return grid;
  }
  // dims == 3: greedy near-cubic factorization.
  std::int32_t best_a = 1, best_b = 1;
  Real best_score = kInfinity;
  for (std::int32_t a = 1;
       static_cast<std::int64_t>(a) * a * a <= procs; ++a) {
    if (procs % a != 0) continue;
    std::int32_t rest = procs / a;
    for (std::int32_t b = a;
         static_cast<std::int64_t>(b) * b <= rest; ++b) {
      if (rest % b != 0) continue;
      std::int32_t c = rest / b;
      Real score = static_cast<Real>(c - a);  // spread of extents
      if (score < best_score) {
        best_score = score;
        best_a = a;
        best_b = b;
      }
    }
  }
  grid = {procs / (best_a * best_b), best_b, best_a};
  return grid;
}

}  // namespace

JobCommPattern make_1d_pattern(std::int32_t procs, Real halo_bytes) {
  COSCHED_EXPECTS(procs >= 1);
  COSCHED_EXPECTS(halo_bytes >= 0.0);
  JobCommPattern p;
  p.num_procs = procs;
  p.dims = 1;
  p.grid = {procs, 1, 1};
  p.neighbors.resize(static_cast<std::size_t>(procs));
  for (std::int32_t r = 0; r < procs; ++r) {
    if (r > 0)
      p.neighbors[r].push_back({r - 1, halo_bytes, Direction::X});
    if (r + 1 < procs)
      p.neighbors[r].push_back({r + 1, halo_bytes, Direction::X});
  }
  return p;
}

JobCommPattern make_2d_pattern(std::int32_t px, std::int32_t py,
                               Real halo_bytes_x, Real halo_bytes_y) {
  COSCHED_EXPECTS(px >= 1 && py >= 1);
  JobCommPattern p;
  p.num_procs = px * py;
  p.dims = 2;
  p.grid = {px, py, 1};
  p.neighbors.resize(static_cast<std::size_t>(p.num_procs));
  auto rank = [&](std::int32_t x, std::int32_t y) { return y * px + x; };
  for (std::int32_t y = 0; y < py; ++y) {
    for (std::int32_t x = 0; x < px; ++x) {
      auto& nb = p.neighbors[static_cast<std::size_t>(rank(x, y))];
      if (x > 0) nb.push_back({rank(x - 1, y), halo_bytes_x, Direction::X});
      if (x + 1 < px)
        nb.push_back({rank(x + 1, y), halo_bytes_x, Direction::X});
      if (y > 0) nb.push_back({rank(x, y - 1), halo_bytes_y, Direction::Y});
      if (y + 1 < py)
        nb.push_back({rank(x, y + 1), halo_bytes_y, Direction::Y});
    }
  }
  return p;
}

JobCommPattern make_3d_pattern(std::int32_t px, std::int32_t py,
                               std::int32_t pz, Real halo_bytes_x,
                               Real halo_bytes_y, Real halo_bytes_z) {
  COSCHED_EXPECTS(px >= 1 && py >= 1 && pz >= 1);
  JobCommPattern p;
  p.num_procs = px * py * pz;
  p.dims = 3;
  p.grid = {px, py, pz};
  p.neighbors.resize(static_cast<std::size_t>(p.num_procs));
  auto rank = [&](std::int32_t x, std::int32_t y, std::int32_t z) {
    return (z * py + y) * px + x;
  };
  for (std::int32_t z = 0; z < pz; ++z) {
    for (std::int32_t y = 0; y < py; ++y) {
      for (std::int32_t x = 0; x < px; ++x) {
        auto& nb = p.neighbors[static_cast<std::size_t>(rank(x, y, z))];
        if (x > 0)
          nb.push_back({rank(x - 1, y, z), halo_bytes_x, Direction::X});
        if (x + 1 < px)
          nb.push_back({rank(x + 1, y, z), halo_bytes_x, Direction::X});
        if (y > 0)
          nb.push_back({rank(x, y - 1, z), halo_bytes_y, Direction::Y});
        if (y + 1 < py)
          nb.push_back({rank(x, y + 1, z), halo_bytes_y, Direction::Y});
        if (z > 0)
          nb.push_back({rank(x, y, z - 1), halo_bytes_z, Direction::Z});
        if (z + 1 < pz)
          nb.push_back({rank(x, y, z + 1), halo_bytes_z, Direction::Z});
      }
    }
  }
  return p;
}

JobCommPattern make_grid_pattern(std::int32_t procs, std::int32_t dims,
                                 Real halo_bytes) {
  auto grid = balanced_grid(procs, dims);
  switch (dims) {
    case 1: return make_1d_pattern(procs, halo_bytes);
    case 2: return make_2d_pattern(grid[0], grid[1], halo_bytes, halo_bytes);
    case 3:
      return make_3d_pattern(grid[0], grid[1], grid[2], halo_bytes,
                             halo_bytes, halo_bytes);
    default: break;
  }
  throw ContractViolation("dims must be 1, 2 or 3");
}

JobCommPattern default_pattern_for(const std::string& program_name,
                                   std::int32_t procs, Real halo_bytes) {
  std::int32_t dims = 2;
  if (program_name == "CG-Par") dims = 1;
  else if (program_name == "MG-Par") dims = 3;
  // BT-Par, LU-Par and anything unknown default to 2D.
  return make_grid_pattern(procs, dims, halo_bytes);
}

}  // namespace cosched
