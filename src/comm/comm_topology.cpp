#include "comm/comm_topology.hpp"

#include <algorithm>

namespace cosched {

void CommTopology::attach(JobId job, ProcessId first_process,
                          const JobCommPattern& pattern) {
  COSCHED_EXPECTS(job >= 0);
  COSCHED_EXPECTS(first_process >= 0);
  COSCHED_EXPECTS(!patterns_.contains(job));
  COSCHED_EXPECTS(pattern.num_procs >= 1);
  COSCHED_EXPECTS(pattern.neighbors.size() ==
                  static_cast<std::size_t>(pattern.num_procs));
  patterns_.emplace(job, pattern);
  first_process_.emplace(job, first_process);
  for (std::int32_t r = 0; r < pattern.num_procs; ++r)
    process_placement_.emplace(first_process + r, Placement{job, r});
}

const JobCommPattern* CommTopology::pattern_of(JobId job) const {
  auto it = patterns_.find(job);
  return it == patterns_.end() ? nullptr : &it->second;
}

const CommTopology::Placement* CommTopology::placement_of(ProcessId i) const {
  auto it = process_placement_.find(i);
  return it == process_placement_.end() ? nullptr : &it->second;
}

Real CommTopology::external_bytes(
    ProcessId i, std::span<const ProcessId> co_runners) const {
  const Placement* place = placement_of(i);
  if (place == nullptr) return 0.0;
  const JobCommPattern& pattern = patterns_.at(place->job);
  const ProcessId first = first_process_.at(place->job);

  Real bytes = 0.0;
  for (const CommEdge& e :
       pattern.neighbors[static_cast<std::size_t>(place->rank)]) {
    ProcessId peer = first + e.peer_rank;
    bool colocated =
        std::find(co_runners.begin(), co_runners.end(), peer) !=
        co_runners.end();
    if (!colocated) bytes += e.bytes;  // β_i(k,S) = 1
  }
  return bytes;
}

Real CommTopology::comm_time(ProcessId i,
                             std::span<const ProcessId> co_runners,
                             Real bandwidth_bytes_per_s) const {
  COSCHED_EXPECTS(bandwidth_bytes_per_s > 0.0);
  return external_bytes(i, co_runners) / bandwidth_bytes_per_s;
}

std::array<std::int32_t, 3> CommTopology::comm_property(
    JobId job, std::span<const ProcessId> node_members) const {
  std::array<std::int32_t, 3> counts{0, 0, 0};
  const JobCommPattern* pattern = pattern_of(job);
  if (pattern == nullptr) return counts;
  const ProcessId first = first_process_.at(job);

  for (ProcessId member : node_members) {
    const Placement* place = placement_of(member);
    if (place == nullptr || place->job != job) continue;
    for (const CommEdge& e :
         pattern->neighbors[static_cast<std::size_t>(place->rank)]) {
      ProcessId peer = first + e.peer_rank;
      bool internal =
          std::find(node_members.begin(), node_members.end(), peer) !=
          node_members.end();
      if (!internal)
        ++counts[static_cast<std::size_t>(e.dir)];
    }
  }
  return counts;
}

}  // namespace cosched
