#include "online/live_service.hpp"

#include <algorithm>
#include <chrono>

namespace cosched {

const char* to_string(SubmitError error) {
  switch (error) {
    case SubmitError::None: return "none";
    case SubmitError::Draining: return "draining";
    case SubmitError::Invalid: return "invalid";
  }
  return "?";
}

LiveSchedulerService::LiveSchedulerService(LiveServiceOptions options)
    : options_(options),
      total_cores_(options.scheduler.machines *
                   static_cast<std::int32_t>(options.scheduler.cores)),
      scheduler_(options.scheduler),
      start_(std::chrono::steady_clock::now()),
      probe_replan_wall_(replan_duration_metric_edges()) {
  COSCHED_EXPECTS(options_.wall_time_scale > 0.0);
  scheduler_.begin();
  thread_ = std::thread(&LiveSchedulerService::thread_main, this);
}

LiveSchedulerService::~LiveSchedulerService() { stop(); }

void LiveSchedulerService::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_requested_ && !thread_.joinable()) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::vector<std::string> LiveSchedulerService::write_metrics_csvs(
    const std::string& dir, const std::string& prefix) {
  COSCHED_EXPECTS(!thread_.joinable());  // stop() first
  return scheduler_.metrics().write_csvs(dir, prefix);
}

std::size_t LiveSchedulerService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return commands_.size();
}

LoadProbe LiveSchedulerService::load() const {
  LoadProbe probe;
  probe.queue_depth = queue_depth();
  probe.arrivals = probe_arrivals_.load(std::memory_order_relaxed);
  probe.completions = probe_completions_.load(std::memory_order_relaxed);
  probe.virtual_now = probe_virtual_now_.load(std::memory_order_relaxed);
  probe.replan_p95_seconds =
      probe_replan_p95_.load(std::memory_order_relaxed);
  return probe;
}

void LiveSchedulerService::refresh_load_probe() {
  const SchedulerMetrics& m = scheduler_.metrics();
  probe_arrivals_.store(m.arrivals(), std::memory_order_relaxed);
  probe_completions_.store(m.completions(), std::memory_order_relaxed);
  probe_virtual_now_.store(scheduler_.now(), std::memory_order_relaxed);
  const std::vector<ReplanRecord>& records = m.replan_records();
  if (records.size() > replan_records_seen_) {
    std::lock_guard<std::mutex> lock(probe_mutex_);
    for (std::size_t i = replan_records_seen_; i < records.size(); ++i)
      probe_replan_wall_.add(records[i].solve_wall_seconds);
    replan_records_seen_ = records.size();
    probe_replan_p95_.store(probe_replan_wall_.quantile(0.95),
                            std::memory_order_relaxed);
  }
}

Real LiveSchedulerService::wall_virtual_now() const {
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start_;
  return options_.wall_time_scale * static_cast<Real>(elapsed.count());
}

std::future<LiveSchedulerService::CommandResult> LiveSchedulerService::enqueue(
    Command command) {
  command.trace = Tracer::current_context();
  std::future<CommandResult> future = command.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // After stop the command is dropped; its dying promise breaks the
    // future and await() reports failure.
    if (!stop_requested_) commands_.push_back(std::move(command));
  }
  wake_.notify_all();
  return future;
}

bool LiveSchedulerService::await(std::future<CommandResult>& future,
                                 CommandResult& result,
                                 double timeout_seconds) {
  try {
    if (timeout_seconds >= 0.0 &&
        future.wait_for(std::chrono::duration<double>(timeout_seconds)) !=
            std::future_status::ready)
      return false;
    result = future.get();
    return true;
  } catch (const std::future_error&) {
    return false;  // service stopped before the command ran
  }
}

bool LiveSchedulerService::submit(const TraceJob& spec, SubmitOutcome& out,
                                  double timeout_seconds) {
  Command command;
  command.kind = CommandKind::Submit;
  command.job = spec;
  auto future = enqueue(std::move(command));
  CommandResult result;
  if (!await(future, result, timeout_seconds)) return false;
  out = std::move(result.submit);
  return true;
}

bool LiveSchedulerService::job_status(std::int64_t job_id, StatusOutcome& out,
                                      double timeout_seconds) {
  Command command;
  command.kind = CommandKind::Status;
  command.job_id = job_id;
  auto future = enqueue(std::move(command));
  CommandResult result;
  if (!await(future, result, timeout_seconds)) return false;
  out = std::move(result.status);
  return true;
}

bool LiveSchedulerService::job_timeline(std::int64_t job_id,
                                        TimelineOutcome& out,
                                        double timeout_seconds) {
  Command command;
  command.kind = CommandKind::Timeline;
  command.job_id = job_id;
  auto future = enqueue(std::move(command));
  CommandResult result;
  if (!await(future, result, timeout_seconds)) return false;
  out = std::move(result.timeline);
  return true;
}

bool LiveSchedulerService::snapshot(ServiceSnapshot& out,
                                    double timeout_seconds) {
  Command command;
  command.kind = CommandKind::Snapshot;
  auto future = enqueue(std::move(command));
  CommandResult result;
  if (!await(future, result, timeout_seconds)) return false;
  out = std::move(result.snapshot);
  return true;
}

bool LiveSchedulerService::metrics(MetricsOutcome& out,
                                   double timeout_seconds) {
  Command command;
  command.kind = CommandKind::Metrics;
  auto future = enqueue(std::move(command));
  CommandResult result;
  if (!await(future, result, timeout_seconds)) return false;
  out = std::move(result.metrics);
  return true;
}

bool LiveSchedulerService::drain(DrainOutcome& out, double timeout_seconds) {
  Command command;
  command.kind = CommandKind::Drain;
  auto future = enqueue(std::move(command));
  CommandResult result;
  if (!await(future, result, timeout_seconds)) return false;
  out = std::move(result.drain);
  return true;
}

void LiveSchedulerService::thread_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (stop_requested_) break;
    if (!commands_.empty()) {
      Command command = std::move(commands_.front());
      commands_.pop_front();
      lock.unlock();
      execute(command);
      refresh_load_probe();
      lock.lock();
      continue;
    }
    if (!options_.wall_clock) {
      wake_.wait(lock,
                 [&] { return stop_requested_ || !commands_.empty(); });
      continue;
    }
    // Wall-clock bridge: catch virtual time up with real elapsed time,
    // then sleep until the next scheduled occurrence is due (or a command
    // arrives). Sleeps are capped so clock drift self-corrects.
    lock.unlock();
    Real target = wall_virtual_now();
    scheduler_.pump(target);
    refresh_load_probe();
    Real next = scheduler_.next_occurrence_time();
    lock.lock();
    if (stop_requested_ || !commands_.empty()) continue;
    if (next == kInfinity) {
      wake_.wait(lock,
                 [&] { return stop_requested_ || !commands_.empty(); });
      continue;
    }
    double delay = static_cast<double>(next - target) /
                   static_cast<double>(options_.wall_time_scale);
    if (delay <= 0.0) continue;  // due now: pump again right away
    wake_.wait_for(lock, std::chrono::duration<double>(
                             std::min(delay, 0.25)));
  }
}

void LiveSchedulerService::execute(Command& command) {
  TraceContextScope trace_scope(command.trace);
  CommandResult result;
  switch (command.kind) {
    case CommandKind::Submit: {
      SubmitOutcome& out = result.submit;
      if (draining_.load(std::memory_order_acquire)) {
        out.error = SubmitError::Draining;
        out.virtual_now = scheduler_.now();
        break;
      }
      const TraceJob& job = command.job;
      if (job.processes < 1 || job.processes > total_cores_ ||
          !(job.work > 0.0)) {
        out.error = SubmitError::Invalid;
        out.virtual_now = scheduler_.now();
        break;
      }
      TraceJob spec = job;
      if (options_.wall_clock) {
        Real target = wall_virtual_now();
        scheduler_.pump(target);
        spec.arrival_time = target;
      }
      std::int64_t id = scheduler_.submit(spec);
      // The scheduler may have clamped the arrival up to "now"; process
      // the arrival (and everything due before it) right away, so the
      // response already reflects an admission if the trigger fired.
      Real arrival = scheduler_.job_status(id).arrival_time;
      scheduler_.pump(arrival);
      out.error = SubmitError::None;
      out.job_id = id;
      out.virtual_now = scheduler_.now();
      out.status = scheduler_.job_status(id);
      break;
    }
    case CommandKind::Status: {
      StatusOutcome& out = result.status;
      out.virtual_now = scheduler_.now();
      if (command.job_id >= 0 && command.job_id < scheduler_.job_count()) {
        out.found = true;
        out.status = scheduler_.job_status(command.job_id);
      }
      break;
    }
    case CommandKind::Timeline: {
      TimelineOutcome& out = result.timeline;
      out.virtual_now = scheduler_.now();
      if (command.job_id >= 0 && command.job_id < scheduler_.job_count()) {
        out.found = true;
        out.timeline = scheduler_.job_timeline(command.job_id);
      }
      break;
    }
    case CommandKind::Snapshot:
      result.snapshot = scheduler_.service_snapshot();
      break;
    case CommandKind::Metrics: {
      MetricsOutcome& out = result.metrics;
      const SchedulerMetrics& m = scheduler_.metrics();
      out.virtual_now = scheduler_.now();
      out.arrivals = m.arrivals();
      out.admissions = m.admissions();
      out.completions = m.completions();
      out.replans = m.replans();
      out.migrations = m.migrations();
      out.running_mean_degradation = m.running_mean_degradation();
      out.cache = scheduler_.oracle_cache().stats();
      out.deterministic_csv = m.render_deterministic_csv();
      break;
    }
    case CommandKind::Drain: {
      draining_.store(true, std::memory_order_release);
      scheduler_.finish();
      result.drain.completions = scheduler_.metrics().completions();
      result.drain.virtual_now = scheduler_.now();
      break;
    }
  }
  command.promise.set_value(std::move(result));
}

}  // namespace cosched
