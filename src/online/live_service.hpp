// LiveSchedulerService — the thread-safe front door of OnlineScheduler.
//
// OnlineScheduler is single-threaded by design (determinism is a pure
// function of the submission sequence). The RPC server, however, fields
// requests on a pool of worker threads. This class is the bridge:
//
//  * every mutation or read is a Command pushed onto a thread-safe queue;
//  * one dedicated scheduler thread pops commands in FIFO order and runs
//    them against the scheduler — so the event loop, the replans and the
//    metrics see a single serialized submission sequence, exactly like a
//    trace replay;
//  * callers block on a future with their request's remaining deadline;
//    a caller that gives up (timeout) does not cancel the command — it
//    still executes in order, the result is just dropped;
//  * in wall-clock mode the thread additionally advances virtual time to
//    scale * (wall seconds since start) whenever it wakes, sleeping until
//    the next scheduled occurrence — admission triggers, completions and
//    the max-wait backstop fire off real elapsed time;
//  * in virtual mode the clock only moves when submissions (with explicit
//    arrival times) or drain push it — a mix submitted in arrival order
//    replays byte-identically to OnlineScheduler::run on the same mix.
//
// Drain mode stops admissions (new submissions are rejected) but finishes
// every queued job and replan before reporting back.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "online/scheduler.hpp"

namespace cosched {

struct LiveServiceOptions {
  OnlineSchedulerOptions scheduler;
  /// false: virtual-time mode (arrival times come from the submissions).
  /// true: wall-clock mode (arrivals stamped from real elapsed time).
  bool wall_clock = false;
  /// Virtual seconds per wall-clock second in wall-clock mode. > 1 runs
  /// the simulated fleet faster than real time.
  Real wall_time_scale = 1.0;
};

enum class SubmitError {
  None,
  Draining,  ///< drain() was called; no further admissions
  Invalid,   ///< job shape rejected (size, non-positive work)
};

const char* to_string(SubmitError error);

struct SubmitOutcome {
  SubmitError error = SubmitError::None;
  std::int64_t job_id = -1;
  Real virtual_now = 0.0;
  /// Status immediately after the submission was processed: if the
  /// admission trigger fired, this already carries the placement and the
  /// predicted Eq. 1/9 degradation per process.
  JobStatusView status;
};

struct StatusOutcome {
  bool found = false;
  Real virtual_now = 0.0;
  JobStatusView status;
};

struct MetricsOutcome {
  Real virtual_now = 0.0;
  std::uint64_t arrivals = 0;
  std::uint64_t admissions = 0;
  std::uint64_t completions = 0;
  std::uint64_t replans = 0;
  std::uint64_t migrations = 0;
  Real running_mean_degradation = 0.0;
  DegradationCache::Stats cache;
  /// The byte-comparable artifact (summary + histograms + replans).
  std::string deterministic_csv;
};

struct DrainOutcome {
  std::uint64_t completions = 0;
  Real virtual_now = 0.0;
};

/// Decision-journal slice of one job (see online/journal.hpp). `found` is
/// false for job ids the scheduler has never issued; an evicted-but-known
/// job comes back found with timeline.truncated set.
struct TimelineOutcome {
  bool found = false;
  Real virtual_now = 0.0;
  JobTimeline timeline;
};

/// Cheap, lock-light load snapshot of one service instance — the signal the
/// shard router's spillover policy reads on every admission, so it must not
/// round-trip through the command queue. queue_depth is exact (one mutex
/// peek); the rest are atomics refreshed by the scheduler thread after each
/// executed command, i.e. at-most-one-command stale.
struct LoadProbe {
  /// Commands enqueued and not yet executed by the scheduler thread — how
  /// far behind the instance is.
  std::size_t queue_depth = 0;
  std::uint64_t arrivals = 0;     ///< jobs accepted so far
  std::uint64_t completions = 0;  ///< jobs fully finished
  Real virtual_now = 0.0;         ///< shard-local virtual clock
  /// p95 of wall-clock replan duration (seconds), interpolated from the
  /// same bucket layout /metrics exports. 0 until the first replan.
  Real replan_p95_seconds = 0.0;
  /// Jobs admitted but not yet finished plus jobs accepted and still
  /// pending — the in-flight population this shard is carrying.
  std::uint64_t in_flight() const {
    return arrivals > completions ? arrivals - completions : 0;
  }
};

class LiveSchedulerService {
 public:
  explicit LiveSchedulerService(LiveServiceOptions options);
  ~LiveSchedulerService();  ///< implies stop()

  LiveSchedulerService(const LiveSchedulerService&) = delete;
  LiveSchedulerService& operator=(const LiveSchedulerService&) = delete;

  // All calls are thread-safe. `timeout_seconds` < 0 waits forever; on
  // timeout the call returns false and the outcome is untouched (the
  // command still executes on the scheduler thread).
  bool submit(const TraceJob& spec, SubmitOutcome& out,
              double timeout_seconds);
  bool job_status(std::int64_t job_id, StatusOutcome& out,
                  double timeout_seconds);
  bool job_timeline(std::int64_t job_id, TimelineOutcome& out,
                    double timeout_seconds);
  bool snapshot(ServiceSnapshot& out, double timeout_seconds);
  bool metrics(MetricsOutcome& out, double timeout_seconds);
  /// Stops admissions, then runs every queued job to completion.
  bool drain(DrainOutcome& out, double timeout_seconds);

  bool draining() const { return draining_.load(std::memory_order_acquire); }
  std::int32_t total_cores() const { return total_cores_; }

  /// Commands awaiting the scheduler thread right now. Thread-safe.
  std::size_t queue_depth() const;
  /// Load snapshot for routing/spillover decisions. Thread-safe; never
  /// blocks on the scheduler thread (see LoadProbe).
  LoadProbe load() const;

  /// Shared degradation cache. The pointer is fixed for the scheduler's
  /// lifetime and stats() reads atomics behind shard locks, so this is safe
  /// from any thread — it is the bridge the /metrics callback samples
  /// without a round-trip through the command queue.
  const DegradationCache& oracle_cache() const {
    return scheduler_.oracle_cache();
  }

  /// Decision journal of the underlying scheduler. Internally mutex-guarded,
  /// so counter sampling (/metrics) and tail views (/debug/events) are safe
  /// from any thread without a round-trip through the command queue.
  const DecisionJournal& journal() const { return scheduler_.journal(); }
  DecisionJournal& journal() { return scheduler_.journal(); }

  /// Stops the scheduler thread without draining. Idempotent.
  void stop();

  /// Writes the scheduler's metrics CSVs (summary/histograms/replans) under
  /// `dir`, creating the directory if missing. Only valid after stop() —
  /// it reads the scheduler directly, off the command queue. Returns the
  /// paths written (empty on I/O failure).
  std::vector<std::string> write_metrics_csvs(const std::string& dir,
                                              const std::string& prefix);

 private:
  enum class CommandKind { Submit, Status, Timeline, Snapshot, Metrics, Drain };

  struct CommandResult {
    SubmitOutcome submit;
    StatusOutcome status;
    TimelineOutcome timeline;
    ServiceSnapshot snapshot;
    MetricsOutcome metrics;
    DrainOutcome drain;
  };

  struct Command {
    CommandKind kind = CommandKind::Snapshot;
    TraceJob job;
    std::int64_t job_id = -1;
    /// Caller's trace context, captured at enqueue() and re-installed on
    /// the scheduler thread — replan/solver spans triggered by this
    /// command inherit the originating request's trace_id.
    TraceContext trace;
    std::promise<CommandResult> promise;
  };

  std::future<CommandResult> enqueue(Command command);
  static bool await(std::future<CommandResult>& future, CommandResult& result,
                    double timeout_seconds);
  void thread_main();
  void execute(Command& command);
  /// Refreshes the LoadProbe atomics from the scheduler's metrics. Runs on
  /// the scheduler thread only, after each executed command.
  void refresh_load_probe();
  Real wall_virtual_now() const;

  LiveServiceOptions options_;
  std::int32_t total_cores_ = 0;
  OnlineScheduler scheduler_;  ///< touched only by the scheduler thread

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Command> commands_;
  bool stop_requested_ = false;
  std::atomic<bool> draining_{false};
  std::chrono::steady_clock::time_point start_;

  // Load-probe mirror, written by the scheduler thread, read by load().
  std::atomic<std::uint64_t> probe_arrivals_{0};
  std::atomic<std::uint64_t> probe_completions_{0};
  std::atomic<double> probe_virtual_now_{0.0};
  std::atomic<double> probe_replan_p95_{0.0};
  /// Wall-clock replan durations folded incrementally from the scheduler's
  /// replan records (replan_records_seen_ marks the fold frontier). Only
  /// quantile() runs off-thread, under this mutex.
  mutable std::mutex probe_mutex_;
  Histogram probe_replan_wall_;
  std::size_t replan_records_seen_ = 0;

  std::thread thread_;
};

}  // namespace cosched
