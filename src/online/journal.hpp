// Scheduler decision journal — per-decision attribution for the online
// scheduler.
//
// Metrics say how well the fleet is doing and traces say where the time
// went; the journal says *why the scheduler chose what it chose*: which
// trigger fired an admission batch, where each job was placed and next to
// whom, what degradation delta the solver attributed to the adopted
// placement versus staying put, which jobs a replan migrated, and which
// submits the router spilled off their ring shard. Every event carries
// the trace id that was current when the decision was made, so a journal
// line resolves into the corresponding replan span in a TraceDump.
//
// Storage is one bounded FIFO ring guarded by a mutex: append is O(1),
// eviction is strictly oldest-first, and evicted events are counted in
// dropped_total() (exported as cosched_journal_events_dropped_total).
// query(job) returns the job's events in decision order plus a
// `truncated` flag: true when the journal has evicted events and this
// job's retained timeline no longer starts at its admission — the
// well-formed "history rolled over" answer, never an error.
//
// The journal is deliberately dependency-light (no tracer, no registry):
// OnlineScheduler owns one per shard and ShardRouter owns one for
// routing decisions; the RPC layer converts events to wire form.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace cosched {

enum class JournalEventKind : std::uint8_t {
  Admission = 0,    ///< job admitted from the pending queue
  BatchTrigger,     ///< a replan fired (fleet-level, job_id == -1)
  Placement,        ///< admitted job placed; co-runners + predicted delta
  Spillover,        ///< router sent the job off its ring shard
  Migration,        ///< replan moved the job's running processes
  Completion,       ///< last process finished
  Alert,            ///< alert rule transition (fleet-level, job_id == -1)
};

inline constexpr std::size_t kJournalEventKinds = 7;

const char* to_string(JournalEventKind kind);
bool journal_event_kind_from(std::uint8_t raw, JournalEventKind& out);

struct JournalEvent {
  std::int64_t job_id = -1;  ///< -1 = fleet-level event (batch trigger)
  JournalEventKind kind = JournalEventKind::BatchTrigger;
  Real time = 0.0;           ///< virtual seconds (0 for router events)
  std::uint64_t trace_id = 0;  ///< trace current at decision time
  std::uint64_t seq = 0;       ///< journal-assigned append order
  std::string policy;        ///< trigger reason / solver / routing policy
  std::int32_t machine = -1;   ///< chosen machine (shard for spillover)
  std::int32_t candidates = 0;  ///< candidate set size the decision saw
  Real degradation_delta = 0.0;  ///< predicted combined - stay-put
  std::vector<std::int64_t> co_runners;  ///< co-located job ids
  std::string detail;        ///< free-form "k=v ..." extras
};

struct JobTimeline {
  std::int64_t job_id = -1;
  bool truncated = false;  ///< evictions may have removed early events
  std::vector<JournalEvent> events;  ///< ascending seq
};

class DecisionJournal {
 public:
  explicit DecisionJournal(std::size_t capacity = 65536);

  /// Ring capacity; shrinking evicts oldest-first immediately.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Stamps `seq` and appends; evicts the oldest event (counted into
  /// dropped_total()) when full.
  void append(JournalEvent event);

  /// Events of one job, decision order. `truncated` is set when the
  /// journal has evicted events and the retained timeline does not start
  /// with the job's admission (so earlier decisions may be lost).
  JobTimeline query(std::int64_t job_id) const;

  /// The newest `max_events` events of every job (the /debug/events
  /// firehose view), ascending seq.
  std::vector<JournalEvent> tail(std::size_t max_events) const;

  std::uint64_t events_total(JournalEventKind kind) const;
  std::uint64_t dropped_total() const;
  std::size_t size() const;
  void clear();  ///< drops events and zeroes counters; seq keeps climbing

 private:
  void evict_locked();

  mutable std::mutex mutex_;
  std::deque<JournalEvent> ring_;  ///< oldest at front
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t by_kind_[kJournalEventKinds] = {};
};

/// One-line deterministic rendering ("t=.. kind=.. job=.. ..."), used by
/// /debug/events, the rpc_client --timeline printer and tests.
std::string render_journal_event(const JournalEvent& event);

/// Prometheus exposition lines of one journal's accounting
/// (cosched_journal_events_total{kind="..."} +
/// cosched_journal_events_dropped_total), appended to /metrics by the RPC
/// server and the shard router (labeled families cannot ride the
/// MetricsRegistry callback path).
std::string render_journal_metrics(const DecisionJournal& journal);

}  // namespace cosched
