// Event primitives of the online co-scheduling service: a virtual clock, a
// deterministic priority event queue, and a replayable event log.
//
// Determinism is the design constraint: two runs over the same trace must
// process the same events in the same order and leave byte-identical logs.
// Ties in virtual time are therefore broken by a push-order sequence
// number, never by container iteration order or wall-clock time.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/table.hpp"

namespace cosched {

enum class EventKind : std::uint8_t {
  JobArrival,         ///< a trace job enters the pending queue
  JobAdmission,       ///< a pending job is placed by a replan
  JobCompletion,      ///< all processes of a job finished
  ProcessFinish,      ///< one process finished (frees a core)
  Replan,             ///< the scheduler re-solved the placement
  ReplanTick,         ///< periodic-policy timer fired
  AdmissionDeadline,  ///< max-wait backstop for a pending job fired
};

const char* to_string(EventKind kind);

/// A scheduled occurrence in virtual time. `sequence` is assigned by the
/// queue at push time and breaks time ties, making the processing order a
/// pure function of push order.
struct Event {
  Real time = 0.0;
  EventKind kind = EventKind::JobArrival;
  std::int64_t payload = -1;  ///< job id / tick index, kind-dependent
  std::uint64_t sequence = 0;
};

/// Monotonic virtual time owned by the service.
class VirtualClock {
 public:
  Real now() const { return now_; }
  void advance_to(Real t) {
    COSCHED_EXPECTS(t >= now_);
    now_ = t;
  }

 private:
  Real now_ = 0.0;
};

/// Min-queue over (time, sequence).
class EventQueue {
 public:
  void push(Real time, EventKind kind, std::int64_t payload = -1);
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  const Event& top() const {
    COSCHED_EXPECTS(!heap_.empty());
    return heap_.top();
  }
  Event pop();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_sequence_ = 0;
};

/// Append-only record of everything the service did, CSV-renderable so two
/// runs can be compared byte-for-byte (the deterministic-replay tests).
class EventLog {
 public:
  struct Entry {
    Real time = 0.0;
    EventKind kind = EventKind::JobArrival;
    std::string detail;
  };

  void record(Real time, EventKind kind, std::string detail);
  std::size_t size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

  TextTable to_table() const;  ///< columns: time, event, detail
  std::string render_csv() const { return to_table().render_csv(); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace cosched
