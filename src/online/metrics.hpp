// SchedulerMetrics — counters and histograms of the online service.
//
// Everything here is derived from virtual time and solver outputs, so the
// tables are byte-identical across runs with the same seed (the
// deterministic-replay acceptance test). The one wall-clock quantity —
// per-replan solve time — is kept separate and only appears in tables that
// opt in via `include_wall_times`.
#pragma once

#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics_registry.hpp"
#include "util/common.hpp"
#include "util/table.hpp"

namespace cosched {

/// /metrics name of the admission queue-wait histogram (virtual seconds a
/// job waited between arrival and admission). Written by every
/// SchedulerMetrics instance, read by CoschedServer for the extended
/// GetMetrics response — both must agree on the bucket layout.
inline constexpr const char* kQueueWaitMetricName =
    "cosched_replan_queue_wait_seconds";
inline constexpr const char* kQueueWaitMetricHelp =
    "Virtual seconds jobs waited from arrival to admission";
std::vector<Real> queue_wait_metric_edges();

/// /metrics name of the wall-clock replan duration histogram. Observations
/// carry the trace_id of the request that triggered the replan, so exemplar
/// rendering and the tail sampler's latency policies see the same spans.
inline constexpr const char* kReplanDurationMetricName =
    "cosched_replan_duration_seconds";
inline constexpr const char* kReplanDurationMetricHelp =
    "Wall-clock seconds spent per replan (admission through commit)";
std::vector<Real> replan_duration_metric_edges();

/// One replan, as the service saw it.
struct ReplanRecord {
  Real time = 0.0;
  std::string solver;          ///< solver that produced the fresh candidate
  std::int32_t admitted = 0;   ///< jobs placed by this replan
  std::int32_t migrations = 0; ///< previously running processes that moved
  Real stay_combined = 0.0;    ///< combined objective of not replanning
  Real combined = 0.0;         ///< combined objective of the chosen placement
  Real degradation = 0.0;      ///< Eq. 13 part of `combined`
  double solve_wall_seconds = 0.0;  ///< wall clock; excluded from
                                    ///< deterministic tables
  std::uint64_t trace_id = 0;  ///< trace behind the triggering request;
                               ///< 0 = untraced (excluded from tables)
};

class SchedulerMetrics {
 public:
  SchedulerMetrics();

  // ---- ingestion (called by OnlineScheduler) ---------------------------
  void on_arrival() { ++arrivals_; }
  void on_admission(Real queue_wait) {
    ++admissions_;
    queue_wait_.add(queue_wait);
    registry_queue_wait_->observe(queue_wait);
  }
  /// `slowdown` = (completion - admission) / solo work, >= 1 without
  /// contention delays.
  void on_completion(Real slowdown) {
    ++completions_;
    slowdown_.add(slowdown);
  }
  void on_replan(ReplanRecord record);
  /// Time-weighted degradation accounting: `live` real processes carried a
  /// summed degradation of `total_degradation` for `dt` virtual seconds.
  void on_advance(Real dt, std::int32_t live, Real total_degradation);

  // ---- results ---------------------------------------------------------
  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t admissions() const { return admissions_; }
  std::uint64_t completions() const { return completions_; }
  std::uint64_t replans() const { return replans_; }
  std::uint64_t migrations() const { return migrations_; }
  const Histogram& queue_wait() const { return queue_wait_; }
  const Histogram& slowdown() const { return slowdown_; }
  const Histogram& migrations_per_replan() const {
    return migrations_per_replan_;
  }
  const std::vector<ReplanRecord>& replan_records() const { return replans_log_; }

  /// Time-weighted mean degradation per live process over the whole run.
  Real running_mean_degradation() const {
    return live_time_ == 0.0 ? 0.0 : degradation_time_ / live_time_;
  }
  Real mean_migrations_per_replan() const {
    return migrations_per_replan_.mean();
  }
  double total_solve_wall_seconds() const { return solve_wall_seconds_; }

  // ---- tables ----------------------------------------------------------
  /// One metric per row (metric, value). Deterministic.
  TextTable summary_table() const;
  /// One histogram per row (metric, count, mean, max, buckets).
  /// Deterministic.
  TextTable histogram_table() const;
  /// One replan per row. Deterministic unless `include_wall_times`.
  TextTable replans_table(bool include_wall_times = false) const;

  /// summary + histogram + replans CSVs concatenated, wall times excluded —
  /// the byte-comparable artifact of the determinism tests.
  std::string render_deterministic_csv() const;

  /// Writes <dir>/<prefix>_summary.csv, _histograms.csv and _replans.csv,
  /// creating `dir` (and parents) if missing — a fresh clone has no
  /// results/ directory, and the writers must not fail silently because of
  /// that. Returns the paths written; on any failure warns on stderr and
  /// returns an empty vector.
  std::vector<std::string> write_csvs(const std::string& dir,
                                      const std::string& prefix) const;

 private:
  std::uint64_t arrivals_ = 0;
  std::uint64_t admissions_ = 0;
  std::uint64_t completions_ = 0;
  std::uint64_t replans_ = 0;
  std::uint64_t migrations_ = 0;
  Histogram queue_wait_;
  /// Same samples, mirrored into the process-wide /metrics registry (the
  /// pointer is grabbed once at construction; registration is idempotent).
  HistogramMetric* registry_queue_wait_ = nullptr;
  /// Wall-clock replan duration, registry-only (wall time stays out of the
  /// deterministic histograms above). Observations carry the trace_id.
  HistogramMetric* registry_replan_duration_ = nullptr;
  Histogram slowdown_;
  Histogram migrations_per_replan_;
  std::vector<ReplanRecord> replans_log_;
  Real degradation_time_ = 0.0;  ///< ∫ Σ_live d_i dt
  Real live_time_ = 0.0;         ///< ∫ |live| dt
  double solve_wall_seconds_ = 0.0;
};

}  // namespace cosched
