#include "online/event.hpp"

namespace cosched {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::JobArrival: return "arrival";
    case EventKind::JobAdmission: return "admission";
    case EventKind::JobCompletion: return "completion";
    case EventKind::ProcessFinish: return "proc-finish";
    case EventKind::Replan: return "replan";
    case EventKind::ReplanTick: return "tick";
    case EventKind::AdmissionDeadline: return "deadline";
  }
  return "?";
}

void EventQueue::push(Real time, EventKind kind, std::int64_t payload) {
  Event e;
  e.time = time;
  e.kind = kind;
  e.payload = payload;
  e.sequence = next_sequence_++;
  heap_.push(e);
}

Event EventQueue::pop() {
  COSCHED_EXPECTS(!heap_.empty());
  Event e = heap_.top();
  heap_.pop();
  return e;
}

void EventLog::record(Real time, EventKind kind, std::string detail) {
  entries_.push_back(Entry{time, kind, std::move(detail)});
}

TextTable EventLog::to_table() const {
  TextTable table({"time", "event", "detail"});
  for (const Entry& e : entries_)
    table.add_row({TextTable::fmt(e.time, 3), to_string(e.kind), e.detail});
  return table;
}

}  // namespace cosched
