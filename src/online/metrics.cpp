#include "online/metrics.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace cosched {

std::vector<Real> queue_wait_metric_edges() {
  return {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0};
}

std::vector<Real> replan_duration_metric_edges() {
  return {0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0};
}

SchedulerMetrics::SchedulerMetrics()
    : queue_wait_(queue_wait_metric_edges()),
      registry_queue_wait_(&MetricsRegistry::global().histogram(
          kQueueWaitMetricName, kQueueWaitMetricHelp,
          queue_wait_metric_edges())),
      registry_replan_duration_(&MetricsRegistry::global().histogram(
          kReplanDurationMetricName, kReplanDurationMetricHelp,
          replan_duration_metric_edges())),
      slowdown_({1.1, 1.25, 1.5, 2.0, 3.0, 5.0}),
      migrations_per_replan_({0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {}

void SchedulerMetrics::on_replan(ReplanRecord record) {
  ++replans_;
  migrations_ += static_cast<std::uint64_t>(record.migrations);
  migrations_per_replan_.add(static_cast<Real>(record.migrations));
  solve_wall_seconds_ += record.solve_wall_seconds;
  registry_replan_duration_->observe(
      static_cast<Real>(record.solve_wall_seconds), record.trace_id);
  replans_log_.push_back(std::move(record));
}

void SchedulerMetrics::on_advance(Real dt, std::int32_t live,
                                  Real total_degradation) {
  COSCHED_EXPECTS(dt >= 0.0);
  degradation_time_ += total_degradation * dt;
  live_time_ += static_cast<Real>(live) * dt;
}

TextTable SchedulerMetrics::summary_table() const {
  TextTable table({"metric", "value"});
  auto row = [&](const char* name, std::string value) {
    table.add_row({name, std::move(value)});
  };
  row("arrivals", TextTable::fmt_int(static_cast<std::int64_t>(arrivals_)));
  row("admissions",
      TextTable::fmt_int(static_cast<std::int64_t>(admissions_)));
  row("completions",
      TextTable::fmt_int(static_cast<std::int64_t>(completions_)));
  row("replans", TextTable::fmt_int(static_cast<std::int64_t>(replans_)));
  row("migrations",
      TextTable::fmt_int(static_cast<std::int64_t>(migrations_)));
  row("mean queue wait", TextTable::fmt(queue_wait_.mean()));
  row("max queue wait", TextTable::fmt(queue_wait_.max()));
  row("mean slowdown", TextTable::fmt(slowdown_.mean()));
  row("mean migrations/replan",
      TextTable::fmt(mean_migrations_per_replan()));
  row("running mean degradation",
      TextTable::fmt(running_mean_degradation()));
  return table;
}

TextTable SchedulerMetrics::histogram_table() const {
  TextTable table({"metric", "count", "mean", "max", "buckets"});
  auto row = [&](const char* name, const Histogram& h) {
    table.add_row({name,
                   TextTable::fmt_int(static_cast<std::int64_t>(h.count())),
                   TextTable::fmt(h.mean()), TextTable::fmt(h.max()),
                   h.summary()});
  };
  row("queue wait", queue_wait_);
  row("slowdown", slowdown_);
  row("migrations/replan", migrations_per_replan_);
  return table;
}

TextTable SchedulerMetrics::replans_table(bool include_wall_times) const {
  std::vector<std::string> headers{"time",     "solver",      "admitted",
                                   "migrations", "stay combined", "combined",
                                   "degradation"};
  if (include_wall_times) headers.push_back("solve seconds");
  TextTable table(std::move(headers));
  for (const ReplanRecord& r : replans_log_) {
    std::vector<std::string> row{
        TextTable::fmt(r.time, 3), r.solver, TextTable::fmt_int(r.admitted),
        TextTable::fmt_int(r.migrations), TextTable::fmt(r.stay_combined),
        TextTable::fmt(r.combined), TextTable::fmt(r.degradation)};
    if (include_wall_times)
      row.push_back(TextTable::fmt(r.solve_wall_seconds, 5));
    table.add_row(std::move(row));
  }
  return table;
}

std::string SchedulerMetrics::render_deterministic_csv() const {
  return summary_table().render_csv() + histogram_table().render_csv() +
         replans_table(false).render_csv();
}

std::vector<std::string> SchedulerMetrics::write_csvs(
    const std::string& dir, const std::string& prefix) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::cerr << "warning: cannot create metrics directory " << dir << ": "
              << ec.message() << "\n";
    return {};
  }
  const std::pair<const char*, TextTable> tables[] = {
      {"summary", summary_table()},
      {"histograms", histogram_table()},
      {"replans", replans_table(false)},
  };
  std::vector<std::string> paths;
  for (const auto& [suffix, table] : tables) {
    std::string path = dir + "/" + prefix + "_" + suffix + ".csv";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << "\n";
      return {};
    }
    out << table.render_csv();
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace cosched
