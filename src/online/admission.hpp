// AdmissionPolicy — when the online service replans and which pending jobs
// a replan admits.
//
// Arrivals are batched: jobs queue until a trigger fires, then a replan
// admits as many as the fixed fleet has free cores for (FIFO, whole jobs),
// padding leftover cores with idle (imaginary) processes so the solvers see
// the usual multiple-of-u batch. Three trigger families, compared head to
// head by bench/online_throughput:
//
//  * EveryKArrivals       — replan once k jobs are pending (arrival-driven
//                           batching; small k = low latency, large k = big
//                           well-packed batches).
//  * DegradationThreshold — replan when the running placement's mean
//                           per-process degradation exceeds a bound (also
//                           fires with an empty pending queue, to rebalance
//                           after completions), rate-limited by a cooldown.
//  * Periodic             — replan on a fixed virtual-time period when work
//                           is pending.
//
// Every policy shares a max-wait backstop: a pending job replans the
// service when it has waited `max_wait`, so no trigger can starve the
// queue.
#pragma once

#include <cstdint>
#include <span>

#include "util/common.hpp"

namespace cosched {

enum class ReplanTrigger {
  EveryKArrivals,
  DegradationThreshold,
  Periodic,
};

const char* to_string(ReplanTrigger trigger);

struct AdmissionOptions {
  ReplanTrigger trigger = ReplanTrigger::EveryKArrivals;
  /// EveryKArrivals: pending-queue depth that fires a replan.
  std::int32_t every_k = 4;
  /// DegradationThreshold: mean live degradation that fires a replan.
  Real degradation_threshold = 0.35;
  /// DegradationThreshold: minimum virtual time between threshold-fired
  /// replans (prevents thrashing when the bound is unattainable).
  Real min_replan_interval = 1.0;
  /// Periodic: replan period in virtual seconds.
  Real period = 8.0;
  /// All policies: a job pending this long forces a replan.
  Real max_wait = 25.0;
};

/// Snapshot of the service state a trigger decision looks at.
struct AdmissionState {
  Real now = 0.0;
  std::int32_t pending_jobs = 0;
  std::int32_t running_processes = 0;
  std::int32_t free_slots = 0;
  Real running_mean_degradation = 0.0;
  Real last_replan_time = -kInfinity;
};

class AdmissionPolicy {
 public:
  explicit AdmissionPolicy(AdmissionOptions options);

  const AdmissionOptions& options() const { return options_; }

  /// Event-driven check, consulted after every arrival and completion.
  /// Periodic firing is not decided here — the service schedules
  /// ReplanTick events at `options().period` instead.
  bool should_replan(const AdmissionState& state) const;

  /// FIFO admission under a slot budget: how many of the leading
  /// `pending_sizes` jobs fit into `free_slots` cores. A parallel job is
  /// admitted whole or not at all, and admission stops at the first job
  /// that does not fit (strict FIFO — no skipping ahead).
  static std::int32_t admit_fifo(std::span<const std::int32_t> pending_sizes,
                                 std::int32_t free_slots);

 private:
  AdmissionOptions options_;
};

}  // namespace cosched
