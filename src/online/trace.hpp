// Workload traces for the online service: jobs arriving over virtual time.
//
// Traces come from two places — a seeded generator (Poisson arrivals,
// paper-style miss rates in [15%, 75%]) for benchmarks, and a plain-text
// replay format so a recorded or hand-written trace can be re-run exactly.
// Both are deterministic: the same spec/file yields the same trace on any
// platform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "workload/job.hpp"

namespace cosched {

/// One job of an online workload. `work` is the solo execution time in
/// virtual seconds; contention stretches it by (1 + d) while co-running.
struct TraceJob {
  Real arrival_time = 0.0;
  std::string name;
  JobKind kind = JobKind::Serial;  ///< Serial or ParallelNoComm
  std::int32_t processes = 1;      ///< 1 for serial jobs
  Real work = 10.0;
  Real miss_rate = 0.4;            ///< cache pressure in [0, 1]
  Real sensitivity = 0.7;          ///< degradation susceptibility
};

struct WorkloadTrace {
  std::vector<TraceJob> jobs;  ///< sorted by arrival_time

  std::int32_t job_count() const {
    return static_cast<std::int32_t>(jobs.size());
  }
  std::int32_t process_count() const;
  /// Last arrival time (0 for an empty trace).
  Real horizon() const;
};

struct TraceSpec {
  std::int32_t job_count = 100;
  /// Mean of the exponential interarrival distribution (virtual seconds).
  Real mean_interarrival = 1.0;
  Real work_lo = 5.0;
  Real work_hi = 30.0;
  /// Paper methodology: cache miss rates uniform in [15%, 75%].
  Real miss_rate_lo = 0.15;
  Real miss_rate_hi = 0.75;
  /// Fraction of jobs that are PE-parallel; their size is uniform in
  /// [2, max_parallel_processes].
  Real parallel_fraction = 0.0;
  std::int32_t max_parallel_processes = 4;
  std::uint64_t seed = 1;
};

/// Seeded deterministic generation.
WorkloadTrace generate_trace(const TraceSpec& spec);

/// Replay format: '#'-prefixed comment lines, then one job per line as
///   arrival,name,kind,processes,work,miss_rate,sensitivity
/// with kind in {SE, PE}. Reals round-trip exactly (%.17g).
void save_trace(const WorkloadTrace& trace, std::ostream& out);
bool save_trace(const WorkloadTrace& trace, const std::string& path);
WorkloadTrace load_trace(std::istream& in);  ///< throws on malformed input
WorkloadTrace load_trace(const std::string& path);

}  // namespace cosched
