#include "online/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace cosched {

std::int32_t WorkloadTrace::process_count() const {
  std::int32_t n = 0;
  for (const TraceJob& j : jobs) n += j.processes;
  return n;
}

Real WorkloadTrace::horizon() const {
  return jobs.empty() ? 0.0 : jobs.back().arrival_time;
}

WorkloadTrace generate_trace(const TraceSpec& spec) {
  COSCHED_EXPECTS(spec.job_count >= 0);
  COSCHED_EXPECTS(spec.mean_interarrival > 0.0);
  COSCHED_EXPECTS(spec.work_lo > 0.0 && spec.work_lo <= spec.work_hi);
  COSCHED_EXPECTS(spec.parallel_fraction >= 0.0 &&
                  spec.parallel_fraction <= 1.0);
  COSCHED_EXPECTS(spec.max_parallel_processes >= 2);

  Rng rng(spec.seed);
  WorkloadTrace trace;
  trace.jobs.reserve(static_cast<std::size_t>(spec.job_count));
  Real t = 0.0;
  for (std::int32_t k = 0; k < spec.job_count; ++k) {
    t += -spec.mean_interarrival * std::log(1.0 - rng.uniform01());
    TraceJob job;
    job.arrival_time = t;
    job.work = rng.uniform_real(spec.work_lo, spec.work_hi);
    job.miss_rate = rng.uniform_real(spec.miss_rate_lo, spec.miss_rate_hi);
    // Same sensitivity convention as build_synthetic_problem: correlated
    // with pressure plus an independent component.
    job.sensitivity = 0.3 + job.miss_rate + rng.uniform_real(-0.15, 0.15);
    if (rng.uniform01() < spec.parallel_fraction) {
      job.kind = JobKind::ParallelNoComm;
      job.processes = static_cast<std::int32_t>(
          rng.uniform_int(2, spec.max_parallel_processes));
      job.name = "mpi" + std::to_string(k);
    } else {
      job.kind = JobKind::Serial;
      job.processes = 1;
      job.name = "job" + std::to_string(k);
    }
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

namespace {

std::string fmt_real(Real v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* kind_tag(JobKind kind) {
  switch (kind) {
    case JobKind::Serial: return "SE";
    case JobKind::ParallelNoComm: return "PE";
    default: break;
  }
  throw std::invalid_argument("trace jobs must be SE or PE");
}

JobKind parse_kind(const std::string& tag) {
  if (tag == "SE") return JobKind::Serial;
  if (tag == "PE") return JobKind::ParallelNoComm;
  throw std::invalid_argument("unknown trace job kind: " + tag);
}

}  // namespace

void save_trace(const WorkloadTrace& trace, std::ostream& out) {
  out << "# cosched workload trace v1\n"
      << "# arrival,name,kind,processes,work,miss_rate,sensitivity\n";
  for (const TraceJob& j : trace.jobs) {
    out << fmt_real(j.arrival_time) << ',' << j.name << ','
        << kind_tag(j.kind) << ',' << j.processes << ',' << fmt_real(j.work)
        << ',' << fmt_real(j.miss_rate) << ',' << fmt_real(j.sensitivity)
        << '\n';
  }
}

bool save_trace(const WorkloadTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  save_trace(trace, out);
  return out.good();
}

WorkloadTrace load_trace(std::istream& in) {
  WorkloadTrace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream cells(line);
    std::string arrival, name, kind, processes, work, miss, sens;
    bool ok = static_cast<bool>(std::getline(cells, arrival, ',')) &&
              static_cast<bool>(std::getline(cells, name, ',')) &&
              static_cast<bool>(std::getline(cells, kind, ',')) &&
              static_cast<bool>(std::getline(cells, processes, ',')) &&
              static_cast<bool>(std::getline(cells, work, ',')) &&
              static_cast<bool>(std::getline(cells, miss, ',')) &&
              static_cast<bool>(std::getline(cells, sens));
    if (!ok)
      throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                  ": expected 7 comma-separated fields");
    TraceJob job;
    job.arrival_time = std::stod(arrival);
    job.name = name;
    job.kind = parse_kind(kind);
    job.processes = static_cast<std::int32_t>(std::stol(processes));
    job.work = std::stod(work);
    job.miss_rate = std::stod(miss);
    job.sensitivity = std::stod(sens);
    if (job.processes < 1 ||
        (job.kind == JobKind::Serial && job.processes != 1))
      throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                  ": bad process count");
    if (job.work <= 0.0)
      throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                  ": work must be positive");
    trace.jobs.push_back(std::move(job));
  }
  std::stable_sort(trace.jobs.begin(), trace.jobs.end(),
                   [](const TraceJob& a, const TraceJob& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  return trace;
}

WorkloadTrace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open trace file: " + path);
  return load_trace(in);
}

}  // namespace cosched
