#include "online/journal.hpp"

#include <algorithm>

#include "util/table.hpp"

namespace cosched {

const char* to_string(JournalEventKind kind) {
  switch (kind) {
    case JournalEventKind::Admission: return "admission";
    case JournalEventKind::BatchTrigger: return "batch_trigger";
    case JournalEventKind::Placement: return "placement";
    case JournalEventKind::Spillover: return "spillover";
    case JournalEventKind::Migration: return "migration";
    case JournalEventKind::Completion: return "completion";
    case JournalEventKind::Alert: return "alert";
  }
  return "?";
}

bool journal_event_kind_from(std::uint8_t raw, JournalEventKind& out) {
  if (raw >= kJournalEventKinds) return false;
  out = static_cast<JournalEventKind>(raw);
  return true;
}

DecisionJournal::DecisionJournal(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void DecisionJournal::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (ring_.size() > capacity_) evict_locked();
}

std::size_t DecisionJournal::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void DecisionJournal::evict_locked() {
  ring_.pop_front();
  ++dropped_;
}

void DecisionJournal::append(JournalEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  event.seq = next_seq_++;
  ++by_kind_[static_cast<std::size_t>(event.kind)];
  ring_.push_back(std::move(event));
  while (ring_.size() > capacity_) evict_locked();
}

JobTimeline DecisionJournal::query(std::int64_t job_id) const {
  JobTimeline out;
  out.job_id = job_id;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const JournalEvent& event : ring_) {
    if (event.job_id == job_id) out.events.push_back(event);
  }
  // With evictions on record, a timeline that no longer opens with the
  // job's admission may be missing its early decisions — including the
  // everything-evicted case of an empty list for a real job.
  out.truncated =
      dropped_ > 0 && (out.events.empty() ||
                       out.events.front().kind != JournalEventKind::Admission);
  return out;
}

std::vector<JournalEvent> DecisionJournal::tail(std::size_t max_events) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = std::min(max_events, ring_.size());
  return std::vector<JournalEvent>(ring_.end() - static_cast<std::ptrdiff_t>(n),
                                   ring_.end());
}

std::uint64_t DecisionJournal::events_total(JournalEventKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_kind_[static_cast<std::size_t>(kind)];
}

std::uint64_t DecisionJournal::dropped_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::size_t DecisionJournal::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

void DecisionJournal::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  dropped_ = 0;
  for (auto& count : by_kind_) count = 0;
}

std::string render_journal_event(const JournalEvent& event) {
  std::string out = "t=" + TextTable::fmt(event.time);
  out += " kind=";
  out += to_string(event.kind);
  out += " job=" + std::to_string(event.job_id);
  out += " policy=" + (event.policy.empty() ? "-" : event.policy);
  out += " machine=" + std::to_string(event.machine);
  out += " candidates=" + std::to_string(event.candidates);
  out += " delta=" + TextTable::fmt(event.degradation_delta);
  out += " co_runners=[";
  for (std::size_t i = 0; i < event.co_runners.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(event.co_runners[i]);
  }
  out += "]";
  out += " trace=" + std::to_string(event.trace_id);
  if (!event.detail.empty()) out += " " + event.detail;
  return out;
}

std::string render_journal_metrics(const DecisionJournal& journal) {
  std::string out;
  out +=
      "# HELP cosched_journal_events_total decision-journal events "
      "recorded\n"
      "# TYPE cosched_journal_events_total counter\n";
  for (std::size_t k = 0; k < kJournalEventKinds; ++k) {
    JournalEventKind kind = static_cast<JournalEventKind>(k);
    out += "cosched_journal_events_total{kind=\"";
    out += to_string(kind);
    out += "\"} " + std::to_string(journal.events_total(kind)) + "\n";
  }
  out +=
      "# HELP cosched_journal_events_dropped_total journal events evicted "
      "oldest-first past the ring capacity\n"
      "# TYPE cosched_journal_events_dropped_total counter\n"
      "cosched_journal_events_dropped_total " +
      std::to_string(journal.dropped_total()) + "\n";
  return out;
}

}  // namespace cosched
