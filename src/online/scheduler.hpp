// OnlineScheduler — the event-driven co-scheduling service.
//
// A fixed fleet of M identical u-core machines serves a stream of arriving
// jobs (WorkloadTrace). The service owns a virtual clock, a pending-job
// queue and the current placement, and turns the repo's one-shot solvers
// into an online scheduler:
//
//  * arrivals queue until the AdmissionPolicy fires; a replan admits
//    pending jobs FIFO into free cores and pads the rest with idle
//    processes, so every solve sees a standard multiple-of-u Problem;
//  * each replan composes a pluggable fresh-schedule solver (HA* — beam
//    mode at scale —, PG greedy, or random) with replan_with_migrations,
//    trading Eq. 13 degradation against the cost of moving already-running
//    processes (newly admitted jobs and idle slots move free, via the
//    weighted move_weight extension);
//  * degradation queries go through a CachingDegradationModel keyed by
//    *global* process ids, so repeated replans over overlapping live sets
//    and concurrent evaluation reuse predictions instead of recomputing;
//    finished jobs' entries are evicted in epochs (cache_compaction_jobs)
//    so a long-lived service's cache stays bounded;
//  * progress is simulated with per-process rates: a process with current
//    degradation d advances its solo work at 1/(1+d), re-evaluated whenever
//    a machine's co-runner set changes. Completions free cores mid-epoch.
//
// The service runs open-world: begin() resets it, submit() feeds one job,
// pump(t) processes everything up to virtual time t, finish() drains. The
// batch entry point run(trace) is exactly begin + submit* + finish, so a
// job mix driven through the RPC front-end (src/rpc) in virtual-time mode
// replays byte-identically to the same mix fed as a trace.
//
// Everything observable — the event log and SchedulerMetrics — is a pure
// function of (submission sequence, options), byte-identical across runs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/oracle_cache.hpp"
#include "core/problem.hpp"
#include "online/admission.hpp"
#include "online/event.hpp"
#include "online/journal.hpp"
#include "online/metrics.hpp"
#include "online/trace.hpp"
#include "util/rng.hpp"

namespace cosched {

/// Which solver produces the fresh candidate schedule at each replan.
enum class OnlineSolverKind { HAStar, PgGreedy, Random };

const char* to_string(OnlineSolverKind kind);

struct OnlineSchedulerOptions {
  std::uint32_t cores = 4;     ///< u of every machine (2, 4 or 8)
  std::int32_t machines = 8;   ///< fixed fleet size M
  OnlineSolverKind solver = OnlineSolverKind::HAStar;
  AdmissionOptions admission;
  /// Degradation-units charged per moved running process (Eq. 13 vs
  /// migration trade-off of each replan).
  Real migration_cost = 0.05;
  /// Swap-improvement passes of the migration-aware local search per
  /// replan. Small on purpose: the online loop replans often.
  std::uint64_t replan_passes = 3;
  /// S-curve capacity of the synthetic contention model; 0 = the builders'
  /// convention 0.45 * (u - 1).
  Real synthetic_capacity = 0.0;
  /// Oracle-cache compaction epoch: after this many job completions, evict
  /// cache entries that mention a process id no longer live. 0 disables
  /// compaction (the offline-benchmark default); the RPC server enables it
  /// so a long-lived service's cache plateaus instead of growing with every
  /// job that ever ran.
  std::uint32_t cache_compaction_jobs = 0;
  std::uint64_t seed = 0xC05EDULL;  ///< Random-solver draws
  bool log_process_finish = true;   ///< event-log verbosity
  /// Decision-journal ring capacity (admissions, placements, migrations);
  /// oldest events are evicted (and counted) past this bound.
  std::size_t journal_capacity = 65536;
};

/// Lifecycle of a submitted job as seen by status queries.
enum class JobPhase { Pending, Running, Finished };

const char* to_string(JobPhase phase);

/// Per-process placement + prediction of one job (Eq. 1/9 degradation under
/// the current co-runner set).
struct JobProcView {
  std::int64_t gid = -1;
  std::int32_t machine = -1;  ///< -1 while pending / after finish
  Real degradation = 0.0;
  Real remaining_work = 0.0;  ///< solo-seconds left
};

struct JobStatusView {
  std::int64_t id = -1;
  std::string name;
  JobPhase phase = JobPhase::Pending;
  Real arrival_time = 0.0;
  Real admit_time = -1.0;   ///< < 0 while pending
  Real finish_time = -1.0;  ///< < 0 until the last process completes
  Real work = 0.0;
  std::vector<JobProcView> procs;  ///< empty while pending
};

/// Point-in-time view of the whole fleet.
struct ServiceSnapshot {
  Real now = 0.0;
  std::int64_t pending_jobs = 0;
  std::int32_t free_slots = 0;
  std::uint64_t completions = 0;
  Real live_degradation_sum = 0.0;   ///< Σ d_i over live processes
  Real mean_live_degradation = 0.0;
  struct Proc {
    std::int64_t gid = -1;
    std::int64_t job = -1;
    Real degradation = 0.0;
  };
  std::vector<std::vector<Proc>> machines;
};

class OnlineScheduler {
 public:
  explicit OnlineScheduler(OnlineSchedulerOptions options);
  ~OnlineScheduler();

  /// Feeds the whole trace and simulates to completion of every job.
  /// Exactly begin() + submit(job)* + finish().
  void run(const WorkloadTrace& trace);

  // ---- open-world (live) interface -------------------------------------
  /// Resets clock, queues, placement and metrics. The degradation cache
  /// intentionally survives (warm restarts of the same workload).
  void begin();
  /// Registers one job; its arrival event fires at spec.arrival_time
  /// (clamped up to the current virtual time — arrivals cannot be in the
  /// past). Returns the job id used by job_status(). Events at or before
  /// the arrival are NOT processed; call pump().
  std::int64_t submit(const TraceJob& spec);
  /// Processes every due occurrence (process completions and queued
  /// events) with virtual time <= limit, in deterministic order. The clock
  /// only moves when an occurrence is processed, so pump(t) followed by
  /// pump(t') is byte-identical to pump(t').
  void pump(Real limit);
  /// Drains: processes everything until no work is outstanding.
  void finish();
  /// Virtual time of the next due occurrence (process completion or queued
  /// event); kInfinity when nothing is scheduled. Lets a wall-clock bridge
  /// sleep until something actually happens instead of polling.
  Real next_occurrence_time() const;

  // ---- introspection ---------------------------------------------------
  const OnlineSchedulerOptions& options() const { return options_; }
  Real now() const { return clock_.now(); }
  const SchedulerMetrics& metrics() const { return metrics_; }
  const EventLog& log() const { return log_; }
  /// Per-decision attribution ring (see journal.hpp); query with
  /// job_timeline(). The non-const overload exists for the alert engine,
  /// which appends fleet-level transition events from its own thread (the
  /// journal is internally mutex-guarded).
  const DecisionJournal& journal() const { return journal_; }
  DecisionJournal& journal() { return journal_; }
  /// Admission → placement → migration → completion events of one job.
  JobTimeline job_timeline(std::int64_t job_id) const {
    return journal_.query(job_id);
  }
  /// Shared degradation cache (hit statistics, entry count).
  const DegradationCache& oracle_cache() const { return *cache_; }
  std::int32_t machine_count() const { return options_.machines; }
  std::int32_t total_cores() const {
    return options_.machines * static_cast<std::int32_t>(options_.cores);
  }
  /// machine -> global ids of the live processes it hosts.
  std::vector<std::vector<std::int64_t>> placement() const;
  std::int64_t job_count() const;
  /// Status + placement + predicted degradation of one submitted job.
  JobStatusView job_status(std::int64_t job_id) const;
  /// Fleet-wide placement/degradation snapshot at the current clock.
  ServiceSnapshot service_snapshot() const;

 private:
  struct JobState;
  struct ProcState;

  // Simulation steps (see scheduler.cpp).
  bool step_one(Real limit);
  void advance_to(Real t);
  void handle_arrival(std::int64_t job_id);
  void handle_process_finish(std::int64_t proc_gid);
  void handle_tick();
  void handle_deadline(std::int64_t job_id);
  void maybe_replan();
  void replan(const char* reason, bool allow_pure_rebalance);
  void refresh_degradations();
  void maybe_compact_cache();
  void arm_tick();
  bool outstanding_work() const;
  std::int32_t live_process_count() const;
  std::int32_t free_slot_count() const;
  Real live_degradation_sum() const;
  Real mean_live_degradation() const;

  OnlineSchedulerOptions options_;
  AdmissionPolicy policy_;
  Rng rng_;

  VirtualClock clock_;
  EventQueue queue_;
  EventLog log_;
  DecisionJournal journal_;
  SchedulerMetrics metrics_;
  DegradationCachePtr cache_;

  std::vector<JobState> jobs_;           ///< indexed by global job id
  std::vector<ProcState> procs_;         ///< indexed by global process id
  std::vector<std::int64_t> pending_;    ///< FIFO of pending job ids
  std::vector<std::vector<std::int64_t>> machines_;  ///< live proc gids
  std::int64_t remaining_arrivals_ = 0;
  Real last_replan_time_ = -kInfinity;
  bool tick_armed_ = false;
  std::uint32_t finished_since_compaction_ = 0;

  // Current problem context (rebuilt at each replan): local <-> global maps
  // and the cached model used for rate re-evaluation between replans.
  std::unique_ptr<Problem> problem_;
  std::vector<std::int64_t> local_to_gid_;  ///< -1 for idle padding
};

}  // namespace cosched
