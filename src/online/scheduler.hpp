// OnlineScheduler — the event-driven co-scheduling service.
//
// A fixed fleet of M identical u-core machines serves a stream of arriving
// jobs (WorkloadTrace). The service owns a virtual clock, a pending-job
// queue and the current placement, and turns the repo's one-shot solvers
// into an online scheduler:
//
//  * arrivals queue until the AdmissionPolicy fires; a replan admits
//    pending jobs FIFO into free cores and pads the rest with idle
//    processes, so every solve sees a standard multiple-of-u Problem;
//  * each replan composes a pluggable fresh-schedule solver (HA* — beam
//    mode at scale —, PG greedy, or random) with replan_with_migrations,
//    trading Eq. 13 degradation against the cost of moving already-running
//    processes (newly admitted jobs and idle slots move free, via the
//    weighted move_weight extension);
//  * degradation queries go through a CachingDegradationModel keyed by
//    *global* process ids, so repeated replans over overlapping live sets
//    and concurrent evaluation reuse predictions instead of recomputing;
//  * progress is simulated with per-process rates: a process with current
//    degradation d advances its solo work at 1/(1+d), re-evaluated whenever
//    a machine's co-runner set changes. Completions free cores mid-epoch.
//
// Everything observable — the event log and SchedulerMetrics — is a pure
// function of (trace, options), byte-identical across runs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/oracle_cache.hpp"
#include "core/problem.hpp"
#include "online/admission.hpp"
#include "online/event.hpp"
#include "online/metrics.hpp"
#include "online/trace.hpp"
#include "util/rng.hpp"

namespace cosched {

/// Which solver produces the fresh candidate schedule at each replan.
enum class OnlineSolverKind { HAStar, PgGreedy, Random };

const char* to_string(OnlineSolverKind kind);

struct OnlineSchedulerOptions {
  std::uint32_t cores = 4;     ///< u of every machine (2, 4 or 8)
  std::int32_t machines = 8;   ///< fixed fleet size M
  OnlineSolverKind solver = OnlineSolverKind::HAStar;
  AdmissionOptions admission;
  /// Degradation-units charged per moved running process (Eq. 13 vs
  /// migration trade-off of each replan).
  Real migration_cost = 0.05;
  /// Swap-improvement passes of the migration-aware local search per
  /// replan. Small on purpose: the online loop replans often.
  std::uint64_t replan_passes = 3;
  /// S-curve capacity of the synthetic contention model; 0 = the builders'
  /// convention 0.45 * (u - 1).
  Real synthetic_capacity = 0.0;
  std::uint64_t seed = 0xC05EDULL;  ///< Random-solver draws
  bool log_process_finish = true;   ///< event-log verbosity
};

class OnlineScheduler {
 public:
  explicit OnlineScheduler(OnlineSchedulerOptions options);
  ~OnlineScheduler();

  /// Feeds the whole trace and simulates to completion of every job.
  void run(const WorkloadTrace& trace);

  // ---- introspection ---------------------------------------------------
  const OnlineSchedulerOptions& options() const { return options_; }
  Real now() const { return clock_.now(); }
  const SchedulerMetrics& metrics() const { return metrics_; }
  const EventLog& log() const { return log_; }
  /// Shared degradation cache (hit statistics, entry count).
  const DegradationCache& oracle_cache() const { return *cache_; }
  std::int32_t machine_count() const { return options_.machines; }
  std::int32_t total_cores() const {
    return options_.machines * static_cast<std::int32_t>(options_.cores);
  }
  /// machine -> global ids of the live processes it hosts.
  std::vector<std::vector<std::int64_t>> placement() const;

 private:
  struct JobState;
  struct ProcState;

  // Simulation steps (see scheduler.cpp).
  void advance_to(Real t);
  void handle_arrival(std::int64_t job_id);
  void handle_process_finish(std::int64_t proc_gid);
  void handle_tick();
  void handle_deadline(std::int64_t job_id);
  void maybe_replan();
  void replan(const char* reason, bool allow_pure_rebalance);
  void refresh_degradations();
  bool outstanding_work() const;
  std::int32_t live_process_count() const;
  std::int32_t free_slot_count() const;
  Real live_degradation_sum() const;
  Real mean_live_degradation() const;

  OnlineSchedulerOptions options_;
  AdmissionPolicy policy_;
  Rng rng_;

  VirtualClock clock_;
  EventQueue queue_;
  EventLog log_;
  SchedulerMetrics metrics_;
  DegradationCachePtr cache_;

  std::vector<JobState> jobs_;           ///< indexed by global job id
  std::vector<ProcState> procs_;         ///< indexed by global process id
  std::vector<std::int64_t> pending_;    ///< FIFO of pending job ids
  std::vector<std::vector<std::int64_t>> machines_;  ///< live proc gids
  std::int64_t remaining_arrivals_ = 0;
  Real last_replan_time_ = -kInfinity;

  // Current problem context (rebuilt at each replan): local <-> global maps
  // and the cached model used for rate re-evaluation between replans.
  std::unique_ptr<Problem> problem_;
  std::vector<std::int64_t> local_to_gid_;  ///< -1 for idle padding
};

}  // namespace cosched
