#include "online/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "astar/search.hpp"
#include "baseline/pg_greedy.hpp"
#include "baseline/random_schedule.hpp"
#include "cache/machine_config.hpp"
#include "core/degradation_models.hpp"
#include "core/snapshot.hpp"
#include "obs/log.hpp"
#include "obs/profiler.hpp"
#include "obs/tail_sampler.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"
#include "vm/migration.hpp"

namespace cosched {

const char* to_string(OnlineSolverKind kind) {
  switch (kind) {
    case OnlineSolverKind::HAStar: return "hastar";
    case OnlineSolverKind::PgGreedy: return "pg";
    case OnlineSolverKind::Random: return "random";
  }
  return "?";
}

const char* to_string(JobPhase phase) {
  switch (phase) {
    case JobPhase::Pending: return "pending";
    case JobPhase::Running: return "running";
    case JobPhase::Finished: return "finished";
  }
  return "?";
}

struct OnlineScheduler::JobState {
  TraceJob spec;
  Real admit_time = -1.0;               ///< < 0 while pending
  Real finish_time = -1.0;              ///< < 0 until completion
  std::vector<std::int64_t> procs;      ///< global process ids
  std::int32_t unfinished = 0;
};

struct OnlineScheduler::ProcState {
  std::int64_t job = -1;
  Real remaining = 0.0;      ///< solo-seconds of work left
  Real degradation = 0.0;    ///< d_i under the current co-runner set
  std::int32_t machine = -1;
  std::int32_t local_id = -1;  ///< id in the current Problem
  bool live = false;
};

OnlineScheduler::OnlineScheduler(OnlineSchedulerOptions options)
    : options_(options),
      policy_(options.admission),
      rng_(options.seed),
      cache_(std::make_shared<DegradationCache>()) {
  COSCHED_EXPECTS(options_.machines >= 1);
  COSCHED_EXPECTS(options_.migration_cost >= 0.0);
  machine_by_cores(options_.cores);  // validates the core count
  machines_.assign(static_cast<std::size_t>(options_.machines), {});
  journal_.set_capacity(options_.journal_capacity);
}

OnlineScheduler::~OnlineScheduler() = default;

std::vector<std::vector<std::int64_t>> OnlineScheduler::placement() const {
  return machines_;
}

std::int64_t OnlineScheduler::job_count() const {
  return static_cast<std::int64_t>(jobs_.size());
}

JobStatusView OnlineScheduler::job_status(std::int64_t job_id) const {
  COSCHED_EXPECTS(job_id >= 0 && job_id < job_count());
  const JobState& job = jobs_[static_cast<std::size_t>(job_id)];
  JobStatusView view;
  view.id = job_id;
  view.name = job.spec.name;
  view.arrival_time = job.spec.arrival_time;
  view.admit_time = job.admit_time;
  view.finish_time = job.finish_time;
  view.work = job.spec.work;
  if (job.admit_time < 0.0) {
    view.phase = JobPhase::Pending;
  } else {
    view.phase = job.unfinished > 0 ? JobPhase::Running : JobPhase::Finished;
    view.procs.reserve(job.procs.size());
    for (std::int64_t gid : job.procs) {
      const ProcState& p = procs_[static_cast<std::size_t>(gid)];
      JobProcView pv;
      pv.gid = gid;
      pv.machine = p.machine;
      pv.degradation = p.live ? p.degradation : 0.0;
      pv.remaining_work = p.remaining;
      view.procs.push_back(pv);
    }
  }
  return view;
}

ServiceSnapshot OnlineScheduler::service_snapshot() const {
  ServiceSnapshot snap;
  snap.now = clock_.now();
  snap.pending_jobs = static_cast<std::int64_t>(pending_.size());
  snap.free_slots = free_slot_count();
  snap.completions = metrics_.completions();
  snap.live_degradation_sum = live_degradation_sum();
  snap.mean_live_degradation = mean_live_degradation();
  snap.machines.resize(machines_.size());
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    snap.machines[m].reserve(machines_[m].size());
    for (std::int64_t gid : machines_[m]) {
      const ProcState& p = procs_[static_cast<std::size_t>(gid)];
      snap.machines[m].push_back({gid, p.job, p.degradation});
    }
  }
  return snap;
}

std::int32_t OnlineScheduler::live_process_count() const {
  std::int32_t n = 0;
  for (const auto& m : machines_) n += static_cast<std::int32_t>(m.size());
  return n;
}

std::int32_t OnlineScheduler::free_slot_count() const {
  return total_cores() - live_process_count();
}

Real OnlineScheduler::live_degradation_sum() const {
  Real sum = 0.0;
  for (const auto& m : machines_)
    for (std::int64_t gid : m)
      sum += procs_[static_cast<std::size_t>(gid)].degradation;
  return sum;
}

Real OnlineScheduler::mean_live_degradation() const {
  std::int32_t live = live_process_count();
  return live == 0 ? 0.0 : live_degradation_sum() / static_cast<Real>(live);
}

bool OnlineScheduler::outstanding_work() const {
  return live_process_count() > 0 || !pending_.empty() ||
         remaining_arrivals_ > 0;
}

void OnlineScheduler::advance_to(Real t) {
  Real dt = t - clock_.now();
  COSCHED_EXPECTS(dt >= -kObjectiveEps);
  if (dt > 0.0) {
    metrics_.on_advance(dt, live_process_count(), live_degradation_sum());
    for (auto& machine : machines_) {
      for (std::int64_t gid : machine) {
        ProcState& p = procs_[static_cast<std::size_t>(gid)];
        p.remaining =
            std::max(0.0, p.remaining - dt / (1.0 + p.degradation));
      }
    }
    clock_.advance_to(t);
  }
}

void OnlineScheduler::refresh_degradations() {
  COSCHED_EXPECTS(problem_ != nullptr);
  std::vector<ProcessId> co;
  for (const auto& machine : machines_) {
    for (std::int64_t gid : machine) {
      ProcState& p = procs_[static_cast<std::size_t>(gid)];
      COSCHED_EXPECTS(p.local_id >= 0);
      co.clear();
      for (std::int64_t other : machine) {
        if (other == gid) continue;
        co.push_back(procs_[static_cast<std::size_t>(other)].local_id);
      }
      p.degradation = problem_->full_model->degradation(p.local_id, co);
    }
  }
}

void OnlineScheduler::begin() {
  // Fresh state; the degradation cache intentionally survives runs.
  clock_ = VirtualClock();
  queue_ = EventQueue();
  log_ = EventLog();
  journal_.clear();
  metrics_ = SchedulerMetrics();
  jobs_.clear();
  procs_.clear();
  pending_.clear();
  machines_.assign(static_cast<std::size_t>(options_.machines), {});
  problem_.reset();
  local_to_gid_.clear();
  remaining_arrivals_ = 0;
  last_replan_time_ = -kInfinity;
  tick_armed_ = false;
  finished_since_compaction_ = 0;
}

std::int64_t OnlineScheduler::submit(const TraceJob& spec) {
  COSCHED_EXPECTS(spec.processes >= 1 && spec.processes <= total_cores());
  JobState state;
  state.spec = spec;
  // Arrivals cannot be in the past: a live submission that raced the clock
  // is stamped "now". Batch replay never triggers this (arrivals are
  // sorted and nothing is pumped between submissions).
  if (state.spec.arrival_time < clock_.now())
    state.spec.arrival_time = clock_.now();
  std::int64_t id = static_cast<std::int64_t>(jobs_.size());
  jobs_.push_back(std::move(state));
  ++remaining_arrivals_;
  queue_.push(jobs_.back().spec.arrival_time, EventKind::JobArrival, id);
  arm_tick();
  return id;
}

void OnlineScheduler::arm_tick() {
  if (options_.admission.trigger != ReplanTrigger::Periodic || tick_armed_)
    return;
  queue_.push(clock_.now() + options_.admission.period, EventKind::ReplanTick,
              0);
  tick_armed_ = true;
}

bool OnlineScheduler::step_one(Real limit) {
  // Next process completion, if any: min over live processes of
  // now + remaining * (1 + d); ties broken by the smaller global id.
  Real next_finish = kInfinity;
  std::int64_t finish_gid = -1;
  for (const auto& machine : machines_) {
    for (std::int64_t gid : machine) {
      const ProcState& p = procs_[static_cast<std::size_t>(gid)];
      Real finish = clock_.now() + p.remaining * (1.0 + p.degradation);
      if (finish < next_finish ||
          (finish == next_finish && gid < finish_gid)) {
        next_finish = finish;
        finish_gid = gid;
      }
    }
  }

  if (finish_gid >= 0 &&
      (queue_.empty() || next_finish < queue_.top().time)) {
    if (next_finish > limit) return false;
    advance_to(next_finish);
    handle_process_finish(finish_gid);
    return true;
  }
  if (queue_.empty() || queue_.top().time > limit) return false;
  Event e = queue_.pop();
  advance_to(e.time);
  switch (e.kind) {
    case EventKind::JobArrival: handle_arrival(e.payload); break;
    case EventKind::ReplanTick: handle_tick(); break;
    case EventKind::AdmissionDeadline: handle_deadline(e.payload); break;
    default: COSCHED_ENSURES(false);
  }
  return true;
}

void OnlineScheduler::pump(Real limit) {
  while (step_one(limit)) {
  }
}

Real OnlineScheduler::next_occurrence_time() const {
  Real next = queue_.empty() ? kInfinity : queue_.top().time;
  for (const auto& machine : machines_) {
    for (std::int64_t gid : machine) {
      const ProcState& p = procs_[static_cast<std::size_t>(gid)];
      next = std::min(next,
                      clock_.now() + p.remaining * (1.0 + p.degradation));
    }
  }
  return next;
}

void OnlineScheduler::finish() {
  pump(kInfinity);
  COSCHED_ENSURES(pending_.empty());
  COSCHED_ENSURES(live_process_count() == 0);
  COSCHED_ENSURES(remaining_arrivals_ == 0);
}

void OnlineScheduler::run(const WorkloadTrace& trace) {
  begin();
  jobs_.reserve(trace.jobs.size());
  for (const TraceJob& j : trace.jobs) submit(j);
  finish();
}

void OnlineScheduler::handle_arrival(std::int64_t job_id) {
  JobState& job = jobs_[static_cast<std::size_t>(job_id)];
  pending_.push_back(job_id);
  --remaining_arrivals_;
  metrics_.on_arrival();
  log_.record(clock_.now(), EventKind::JobArrival,
              job.spec.name + " procs=" +
                  TextTable::fmt_int(job.spec.processes));
  queue_.push(clock_.now() + options_.admission.max_wait,
              EventKind::AdmissionDeadline, job_id);
  maybe_replan();
}

void OnlineScheduler::handle_process_finish(std::int64_t proc_gid) {
  ProcState& p = procs_[static_cast<std::size_t>(proc_gid)];
  COSCHED_EXPECTS(p.live && p.machine >= 0);
  p.remaining = 0.0;
  p.live = false;
  auto& machine = machines_[static_cast<std::size_t>(p.machine)];
  machine.erase(std::find(machine.begin(), machine.end(), proc_gid));
  p.machine = -1;

  JobState& job = jobs_[static_cast<std::size_t>(p.job)];
  if (options_.log_process_finish)
    log_.record(clock_.now(), EventKind::ProcessFinish,
                job.spec.name + "/p" + TextTable::fmt_int(proc_gid));
  COSCHED_EXPECTS(job.unfinished > 0);
  if (--job.unfinished == 0) {
    job.finish_time = clock_.now();
    Real slowdown = (clock_.now() - job.admit_time) / job.spec.work;
    metrics_.on_completion(slowdown);
    log_.record(clock_.now(), EventKind::JobCompletion,
                job.spec.name + " slowdown=" + TextTable::fmt(slowdown));
    JournalEvent done;
    done.job_id = p.job;
    done.kind = JournalEventKind::Completion;
    done.time = clock_.now();
    done.trace_id = Tracer::current_context().trace_id;
    done.detail = "slowdown=" + TextTable::fmt(slowdown);
    journal_.append(std::move(done));
    ++finished_since_compaction_;
    maybe_compact_cache();
  }
  refresh_degradations();
  maybe_replan();
}

void OnlineScheduler::maybe_compact_cache() {
  if (options_.cache_compaction_jobs == 0 ||
      finished_since_compaction_ < options_.cache_compaction_jobs)
    return;
  finished_since_compaction_ = 0;
  std::vector<ProcessId> live;
  for (const auto& machine : machines_)
    for (std::int64_t gid : machine)
      live.push_back(static_cast<ProcessId>(gid));
  cache_->evict_dead(live);
}

void OnlineScheduler::handle_tick() {
  if (outstanding_work())
    queue_.push(clock_.now() + options_.admission.period,
                EventKind::ReplanTick, 0);
  else
    tick_armed_ = false;
  if (!pending_.empty()) replan("tick", false);
}

void OnlineScheduler::handle_deadline(std::int64_t job_id) {
  const JobState& job = jobs_[static_cast<std::size_t>(job_id)];
  if (job.admit_time >= 0.0) return;  // admitted long ago
  log_.record(clock_.now(), EventKind::AdmissionDeadline, job.spec.name);
  replan("deadline", false);
  if (jobs_[static_cast<std::size_t>(job_id)].admit_time < 0.0)
    queue_.push(clock_.now() + options_.admission.max_wait,
                EventKind::AdmissionDeadline, job_id);
}

void OnlineScheduler::maybe_replan() {
  AdmissionState state;
  state.now = clock_.now();
  state.pending_jobs = static_cast<std::int32_t>(pending_.size());
  state.running_processes = live_process_count();
  state.free_slots = free_slot_count();
  state.running_mean_degradation = mean_live_degradation();
  state.last_replan_time = last_replan_time_;
  if (policy_.should_replan(state)) replan("policy", true);
}

void OnlineScheduler::replan(const char* reason, bool allow_pure_rebalance) {
  // ---- admission batch -------------------------------------------------
  std::vector<std::int32_t> pending_sizes;
  pending_sizes.reserve(pending_.size());
  for (std::int64_t id : pending_)
    pending_sizes.push_back(jobs_[static_cast<std::size_t>(id)].spec.processes);
  std::int32_t admit =
      AdmissionPolicy::admit_fifo(pending_sizes, free_slot_count());
  // A replan that admits nothing is only worth its solver cost for the
  // threshold trigger (rebalancing a degraded placement, cooldown-limited).
  bool pure_rebalance =
      allow_pure_rebalance &&
      options_.admission.trigger == ReplanTrigger::DegradationThreshold &&
      live_process_count() > 0;
  if (admit == 0 && !pure_rebalance) return;

  WallTimer timer;
  COSCHED_TRACE_SPAN(replan_span, "online.replan", clock_.now(),
                     std::string("reason=") + reason +
                         " solver=" + to_string(options_.solver));
  COSCHED_PROFILE_PHASE(replan_phase, "online.replan");

  // Decision journal: one fleet-level event per fired replan, then one
  // per admitted job — all stamped with the trace that triggered us.
  const std::uint64_t decision_trace = Tracer::current_context().trace_id;
  {
    JournalEvent trigger;
    trigger.kind = JournalEventKind::BatchTrigger;
    trigger.time = clock_.now();
    trigger.trace_id = decision_trace;
    trigger.policy = reason;
    trigger.candidates = static_cast<std::int32_t>(pending_.size());
    trigger.detail = "admit=" + TextTable::fmt_int(admit) +
                     " free_slots=" + TextTable::fmt_int(free_slot_count());
    journal_.append(std::move(trigger));
  }
  std::vector<std::int64_t> admitted_ids(
      pending_.begin(), pending_.begin() + admit);
  {
    COSCHED_TRACE_SPAN(admission_span, "replan.admission", clock_.now());
    COSCHED_PROFILE_PHASE(admission_phase, "replan.admission");
    for (std::int32_t k = 0; k < admit; ++k) {
      std::int64_t job_id = pending_[static_cast<std::size_t>(k)];
      JobState& job = jobs_[static_cast<std::size_t>(job_id)];
      job.admit_time = clock_.now();
      job.unfinished = job.spec.processes;
      for (std::int32_t r = 0; r < job.spec.processes; ++r) {
        std::int64_t gid = static_cast<std::int64_t>(procs_.size());
        ProcState p;
        p.job = job_id;
        p.remaining = job.spec.work;
        p.live = true;
        procs_.push_back(p);
        job.procs.push_back(gid);
      }
      Real wait = clock_.now() - job.spec.arrival_time;
      metrics_.on_admission(wait);
      log_.record(clock_.now(), EventKind::JobAdmission,
                  job.spec.name + " wait=" + TextTable::fmt(wait));
      JournalEvent admitted;
      admitted.job_id = job_id;
      admitted.kind = JournalEventKind::Admission;
      admitted.time = clock_.now();
      admitted.trace_id = decision_trace;
      admitted.policy = reason;
      admitted.candidates = admit;
      admitted.detail = "wait=" + TextTable::fmt(wait) +
                        " procs=" + TextTable::fmt_int(job.spec.processes);
      journal_.append(std::move(admitted));
    }
    pending_.erase(pending_.begin(), pending_.begin() + admit);
  }

  // ---- build the replan Problem over all live processes, then the fresh
  // candidate from the pluggable solver ----------------------------------
  Problem problem;
  Solution fresh;
  bool have_fresh = false;
  double fresh_solve_seconds = 0.0;
  {
    WallTimer solve_timer;
    COSCHED_TRACE_SPAN(solve_span, "replan.fresh_solve", clock_.now());
    COSCHED_PROFILE_PHASE(solve_phase, "replan.fresh_solve");
    problem.machine = machine_by_cores(options_.cores);
    std::vector<Real> rates;
    std::vector<Real> sens;
    local_to_gid_.clear();
    for (std::size_t job_id = 0; job_id < jobs_.size(); ++job_id) {
      JobState& job = jobs_[job_id];
      if (job.admit_time < 0.0 || job.unfinished == 0) continue;
      std::int32_t live_procs = 0;
      for (std::int64_t gid : job.procs)
        if (procs_[static_cast<std::size_t>(gid)].live) ++live_procs;
      COSCHED_ENSURES(live_procs == job.unfinished);
      problem.batch.add_job(job.spec.name, job.spec.kind, live_procs);
      for (std::int64_t gid : job.procs) {
        ProcState& p = procs_[static_cast<std::size_t>(gid)];
        if (!p.live) continue;
        p.local_id = static_cast<std::int32_t>(local_to_gid_.size());
        local_to_gid_.push_back(gid);
        rates.push_back(job.spec.miss_rate);
        sens.push_back(job.spec.sensitivity);
      }
    }
    std::int32_t idle = 0;
    while (static_cast<std::int32_t>(local_to_gid_.size()) < total_cores()) {
      problem.batch.add_job("idle" + std::to_string(idle++),
                            JobKind::Imaginary, 1);
      local_to_gid_.push_back(-1);
      rates.push_back(0.0);
      sens.push_back(0.0);
    }

    Real capacity = options_.synthetic_capacity > 0.0
                        ? options_.synthetic_capacity
                        : 0.45 * static_cast<Real>(options_.cores - 1);
    auto base = std::make_shared<SyntheticDegradationModel>(
        std::move(rates), std::move(sens), capacity,
        SyntheticLandscape::Threshold);
    std::vector<ProcessId> stable_ids;
    stable_ids.reserve(local_to_gid_.size());
    for (std::int64_t gid : local_to_gid_)
      stable_ids.push_back(static_cast<ProcessId>(gid));
    auto cached = std::make_shared<CachingDegradationModel>(
        base, cache_, std::move(stable_ids),
        BaseModelConcurrency::ConcurrentSafe);
    problem.contention_model = cached;
    problem.full_model = cached;
    problem.check();

    switch (options_.solver) {
      case OnlineSolverKind::HAStar: {
        SearchResult res = solve_hastar(problem);
        if (res.found) {
          fresh = std::move(res.solution);
          have_fresh = true;
        }
        break;
      }
      case OnlineSolverKind::PgGreedy:
        fresh = solve_pg_greedy(problem);
        have_fresh = true;
        break;
      case OnlineSolverKind::Random:
        fresh = solve_random(problem, rng_);
        have_fresh = true;
        break;
    }
    fresh_solve_seconds = solve_timer.seconds();
  }

  // ---- alignment: incumbent (running processes stay, everyone else
  // fills slots) versus the fresh candidate, migration-cost-aware --------
  Real stay_combined = 0.0;
  ReplanResult result;
  {
    COSCHED_TRACE_SPAN(alignment_span, "replan.alignment", clock_.now());
    COSCHED_PROFILE_PHASE(alignment_phase, "replan.alignment");
    const std::size_t u = options_.cores;
    Solution incumbent;
    incumbent.machines.resize(machines_.size());
    for (std::size_t m = 0; m < machines_.size(); ++m)
      for (std::int64_t gid : machines_[m])
        incumbent.machines[m].push_back(
            procs_[static_cast<std::size_t>(gid)].local_id);
    std::vector<ProcessId> fill;
    std::vector<Real> move_weight(local_to_gid_.size(), 0.0);
    for (std::size_t local = 0; local < local_to_gid_.size(); ++local) {
      std::int64_t gid = local_to_gid_[local];
      if (gid >= 0 && procs_[static_cast<std::size_t>(gid)].machine >= 0) {
        move_weight[local] = 1.0;  // previously running: moving it costs
      } else {
        fill.push_back(static_cast<ProcessId>(local));
      }
    }
    std::size_t next_fill = 0;
    for (auto& machine : incumbent.machines)
      while (machine.size() < u) machine.push_back(fill[next_fill++]);
    COSCHED_ENSURES(next_fill == fill.size());

    stay_combined = evaluate_solution(problem, incumbent).total;

    ReplanOptions replan_options;
    replan_options.migration_cost = options_.migration_cost;
    replan_options.max_passes = options_.replan_passes;
    replan_options.move_weight = std::move(move_weight);
    result = replan_with_migrations(
        problem, incumbent, have_fresh ? &fresh : nullptr, replan_options);
  }

  // ---- commit the placement -------------------------------------------
  // The adopted placement is a complete padded Solution, so the per-process
  // degradations come straight off the core snapshot accessor instead of a
  // per-machine re-query loop.
  COSCHED_TRACE_SPAN(commit_span, "replan.commit", clock_.now());
  COSCHED_PROFILE_PHASE(commit_phase, "replan.commit");
  // Pre-commit machine of every process: the commit loop overwrites it,
  // and the delta is what the journal's migration events report.
  std::vector<std::int32_t> prev_machine(procs_.size(), -1);
  for (std::size_t i = 0; i < procs_.size(); ++i)
    prev_machine[i] = procs_[i].machine;
  ScheduleSnapshot adopted = snapshot_schedule(problem, result.placement);
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    machines_[m].clear();
    for (ProcessId local : result.placement.machines[m]) {
      std::int64_t gid = local_to_gid_[static_cast<std::size_t>(local)];
      if (gid < 0) continue;  // idle slot
      ProcState& p = procs_[static_cast<std::size_t>(gid)];
      p.machine = static_cast<std::int32_t>(m);
      p.degradation =
          adopted.per_process[static_cast<std::size_t>(local)];
      machines_[m].push_back(gid);
    }
    std::sort(machines_[m].begin(), machines_[m].end());
  }
  problem_ = std::make_unique<Problem>(std::move(problem));
  last_replan_time_ = clock_.now();

  // Per-job attribution: the placement every admitted job got (machine,
  // co-runners, predicted delta of the adopted schedule vs staying put)
  // and one migration event per job whose running processes moved.
  const Real decision_delta = result.combined - stay_combined;
  auto co_runner_jobs = [&](std::int64_t self_id) {
    std::vector<std::int64_t> co;
    const JobState& job = jobs_[static_cast<std::size_t>(self_id)];
    for (std::int64_t gid : job.procs) {
      const ProcState& p = procs_[static_cast<std::size_t>(gid)];
      if (!p.live || p.machine < 0) continue;
      for (std::int64_t other :
           machines_[static_cast<std::size_t>(p.machine)]) {
        std::int64_t other_job = procs_[static_cast<std::size_t>(other)].job;
        if (other_job != self_id) co.push_back(other_job);
      }
    }
    std::sort(co.begin(), co.end());
    co.erase(std::unique(co.begin(), co.end()), co.end());
    return co;
  };
  auto first_machine = [&](std::int64_t job_id) {
    const JobState& job = jobs_[static_cast<std::size_t>(job_id)];
    for (std::int64_t gid : job.procs) {
      const ProcState& p = procs_[static_cast<std::size_t>(gid)];
      if (p.live && p.machine >= 0) return p.machine;
    }
    return static_cast<std::int32_t>(-1);
  };
  for (std::int64_t job_id : admitted_ids) {
    JournalEvent placed;
    placed.job_id = job_id;
    placed.kind = JournalEventKind::Placement;
    placed.time = clock_.now();
    placed.trace_id = decision_trace;
    placed.policy = to_string(options_.solver);
    placed.machine = first_machine(job_id);
    placed.candidates = options_.machines;
    placed.degradation_delta = decision_delta;
    placed.co_runners = co_runner_jobs(job_id);
    placed.detail = std::string("reason=") + reason;
    journal_.append(std::move(placed));
  }
  std::map<std::int64_t, std::string> moved;  // job -> "p3:m0->m2 ..."
  for (std::size_t i = 0; i < prev_machine.size(); ++i) {
    const ProcState& p = procs_[i];
    if (prev_machine[i] < 0 || !p.live || p.machine == prev_machine[i])
      continue;
    std::string& detail = moved[p.job];
    if (!detail.empty()) detail += " ";
    detail += "p" + std::to_string(i) + ":m" +
              std::to_string(prev_machine[i]) + "->m" +
              std::to_string(p.machine);
  }
  for (auto& [job_id, detail] : moved) {
    JournalEvent migrated;
    migrated.job_id = job_id;
    migrated.kind = JournalEventKind::Migration;
    migrated.time = clock_.now();
    migrated.trace_id = decision_trace;
    migrated.policy = to_string(options_.solver);
    migrated.machine = first_machine(job_id);
    migrated.candidates = options_.machines;
    migrated.degradation_delta = decision_delta;
    migrated.co_runners = co_runner_jobs(job_id);
    migrated.detail = std::move(detail);
    journal_.append(std::move(migrated));
  }
  COSCHED_LOG(LogLevel::Info, "online", "replan committed",
              {log_kv("reason", reason), log_kv("solver",
                                                to_string(options_.solver)),
               log_kv("admitted", static_cast<std::int64_t>(admit)),
               log_kv("migrations",
                      static_cast<std::int64_t>(result.migrations)),
               log_kv("combined", static_cast<double>(result.combined)),
               log_kv("delta", static_cast<double>(decision_delta)),
               log_kv("virtual_now", static_cast<double>(clock_.now()))});

  ReplanRecord record;
  record.time = clock_.now();
  record.solver = to_string(options_.solver);
  record.admitted = admit;
  record.migrations = result.migrations;
  record.stay_combined = stay_combined;
  record.combined = result.combined;
  record.degradation = result.degradation;
  const double replan_seconds = timer.seconds();
  const std::uint64_t replan_trace_id = Tracer::current_context().trace_id;
  record.solve_wall_seconds = replan_seconds;
  record.trace_id = replan_trace_id;
  metrics_.on_replan(std::move(record));

  // Tail-sampler end-hooks: fed from the measured wall durations, not the
  // tracer's head-sampling decision, so a slow replan reaches the tail
  // policies even when its trace was head-sampled out.
  TailSampler& tail = TailSampler::global();
  if (tail.active()) {
    CompletedSpan solve_done;
    solve_done.name = "replan.fresh_solve";
    solve_done.trace_id = replan_trace_id;
    solve_done.duration_us = fresh_solve_seconds * 1e6;
    solve_done.virtual_time = clock_.now();
    solve_done.args = std::string("solver=") + to_string(options_.solver);
    tail.observe(std::move(solve_done));

    CompletedSpan replan_done;
    replan_done.name = "online.replan";
    replan_done.trace_id = replan_trace_id;
    replan_done.duration_us = replan_seconds * 1e6;
    replan_done.virtual_time = clock_.now();
    replan_done.args = std::string("reason=") + reason +
                       " solver=" + to_string(options_.solver) +
                       " admitted=" + TextTable::fmt_int(admit);
    tail.observe(std::move(replan_done));
  }
  log_.record(clock_.now(), EventKind::Replan,
              std::string(reason) + " solver=" + to_string(options_.solver) +
                  " admitted=" + TextTable::fmt_int(admit) +
                  " migrations=" + TextTable::fmt_int(result.migrations) +
                  " combined=" + TextTable::fmt(result.combined));
}

}  // namespace cosched
