#include "online/admission.hpp"

namespace cosched {

const char* to_string(ReplanTrigger trigger) {
  switch (trigger) {
    case ReplanTrigger::EveryKArrivals: return "every-k";
    case ReplanTrigger::DegradationThreshold: return "threshold";
    case ReplanTrigger::Periodic: return "periodic";
  }
  return "?";
}

AdmissionPolicy::AdmissionPolicy(AdmissionOptions options)
    : options_(options) {
  COSCHED_EXPECTS(options_.every_k >= 1);
  COSCHED_EXPECTS(options_.degradation_threshold >= 0.0);
  COSCHED_EXPECTS(options_.min_replan_interval >= 0.0);
  COSCHED_EXPECTS(options_.period > 0.0);
  COSCHED_EXPECTS(options_.max_wait > 0.0);
}

bool AdmissionPolicy::should_replan(const AdmissionState& state) const {
  // An idle fleet with pending work always replans: there is nothing to
  // disturb and no later event would wake the service up.
  if (state.pending_jobs > 0 && state.running_processes == 0) return true;

  switch (options_.trigger) {
    case ReplanTrigger::EveryKArrivals:
      return state.pending_jobs >= options_.every_k;
    case ReplanTrigger::DegradationThreshold: {
      if (state.running_mean_degradation <= options_.degradation_threshold)
        return false;
      if (state.pending_jobs == 0 && state.running_processes == 0)
        return false;
      // Cooldown: a placement the replanner already failed to fix would
      // otherwise re-fire on every event.
      return state.now - state.last_replan_time >=
             options_.min_replan_interval;
    }
    case ReplanTrigger::Periodic:
      return false;  // fired via ReplanTick events, not event-driven checks
  }
  return false;
}

std::int32_t AdmissionPolicy::admit_fifo(
    std::span<const std::int32_t> pending_sizes, std::int32_t free_slots) {
  COSCHED_EXPECTS(free_slots >= 0);
  std::int32_t admitted = 0;
  std::int32_t used = 0;
  for (std::int32_t size : pending_sizes) {
    COSCHED_EXPECTS(size >= 1);
    if (used + size > free_slots) break;
    used += size;
    ++admitted;
  }
  return admitted;
}

}  // namespace cosched
