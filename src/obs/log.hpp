// Structured, trace-correlated logging for the co-scheduling stack.
//
// The third observability pillar next to the Tracer (spans) and the
// MetricsRegistry (counters/histograms): discrete, leveled records that
// say *why* something happened — which policy admitted a batch, where a
// job was placed and next to whom, why a submit spilled off its ring
// shard. Records are structured (a message plus typed key=value fields),
// stamped with the calling thread's current trace id (Tracer::
// current_context()), and rendered either as logfmt-ish text or as one
// JSON object per line (`--log-json`).
//
// Hot-path discipline mirrors trace.hpp:
//   * per-thread ring buffers — recording takes one thread-local lookup
//     and a short per-buffer lock shared only with drainers; a full ring
//     overwrites the oldest record and bumps a dropped counter;
//   * a global token bucket (records/second + burst) sheds log floods
//     before they reach the rings or the sink — shed records count into
//     dropped_records() too, so the drop is observable;
//   * level filtering is one relaxed atomic load; records below the
//     threshold are neither counted nor stored;
//   * compile-time kill switch: -DCOSCHED_LOG_DISABLED turns the
//     COSCHED_LOG macro into a no-op with zero residue in that TU.
//
// Sinks: by default records only live in the rings (collect() serves
// /debug and tests). set_sink_path() additionally appends every accepted
// record to a file as it is recorded — the production tail -f surface.
//
// Accounting for /metrics: records_total(level) feeds
// cosched_log_records_total{level}; dropped_records() feeds
// cosched_log_dropped_total.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace cosched {

enum class LogLevel : std::uint8_t { Debug = 0, Info, Warn, Error, Off };

const char* to_string(LogLevel level);
/// Parses "debug"/"info"/"warn"/"error"/"off" (case-sensitive). False on
/// anything else, leaving `out` untouched.
bool parse_log_level(const std::string& text, LogLevel& out);

/// One structured field. Values are pre-rendered strings; `quoted` says
/// whether JSON output must quote them (false for numbers/booleans the
/// caller already formatted as valid JSON literals).
struct LogField {
  std::string key;
  std::string value;
  bool quoted = true;
};

/// Convenience field constructors: log_kv("job", 17) renders unquoted.
LogField log_kv(std::string key, std::string value);
LogField log_kv(std::string key, const char* value);
LogField log_kv(std::string key, std::int64_t value);
LogField log_kv(std::string key, std::uint64_t value);
LogField log_kv(std::string key, std::int32_t value);
LogField log_kv(std::string key, double value);
LogField log_kv(std::string key, bool value);

struct LogRecord {
  LogLevel level = LogLevel::Info;
  const char* component = "";  ///< static string; not owned
  std::string message;
  double wall_us = 0.0;        ///< microseconds since the logger epoch
  std::uint64_t trace_id = 0;  ///< current trace context at record time
  std::uint64_t seq = 0;       ///< process-global record order
  std::int32_t tid = 0;        ///< logger-assigned thread index
  std::vector<LogField> fields;
};

class Logger {
 public:
  Logger();
  ~Logger();

  /// Process-wide logger used by the COSCHED_LOG macro.
  static Logger& global();

  void set_level(LogLevel level) {
    level_.store(static_cast<std::uint8_t>(level), std::memory_order_release);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  /// True iff a record at `level` would pass the threshold filter.
  bool enabled(LogLevel level) const {
    return static_cast<std::uint8_t>(level) >=
           level_.load(std::memory_order_relaxed);
  }

  /// One JSON object per line instead of logfmt text (sink rendering and
  /// render() only; ring storage is structured either way).
  void set_json(bool json) { json_.store(json, std::memory_order_relaxed); }
  bool json() const { return json_.load(std::memory_order_relaxed); }

  /// Ring capacity per thread buffer; shrinking keeps existing records
  /// until reset().
  void set_max_records_per_thread(std::size_t n) {
    max_records_per_thread_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  std::size_t max_records_per_thread() const {
    return max_records_per_thread_.load(std::memory_order_relaxed);
  }

  /// Token bucket: at most `rate_per_second` sustained records with bursts
  /// of `burst`. rate <= 0 disables rate limiting (the default).
  void set_rate_limit(double rate_per_second, double burst);

  /// Appends accepted records to `path` as they are recorded (creating
  /// missing parent directories). Empty path closes the sink. False (with
  /// a stderr warning) when the file cannot be opened.
  bool set_sink_path(const std::string& path);

  /// Records one structured record. No-op below the level threshold;
  /// counted into dropped_records() when the token bucket is empty.
  void log(LogLevel level, const char* component, std::string message,
           std::vector<LogField> fields = {});

  /// Accepted records at `level` since construction/reset().
  std::uint64_t records_total(LogLevel level) const;
  /// Records shed by ring overwrite or rate limiting (monotonic until
  /// reset()).
  std::uint64_t dropped_records() const;
  /// Records currently buffered across all rings.
  std::uint64_t buffered_records() const;

  /// Copies buffered records, ascending by seq, at most `max_records`
  /// newest ones. Empty `component` matches all.
  std::vector<LogRecord> collect(const std::string& component = {},
                                 std::size_t max_records = SIZE_MAX) const;

  /// Renders one record the way the sink would (logfmt or JSON, per
  /// set_json()); newline-free.
  std::string render(const LogRecord& record) const;

  /// Drops buffered records and zeroes the counters; the epoch restarts
  /// and seq keeps climbing (collect() cursors stay monotonic).
  void reset();

 private:
  struct ThreadBuffer {
    std::int32_t tid = 0;
    mutable std::mutex mutex;
    std::vector<LogRecord> records;  ///< ring storage
    std::size_t next = 0;            ///< overwrite position once full
    std::uint64_t dropped = 0;
  };

  ThreadBuffer& local_buffer();
  bool take_token();
  void sink_write(const LogRecord& record);

  std::atomic<std::uint8_t> level_{
      static_cast<std::uint8_t>(LogLevel::Info)};
  std::atomic<bool> json_{false};
  std::atomic<std::size_t> max_records_per_thread_{4096};
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> records_by_level_[4] = {};
  std::atomic<std::uint64_t> rate_limited_{0};
  std::uint64_t id_ = 0;  ///< unique per Logger: thread-local cache key
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex bucket_mutex_;
  double rate_per_second_ = 0.0;  ///< <= 0: unlimited
  double burst_ = 0.0;
  double tokens_ = 0.0;
  std::chrono::steady_clock::time_point bucket_refill_;

  mutable std::mutex sink_mutex_;
  std::FILE* sink_ = nullptr;

  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// Prometheus exposition lines of the global logger's accounting
/// (cosched_log_records_total{level="..."} + cosched_log_dropped_total),
/// appended to /metrics by the RPC server and the shard router. Labeled
/// families cannot ride the MetricsRegistry callback path, so they are
/// hand-rendered like the router's own metrics.
std::string render_log_metrics();

}  // namespace cosched

// ---- macro ----------------------------------------------------------------
// COSCHED_LOG(level, component, message, {fields...}) — records iff the
// level passes the runtime threshold; vanishes entirely in TUs compiled
// with -DCOSCHED_LOG_DISABLED.
#ifdef COSCHED_LOG_DISABLED

#define COSCHED_LOG(level, component, message, ...) \
  do {                                              \
  } while (0)

#else

#define COSCHED_LOG(level, component, message, ...)                     \
  do {                                                                  \
    if (::cosched::Logger::global().enabled(level))                     \
      ::cosched::Logger::global().log(level, component, message         \
                                      __VA_OPT__(, ) __VA_ARGS__);      \
  } while (0)

#endif  // COSCHED_LOG_DISABLED
