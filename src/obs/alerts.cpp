#include "obs/alerts.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

#include "loadgen/flat_json.hpp"
#include "obs/log.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "online/journal.hpp"

namespace cosched {
namespace {

double steady_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// SplitMix64 — a deterministic per-tick trace id so a transition's log
/// line, journal event and trace all carry the same correlator.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string fmt(double v) { return format_prometheus_value(v); }

void append_json_escaped(std::ostream& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out << ' ';
        else
          out << c;
    }
  }
}

}  // namespace

const char* to_string(AlertState state) {
  switch (state) {
    case AlertState::Inactive:
      return "inactive";
    case AlertState::Pending:
      return "pending";
    case AlertState::Firing:
      return "firing";
    case AlertState::Resolved:
      return "resolved";
  }
  return "unknown";
}

bool alert_state_from(std::uint8_t raw, AlertState& out) {
  if (raw >= kAlertStates) return false;
  out = static_cast<AlertState>(raw);
  return true;
}

const char* to_string(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::Info:
      return "info";
    case AlertSeverity::Warn:
      return "warn";
    case AlertSeverity::Critical:
      return "critical";
  }
  return "unknown";
}

bool parse_alert_severity(const std::string& text, AlertSeverity& out) {
  if (text == "info") out = AlertSeverity::Info;
  else if (text == "warn") out = AlertSeverity::Warn;
  else if (text == "critical") out = AlertSeverity::Critical;
  else return false;
  return true;
}

const char* to_string(AlertAgg agg) {
  switch (agg) {
    case AlertAgg::Latest:
      return "latest";
    case AlertAgg::Avg:
      return "avg";
    case AlertAgg::Min:
      return "min";
    case AlertAgg::Max:
      return "max";
    case AlertAgg::Rate:
      return "rate";
    case AlertAgg::P50:
      return "p50";
    case AlertAgg::P95:
      return "p95";
    case AlertAgg::P99:
      return "p99";
  }
  return "unknown";
}

bool parse_alert_agg(const std::string& text, AlertAgg& out) {
  if (text == "latest") out = AlertAgg::Latest;
  else if (text == "avg") out = AlertAgg::Avg;
  else if (text == "min") out = AlertAgg::Min;
  else if (text == "max") out = AlertAgg::Max;
  else if (text == "rate") out = AlertAgg::Rate;
  else if (text == "p50") out = AlertAgg::P50;
  else if (text == "p95") out = AlertAgg::P95;
  else if (text == "p99") out = AlertAgg::P99;
  else return false;
  return true;
}

// ---- rule files ------------------------------------------------------------

namespace {

const std::set<std::string>& known_rule_fields() {
  static const std::set<std::string> fields = {
      "name",          "kind",         "severity",
      "metric",        "agg",          "window_seconds",
      "op",            "threshold",    "histogram",
      "budget_ms",     "objective",    "fast_window_seconds",
      "slow_window_seconds", "burn_factor", "for_seconds",
      "clear_seconds", "resolved_hold_seconds"};
  return fields;
}

bool rule_field_error(std::size_t index, const std::string& field,
                      const std::string& why, std::string& error) {
  error = "rules." + std::to_string(index) + "." + field + ": " + why;
  return false;
}

}  // namespace

bool parse_alert_rules(const std::string& text, AlertRuleSet& out,
                       std::string& error) {
  FlatJson json;
  if (!parse_flat_json(text, json, error)) return false;
  out.rules.clear();

  // Reject unknown top-level keys and unknown per-rule fields up front, so
  // a typo ("theshold") is a load error, not a silently inert rule.
  auto check_key = [&](const std::string& key) {
    if (!key.empty() && key[0] == '_') return true;  // _note convention
    if (key.compare(0, 6, "rules.") != 0) {
      error = "unknown top-level key '" + key + "' (want rules[])";
      return false;
    }
    std::size_t dot = key.find('.', 6);
    if (dot == std::string::npos) {
      error = "'" + key + "': rules[] entries must be objects";
      return false;
    }
    std::string field = key.substr(dot + 1);
    if (!field.empty() && field[0] == '_') return true;
    if (known_rule_fields().count(field) == 0) {
      error = "'" + key + "': unknown rule field '" + field + "'";
      return false;
    }
    return true;
  };
  for (const auto& [key, value] : json.numbers)
    if (!check_key(key)) return false;
  for (const auto& [key, value] : json.strings)
    if (!check_key(key)) return false;

  for (std::size_t i = 0;; ++i) {
    std::string prefix = "rules." + std::to_string(i) + ".";
    bool present = false;
    for (const auto& [key, value] : json.strings)
      if (key.compare(0, prefix.size(), prefix) == 0) present = true;
    for (const auto& [key, value] : json.numbers)
      if (key.compare(0, prefix.size(), prefix) == 0) present = true;
    if (!present) break;

    AlertRule rule;
    rule.name = json.string(prefix + "name", "");
    if (rule.name.empty())
      return rule_field_error(i, "name", "required and must be a non-empty string",
                              error);

    std::string kind = json.string(prefix + "kind", "threshold");
    if (kind == "threshold") {
      rule.kind = AlertRule::Kind::Threshold;
    } else if (kind == "burn_rate") {
      rule.kind = AlertRule::Kind::BurnRate;
    } else {
      return rule_field_error(i, "kind",
                              "'" + kind + "' (want threshold|burn_rate)", error);
    }

    std::string severity = json.string(prefix + "severity", "warn");
    if (!parse_alert_severity(severity, rule.severity))
      return rule_field_error(
          i, "severity", "'" + severity + "' (want info|warn|critical)", error);

    if (rule.kind == AlertRule::Kind::Threshold) {
      rule.metric = json.string(prefix + "metric", "");
      if (rule.metric.empty())
        return rule_field_error(i, "metric",
                                "required for threshold rules", error);
      std::string agg = json.string(prefix + "agg", "avg");
      if (!parse_alert_agg(agg, rule.agg))
        return rule_field_error(
            i, "agg", "'" + agg + "' (want latest|avg|min|max|rate|p50|p95|p99)",
            error);
      rule.window_seconds = json.number(prefix + "window_seconds", 60.0);
      if (!(rule.window_seconds > 0.0))
        return rule_field_error(i, "window_seconds", "must be > 0", error);
      std::string op = json.string(prefix + "op", ">");
      if (op == ">") rule.above = true;
      else if (op == "<") rule.above = false;
      else
        return rule_field_error(i, "op", "'" + op + "' (want > or <)", error);
      if (!json.has_number(prefix + "threshold"))
        return rule_field_error(i, "threshold",
                                "required for threshold rules", error);
      rule.threshold = json.number(prefix + "threshold", 0.0);
      if (!std::isfinite(rule.threshold))
        return rule_field_error(i, "threshold", "must be finite", error);
    } else {
      rule.histogram = json.string(prefix + "histogram", "");
      if (rule.histogram.empty())
        return rule_field_error(i, "histogram",
                                "required for burn_rate rules", error);
      rule.budget_ms = json.number(prefix + "budget_ms", 900.0);
      if (!(rule.budget_ms > 0.0))
        return rule_field_error(i, "budget_ms", "must be > 0", error);
      rule.objective = json.number(prefix + "objective", 0.95);
      if (!(rule.objective > 0.0) || !(rule.objective < 1.0))
        return rule_field_error(i, "objective",
                                "must be inside (0, 1)", error);
      rule.fast_window_seconds =
          json.number(prefix + "fast_window_seconds", 10.0);
      rule.slow_window_seconds =
          json.number(prefix + "slow_window_seconds", 60.0);
      if (!(rule.fast_window_seconds > 0.0))
        return rule_field_error(i, "fast_window_seconds", "must be > 0", error);
      if (!(rule.slow_window_seconds >= rule.fast_window_seconds))
        return rule_field_error(i, "slow_window_seconds",
                                "must be >= fast_window_seconds", error);
      rule.burn_factor = json.number(prefix + "burn_factor", 6.0);
      if (!(rule.burn_factor > 0.0))
        return rule_field_error(i, "burn_factor", "must be > 0", error);
    }

    rule.for_seconds = json.number(prefix + "for_seconds", 5.0);
    rule.clear_seconds = json.number(prefix + "clear_seconds", 5.0);
    rule.resolved_hold_seconds =
        json.number(prefix + "resolved_hold_seconds", 15.0);
    if (rule.for_seconds < 0.0)
      return rule_field_error(i, "for_seconds", "must be >= 0", error);
    if (rule.clear_seconds < 0.0)
      return rule_field_error(i, "clear_seconds", "must be >= 0", error);
    if (rule.resolved_hold_seconds < 0.0)
      return rule_field_error(i, "resolved_hold_seconds", "must be >= 0",
                              error);

    for (const AlertRule& existing : out.rules)
      if (existing.name == rule.name)
        return rule_field_error(i, "name",
                                "duplicate rule name '" + rule.name + "'",
                                error);
    out.rules.push_back(std::move(rule));
  }
  if (out.rules.empty()) {
    error = "rules: no rules found (want rules[] with at least one entry)";
    return false;
  }
  return true;
}

bool load_alert_rules(const std::string& path, AlertRuleSet& out,
                      std::string& error) {
  std::string text;
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      error = path + ": cannot open";
      return false;
    }
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0)
      text.append(buffer, n);
    std::fclose(f);
  }
  if (!parse_alert_rules(text, out, error)) {
    error = path + ": " + error;
    return false;
  }
  return true;
}

AlertRuleSet default_alert_rules(double p95_budget_ms) {
  if (!(p95_budget_ms > 0.0)) p95_budget_ms = 900.0;
  AlertRuleSet set;

  AlertRule fast;
  fast.name = "rpc_latency_burn_fast";
  fast.kind = AlertRule::Kind::BurnRate;
  fast.severity = AlertSeverity::Critical;
  fast.histogram = "cosched_rpc_request_seconds";
  fast.budget_ms = p95_budget_ms;
  fast.objective = 0.95;
  fast.fast_window_seconds = 15.0;
  fast.slow_window_seconds = 60.0;
  fast.burn_factor = 8.0;
  fast.for_seconds = 5.0;
  fast.clear_seconds = 10.0;
  fast.resolved_hold_seconds = 30.0;
  set.rules.push_back(fast);

  AlertRule slow;
  slow.name = "rpc_latency_burn_slow";
  slow.kind = AlertRule::Kind::BurnRate;
  slow.severity = AlertSeverity::Warn;
  slow.histogram = "cosched_rpc_request_seconds";
  slow.budget_ms = p95_budget_ms;
  slow.objective = 0.95;
  slow.fast_window_seconds = 60.0;
  slow.slow_window_seconds = 300.0;
  slow.burn_factor = 2.0;
  slow.for_seconds = 15.0;
  slow.clear_seconds = 30.0;
  slow.resolved_hold_seconds = 60.0;
  set.rules.push_back(slow);

  return set;
}

// ---- rendering -------------------------------------------------------------

std::string render_alerts_text(const std::vector<AlertView>& views,
                               bool enabled) {
  std::ostringstream out;
  if (!enabled) {
    out << "alerts disabled\n";
    return out.str();
  }
  std::size_t firing = 0;
  for (const AlertView& view : views)
    if (view.state == AlertState::Firing) ++firing;
  out << "alerts: " << views.size() << " rules, " << firing << " firing\n";
  for (const AlertView& view : views) {
    out << "rule=" << view.rule;
    if (view.shard_id >= 0) out << " shard=" << view.shard_id;
    out << " state=" << to_string(view.state)
        << " severity=" << to_string(view.severity) << " value="
        << fmt(view.value) << " threshold=" << fmt(view.threshold)
        << " since=" << fmt(view.since_seconds) << "s";
    if (!view.detail.empty()) out << " " << view.detail;
    out << "\n";
  }
  return out.str();
}

std::string render_alerts_json(const std::vector<AlertView>& views,
                               bool enabled) {
  std::ostringstream out;
  std::size_t firing = 0;
  for (const AlertView& view : views)
    if (view.state == AlertState::Firing) ++firing;
  out << "{\"enabled\":" << (enabled ? "true" : "false")
      << ",\"firing\":" << firing << ",\"alerts\":[";
  for (std::size_t i = 0; i < views.size(); ++i) {
    const AlertView& view = views[i];
    if (i > 0) out << ",";
    out << "{\"rule\":\"";
    append_json_escaped(out, view.rule);
    out << "\",\"shard\":" << view.shard_id << ",\"state\":\""
        << to_string(view.state) << "\",\"severity\":\""
        << to_string(view.severity) << "\",\"value\":" << fmt(view.value)
        << ",\"threshold\":" << fmt(view.threshold)
        << ",\"since_seconds\":" << fmt(view.since_seconds) << ",\"detail\":\"";
    append_json_escaped(out, view.detail);
    out << "\"}";
  }
  out << "]}";
  return out.str();
}

// ---- engine ----------------------------------------------------------------

AlertEngine::AlertEngine(AlertEngineOptions options)
    : options_(std::move(options)), tsdb_(options_.tsdb) {
  if (options_.scrape_interval_seconds <= 0.0)
    options_.scrape_interval_seconds = 1.0;
  states_.reserve(options_.rules.rules.size());
  for (const AlertRule& rule : options_.rules.rules) {
    RuleState rs;
    rs.rule = rule;
    states_.push_back(std::move(rs));
  }
}

AlertEngine::~AlertEngine() { stop(); }

void AlertEngine::set_journal(DecisionJournal* journal) {
  std::lock_guard<std::mutex> lock(mutex_);
  journal_ = journal;
}

bool AlertEngine::tick_registry(const MetricsRegistry& registry, double now) {
  if (kAlertsDisabled) return false;
  return tick(registry.render_prometheus(/*with_exemplars=*/false), now);
}

bool AlertEngine::tick_impl(const std::string& exposition, double now) {
  if (!tsdb_.scrape_text(exposition, now)) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  last_tick_ = now;
  ++tick_count_;
  // One deterministic trace id per tick: every transition this evaluation
  // emits (log record, journal event) carries the same correlator.
  std::uint64_t trace_id = mix64(0xa1e7ULL ^ tick_count_);
  TraceContextScope scope(Tracer::global().make_context(trace_id));
  for (RuleState& rs : states_) evaluate_locked(rs, now, trace_id);
  return true;
}

bool AlertEngine::condition_locked(const RuleState& rs, double now,
                                   double& value, std::string& detail) const {
  const AlertRule& rule = rs.rule;
  detail.clear();
  if (rule.kind == AlertRule::Kind::BurnRate) {
    double budget_seconds = rule.budget_ms / 1000.0;
    double error_budget = std::max(1.0 - rule.objective, 1e-9);
    double bad_fast = 0.0, total_fast = 0.0;
    double bad_slow = 0.0, total_slow = 0.0;
    bool fast_ok = tsdb_.histogram_bad_fraction(
        rule.histogram, budget_seconds, rule.fast_window_seconds, now,
        bad_fast, total_fast);
    bool slow_ok = tsdb_.histogram_bad_fraction(
        rule.histogram, budget_seconds, rule.slow_window_seconds, now,
        bad_slow, total_slow);
    double fast_burn = fast_ok ? bad_fast / error_budget : 0.0;
    double slow_burn = slow_ok ? bad_slow / error_budget : 0.0;
    value = fast_burn;
    detail = "fast_burn=" + fmt(fast_burn) + " slow_burn=" + fmt(slow_burn) +
             " budget_ms=" + fmt(rule.budget_ms) +
             " objective=" + fmt(rule.objective);
    // No traffic in either window means nothing is burning — the rule can
    // only fire on evidence, and drained windows are how it resolves.
    if (!fast_ok || !slow_ok) return false;
    return fast_burn > rule.burn_factor && slow_burn > rule.burn_factor;
  }

  bool ok = false;
  switch (rule.agg) {
    case AlertAgg::Latest:
      ok = tsdb_.latest(rule.metric, value);
      break;
    case AlertAgg::Avg:
      ok = tsdb_.window_stat(rule.metric, rule.window_seconds, now,
                             MetricsTsdb::Stat::Avg, value);
      break;
    case AlertAgg::Min:
      ok = tsdb_.window_stat(rule.metric, rule.window_seconds, now,
                             MetricsTsdb::Stat::Min, value);
      break;
    case AlertAgg::Max:
      ok = tsdb_.window_stat(rule.metric, rule.window_seconds, now,
                             MetricsTsdb::Stat::Max, value);
      break;
    case AlertAgg::Rate:
      ok = tsdb_.counter_rate(rule.metric, rule.window_seconds, now, value);
      break;
    case AlertAgg::P50:
      ok = tsdb_.histogram_quantile(rule.metric, 0.50, rule.window_seconds,
                                    now, value);
      break;
    case AlertAgg::P95:
      ok = tsdb_.histogram_quantile(rule.metric, 0.95, rule.window_seconds,
                                    now, value);
      break;
    case AlertAgg::P99:
      ok = tsdb_.histogram_quantile(rule.metric, 0.99, rule.window_seconds,
                                    now, value);
      break;
  }
  detail = "agg=" + std::string(to_string(rule.agg)) +
           " window=" + fmt(rule.window_seconds) + "s";
  if (!ok) {
    value = 0.0;
    return false;  // no data — a rule never fires on silence
  }
  return rule.above ? value > rule.threshold : value < rule.threshold;
}

void AlertEngine::transition_locked(RuleState& rs, AlertState next, double now,
                                    std::uint64_t trace_id) {
  AlertState previous = rs.state;
  rs.state = next;
  rs.state_since = now;
  rs.clear_pending = false;
  std::string key = rs.rule.name;
  key.push_back('\x1f');
  key += to_string(next);
  ++transitions_[key];
  if (next == AlertState::Firing) ++fired_total_;

  double threshold = rs.rule.kind == AlertRule::Kind::BurnRate
                         ? rs.rule.burn_factor
                         : rs.rule.threshold;
  LogLevel level = next == AlertState::Firing ? LogLevel::Warn : LogLevel::Info;
  COSCHED_LOG(level, "alerts", "alert transition",
              {log_kv("rule", rs.rule.name),
               log_kv("from", to_string(previous)),
               log_kv("to", to_string(next)), log_kv("value", rs.value),
               log_kv("threshold", threshold),
               log_kv("severity", to_string(rs.rule.severity))});
  if (journal_ != nullptr) {
    JournalEvent event;
    event.job_id = -1;  // fleet-level, like batch triggers
    event.kind = JournalEventKind::Alert;
    event.time = 0.0;
    event.trace_id = trace_id;
    event.policy = rs.rule.name;
    event.detail = std::string("state=") + to_string(next) +
                   " from=" + to_string(previous) + " value=" + fmt(rs.value) +
                   " threshold=" + fmt(threshold) +
                   " severity=" + to_string(rs.rule.severity);
    journal_->append(std::move(event));
  }
}

void AlertEngine::evaluate_locked(RuleState& rs, double now,
                                  std::uint64_t trace_id) {
  double value = 0.0;
  std::string detail;
  bool breach = condition_locked(rs, now, value, detail);
  rs.value = value;
  rs.has_value = true;
  rs.detail = std::move(detail);

  switch (rs.state) {
    case AlertState::Inactive:
      if (breach) {
        transition_locked(rs, AlertState::Pending, now, trace_id);
        if (rs.rule.for_seconds <= 0.0)
          transition_locked(rs, AlertState::Firing, now, trace_id);
      }
      break;
    case AlertState::Pending:
      if (!breach) {
        transition_locked(rs, AlertState::Inactive, now, trace_id);
      } else if (now - rs.state_since >= rs.rule.for_seconds) {
        transition_locked(rs, AlertState::Firing, now, trace_id);
      }
      break;
    case AlertState::Firing:
      if (breach) {
        rs.clear_pending = false;
      } else {
        if (!rs.clear_pending) {
          rs.clear_pending = true;
          rs.clear_since = now;
        }
        if (now - rs.clear_since >= rs.rule.clear_seconds)
          transition_locked(rs, AlertState::Resolved, now, trace_id);
      }
      break;
    case AlertState::Resolved:
      if (breach) {
        transition_locked(rs, AlertState::Pending, now, trace_id);
        if (rs.rule.for_seconds <= 0.0)
          transition_locked(rs, AlertState::Firing, now, trace_id);
      } else if (now - rs.state_since >= rs.rule.resolved_hold_seconds) {
        transition_locked(rs, AlertState::Inactive, now, trace_id);
      }
      break;
  }
}

std::vector<AlertView> AlertEngine::views() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AlertView> out;
  out.reserve(states_.size());
  for (const RuleState& rs : states_) {
    AlertView view;
    view.rule = rs.rule.name;
    view.state = rs.state;
    view.severity = rs.rule.severity;
    view.value = rs.value;
    view.threshold = rs.rule.kind == AlertRule::Kind::BurnRate
                         ? rs.rule.burn_factor
                         : rs.rule.threshold;
    view.since_seconds = std::max(0.0, last_tick_ - rs.state_since);
    view.detail = rs.detail;
    out.push_back(std::move(view));
  }
  return out;
}

std::size_t AlertEngine::firing_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t firing = 0;
  for (const RuleState& rs : states_)
    if (rs.state == AlertState::Firing) ++firing;
  return firing;
}

std::vector<std::string> AlertEngine::firing_rules() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> rules;
  for (const RuleState& rs : states_)
    if (rs.state == AlertState::Firing) rules.push_back(rs.rule.name);
  return rules;
}

std::uint64_t AlertEngine::fired_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fired_total_;
}

std::map<std::string, std::uint64_t> AlertEngine::transition_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transitions_;
}

bool AlertEngine::start_impl() {
  if (thread_.joinable()) return true;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { thread_main(); });
  return true;
}

void AlertEngine::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = true;
  }
  if (thread_.joinable()) thread_.join();
}

void AlertEngine::thread_main() {
  double next_tick = steady_now_seconds();
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(stop_mutex_);
      if (stop_requested_) return;
    }
    double now = steady_now_seconds();
    if (now >= next_tick) {
      if (options_.exposition_source)
        tick(options_.exposition_source(), now);
      else
        tick_registry(MetricsRegistry::global(), now);
      next_tick = now + options_.scrape_interval_seconds;
    }
    // Sleep in short slices so stop() is responsive at any interval.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

std::string render_alert_metrics(const AlertEngine& engine) {
  std::ostringstream out;
  out << "# HELP cosched_alerts_firing Rules currently in the firing state.\n"
      << "# TYPE cosched_alerts_firing gauge\n"
      << "cosched_alerts_firing " << engine.firing_count() << "\n";
  out << "# HELP cosched_alert_transitions_total Alert state transitions by "
         "rule and entered state.\n"
      << "# TYPE cosched_alert_transitions_total counter\n";
  for (const auto& [key, count] : engine.transition_counts()) {
    std::size_t sep = key.find('\x1f');
    std::string rule = key.substr(0, sep);
    std::string state = sep == std::string::npos ? "" : key.substr(sep + 1);
    out << "cosched_alert_transitions_total{rule=\"" << rule << "\",state=\""
        << state << "\"} " << count << "\n";
  }
  out << render_tsdb_metrics(engine.tsdb());
  return out.str();
}

}  // namespace cosched
