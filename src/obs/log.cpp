#include "obs/log.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "obs/trace.hpp"

namespace cosched {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string format_real(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

bool parse_log_level(const std::string& text, LogLevel& out) {
  if (text == "debug") out = LogLevel::Debug;
  else if (text == "info") out = LogLevel::Info;
  else if (text == "warn") out = LogLevel::Warn;
  else if (text == "error") out = LogLevel::Error;
  else if (text == "off") out = LogLevel::Off;
  else return false;
  return true;
}

LogField log_kv(std::string key, std::string value) {
  return LogField{std::move(key), std::move(value), true};
}
LogField log_kv(std::string key, const char* value) {
  return LogField{std::move(key), std::string(value), true};
}
LogField log_kv(std::string key, std::int64_t value) {
  return LogField{std::move(key), std::to_string(value), false};
}
LogField log_kv(std::string key, std::uint64_t value) {
  return LogField{std::move(key), std::to_string(value), false};
}
LogField log_kv(std::string key, std::int32_t value) {
  return LogField{std::move(key), std::to_string(value), false};
}
LogField log_kv(std::string key, double value) {
  return LogField{std::move(key), format_real(value), false};
}
LogField log_kv(std::string key, bool value) {
  return LogField{std::move(key), value ? "true" : "false", false};
}

Logger::Logger() : epoch_(std::chrono::steady_clock::now()) {
  static std::atomic<std::uint64_t> next_id{1};
  id_ = next_id.fetch_add(1, std::memory_order_relaxed);
  bucket_refill_ = epoch_;
}

Logger::~Logger() {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  if (sink_) std::fclose(sink_);
  sink_ = nullptr;
}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

void Logger::set_rate_limit(double rate_per_second, double burst) {
  std::lock_guard<std::mutex> lock(bucket_mutex_);
  rate_per_second_ = rate_per_second;
  burst_ = std::max(burst, 1.0);
  tokens_ = burst_;
  bucket_refill_ = std::chrono::steady_clock::now();
}

bool Logger::set_sink_path(const std::string& path) {
  std::FILE* next = nullptr;
  if (!path.empty()) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path target(path);
    if (target.has_parent_path())
      fs::create_directories(target.parent_path(), ec);
    next = std::fopen(path.c_str(), "a");
    if (!next) {
      std::fprintf(stderr, "cosched: cannot open log sink %s\n", path.c_str());
      return false;
    }
  }
  std::lock_guard<std::mutex> lock(sink_mutex_);
  if (sink_) std::fclose(sink_);
  sink_ = next;
  return true;
}

Logger::ThreadBuffer& Logger::local_buffer() {
  // One cached buffer per (thread, logger) pair; a second Logger (tests)
  // re-resolves on id mismatch.
  thread_local std::uint64_t cached_id = 0;
  thread_local std::shared_ptr<ThreadBuffer> cached;
  if (cached && cached_id == id_) return *cached;
  auto buffer = std::make_shared<ThreadBuffer>();
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffer->tid = static_cast<std::int32_t>(buffers_.size() + 1);
    buffers_.push_back(buffer);
  }
  cached = buffer;
  cached_id = id_;
  return *cached;
}

bool Logger::take_token() {
  std::lock_guard<std::mutex> lock(bucket_mutex_);
  if (rate_per_second_ <= 0.0) return true;
  auto now = std::chrono::steady_clock::now();
  double elapsed = std::chrono::duration<double>(now - bucket_refill_).count();
  bucket_refill_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_per_second_);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void Logger::log(LogLevel level, const char* component, std::string message,
                 std::vector<LogField> fields) {
  if (level == LogLevel::Off || !enabled(level)) return;
  if (!take_token()) {
    rate_limited_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  LogRecord record;
  record.level = level;
  record.component = component;
  record.message = std::move(message);
  record.wall_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - epoch_)
                       .count();
  record.trace_id = Tracer::current_context().trace_id;
  record.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  record.fields = std::move(fields);
  records_by_level_[static_cast<std::size_t>(level)].fetch_add(
      1, std::memory_order_relaxed);

  ThreadBuffer& buffer = local_buffer();
  record.tid = buffer.tid;
  sink_write(record);
  std::size_t capacity = max_records_per_thread();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.records.size() < capacity) {
    buffer.records.push_back(std::move(record));
  } else {
    if (buffer.next >= buffer.records.size()) buffer.next = 0;
    buffer.records[buffer.next] = std::move(record);
    buffer.next = (buffer.next + 1) % buffer.records.size();
    ++buffer.dropped;
  }
}

void Logger::sink_write(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  if (!sink_) return;
  std::string line = render(record);
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), sink_);
  if (record.level >= LogLevel::Warn) std::fflush(sink_);
}

std::string Logger::render(const LogRecord& record) const {
  std::string out;
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%.6f", record.wall_us / 1e6);
  if (json()) {
    out += "{\"ts\":";
    out += stamp;
    out += ",\"level\":\"";
    out += to_string(record.level);
    out += "\",\"component\":\"";
    append_escaped(out, record.component);
    out += "\",\"message\":\"";
    append_escaped(out, record.message);
    out += "\"";
    if (record.trace_id != 0)
      out += ",\"trace_id\":" + std::to_string(record.trace_id);
    for (const LogField& field : record.fields) {
      out += ",\"";
      append_escaped(out, field.key);
      out += "\":";
      if (field.quoted) {
        out += "\"";
        append_escaped(out, field.value);
        out += "\"";
      } else {
        out += field.value;
      }
    }
    out += "}";
  } else {
    out += stamp;
    out += " ";
    out += to_string(record.level);
    out += " ";
    out += record.component;
    out += " ";
    out += record.message;
    if (record.trace_id != 0)
      out += " trace=" + std::to_string(record.trace_id);
    for (const LogField& field : record.fields) {
      out += " ";
      out += field.key;
      out += "=";
      out += field.value;
    }
  }
  return out;
}

std::uint64_t Logger::records_total(LogLevel level) const {
  if (level >= LogLevel::Off) return 0;
  return records_by_level_[static_cast<std::size_t>(level)].load(
      std::memory_order_relaxed);
}

std::uint64_t Logger::dropped_records() const {
  std::uint64_t total = rate_limited_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

std::uint64_t Logger::buffered_records() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->records.size();
  }
  return total;
}

std::vector<LogRecord> Logger::collect(const std::string& component,
                                       std::size_t max_records) const {
  std::vector<LogRecord> out;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      for (const LogRecord& record : buffer->records) {
        if (!component.empty() && component != record.component) continue;
        out.push_back(record);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LogRecord& a, const LogRecord& b) { return a.seq < b.seq; });
  if (out.size() > max_records)
    out.erase(out.begin(),
              out.end() - static_cast<std::ptrdiff_t>(max_records));
  return out;
}

std::string render_log_metrics() {
  Logger& logger = Logger::global();
  std::string out;
  out +=
      "# HELP cosched_log_records_total structured log records accepted\n"
      "# TYPE cosched_log_records_total counter\n";
  for (LogLevel level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                         LogLevel::Error}) {
    out += "cosched_log_records_total{level=\"";
    out += to_string(level);
    out += "\"} " + std::to_string(logger.records_total(level)) + "\n";
  }
  out +=
      "# HELP cosched_log_dropped_total log records shed by rate limiting "
      "or ring overwrite\n"
      "# TYPE cosched_log_dropped_total counter\n"
      "cosched_log_dropped_total " +
      std::to_string(logger.dropped_records()) + "\n";
  return out;
}

void Logger::reset() {
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      buffer->records.clear();
      buffer->next = 0;
      buffer->dropped = 0;
    }
  }
  for (auto& counter : records_by_level_)
    counter.store(0, std::memory_order_relaxed);
  rate_limited_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

}  // namespace cosched
