// OTLP/HTTP JSON export for traces and metrics.
//
// Alongside the Chrome trace-event exporter (perfetto-friendly, see
// trace.hpp) this emits the OpenTelemetry protocol's JSON encoding —
// the lingua franca of collector pipelines — so a cosched server plugs
// into an OTLP collector without a sidecar translator:
//
//   * otlp_traces_json()  — resourceSpans → scopeSpans → spans, built by
//     pairing the tracer's Begin/End events per thread. When a TailSampler
//     is supplied, only spans of *retained* traces are exported (the
//     pending window is flushed first so parked spans get their top-K
//     verdict) — the tail-sampling decision is what reaches the collector.
//   * otlp_metrics_json() — resourceMetrics → scopeMetrics → metrics,
//     re-built from the registry's own exposition (render → parse), so
//     counters/gauges/histograms — including bucket exemplars with their
//     trace ids — export through the same code path the tests pin.
//
// Two sinks: otlp_write_files() drops `otlp_traces.json` +
// `otlp_metrics.json` into a directory (the CI artifact path), and
// otlp_post() POSTs one JSON body to a collector's /v1/traces or
// /v1/metrics over plain HTTP/1.0 using the repo's own Socket — no
// external dependencies, matching the rest of `src/net`.
//
// Encoding notes (OTLP JSON / protojson mapping): 64-bit integers are JSON
// strings, trace ids are 32 lowercase hex digits (the tracer's 64-bit ids
// zero-padded), span ids 16 hex digits, timestamps unix nanoseconds.
// Timestamps are `base_unix_nanos + wall_us * 1000`; with the default
// base of 0 they are relative to the tracer epoch, which every OTLP
// consumer accepts structurally (pass a real base for absolute time).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/tail_sampler.hpp"
#include "obs/trace.hpp"
#include "online/journal.hpp"

namespace cosched {

struct OtlpExportOptions {
  std::string service_name = "cosched";  ///< resource attribute service.name
  std::uint64_t base_unix_nanos = 0;     ///< added to tracer wall offsets
};

/// OTLP JSON trace export. `tail` != nullptr filters to retained traces
/// (after flushing the pending window); untraced spans (trace_id 0) are
/// excluded under a tail filter and exported with a synthetic per-span
/// trace id otherwise (OTLP requires nonzero trace ids).
std::string otlp_traces_json(const Tracer& tracer, TailSampler* tail = nullptr,
                             const OtlpExportOptions& options = {});

/// OTLP JSON metric export of every registered metric, histogram bucket
/// exemplars included.
std::string otlp_metrics_json(const MetricsRegistry& registry,
                              const OtlpExportOptions& options = {});

/// OTLP JSON log export (resourceLogs → scopeLogs → logRecords): the
/// logger's buffered structured records plus, when `journal` is given, one
/// record per decision-journal event (body = render_journal_event line,
/// attributes kind/job/policy). Trace-correlated records carry the OTLP
/// traceId of their trace context, so a collector joins them to spans.
std::string otlp_logs_json(const Logger& logger,
                           const DecisionJournal* journal = nullptr,
                           const OtlpExportOptions& options = {});

/// Writes otlp_traces.json and otlp_metrics.json under `dir` (created if
/// missing) — plus otlp_logs.json when `logger` is given. Appends the
/// paths written to `written`; false (with a stderr warning) on any I/O
/// failure.
bool otlp_write_files(const std::string& dir, const Tracer& tracer,
                      const MetricsRegistry& registry,
                      TailSampler* tail = nullptr,
                      const OtlpExportOptions& options = {},
                      std::vector<std::string>* written = nullptr,
                      const Logger* logger = nullptr,
                      const DecisionJournal* journal = nullptr);

/// "host:port" collector address for otlp_post().
struct OtlpEndpoint {
  std::string host;
  std::uint16_t port = 4318;  ///< the OTLP/HTTP default
};

/// Parses "host:port" (port optional, default 4318). False + `error` on a
/// malformed spec.
bool parse_otlp_endpoint(const std::string& spec, OtlpEndpoint& endpoint,
                         std::string& error);

/// POSTs `json` to http://endpoint/<path> (path e.g. "/v1/traces") with
/// Content-Type application/json over HTTP/1.0. True on a 2xx response.
bool otlp_post(const OtlpEndpoint& endpoint, const std::string& path,
               const std::string& json, std::string& error,
               double timeout_seconds = 5.0);

}  // namespace cosched
