#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>

#include "util/common.hpp"

namespace cosched {

namespace {

/// Merged cross-thread tree node, keyed by child name for determinism.
struct MergedNode {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::map<std::string, MergedNode> children;  ///< ordered => sorted render
};

}  // namespace

Profiler::Profiler() {
  static std::atomic<std::uint64_t> next_id{1};
  id_ = next_id.fetch_add(1, std::memory_order_relaxed);
}

Profiler& Profiler::global() {
  static Profiler profiler;
  return profiler;
}

Profiler::ThreadTree& Profiler::local_tree() {
  // One tree per (thread, profiler); the shared_ptr keeps it alive for
  // renders after the thread exits, the id keys the cache (a stack
  // profiler in a test could reuse an address).
  thread_local std::shared_ptr<ThreadTree> tree;
  thread_local std::uint64_t owner = 0;
  if (!tree || owner != id_) {
    tree = std::make_shared<ThreadTree>();
    owner = id_;
    std::lock_guard<std::mutex> lock(registry_mutex_);
    trees_.push_back(tree);
  }
  return *tree;
}

void Profiler::enter(const char* name) {
  ThreadTree& tree = local_tree();
  Node* parent = tree.current;
  // Sibling scan: names are literals, so pointer equality catches the
  // common case; strcmp covers the same literal from another TU.
  for (const auto& child : parent->children) {
    if (child->name == name || std::strcmp(child->name, name) == 0) {
      tree.current = child.get();
      return;
    }
  }
  auto node = std::make_unique<Node>();
  node->name = name;
  node->parent = parent;
  Node* raw = node.get();
  {
    // Structural insert only — renders snapshotting this tree must never
    // see a half-grown child vector.
    std::lock_guard<std::mutex> lock(tree.mutex);
    parent->children.push_back(std::move(node));
  }
  tree.current = raw;
}

void Profiler::leave(std::uint64_t elapsed_ns) {
  ThreadTree& tree = local_tree();
  Node* node = tree.current;
  COSCHED_EXPECTS(node->parent != nullptr);  // enter/leave must balance
  node->count.fetch_add(1, std::memory_order_relaxed);
  node->total_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
  tree.current = node->parent;
}

void Profiler::reset_node(Node& node) {
  node.count.store(0, std::memory_order_relaxed);
  node.total_ns.store(0, std::memory_order_relaxed);
  for (auto& child : node.children) reset_node(*child);
}

void Profiler::reset() {
  std::vector<std::shared_ptr<ThreadTree>> trees;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    trees = trees_;
  }
  for (auto& tree : trees) {
    std::lock_guard<std::mutex> lock(tree->mutex);
    reset_node(tree->root);
  }
}

std::vector<Profiler::NodeView> Profiler::snapshot() const {
  std::vector<std::shared_ptr<ThreadTree>> trees;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    trees = trees_;
  }

  MergedNode merged_root;
  std::function<void(const Node&, MergedNode&)> fold =
      [&](const Node& node, MergedNode& into) {
        for (const auto& child : node.children) {
          MergedNode& slot = into.children[child->name];
          slot.count += child->count.load(std::memory_order_relaxed);
          slot.total_ns += child->total_ns.load(std::memory_order_relaxed);
          fold(*child, slot);
        }
      };
  for (const auto& tree : trees) {
    std::lock_guard<std::mutex> lock(tree->mutex);
    fold(tree->root, merged_root);
  }

  std::vector<NodeView> views;
  std::function<void(const MergedNode&, const std::string&, int)> emit =
      [&](const MergedNode& node, const std::string& prefix, int depth) {
        for (const auto& [name, child] : node.children) {
          if (child.count == 0 && child.children.empty()) continue;
          NodeView view;
          view.path = prefix.empty() ? name : prefix + ";" + name;
          view.name = name;
          view.depth = depth;
          view.count = child.count;
          view.total_ns = child.total_ns;
          std::uint64_t children_ns = 0;
          for (const auto& [unused, grandchild] : child.children)
            children_ns += grandchild.total_ns;
          view.self_ns =
              child.total_ns > children_ns ? child.total_ns - children_ns : 0;
          std::string path = view.path;
          views.push_back(std::move(view));
          emit(child, path, depth + 1);
        }
      };
  emit(merged_root, "", 0);
  return views;
}

std::string Profiler::render_collapsed() const {
  std::string out;
  for (const NodeView& view : snapshot()) {
    if (view.count == 0) continue;
    out += view.path;
    out += ' ';
    out += std::to_string(view.self_ns / 1000);
    out += '\n';
  }
  return out;
}

std::string Profiler::render_text() const {
  std::ostringstream out;
  for (const NodeView& view : snapshot()) {
    for (int d = 0; d < view.depth; ++d) out << "  ";
    char ms[32];
    std::snprintf(ms, sizeof(ms), "%.3f",
                  static_cast<double>(view.total_ns) / 1e6);
    char self_ms[32];
    std::snprintf(self_ms, sizeof(self_ms), "%.3f",
                  static_cast<double>(view.self_ns) / 1e6);
    out << view.name << " count=" << view.count << " total_ms=" << ms
        << " self_ms=" << self_ms << "\n";
  }
  return out.str();
}

bool Profiler::write_collapsed(const std::string& path) const {
  namespace fs = std::filesystem;
  fs::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
      std::cerr << "warning: cannot create profile directory "
                << target.parent_path().string() << ": " << ec.message()
                << "\n";
      return false;
    }
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write profile file " << path << "\n";
    return false;
  }
  out << render_collapsed();
  return true;
}

}  // namespace cosched
