// Fixed-bucket histogram shared by the online metrics, the RPC bench and
// the Prometheus exposition (src/obs/metrics_registry).
//
// Relocated from src/online/metrics so every consumer — SchedulerMetrics'
// deterministic CSVs, the loopback bench's latency percentiles and the
// /metrics endpoint — aggregates through one code path. Samples that are
// NaN or negative are *dropped and counted* (`invalid()`), never folded
// into sum/max where they would silently skew the means.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace cosched {

/// Per-bucket exemplar: one recent representative observation linked to the
/// trace that produced it (OpenMetrics `# {trace_id="..."} value` syntax in
/// the exposition). `seq` is a per-histogram monotone stamp — newest wins on
/// replacement, which makes eviction deterministic for a deterministic
/// sample sequence.
struct Exemplar {
  bool valid = false;
  Real value = 0.0;
  std::uint64_t trace_id = 0;
  std::uint64_t seq = 0;
};

/// Fixed-bucket histogram (upper-edge buckets plus an overflow bucket).
class Histogram {
 public:
  /// `upper_edges` must be strictly increasing; sample x lands in the first
  /// bucket with x <= edge, or the overflow bucket.
  explicit Histogram(std::vector<Real> upper_edges);

  void add(Real x) { add(x, 0); }
  /// Like add(); additionally records (x, trace_id) as the bucket's
  /// exemplar when trace_id != 0 (newest observation replaces the previous
  /// one). Invalid samples never become exemplars.
  void add(Real x, std::uint64_t trace_id);
  std::uint64_t count() const { return count_; }
  /// NaN / negative samples rejected by add(). Not part of count().
  std::uint64_t invalid() const { return invalid_; }
  Real sum() const { return sum_; }
  Real mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<Real>(count_); }
  Real max() const { return count_ == 0 ? 0.0 : max_; }
  const std::vector<Real>& edges() const { return edges_; }
  /// edges().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  /// edges().size() + 1 entries, parallel to bucket_counts(); entries with
  /// valid == false belong to buckets that never saw a traced sample.
  const std::vector<Exemplar>& exemplars() const { return exemplars_; }

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside the
  /// bucket holding the target rank; samples in the overflow bucket are
  /// credited at max(). 0 when empty.
  Real quantile(Real q) const;

  /// Folds `other` (same edges) into this histogram. The loopback bench
  /// merges per-client histograms into one before reporting percentiles,
  /// and the shard router's metrics fan-in merges per-shard histograms
  /// into the combined /metrics page.
  /// Exemplars survive the merge: per bucket the larger-valued exemplar
  /// wins (ties broken by the larger trace id). Seq stamps are
  /// per-instance and cannot be compared across histograms, so recency is
  /// not a usable criterion; max-by-value is deterministic, associative
  /// AND commutative — any fan-in order yields the same exemplar, and a
  /// latency bucket keeps its slowest (most diagnostic) trace.
  void merge(const Histogram& other);

  /// "<=0.5:3 <=1:7 ... >50:0" — compact, deterministic. Rejected samples
  /// append " invalid:N" only when any were seen.
  std::string summary() const;

 private:
  std::vector<Real> edges_;
  std::vector<std::uint64_t> counts_;
  std::vector<Exemplar> exemplars_;
  std::uint64_t count_ = 0;
  std::uint64_t invalid_ = 0;
  std::uint64_t exemplar_seq_ = 0;
  Real sum_ = 0.0;
  Real max_ = 0.0;
};

}  // namespace cosched
