#include "obs/tail_sampler.hpp"

#include <algorithm>

namespace cosched {

const char* to_string(TailKeepReason reason) {
  switch (reason) {
    case TailKeepReason::Latency: return "latency";
    case TailKeepReason::TopK: return "topk";
    case TailKeepReason::Error: return "error";
    case TailKeepReason::Always: return "always";
  }
  return "?";
}

TailSampler& TailSampler::global() {
  static TailSampler sampler;
  return sampler;
}

void TailSampler::configure(std::vector<TailPolicy> policies,
                            TailSamplerOptions options) {
  COSCHED_EXPECTS(options.window_spans >= 1);
  COSCHED_EXPECTS(options.max_retained_spans >= 1);
  COSCHED_EXPECTS(options.max_retained_traces >= 1);
  std::lock_guard<std::mutex> lock(mutex_);
  policies_ = std::move(policies);
  policy_stats_.clear();
  policy_stats_.reserve(policies_.size());
  for (const TailPolicy& policy : policies_) {
    TailPolicyStats stats;
    stats.policy = policy.name;
    policy_stats_.push_back(std::move(stats));
  }
  options_ = options;
  stats_ = TailSamplerStats{};
  next_order_ = 0;
  pending_.clear();
  retained_.clear();
  retained_traces_.clear();
  retained_trace_order_.clear();
  active_.store(!policies_.empty(), std::memory_order_release);
}

bool TailSampler::matches_locked(const TailPolicy& policy,
                                 const std::string& name) const {
  return policy.span_prefix.empty() ||
         name.compare(0, policy.span_prefix.size(), policy.span_prefix) == 0;
}

bool TailSampler::observe(CompletedSpan span) {
  if (!active()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.considered;
  std::uint64_t order = next_order_++;

  // Immediate keeps, strongest criterion first; the first deciding policy
  // (in configuration order) is credited. over_threshold accounting runs
  // over *every* matching policy so the survival invariant holds per
  // policy, not just for the decider.
  const TailPolicy* decider = nullptr;
  TailKeepReason reason = TailKeepReason::Latency;
  bool wants_window = false;
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    const TailPolicy& policy = policies_[i];
    if (!matches_locked(policy, span.name)) continue;
    ++policy_stats_[i].matched;
    bool over = policy.min_duration_us > 0.0 &&
                span.duration_us >= policy.min_duration_us;
    if (over) ++policy_stats_[i].over_threshold_seen;
    if (!decider) {
      if (policy.always_keep) {
        decider = &policy;
        reason = TailKeepReason::Always;
      } else if (policy.keep_errors && span.error) {
        decider = &policy;
        reason = TailKeepReason::Error;
      } else if (over) {
        decider = &policy;
        reason = TailKeepReason::Latency;
      }
    }
    if (policy.top_k > 0) wants_window = true;
  }

  if (decider) {
    // Credit the keep on every matching policy whose threshold the span
    // met, then on the decider.
    for (std::size_t i = 0; i < policies_.size(); ++i) {
      const TailPolicy& policy = policies_[i];
      if (!matches_locked(policy, span.name)) continue;
      if (policy.min_duration_us > 0.0 &&
          span.duration_us >= policy.min_duration_us) {
        ++policy_stats_[i].over_threshold_kept;
        ++policy_stats_[i].kept;
      } else if (&policy == decider) {
        ++policy_stats_[i].kept;
      }
    }
    switch (reason) {
      case TailKeepReason::Latency: ++stats_.kept_latency; break;
      case TailKeepReason::Error: ++stats_.kept_error; break;
      case TailKeepReason::Always: ++stats_.kept_always; break;
      case TailKeepReason::TopK: break;  // never an immediate reason
    }
    keep_locked(std::move(span), reason, decider->name, order);
    return true;
  }

  if (wants_window) {
    pending_.push_back(PendingSpan{std::move(span), order});
    if (pending_.size() >= options_.window_spans) evaluate_window_locked();
    return false;
  }

  ++stats_.dropped;
  return false;
}

void TailSampler::evaluate_window_locked() {
  if (pending_.empty()) return;
  ++stats_.windows_evaluated;
  // For each top-K policy, mark the K slowest matching spans. Ties break on
  // observation order (earlier wins) — the verdict is a pure function of
  // the observe() sequence.
  std::vector<bool> keep(pending_.size(), false);
  std::vector<std::size_t> deciding_policy(pending_.size(), 0);
  for (std::size_t p = 0; p < policies_.size(); ++p) {
    const TailPolicy& policy = policies_[p];
    if (policy.top_k == 0) continue;
    std::vector<std::size_t> matching;
    for (std::size_t i = 0; i < pending_.size(); ++i)
      if (matches_locked(policy, pending_[i].span.name)) matching.push_back(i);
    std::sort(matching.begin(), matching.end(),
              [&](std::size_t a, std::size_t b) {
                if (pending_[a].span.duration_us !=
                    pending_[b].span.duration_us)
                  return pending_[a].span.duration_us >
                         pending_[b].span.duration_us;
                return pending_[a].order < pending_[b].order;
              });
    std::size_t take = std::min(policy.top_k, matching.size());
    for (std::size_t i = 0; i < take; ++i) {
      std::size_t idx = matching[i];
      if (!keep[idx]) {
        keep[idx] = true;
        deciding_policy[idx] = p;
      }
      ++policy_stats_[p].kept;
    }
  }
  std::vector<PendingSpan> window = std::move(pending_);
  pending_.clear();
  for (std::size_t i = 0; i < window.size(); ++i) {
    if (keep[i]) {
      ++stats_.kept_topk;
      keep_locked(std::move(window[i].span), TailKeepReason::TopK,
                  policies_[deciding_policy[i]].name, window[i].order);
    } else {
      ++stats_.dropped;
    }
  }
}

void TailSampler::keep_locked(CompletedSpan span, TailKeepReason reason,
                              const std::string& policy,
                              std::uint64_t order) {
  if (span.trace_id != 0 &&
      retained_traces_.insert(span.trace_id).second) {
    retained_trace_order_.push_back(span.trace_id);
    while (retained_trace_order_.size() > options_.max_retained_traces) {
      retained_traces_.erase(retained_trace_order_.front());
      retained_trace_order_.pop_front();
    }
  }
  RetainedSpan retained;
  retained.span = std::move(span);
  retained.reason = reason;
  retained.policy = policy;
  retained.order = order;
  retained_.push_back(std::move(retained));
  while (retained_.size() > options_.max_retained_spans) {
    retained_.pop_front();
    ++stats_.retained_evicted;
  }
}

void TailSampler::flush() {
  if (!active()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  evaluate_window_locked();
}

std::size_t TailSampler::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

std::size_t TailSampler::retained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retained_.size();
}

bool TailSampler::trace_retained(std::uint64_t trace_id) const {
  if (trace_id == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return retained_traces_.count(trace_id) != 0;
}

std::vector<RetainedSpan> TailSampler::retained_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {retained_.begin(), retained_.end()};
}

TailSamplerStats TailSampler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<TailPolicyStats> TailSampler::policy_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return policy_stats_;
}

std::vector<std::string> TailSampler::policy_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(policies_.size());
  for (const TailPolicy& policy : policies_) names.push_back(policy.name);
  return names;
}

std::string TailSampler::mode_label() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (policies_.empty()) return "";
  std::string label = "tail(";
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    if (i > 0) label += ',';
    label += policies_[i].name;
  }
  label += ')';
  return label;
}

void TailSampler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = TailSamplerStats{};
  for (TailPolicyStats& stats : policy_stats_) {
    stats.matched = 0;
    stats.kept = 0;
    stats.over_threshold_seen = 0;
    stats.over_threshold_kept = 0;
  }
  next_order_ = 0;
  pending_.clear();
  retained_.clear();
  retained_traces_.clear();
  retained_trace_order_.clear();
}

}  // namespace cosched
