// Continuous wall-time profiler for the replan hot path.
//
// Where the Tracer answers "what happened on this request", the Profiler
// answers "where does the time go overall": scoped phase timers accumulate
// into a per-thread tree of (phase path -> call count, total wall time),
// merged across threads at render time. The phase names reuse the span
// taxonomy (online.replan -> replan.fresh_solve -> astar.search -> ...), so
// a flamegraph of the profile and a Perfetto view of a trace describe the
// same shapes.
//
// Cost model, because this runs continuously in production servers:
//  * runtime-disabled (the default): one relaxed atomic load + branch per
//    phase — the same budget the runtime-disabled tracer meets, gated in CI
//    at <= 2% on bench/online_throughput;
//  * enabled: two steady_clock reads plus two relaxed atomic adds per
//    phase; child lookup is a pointer-compare scan over a handful of
//    siblings. No allocation after a phase path's first visit, no locks on
//    the hot path (structural inserts take the owning tree's mutex only so
//    concurrent renders never observe a half-built child list).
//
// Output is collapsed-stack text ("a;b;c <self_microseconds>" per line),
// the format flamegraph.pl and speedscope ingest directly, served by the
// /debug/profile HTTP endpoint and the --profile-out flags. Phase names
// must be string literals (the tree stores the pointer, like the tracer).
//
// Compile-time kill switch: -DCOSCHED_PROFILE_DISABLED turns every
// COSCHED_PROFILE_PHASE in that TU into a no-op with zero residue.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cosched {

class Profiler {
 public:
  Profiler();

  /// Process-wide profiler used by the COSCHED_PROFILE_PHASE macro.
  static Profiler& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Zeroes every node's count/time. The tree structure (and any phase a
  /// thread is currently inside) stays — resetting mid-flight is safe.
  void reset();

  /// One merged node of the cross-thread wall-time tree.
  struct NodeView {
    std::string path;  ///< ';'-joined phase names, root first
    std::string name;  ///< leaf phase name
    int depth = 0;     ///< 0 = top-level phase
    std::uint64_t count = 0;     ///< times the phase was entered
    std::uint64_t total_ns = 0;  ///< wall time inside, children included
    std::uint64_t self_ns = 0;   ///< total minus direct children's totals
  };

  /// Merged tree in deterministic order: depth-first, siblings sorted by
  /// name, threads folded together by path.
  std::vector<NodeView> snapshot() const;

  /// Collapsed-stack text: one "path self_microseconds" line per visited
  /// node, in snapshot() order — feed straight into flamegraph.pl.
  std::string render_collapsed() const;

  /// Human-oriented indented tree with counts and milliseconds.
  std::string render_text() const;

  /// Writes render_collapsed() to `path`, creating missing parent
  /// directories. False (with a stderr warning) on I/O failure.
  bool write_collapsed(const std::string& path) const;

  // ---- hot-path entry points (ProfilePhase is the intended caller) -------
  /// Descends into (creating on first visit) the child `name` of the
  /// calling thread's current node.
  void enter(const char* name);
  /// Adds `elapsed_ns` to the current node and pops back to its parent.
  /// Every enter() must be balanced by exactly one leave().
  void leave(std::uint64_t elapsed_ns);

 private:
  struct Node {
    const char* name = "";  ///< static string; not owned
    Node* parent = nullptr;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::vector<std::unique_ptr<Node>> children;
  };

  struct ThreadTree {
    Node root;
    Node* current = &root;    ///< touched only by the owning thread
    mutable std::mutex mutex;  ///< guards child insertion against renders
  };

  ThreadTree& local_tree();
  static void reset_node(Node& node);

  std::atomic<bool> enabled_{false};
  std::uint64_t id_ = 0;  ///< unique per Profiler: thread-local cache key
  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadTree>> trees_;
};

/// RAII phase scope. Latches the enabled decision at construction so
/// enter/leave always pair even if the profiler is toggled mid-phase.
class ProfilePhase {
 public:
  explicit ProfilePhase(const char* name)
      : active_(Profiler::global().enabled()) {
    if (active_) {
      Profiler::global().enter(name);
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ProfilePhase() {
    if (active_) {
      auto elapsed = std::chrono::steady_clock::now() - start_;
      Profiler::global().leave(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
    }
  }
  ProfilePhase(const ProfilePhase&) = delete;
  ProfilePhase& operator=(const ProfilePhase&) = delete;

 private:
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cosched

// COSCHED_PROFILE_PHASE(var, name) — RAII phase timer bound to the
// enclosing scope. Vanishes entirely (no profiler reference) in TUs
// compiled with -DCOSCHED_PROFILE_DISABLED.
#ifdef COSCHED_PROFILE_DISABLED

#define COSCHED_PROFILE_PHASE(var, name) \
  do {                                   \
  } while (0)

#else

#define COSCHED_PROFILE_PHASE(var, name) ::cosched::ProfilePhase var(name)

#endif  // COSCHED_PROFILE_DISABLED
