// Live metrics registry with Prometheus text-format exposition.
//
// Named counters, gauges and histograms, registered once and updated
// lock-free (atomics) from any thread. Naming convention (enforced):
// `cosched_<subsystem>_<name>`, counters suffixed `_total`, with only
// [a-zA-Z0-9_:] — what the Prometheus exposition format allows.
//
// Registration is idempotent: counter("x", ...) returns the same Counter
// forever; re-registering a name as a different kind is a contract
// violation. Callback metrics sample a closure at render time — the bridge
// for values owned elsewhere (the oracle cache's atomics, a server's queue
// depth) that would be wasteful to mirror write-by-write.
//
// MetricsRegistry::global() serves the process-wide registry used by the
// solver instrumentation and the RPC server; tests needing isolation
// construct their own instance.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace cosched {

/// Monotonic counter. Prometheus type "counter".
class Counter {
 public:
  void inc(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Set-or-adjust gauge. Prometheus type "gauge".
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double by) {
    // fetch_add on atomic<double> needs C++20 + hardware support; a CAS
    // loop is portable and this is never on a hot path.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + by,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Mutex-guarded histogram. Prometheus type "histogram" (cumulative
/// buckets, _sum, _count; invalid samples surface as `<name>_invalid_total`).
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<Real> upper_edges)
      : histogram_(std::move(upper_edges)) {}

  /// `trace_id` != 0 additionally records the sample as its bucket's
  /// exemplar (see Histogram::add), linking the exposition to a trace.
  void observe(Real x, std::uint64_t trace_id = 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.add(x, trace_id);
  }
  Histogram snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return histogram_;
  }

 private:
  mutable std::mutex mutex_;
  Histogram histogram_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry (solver counters, RPC server metrics).
  static MetricsRegistry& global();

  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  HistogramMetric& histogram(const std::string& name, const std::string& help,
                             std::vector<Real> upper_edges);

  /// Metric whose value is pulled from `sample` at render time.
  /// `type` is "counter" or "gauge". Re-registering a name replaces the
  /// callback (servers re-register on restart).
  void callback(const std::string& name, const std::string& help,
                const std::string& type, std::function<double()> sample);
  /// Drops a callback metric; no-op when absent. Owners of sampled state
  /// must unregister before that state dies.
  void unregister_callback(const std::string& name);

  /// Prometheus text exposition, metrics sorted by name. Histogram
  /// bucket counts are cumulative and end with le="+Inf", as the format
  /// requires. With `with_exemplars`, bucket lines whose bucket holds an
  /// exemplar gain the OpenMetrics ` # {trace_id="<16-hex>"} <value>`
  /// suffix (the default stays off so pre-exemplar consumers — including
  /// the byte-pinned telemetry frames — see unchanged bytes).
  std::string render_prometheus(bool with_exemplars = false) const;

  /// True iff `name` satisfies the exposition charset and the repo's
  /// `cosched_` prefix convention.
  static bool valid_name(const std::string& name);

 private:
  struct Entry {
    std::string help;
    // Exactly one of these is set.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
    std::function<double()> sample;
    std::string sample_type;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< ordered => sorted exposition
};

/// One sample line of a Prometheus exposition, as parsed back by tests and
/// by the bench's /metrics snapshot check.
struct PrometheusSample {
  std::string name;    ///< includes _bucket/_sum/_count suffixes
  std::string labels;  ///< raw label block without braces, may be empty
  double value = 0.0;
  // OpenMetrics exemplar suffix (` # {labels} value`), when present.
  bool has_exemplar = false;
  std::string exemplar_labels;  ///< raw label block, e.g. trace_id="..."
  double exemplar_value = 0.0;
};

/// Parses the sample lines of a text exposition (comments skipped).
/// Returns false on any malformed line. The round-trip property — render,
/// parse, compare — is what the tests assert. OpenMetrics exemplar
/// suffixes are parsed into the exemplar fields.
bool parse_prometheus_text(const std::string& text,
                           std::vector<PrometheusSample>& out);

/// 16-digit lowercase hex form of a trace id — the exemplar label value and
/// (zero-padded to 32 digits) the OTLP traceId encoding.
std::string trace_id_hex(std::uint64_t trace_id);

/// Shortest decimal form that round-trips a double, integral values as
/// plain integers — the exposition's value formatting, shared with the
/// shard router's fleet page so merged and single-instance renders agree
/// byte for byte.
std::string format_prometheus_value(double v);

/// Renders one histogram as Prometheus text samples (TYPE comment,
/// cumulative buckets ending at le="+Inf", _sum, _count, and
/// `<name>_invalid_total` when any sample was rejected). With
/// `with_exemplars`, bucket lines whose bucket holds an exemplar gain the
/// OpenMetrics ` # {trace_id="<16-hex>"} <value>` suffix. This is the one
/// code path behind both MetricsRegistry::render_prometheus and the shard
/// router's fan-in /metrics page (which renders merged histograms that
/// live in no registry).
void render_prometheus_histogram(std::ostream& out, const std::string& name,
                                 const Histogram& histogram,
                                 bool with_exemplars);

}  // namespace cosched
