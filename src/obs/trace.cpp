#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "util/rng.hpp"

namespace cosched {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void append_json_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Thread-local current trace context. One slot per thread (not per
/// tracer): contexts are installed around well-scoped request handling, so
/// nesting different tracers' contexts on one thread does not arise.
TraceContext& current_context_slot() {
  thread_local TraceContext context;
  return context;
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  static std::atomic<std::uint64_t> next_id{1};
  id_ = next_id.fetch_add(1, std::memory_order_relaxed);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
    buffer->next = 0;
    buffer->dropped = 0;
    buffer->depth = 0;
  }
  sampled_out_traces_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

std::uint64_t Tracer::dropped_events() const {
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_snapshot()) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

void Tracer::set_always_keep(std::vector<std::string> prefixes) {
  std::lock_guard<std::mutex> lock(always_keep_mutex_);
  always_keep_ = std::move(prefixes);
}

std::vector<std::string> Tracer::always_keep() const {
  std::lock_guard<std::mutex> lock(always_keep_mutex_);
  return always_keep_;
}

std::uint64_t Tracer::sampled_out_traces() const {
  return sampled_out_traces_.load(std::memory_order_relaxed);
}

TraceContext Tracer::make_context(std::uint64_t trace_id) {
  TraceContext context;
  context.trace_id = trace_id;
  context.parent_span_id =
      next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t n = sample_every_.load(std::memory_order_relaxed);
  std::uint64_t seed = sample_seed_.load(std::memory_order_relaxed);
  context.sampled =
      trace_id == 0 || n <= 1 || SplitMix64(seed ^ trace_id).next() % n == 0;
  if (!context.sampled)
    sampled_out_traces_.fetch_add(1, std::memory_order_relaxed);
  return context;
}

const TraceContext& Tracer::current_context() {
  return current_context_slot();
}

void Tracer::set_current_context(const TraceContext& context) {
  current_context_slot() = context;
}

void Tracer::clear_current_context() {
  current_context_slot() = TraceContext{};
}

bool Tracer::matches_always_keep(const char* name) const {
  std::lock_guard<std::mutex> lock(always_keep_mutex_);
  for (const std::string& prefix : always_keep_) {
    if (std::strncmp(name, prefix.c_str(), prefix.size()) == 0) return true;
  }
  return false;
}

bool Tracer::should_record(const char* name) const {
  const TraceContext& context = current_context_slot();
  if (context.trace_id == 0 || context.sampled) return true;
  return matches_always_keep(name);
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // One buffer per (thread, tracer). The shared_ptr keeps the buffer alive
  // for exporters even after the thread exits; the id (not the address,
  // which a stack-allocated tracer in a test could reuse) keys the cache.
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  thread_local std::uint64_t owner = 0;
  if (!buffer || owner != id_) {
    buffer = std::make_shared<ThreadBuffer>();
    owner = id_;
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffer->tid = static_cast<std::int32_t>(buffers_.size());
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void Tracer::record(ThreadBuffer& buffer, Event event) {
  std::chrono::duration<double, std::micro> since =
      std::chrono::steady_clock::now() - epoch_;
  event.wall_us = since.count();
  event.trace_id = current_context_slot().trace_id;
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  std::size_t capacity = max_events_per_thread_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() < capacity) {
    buffer.events.push_back(std::move(event));
    return;
  }
  // Ring full: overwrite the oldest slot. If the capacity was shrunk below
  // the current size, wrap within what is already stored.
  if (buffer.next >= buffer.events.size()) buffer.next = 0;
  buffer.events[buffer.next] = std::move(event);
  buffer.next = (buffer.next + 1) % buffer.events.size();
  ++buffer.dropped;
}

void Tracer::begin_span(const char* name, Real virtual_time,
                        std::string args) {
  if (!enabled()) return;
  ThreadBuffer& buffer = local_buffer();
  Event event;
  event.name = name;
  event.phase = Phase::Begin;
  event.virtual_time = virtual_time;
  event.depth = buffer.depth++;
  event.args = std::move(args);
  record(buffer, std::move(event));
}

void Tracer::end_span() {
  // Intentionally no enabled() check: a span begun while enabled always
  // closes (TraceSpan latches the decision at construction).
  ThreadBuffer& buffer = local_buffer();
  COSCHED_EXPECTS(buffer.depth > 0);
  Event event;
  event.phase = Phase::End;
  event.depth = --buffer.depth;
  record(buffer, std::move(event));
}

void Tracer::instant(const char* name, Real virtual_time, std::string args) {
  if (!enabled() || !should_record(name)) return;
  ThreadBuffer& buffer = local_buffer();
  Event event;
  event.name = name;
  event.phase = Phase::Instant;
  event.virtual_time = virtual_time;
  event.depth = buffer.depth;
  event.args = std::move(args);
  record(buffer, std::move(event));
}

void Tracer::counter(const char* name, double value) {
  if (!enabled() || !should_record(name)) return;
  ThreadBuffer& buffer = local_buffer();
  Event event;
  event.name = name;
  event.phase = Phase::Counter;
  event.value = value;
  event.depth = buffer.depth;
  record(buffer, std::move(event));
}

std::vector<std::shared_ptr<Tracer::ThreadBuffer>> Tracer::buffers_snapshot()
    const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return buffers_;
}

std::vector<Tracer::Event> Tracer::ordered_events(const ThreadBuffer& buffer) {
  std::vector<Event> events;
  events.reserve(buffer.events.size());
  if (buffer.dropped > 0 && buffer.next < buffer.events.size()) {
    events.insert(events.end(), buffer.events.begin() +
                                    static_cast<std::ptrdiff_t>(buffer.next),
                  buffer.events.end());
    events.insert(events.end(), buffer.events.begin(),
                  buffer.events.begin() +
                      static_cast<std::ptrdiff_t>(buffer.next));
  } else {
    events = buffer.events;
  }
  return events;
}

std::uint64_t Tracer::event_count() const {
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_snapshot()) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

Tracer::TelemetryBatch Tracer::collect_since(std::uint64_t min_seq,
                                             const std::string& prefix,
                                             std::size_t max_events) const {
  TelemetryBatch batch;
  batch.next_cursor = min_seq;
  for (const auto& buffer : buffers_snapshot()) {
    std::vector<Event> events;
    std::int32_t tid = buffer->tid;
    {
      std::lock_guard<std::mutex> lock(buffer->mutex);
      events = ordered_events(*buffer);
    }
    for (Event& e : events) {
      if (e.seq < min_seq) continue;
      if (!prefix.empty() &&
          std::strncmp(e.name, prefix.c_str(), prefix.size()) != 0)
        continue;
      TelemetryEvent sample;
      sample.name = e.name;
      sample.phase = e.phase;
      sample.wall_us = e.wall_us;
      sample.virtual_time = e.virtual_time;
      sample.value = e.value;
      sample.tid = tid;
      sample.depth = e.depth;
      sample.trace_id = e.trace_id;
      sample.seq = e.seq;
      sample.args = std::move(e.args);
      batch.events.push_back(std::move(sample));
    }
  }
  std::sort(batch.events.begin(), batch.events.end(),
            [](const TelemetryEvent& a, const TelemetryEvent& b) {
              return a.seq < b.seq;
            });
  if (max_events > 0 && batch.events.size() > max_events) {
    // Drop-oldest backpressure: a slow subscriber loses the oldest part of
    // the backlog, never the freshest samples.
    batch.dropped = batch.events.size() - max_events;
    batch.events.erase(batch.events.begin(),
                       batch.events.end() -
                           static_cast<std::ptrdiff_t>(max_events));
  }
  if (!batch.events.empty())
    batch.next_cursor = batch.events.back().seq + 1;
  return batch;
}

std::string Tracer::dump_text() const {
  std::ostringstream out;
  for (const auto& buffer : buffers_snapshot()) {
    std::vector<Event> events;
    {
      std::lock_guard<std::mutex> lock(buffer->mutex);
      events = ordered_events(*buffer);
    }
    if (events.empty()) continue;
    out << "thread " << buffer->tid << "\n";
    for (const Event& e : events) {
      if (e.phase == Phase::End) continue;
      for (std::int32_t d = 0; d < e.depth; ++d) out << "  ";
      switch (e.phase) {
        case Phase::Begin: out << "span " << e.name; break;
        case Phase::Instant: out << "mark " << e.name; break;
        case Phase::Counter:
          out << "count " << e.name << " = " << fmt_double(e.value);
          break;
        case Phase::End: break;
      }
      if (e.virtual_time >= 0.0) out << " @vt=" << fmt_double(e.virtual_time);
      if (e.trace_id != 0) out << " trace=" << e.trace_id;
      if (!e.args.empty()) out << " [" << e.args << "]";
      out << "\n";
    }
  }
  return out.str();
}

std::string Tracer::export_chrome_json() const {
  struct Record {
    double ts = 0.0;
    std::int32_t tid = 0;
    std::uint64_t seq = 0;
    std::string json;
  };
  std::vector<Record> records;

  // Span occurrences per trace_id, for flow-event emission.
  struct FlowPoint {
    double ts = 0.0;
    std::int32_t tid = 0;
    std::uint64_t seq = 0;
    const char* name = "";
  };
  std::map<std::uint64_t, std::vector<FlowPoint>> flows;

  auto common_fields = [](std::string& json, const Event& e, char ph,
                          std::int32_t tid) {
    json += "{\"name\":\"";
    append_json_escaped(json, e.name);
    json += "\",\"cat\":\"cosched\",\"ph\":\"";
    json += ph;
    json += "\",\"ts\":" + fmt_double(e.wall_us);
    json += ",\"pid\":1,\"tid\":" + std::to_string(tid);
  };
  auto args_fields = [](std::string& json, const Event& e) {
    bool have_vt = e.virtual_time >= 0.0;
    bool have_trace = e.trace_id != 0;
    bool have_detail = !e.args.empty();
    if (!have_vt && !have_trace && !have_detail) return;
    json += ",\"args\":{";
    bool first = true;
    auto sep = [&] {
      if (!first) json += ",";
      first = false;
    };
    if (have_vt) {
      sep();
      json += "\"virtual_time\":" + fmt_double(e.virtual_time);
    }
    if (have_trace) {
      sep();
      json += "\"trace_id\":" + std::to_string(e.trace_id);
    }
    if (have_detail) {
      sep();
      json += "\"detail\":\"";
      append_json_escaped(json, e.args.c_str());
      json += "\"";
    }
    json += "}";
  };

  for (const auto& buffer : buffers_snapshot()) {
    std::vector<Event> events;
    {
      std::lock_guard<std::mutex> lock(buffer->mutex);
      events = ordered_events(*buffer);
    }
    // Pair Begin/End into "X" complete events; unclosed spans stay "B".
    // A ring overwrite can orphan an End whose Begin was evicted — such
    // Ends are skipped (no partner to time against).
    std::vector<std::size_t> open;
    std::vector<double> duration(events.size(), -1.0);
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].phase == Phase::Begin) {
        open.push_back(i);
      } else if (events[i].phase == Phase::End) {
        if (open.empty()) continue;  // orphaned by the ring
        std::size_t b = open.back();
        open.pop_back();
        duration[b] = events[i].wall_us - events[b].wall_us;
      }
    }
    for (std::size_t i = 0; i < events.size(); ++i) {
      const Event& e = events[i];
      if (e.phase == Phase::End) continue;
      Record record;
      record.ts = e.wall_us;
      record.tid = buffer->tid;
      record.seq = e.seq;
      std::string& json = record.json;
      switch (e.phase) {
        case Phase::Begin:
          common_fields(json, e, duration[i] >= 0.0 ? 'X' : 'B',
                        buffer->tid);
          if (duration[i] >= 0.0)
            json += ",\"dur\":" + fmt_double(duration[i]);
          args_fields(json, e);
          if (e.trace_id != 0)
            flows[e.trace_id].push_back(
                FlowPoint{e.wall_us, buffer->tid, e.seq, e.name});
          break;
        case Phase::Instant:
          common_fields(json, e, 'i', buffer->tid);
          json += ",\"s\":\"t\"";
          args_fields(json, e);
          break;
        case Phase::Counter:
          common_fields(json, e, 'C', buffer->tid);
          json += ",\"args\":{\"value\":" + fmt_double(e.value) + "}";
          break;
        case Phase::End: break;
      }
      json += "}";
      records.push_back(std::move(record));
    }
  }

  // Flow events: for each trace with spans on more than one point, link
  // first -> ... -> last in seq order ("s" start, "t" steps, "f" finish).
  // Perfetto then draws arrows from the rpc.request span to the replan and
  // solver spans it caused, across threads.
  for (auto& [trace_id, points] : flows) {
    if (points.size() < 2) continue;
    std::sort(points.begin(), points.end(),
              [](const FlowPoint& a, const FlowPoint& b) {
                return a.seq < b.seq;
              });
    for (std::size_t i = 0; i < points.size(); ++i) {
      const FlowPoint& p = points[i];
      char ph = i == 0 ? 's' : (i + 1 == points.size() ? 'f' : 't');
      Record record;
      record.ts = p.ts;
      record.tid = p.tid;
      record.seq = p.seq;
      std::string& json = record.json;
      json += "{\"name\":\"trace\",\"cat\":\"flow\",\"ph\":\"";
      json += ph;
      json += "\",\"id\":" + std::to_string(trace_id);
      json += ",\"ts\":" + fmt_double(p.ts);
      json += ",\"pid\":1,\"tid\":" + std::to_string(p.tid);
      if (ph == 'f') json += ",\"bp\":\"e\"";
      json += "}";
      records.push_back(std::move(record));
    }
  }

  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.seq < b.seq;
            });
  std::string out = "[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ",\n";
    out += records[i].json;
  }
  out += "]\n";
  return out;
}

// ---- cross-process dump merging -------------------------------------------

namespace {

/// Splits an export_chrome_json() array into its records. Relies on the
/// exporter's exact shape: records joined with ",\n" inside "[...]\n" —
/// the only inputs these helpers are specified for.
std::vector<std::string> chrome_records(const std::string& json) {
  std::size_t open = json.find('[');
  std::size_t close = json.rfind(']');
  std::vector<std::string> records;
  if (open == std::string::npos || close == std::string::npos ||
      close <= open + 1)
    return records;
  std::string body = json.substr(open + 1, close - open - 1);
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t end = body.find(",\n", pos);
    if (end == std::string::npos) end = body.size();
    std::string record = body.substr(pos, end - pos);
    if (record.find('{') != std::string::npos)
      records.push_back(std::move(record));
    pos = end + 2;
  }
  return records;
}

}  // namespace

std::string namespace_trace_text(const std::string& text,
                                 const std::string& prefix) {
  static const char* kKeywords[] = {"thread ", "span ", "mark ", "count "};
  std::string out;
  out.reserve(text.size() + prefix.size() * 32);
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(pos, end - pos);
    std::size_t indent = 0;
    while (indent < line.size() && line[indent] == ' ') ++indent;
    for (const char* keyword : kKeywords) {
      std::size_t n = std::strlen(keyword);
      if (line.compare(indent, n, keyword) == 0) {
        line.insert(indent + n, prefix);
        break;
      }
    }
    out += line;
    out += '\n';
    pos = end + 1;
  }
  return out;
}

std::string namespace_chrome_trace(const std::string& json, int pid,
                                   const std::string& prefix) {
  const std::string pid_field = "\"pid\":1,";
  const std::string pid_rewrite = "\"pid\":" + std::to_string(pid) + ",";
  std::vector<std::string> records = chrome_records(json);
  std::string out = "[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::string& record = records[i];
    std::size_t at = record.find(pid_field);
    if (at != std::string::npos)
      record.replace(at, pid_field.size(), pid_rewrite);
    // Flow events keep their name: Perfetto binds flows by (cat, name, id),
    // and the cross-process arrows are the whole point of the merge.
    if (record.rfind("{\"name\":\"", 0) == 0 &&
        record.find("\"cat\":\"flow\"") == std::string::npos)
      record.insert(std::strlen("{\"name\":\""), prefix);
    if (i > 0) out += ",\n";
    out += record;
  }
  out += "]\n";
  return out;
}

std::string merge_chrome_traces(const std::vector<std::string>& parts) {
  std::string out = "[";
  bool first = true;
  for (const std::string& part : parts) {
    for (std::string& record : chrome_records(part)) {
      if (!first) out += ",\n";
      first = false;
      out += record;
    }
  }
  out += "]\n";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  namespace fs = std::filesystem;
  fs::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
      std::cerr << "warning: cannot create trace directory "
                << target.parent_path().string() << ": " << ec.message()
                << "\n";
      return false;
    }
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write trace file " << path << "\n";
    return false;
  }
  out << export_chrome_json();
  return true;
}

}  // namespace cosched
