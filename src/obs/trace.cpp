#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace cosched {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void append_json_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  static std::atomic<std::uint64_t> next_id{1};
  id_ = next_id.fetch_add(1, std::memory_order_relaxed);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
    buffer->depth = 0;
  }
  epoch_ = std::chrono::steady_clock::now();
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // One buffer per (thread, tracer). The shared_ptr keeps the buffer alive
  // for exporters even after the thread exits; the id (not the address,
  // which a stack-allocated tracer in a test could reuse) keys the cache.
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  thread_local std::uint64_t owner = 0;
  if (!buffer || owner != id_) {
    buffer = std::make_shared<ThreadBuffer>();
    owner = id_;
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffer->tid = static_cast<std::int32_t>(buffers_.size());
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void Tracer::record(ThreadBuffer& buffer, Event event) {
  std::chrono::duration<double, std::micro> since =
      std::chrono::steady_clock::now() - epoch_;
  event.wall_us = since.count();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

void Tracer::begin_span(const char* name, Real virtual_time,
                        std::string args) {
  if (!enabled()) return;
  ThreadBuffer& buffer = local_buffer();
  Event event;
  event.name = name;
  event.phase = Phase::Begin;
  event.virtual_time = virtual_time;
  event.depth = buffer.depth++;
  event.args = std::move(args);
  record(buffer, std::move(event));
}

void Tracer::end_span() {
  // Intentionally no enabled() check: a span begun while enabled always
  // closes (TraceSpan latches the decision at construction).
  ThreadBuffer& buffer = local_buffer();
  COSCHED_EXPECTS(buffer.depth > 0);
  Event event;
  event.phase = Phase::End;
  event.depth = --buffer.depth;
  record(buffer, std::move(event));
}

void Tracer::instant(const char* name, Real virtual_time, std::string args) {
  if (!enabled()) return;
  ThreadBuffer& buffer = local_buffer();
  Event event;
  event.name = name;
  event.phase = Phase::Instant;
  event.virtual_time = virtual_time;
  event.depth = buffer.depth;
  event.args = std::move(args);
  record(buffer, std::move(event));
}

void Tracer::counter(const char* name, double value) {
  if (!enabled()) return;
  ThreadBuffer& buffer = local_buffer();
  Event event;
  event.name = name;
  event.phase = Phase::Counter;
  event.value = value;
  event.depth = buffer.depth;
  record(buffer, std::move(event));
}

std::vector<std::shared_ptr<Tracer::ThreadBuffer>> Tracer::buffers_snapshot()
    const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return buffers_;
}

std::uint64_t Tracer::event_count() const {
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_snapshot()) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

std::string Tracer::dump_text() const {
  std::ostringstream out;
  for (const auto& buffer : buffers_snapshot()) {
    std::vector<Event> events;
    {
      std::lock_guard<std::mutex> lock(buffer->mutex);
      events = buffer->events;
    }
    if (events.empty()) continue;
    out << "thread " << buffer->tid << "\n";
    for (const Event& e : events) {
      if (e.phase == Phase::End) continue;
      for (std::int32_t d = 0; d < e.depth; ++d) out << "  ";
      switch (e.phase) {
        case Phase::Begin: out << "span " << e.name; break;
        case Phase::Instant: out << "mark " << e.name; break;
        case Phase::Counter:
          out << "count " << e.name << " = " << fmt_double(e.value);
          break;
        case Phase::End: break;
      }
      if (e.virtual_time >= 0.0) out << " @vt=" << fmt_double(e.virtual_time);
      if (!e.args.empty()) out << " [" << e.args << "]";
      out << "\n";
    }
  }
  return out.str();
}

std::string Tracer::export_chrome_json() const {
  struct Record {
    double ts = 0.0;
    std::int32_t tid = 0;
    std::size_t seq = 0;
    std::string json;
  };
  std::vector<Record> records;

  auto common_fields = [](std::string& json, const Event& e, char ph,
                          std::int32_t tid) {
    json += "{\"name\":\"";
    append_json_escaped(json, e.name);
    json += "\",\"cat\":\"cosched\",\"ph\":\"";
    json += ph;
    json += "\",\"ts\":" + fmt_double(e.wall_us);
    json += ",\"pid\":1,\"tid\":" + std::to_string(tid);
  };
  auto args_fields = [](std::string& json, const Event& e) {
    bool have_vt = e.virtual_time >= 0.0;
    bool have_detail = !e.args.empty();
    if (!have_vt && !have_detail) return;
    json += ",\"args\":{";
    if (have_vt) json += "\"virtual_time\":" + fmt_double(e.virtual_time);
    if (have_detail) {
      if (have_vt) json += ",";
      json += "\"detail\":\"";
      append_json_escaped(json, e.args.c_str());
      json += "\"";
    }
    json += "}";
  };

  for (const auto& buffer : buffers_snapshot()) {
    std::vector<Event> events;
    {
      std::lock_guard<std::mutex> lock(buffer->mutex);
      events = buffer->events;
    }
    // Pair Begin/End into "X" complete events; unclosed spans stay "B".
    std::vector<std::size_t> open;
    std::vector<double> duration(events.size(), -1.0);
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].phase == Phase::Begin) {
        open.push_back(i);
      } else if (events[i].phase == Phase::End) {
        COSCHED_ENSURES(!open.empty());
        std::size_t b = open.back();
        open.pop_back();
        duration[b] = events[i].wall_us - events[b].wall_us;
      }
    }
    for (std::size_t i = 0; i < events.size(); ++i) {
      const Event& e = events[i];
      if (e.phase == Phase::End) continue;
      Record record;
      record.ts = e.wall_us;
      record.tid = buffer->tid;
      record.seq = i;
      std::string& json = record.json;
      switch (e.phase) {
        case Phase::Begin:
          common_fields(json, e, duration[i] >= 0.0 ? 'X' : 'B',
                        buffer->tid);
          if (duration[i] >= 0.0)
            json += ",\"dur\":" + fmt_double(duration[i]);
          args_fields(json, e);
          break;
        case Phase::Instant:
          common_fields(json, e, 'i', buffer->tid);
          json += ",\"s\":\"t\"";
          args_fields(json, e);
          break;
        case Phase::Counter:
          common_fields(json, e, 'C', buffer->tid);
          json += ",\"args\":{\"value\":" + fmt_double(e.value) + "}";
          break;
        case Phase::End: break;
      }
      json += "}";
      records.push_back(std::move(record));
    }
  }

  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.seq < b.seq;
            });
  std::string out = "[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ",\n";
    out += records[i].json;
  }
  out += "]\n";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  namespace fs = std::filesystem;
  fs::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
      std::cerr << "warning: cannot create trace directory "
                << target.parent_path().string() << ": " << ec.message()
                << "\n";
      return false;
    }
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write trace file " << path << "\n";
    return false;
  }
  out << export_chrome_json();
  return true;
}

}  // namespace cosched
