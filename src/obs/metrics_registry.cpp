#include "obs/metrics_registry.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace cosched {

namespace {

/// Shortest decimal form that round-trips a double (Prometheus values).
/// Integral values print as plain integers — callbacks sampling counters
/// should read `cosched_cache_evictions_total 21790`, not `2.179e+04`.
std::string fmt_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char whole[32];
    std::snprintf(whole, sizeof(whole), "%.0f", v);
    return whole;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) return shorter;
  }
  return buf;
}

}  // namespace

std::string format_prometheus_value(double v) { return fmt_value(v); }

void render_prometheus_histogram(std::ostream& out, const std::string& name,
                                 const Histogram& h, bool with_exemplars) {
  out << "# TYPE " << name << " histogram\n";
  std::uint64_t cumulative = 0;
  const auto& counts = h.bucket_counts();
  const auto& exemplars = h.exemplars();
  auto exemplar_suffix = [&](std::size_t bucket) {
    if (!with_exemplars || !exemplars[bucket].valid) return;
    out << " # {trace_id=\"" << trace_id_hex(exemplars[bucket].trace_id)
        << "\"} " << fmt_value(exemplars[bucket].value);
  };
  for (std::size_t i = 0; i < h.edges().size(); ++i) {
    cumulative += counts[i];
    out << name << "_bucket{le=\"" << fmt_value(h.edges()[i]) << "\"} "
        << cumulative;
    exemplar_suffix(i);
    out << "\n";
  }
  out << name << "_bucket{le=\"+Inf\"} " << h.count();
  exemplar_suffix(h.edges().size());
  out << "\n";
  out << name << "_sum " << fmt_value(h.sum()) << "\n";
  out << name << "_count " << h.count() << "\n";
  if (h.invalid() > 0)
    out << name << "_invalid_total " << h.invalid() << "\n";
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

bool MetricsRegistry::valid_name(const std::string& name) {
  if (name.rfind("cosched_", 0) != 0) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) return false;
  }
  return true;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  COSCHED_EXPECTS(valid_name(name));
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (!entry.counter) {
    COSCHED_EXPECTS(!entry.gauge && !entry.histogram && !entry.sample);
    entry.help = help;
    entry.counter = std::make_unique<Counter>();
  }
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  COSCHED_EXPECTS(valid_name(name));
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (!entry.gauge) {
    COSCHED_EXPECTS(!entry.counter && !entry.histogram && !entry.sample);
    entry.help = help;
    entry.gauge = std::make_unique<Gauge>();
  }
  return *entry.gauge;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            const std::string& help,
                                            std::vector<Real> upper_edges) {
  COSCHED_EXPECTS(valid_name(name));
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (!entry.histogram) {
    COSCHED_EXPECTS(!entry.counter && !entry.gauge && !entry.sample);
    entry.help = help;
    entry.histogram =
        std::make_unique<HistogramMetric>(std::move(upper_edges));
  }
  return *entry.histogram;
}

void MetricsRegistry::callback(const std::string& name,
                               const std::string& help,
                               const std::string& type,
                               std::function<double()> sample) {
  COSCHED_EXPECTS(valid_name(name));
  COSCHED_EXPECTS(type == "counter" || type == "gauge");
  COSCHED_EXPECTS(sample != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  COSCHED_EXPECTS(!entry.counter && !entry.gauge && !entry.histogram);
  entry.help = help;
  entry.sample = std::move(sample);
  entry.sample_type = type;
}

void MetricsRegistry::unregister_callback(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end() && it->second.sample) entries_.erase(it);
}

std::string trace_id_hex(std::uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

std::string MetricsRegistry::render_prometheus(bool with_exemplars) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, entry] : entries_) {
    out << "# HELP " << name << " " << entry.help << "\n";
    if (entry.counter) {
      out << "# TYPE " << name << " counter\n";
      out << name << " " << entry.counter->value() << "\n";
    } else if (entry.gauge) {
      out << "# TYPE " << name << " gauge\n";
      out << name << " " << fmt_value(entry.gauge->value()) << "\n";
    } else if (entry.sample) {
      out << "# TYPE " << name << " " << entry.sample_type << "\n";
      out << name << " " << fmt_value(entry.sample()) << "\n";
    } else if (entry.histogram) {
      render_prometheus_histogram(out, name, entry.histogram->snapshot(),
                                  with_exemplars);
    }
  }
  return out.str();
}

bool parse_prometheus_text(const std::string& text,
                           std::vector<PrometheusSample>& out) {
  out.clear();
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    PrometheusSample sample;
    std::size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
    if (pos == 0 || pos == line.size()) return false;
    sample.name = line.substr(0, pos);
    if (line[pos] == '{') {
      std::size_t close = line.find('}', pos);
      if (close == std::string::npos) return false;
      sample.labels = line.substr(pos + 1, close - pos - 1);
      pos = close + 1;
    }
    if (pos >= line.size() || line[pos] != ' ') return false;
    std::string value = line.substr(pos + 1);
    // OpenMetrics exemplar suffix: "<value> # {<labels>} <exemplar_value>".
    std::size_t hash = value.find(" # ");
    if (hash != std::string::npos) {
      const std::string exemplar = value.substr(hash + 3);
      value.resize(hash);
      if (exemplar.size() < 2 || exemplar[0] != '{') return false;
      std::size_t close = exemplar.find('}');
      if (close == std::string::npos || close + 1 >= exemplar.size() ||
          exemplar[close + 1] != ' ')
        return false;
      sample.exemplar_labels = exemplar.substr(1, close - 1);
      const std::string exemplar_value = exemplar.substr(close + 2);
      char trailing = 0;
      if (std::sscanf(exemplar_value.c_str(), "%lf%c",
                      &sample.exemplar_value, &trailing) != 1)
        return false;
      sample.has_exemplar = true;
    }
    if (value.empty()) return false;
    if (value == "+Inf") {
      sample.value = kInfinity;
    } else if (value == "-Inf") {
      sample.value = -kInfinity;
    } else {
      char trailing = 0;
      if (std::sscanf(value.c_str(), "%lf%c", &sample.value, &trailing) != 1)
        return false;
    }
    out.push_back(std::move(sample));
  }
  return true;
}

}  // namespace cosched
