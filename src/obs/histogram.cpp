#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/table.hpp"

namespace cosched {

Histogram::Histogram(std::vector<Real> upper_edges)
    : edges_(std::move(upper_edges)),
      counts_(edges_.size() + 1, 0),
      exemplars_(edges_.size() + 1) {
  for (std::size_t i = 1; i < edges_.size(); ++i)
    COSCHED_EXPECTS(edges_[i - 1] < edges_[i]);
}

void Histogram::add(Real x, std::uint64_t trace_id) {
  if (std::isnan(x) || x < 0.0) {
    ++invalid_;
    return;
  }
  std::size_t bucket = edges_.size();
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (x <= edges_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_ += x;
  if (count_ == 1 || x > max_) max_ = x;
  if (trace_id != 0) {
    Exemplar& slot = exemplars_[bucket];
    slot.valid = true;
    slot.value = x;
    slot.trace_id = trace_id;
    slot.seq = ++exemplar_seq_;
  }
}

Real Histogram::quantile(Real q) const {
  COSCHED_EXPECTS(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  Real target = q * static_cast<Real>(count_);
  Real cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    Real here = static_cast<Real>(counts_[i]);
    if (here == 0.0) continue;
    if (cum + here >= target) {
      if (i == edges_.size()) return max_;  // overflow bucket
      Real lo = i == 0 ? 0.0 : edges_[i - 1];
      Real hi = std::min(edges_[i], max_);
      if (hi < lo) hi = lo;
      Real fraction = std::clamp((target - cum) / here, 0.0, 1.0);
      return lo + fraction * (hi - lo);
    }
    cum += here;
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  COSCHED_EXPECTS(edges_ == other.edges_);
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  for (std::size_t i = 0; i < exemplars_.size(); ++i) {
    const Exemplar& theirs = other.exemplars_[i];
    if (!theirs.valid) continue;
    Exemplar& ours = exemplars_[i];
    // Max-by-value (ties: max trace id) is order-independent, so a fan-in
    // over N shards lands on the same exemplar whatever the merge order.
    bool adopt = !ours.valid || theirs.value > ours.value ||
                 (theirs.value == ours.value && theirs.trace_id > ours.trace_id);
    if (adopt) {
      ours = theirs;
      ours.seq = ++exemplar_seq_;
    }
  }
  if (other.count_ > 0 && (count_ == 0 || other.max_ > max_)) max_ = other.max_;
  count_ += other.count_;
  invalid_ += other.invalid_;
  sum_ += other.sum_;
}

std::string Histogram::summary() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) out << ' ';
    out << "<=" << TextTable::fmt(edges_[i], 2) << ':' << counts_[i];
  }
  if (!edges_.empty()) out << ' ';
  out << '>'
      << (edges_.empty() ? std::string("0") : TextTable::fmt(edges_.back(), 2))
      << ':' << counts_.back();
  if (invalid_ > 0) out << " invalid:" << invalid_;
  return out.str();
}

}  // namespace cosched
