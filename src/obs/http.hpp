// Minimal HTTP/1.0 GET/HEAD endpoint on top of the src/net Socket layer.
//
// Just enough HTTP for `curl`, Prometheus scrapers and health probes:
// one accept+serve thread, GET and HEAD only, `Connection: close` on every
// reply. Handlers run on the serving thread and must be fast and
// thread-safe against the rest of the process (the /metrics handler renders
// a registry; the /healthz handler returns a constant). HEAD returns the
// same headers a GET would (including Content-Length) without the body.
// Recognizable-but-unsupported methods (POST, PUT, ...) get 405 with an
// `Allow: GET, HEAD` header; malformed request lines, oversized heads and
// requests that announce or ship a body get 400 — never a silent close.
// A path no handler claims gets 404. `GET /` answers an index of every
// registered route (unless the caller claimed "/" itself), so a human with
// curl discovers the side door without reading the source.
//
// This is deliberately NOT a general web server: no keep-alive, no request
// bodies, no chunking, 8 KiB request cap. The RPC protocol stays on the
// framed binary port; this side door exists so a human with curl — or a
// Prometheus scraper — can watch a live CoschedServer.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/socket.hpp"

namespace cosched {

struct HttpOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back with port()
  int backlog = 8;
  /// Accept-loop poll slice; responsiveness of stop(), nothing else.
  double idle_poll_seconds = 0.2;
  /// Per-connection budget for reading the request and writing the reply.
  double request_timeout_seconds = 5.0;
};

/// Return the response body for a request-target. Routes are matched on
/// the path *before* any `?`; the handler receives the full target
/// (including the query string — parse it with http_query_param).
/// `content_type` defaults to text/plain. Returning false means "not mine"
/// and the dispatcher tries no further — register one handler per path.
using HttpHandler =
    std::function<bool(const std::string& path, std::string& body,
                       std::string& content_type)>;

/// Status-aware variant: the handler picks the HTTP status code (a health
/// endpoint answers 503 when the fleet is down). Returning a code the
/// endpoint does not know renders as 500; returning <= 0 means "not mine"
/// and falls through to 404 like an HttpHandler returning false.
using HttpStatusHandler =
    std::function<int(const std::string& path, std::string& body,
                      std::string& content_type)>;

class HttpEndpoint {
 public:
  explicit HttpEndpoint(HttpOptions options);
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Exact-path route. Register every route before start().
  void handle(std::string path, HttpHandler handler);
  /// Exact-path route whose handler also picks the status code.
  void handle_status(std::string path, HttpStatusHandler handler);

  bool start(std::string& error);
  std::uint16_t port() const { return port_; }
  void stop();  ///< joins the serving thread; idempotent

  /// Paths registered so far, in registration order. After start() this
  /// includes the synthesized "/" index (unless the caller claimed "/").
  std::vector<std::string> route_paths() const;

 private:
  void serve_main();
  void serve_connection(Socket socket);

  HttpOptions options_;
  std::vector<std::pair<std::string, HttpStatusHandler>> routes_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

/// Value of `key` in the request-target's query string ("" when absent):
/// http_query_param("/debug/events?job=3", "job") == "3". No %-decoding —
/// the side door's parameters are numbers and bare words.
std::string http_query_param(const std::string& target,
                             const std::string& key);

/// One-shot HTTP/1.0 GET against an HttpEndpoint (or anything equally
/// plain); returns the response body on a 200, empty on any failure. The
/// client-side twin of the endpoint above — the benches scrape /metrics
/// snapshots with it instead of each carrying a private copy.
std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path,
                     double timeout_seconds = 5.0);

}  // namespace cosched
