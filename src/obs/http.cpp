#include "obs/http.hpp"

#include <cctype>
#include <utility>

#include "util/common.hpp"

namespace cosched {

namespace {

constexpr std::size_t kMaxRequestBytes = 8 * 1024;
constexpr std::size_t kMaxRequestLineBytes = 4 * 1024;

std::string status_line(int code) {
  switch (code) {
    case 200: return "HTTP/1.0 200 OK\r\n";
    case 400: return "HTTP/1.0 400 Bad Request\r\n";
    case 404: return "HTTP/1.0 404 Not Found\r\n";
    case 405: return "HTTP/1.0 405 Method Not Allowed\r\n";
    case 503: return "HTTP/1.0 503 Service Unavailable\r\n";
    default: return "HTTP/1.0 500 Internal Server Error\r\n";
  }
}

/// `head_only` sends the full header block (including the Content-Length
/// the body would have) but no body bytes — the HEAD contract.
void send_response(Socket& socket, int code, const std::string& body,
                   const std::string& content_type, const Deadline& deadline,
                   bool head_only = false) {
  std::string response = status_line(code);
  response += "Content-Type: " + content_type + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (code == 405) response += "Allow: GET, HEAD\r\n";
  response += "Connection: close\r\n\r\n";
  if (!head_only) response += body;
  socket.send_all(response.data(), response.size(), deadline);
  socket.shutdown_send();
}

/// True iff the header block names a non-empty request body
/// (Content-Length > 0 or any Transfer-Encoding). Case-insensitive.
bool headers_announce_body(const std::string& headers) {
  std::string lower;
  lower.reserve(headers.size());
  for (char c : headers)
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  if (lower.find("transfer-encoding:") != std::string::npos) return true;
  std::size_t at = lower.find("content-length:");
  if (at == std::string::npos) return false;
  std::size_t p = at + 15;
  while (p < lower.size() && (lower[p] == ' ' || lower[p] == '\t')) ++p;
  return p < lower.size() && lower[p] >= '1' && lower[p] <= '9';
}

}  // namespace

HttpEndpoint::HttpEndpoint(HttpOptions options)
    : options_(std::move(options)) {}

HttpEndpoint::~HttpEndpoint() { stop(); }

void HttpEndpoint::handle(std::string path, HttpHandler handler) {
  COSCHED_EXPECTS(handler != nullptr);
  handle_status(std::move(path),
                [handler = std::move(handler)](const std::string& p,
                                               std::string& body,
                                               std::string& content_type) {
                  return handler(p, body, content_type) ? 200 : 0;
                });
}

void HttpEndpoint::handle_status(std::string path, HttpStatusHandler handler) {
  COSCHED_EXPECTS(!thread_.joinable());  // routes are fixed once started
  COSCHED_EXPECTS(handler != nullptr);
  routes_.emplace_back(std::move(path), std::move(handler));
}

std::vector<std::string> HttpEndpoint::route_paths() const {
  std::vector<std::string> paths;
  paths.reserve(routes_.size());
  for (const auto& [route, handler] : routes_) paths.push_back(route);
  return paths;
}

bool HttpEndpoint::start(std::string& error) {
  // Synthesize the index route unless the caller claimed "/" itself. The
  // body is captured now — routes are fixed once started, so a snapshot is
  // exact — one path per line, registration order.
  bool has_root = false;
  for (const auto& [route, handler] : routes_)
    if (route == "/") has_root = true;
  if (!has_root) {
    std::string index = "cosched http endpoint\nroutes:\n";
    for (const auto& [route, handler] : routes_) index += "  " + route + "\n";
    index += "  /\n";  // the index lists itself: every route curls
    routes_.emplace_back(
        "/", [index](const std::string&, std::string& body,
                     std::string& content_type) {
          body = index;
          content_type = "text/plain; charset=utf-8";
          return 200;
        });
  }

  NetStatus status = NetStatus::Ok;
  listener_ = Socket::listen_on(options_.host, options_.port,
                                options_.backlog, status);
  if (status != NetStatus::Ok) {
    error = std::string("cannot listen on ") + options_.host + ": " +
            to_string(status);
    return false;
  }
  port_ = listener_.local_port();
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread(&HttpEndpoint::serve_main, this);
  return true;
}

void HttpEndpoint::stop() {
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  listener_.close();
}

void HttpEndpoint::serve_main() {
  while (!stopping_.load(std::memory_order_acquire)) {
    NetStatus status = NetStatus::Ok;
    Socket conn = listener_.accept_connection(
        Deadline::after(options_.idle_poll_seconds), status);
    if (status == NetStatus::Timeout) continue;
    if (status != NetStatus::Ok) {
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;
    }
    serve_connection(std::move(conn));
  }
}

void HttpEndpoint::serve_connection(Socket socket) {
  Deadline deadline = Deadline::after(options_.request_timeout_seconds);
  // Read until the end of the request head (or the cap, or the budget).
  std::string request;
  char chunk[1024];
  std::size_t head_end = std::string::npos;
  while ((head_end = request.find("\r\n\r\n")) == std::string::npos) {
    if (request.size() >= kMaxRequestBytes ||
        (request.find("\r\n") == std::string::npos &&
         request.size() >= kMaxRequestLineBytes)) {
      // Oversized head or runaway request line: answer before hanging up,
      // so well-meaning-but-wrong clients see *why* instead of a reset.
      send_response(socket, 400, "request too large\n", "text/plain",
                    deadline);
      // Drain whatever the peer is still sending — closing with unread
      // bytes queued triggers a RST that can destroy the 400 in flight.
      std::size_t drained = 0;
      while (socket.recv_some(chunk, sizeof(chunk), drained, deadline) ==
             NetStatus::Ok) {
      }
      return;
    }
    std::size_t got = 0;
    NetStatus status =
        socket.recv_some(chunk, sizeof(chunk), got, deadline);
    if (status != NetStatus::Ok) {
      // A newline-terminated request line is enough for HTTP/1.0 clients
      // that close their send side right after the request.
      if (status == NetStatus::Closed &&
          request.find("\r\n") != std::string::npos)
        break;
      return;
    }
    request.append(chunk, got);
  }

  std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) line_end = request.size();
  const std::string line = request.substr(0, line_end);

  // "<METHOD> <path> HTTP/1.x". A recognizable-but-unsupported method gets
  // 405 + Allow (the observability door is read-only); anything that does
  // not even parse as a method token gets 400.
  std::size_t method_end = line.find(' ');
  if (method_end == std::string::npos || method_end == 0) {
    send_response(socket, 400, "malformed request line\n", "text/plain",
                  deadline);
    return;
  }
  const std::string method = line.substr(0, method_end);
  bool method_token = true;
  for (char c : method)
    if (!std::isupper(static_cast<unsigned char>(c))) method_token = false;
  if (!method_token) {
    send_response(socket, 400, "malformed request line\n", "text/plain",
                  deadline);
    return;
  }
  const bool head = method == "HEAD";
  if (!head && method != "GET") {
    send_response(socket, 405, "method not allowed: " + method + "\n",
                  "text/plain", deadline);
    return;
  }

  // This endpoint serves only bodyless reads: a request that announces a
  // body (Content-Length/Transfer-Encoding) or ships bytes past the head
  // terminator is rejected rather than half-parsed.
  const std::string headers =
      head_end == std::string::npos
          ? (line_end + 2 <= request.size() ? request.substr(line_end + 2)
                                            : std::string())
          : request.substr(line_end + 2, head_end - line_end - 2);
  const bool trailing_bytes =
      head_end != std::string::npos && request.size() > head_end + 4;
  if (trailing_bytes || headers_announce_body(headers)) {
    send_response(socket, 400, "request bodies are not supported\n",
                  "text/plain", deadline);
    return;
  }

  std::size_t path_end = line.find(' ', method_end + 1);
  if (path_end == std::string::npos) {
    send_response(socket, 400, "malformed request line\n", "text/plain",
                  deadline);
    return;
  }
  std::string path =
      line.substr(method_end + 1, path_end - method_end - 1);

  // Routes match on the path alone; the handler receives the full
  // request-target so it can parse its own query string
  // (http_query_param).
  const std::size_t query_at = path.find('?');
  const std::string bare_path =
      query_at == std::string::npos ? path : path.substr(0, query_at);
  for (const auto& [route, handler] : routes_) {
    if (route != bare_path) continue;
    std::string body;
    std::string content_type = "text/plain; charset=utf-8";
    int code = handler(path, body, content_type);
    if (code <= 0) break;  // handler declined — fall through to 404
    send_response(socket, code, body, content_type, deadline, head);
    return;
  }
  send_response(socket, 404, "no such path: " + path + "\n", "text/plain",
                deadline, head);
}

std::string http_query_param(const std::string& target,
                             const std::string& key) {
  std::size_t at = target.find('?');
  if (at == std::string::npos) return {};
  std::string query = target.substr(at + 1);
  std::size_t pos = 0;
  while (pos <= query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0)
      return query.substr(eq + 1, amp - eq - 1);
    pos = amp + 1;
  }
  return {};
}

std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, double timeout_seconds) {
  NetStatus status = NetStatus::Ok;
  Deadline deadline = Deadline::after(timeout_seconds);
  Socket socket = Socket::connect_to(host, port, deadline, status);
  if (status != NetStatus::Ok) return {};
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (socket.send_all(request.data(), request.size(), deadline) !=
      NetStatus::Ok)
    return {};
  socket.shutdown_send();
  std::string response;
  char chunk[4096];
  while (true) {
    std::size_t got = 0;
    NetStatus recv_status =
        socket.recv_some(chunk, sizeof(chunk), got, deadline);
    if (recv_status == NetStatus::Closed) break;
    if (recv_status != NetStatus::Ok) return {};
    response.append(chunk, got);
  }
  std::size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) return {};
  if (response.rfind("HTTP/1.0 200", 0) != 0 &&
      response.rfind("HTTP/1.1 200", 0) != 0)
    return {};
  return response.substr(body_at + 4);
}

}  // namespace cosched
