#include "obs/http.hpp"

#include <utility>

#include "util/common.hpp"

namespace cosched {

namespace {

constexpr std::size_t kMaxRequestBytes = 8 * 1024;

std::string status_line(int code) {
  switch (code) {
    case 200: return "HTTP/1.0 200 OK\r\n";
    case 400: return "HTTP/1.0 400 Bad Request\r\n";
    case 404: return "HTTP/1.0 404 Not Found\r\n";
    default: return "HTTP/1.0 500 Internal Server Error\r\n";
  }
}

void send_response(Socket& socket, int code, const std::string& body,
                   const std::string& content_type,
                   const Deadline& deadline) {
  std::string response = status_line(code);
  response += "Content-Type: " + content_type + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  socket.send_all(response.data(), response.size(), deadline);
  socket.shutdown_send();
}

}  // namespace

HttpEndpoint::HttpEndpoint(HttpOptions options)
    : options_(std::move(options)) {}

HttpEndpoint::~HttpEndpoint() { stop(); }

void HttpEndpoint::handle(std::string path, HttpHandler handler) {
  COSCHED_EXPECTS(!thread_.joinable());  // routes are fixed once started
  COSCHED_EXPECTS(handler != nullptr);
  routes_.emplace_back(std::move(path), std::move(handler));
}

bool HttpEndpoint::start(std::string& error) {
  NetStatus status = NetStatus::Ok;
  listener_ = Socket::listen_on(options_.host, options_.port,
                                options_.backlog, status);
  if (status != NetStatus::Ok) {
    error = std::string("cannot listen on ") + options_.host + ": " +
            to_string(status);
    return false;
  }
  port_ = listener_.local_port();
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread(&HttpEndpoint::serve_main, this);
  return true;
}

void HttpEndpoint::stop() {
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  listener_.close();
}

void HttpEndpoint::serve_main() {
  while (!stopping_.load(std::memory_order_acquire)) {
    NetStatus status = NetStatus::Ok;
    Socket conn = listener_.accept_connection(
        Deadline::after(options_.idle_poll_seconds), status);
    if (status == NetStatus::Timeout) continue;
    if (status != NetStatus::Ok) {
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;
    }
    serve_connection(std::move(conn));
  }
}

void HttpEndpoint::serve_connection(Socket socket) {
  Deadline deadline = Deadline::after(options_.request_timeout_seconds);
  // Read until the end of the request head (or the cap, or the budget).
  std::string request;
  char chunk[1024];
  while (request.find("\r\n\r\n") == std::string::npos) {
    if (request.size() >= kMaxRequestBytes) return;  // oversized: drop
    std::size_t got = 0;
    NetStatus status =
        socket.recv_some(chunk, sizeof(chunk), got, deadline);
    if (status != NetStatus::Ok) {
      // A newline-terminated request line is enough for HTTP/1.0 clients
      // that close their send side right after the request.
      if (status == NetStatus::Closed &&
          request.find("\r\n") != std::string::npos)
        break;
      return;
    }
    request.append(chunk, got);
  }

  std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) line_end = request.size();
  const std::string line = request.substr(0, line_end);
  // "GET <path> HTTP/1.x"
  if (line.rfind("GET ", 0) != 0) {
    send_response(socket, 400, "only GET is supported\n", "text/plain",
                  deadline);
    return;
  }
  std::size_t path_end = line.find(' ', 4);
  if (path_end == std::string::npos) {
    send_response(socket, 400, "malformed request line\n", "text/plain",
                  deadline);
    return;
  }
  std::string path = line.substr(4, path_end - 4);

  for (const auto& [route, handler] : routes_) {
    if (route != path) continue;
    std::string body;
    std::string content_type = "text/plain; charset=utf-8";
    if (!handler(path, body, content_type)) break;
    send_response(socket, 200, body, content_type, deadline);
    return;
  }
  send_response(socket, 404, "no such path: " + path + "\n", "text/plain",
                deadline);
}

}  // namespace cosched
