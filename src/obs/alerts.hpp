// Declarative alerting over the embedded time-series store — the layer
// that turns five PRs of telemetry collection into a watchdog.
//
// An AlertEngine owns a MetricsTsdb, periodically scrapes the live
// MetricsRegistry into it, and evaluates a rule set on every tick. Two
// rule kinds:
//
//   * Threshold — an aggregation of one series over a window compared
//     against a bound: `rate(cosched_router_spillovers_total) > 5 over
//     60s`, `avg(cosched_rpc_queue_depth) > 32`, `p95(latency) > 0.9`.
//   * BurnRate — the SRE multi-window error-budget rule. "Bad" is a
//     latency histogram sample above budget_ms; the burn rate is
//     bad_fraction / (1 - objective), i.e. how many times faster than
//     sustainable the SLO's error budget is being spent. The rule fires
//     only when BOTH a fast window (reacts quickly, noisy alone) and a
//     slow window (confirms it is not a blip) exceed burn_factor.
//
// Each rule runs an inactive → pending → firing → resolved state machine:
// a breach holds for for_seconds before firing (hysteresis against
// flapping), a firing rule must stay clear for clear_seconds before
// resolving, and a resolved rule rests resolved_hold_seconds before
// returning to inactive. Every transition is logged (COSCHED_LOG),
// journalled (JournalEventKind::Alert, job_id = -1, the rule name as the
// policy) under a per-tick trace id — so the log line, the journal event
// and a TraceDump all correlate — and counted into
// cosched_alert_transitions_total{rule,state}; the instantaneous firing
// count is cosched_alerts_firing.
//
// Determinism: tick(now) takes an explicit clock and an injectable
// exposition, so tests drive the full lifecycle without sleeping. The
// background thread (start/stop) just calls tick on the wall clock.
//
// COSCHED_ALERTS_DISABLED compiles the watchdog out of a translation
// unit: kAlertsDisabled flips, AlertEngine::start() refuses to spawn the
// scrape thread and tick() no-ops, so a build with the define pays only
// an untaken branch (gated ≤2 % in CI, like the trace/profile/log
// switches).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/tsdb.hpp"

namespace cosched {

class DecisionJournal;
class MetricsRegistry;

#ifdef COSCHED_ALERTS_DISABLED
inline constexpr bool kAlertsDisabled = true;
#else
inline constexpr bool kAlertsDisabled = false;
#endif

enum class AlertState : std::uint8_t {
  Inactive = 0,  ///< condition false, at rest
  Pending,       ///< condition true, waiting out for_seconds
  Firing,        ///< condition held long enough — page someone
  Resolved,      ///< recently cleared, resting before inactive
};
inline constexpr std::size_t kAlertStates = 4;

const char* to_string(AlertState state);
bool alert_state_from(std::uint8_t raw, AlertState& out);

enum class AlertSeverity : std::uint8_t { Info = 0, Warn, Critical };

const char* to_string(AlertSeverity severity);
bool parse_alert_severity(const std::string& text, AlertSeverity& out);

/// Threshold aggregations over the query window.
enum class AlertAgg : std::uint8_t {
  Latest = 0,  ///< newest raw value (window ignored)
  Avg,
  Min,
  Max,
  Rate,  ///< counter increase per second
  P50,   ///< histogram quantiles of the windowed bucket deltas;
  P95,   ///< `metric` names the histogram base (no _bucket suffix)
  P99,
};

const char* to_string(AlertAgg agg);
bool parse_alert_agg(const std::string& text, AlertAgg& out);

struct AlertRule {
  enum class Kind : std::uint8_t { Threshold = 0, BurnRate };

  std::string name;
  Kind kind = Kind::Threshold;
  AlertSeverity severity = AlertSeverity::Warn;

  // -- threshold rules ---------------------------------------------------
  std::string metric;  ///< series key, or histogram base for P50/P95/P99
  AlertAgg agg = AlertAgg::Avg;
  double window_seconds = 60.0;
  bool above = true;  ///< op ">" fires above threshold, "<" below
  double threshold = 0.0;

  // -- burn-rate rules ---------------------------------------------------
  std::string histogram;     ///< latency histogram base name
  double budget_ms = 900.0;  ///< good = sample latency <= budget
  double objective = 0.95;   ///< SLO: fraction of samples that must be good
  double fast_window_seconds = 10.0;
  double slow_window_seconds = 60.0;
  double burn_factor = 6.0;  ///< fire when both windows burn this fast

  // -- state machine -----------------------------------------------------
  double for_seconds = 5.0;            ///< pending must hold this long
  double clear_seconds = 5.0;          ///< firing must stay clear this long
  double resolved_hold_seconds = 15.0; ///< resolved rests before inactive
};

struct AlertRuleSet {
  std::vector<AlertRule> rules;
};

/// Loads a rule file (flat JSON: {"rules":[{...},...]}) with field-level
/// validation — unknown keys, bad enums, non-positive windows and missing
/// names all come back as "rules.N.field: why" in `error`.
bool load_alert_rules(const std::string& path, AlertRuleSet& out,
                      std::string& error);
/// Same, from already-loaded text (tests).
bool parse_alert_rules(const std::string& text, AlertRuleSet& out,
                       std::string& error);

/// The watchdog rules every server gets when no --alert-rules file is
/// given: fast+slow burn-rate guards on the RPC latency histogram against
/// `p95_budget_ms` (slo.json's p95 budget, 900 ms by default), plus an
/// error-rate threshold on cosched_rpc_requests_errors if present.
AlertRuleSet default_alert_rules(double p95_budget_ms);

/// Point-in-time view of one rule — what /alerts and GetAlerts serve.
struct AlertView {
  std::int32_t shard_id = -1;  ///< -1 = this process / the router itself
  std::string rule;
  AlertState state = AlertState::Inactive;
  AlertSeverity severity = AlertSeverity::Warn;
  double value = 0.0;      ///< last evaluated value (burn: fast-window burn)
  double threshold = 0.0;  ///< bound (burn: burn_factor)
  double since_seconds = 0.0;  ///< time spent in the current state
  std::string detail;          ///< "k=v ..." extras (burn windows, budget)
};

/// Deterministic text rendering, one `rule=... state=...` line per view.
std::string render_alerts_text(const std::vector<AlertView>& views,
                               bool enabled);
/// JSON rendering: {"enabled":...,"firing":N,"alerts":[{...}]}.
std::string render_alerts_json(const std::vector<AlertView>& views,
                               bool enabled);

struct AlertEngineOptions {
  TsdbOptions tsdb;
  AlertRuleSet rules;  ///< empty => caller decides (servers fall back to
                       ///< default_alert_rules)
  double scrape_interval_seconds = 1.0;  ///< background tick cadence
  /// What the background thread scrapes. Defaults to the process-global
  /// MetricsRegistry; a shard router points this at its fleet page so the
  /// rules see the *merged* latency histogram and the router counters.
  std::function<std::string()> exposition_source;
};

class AlertEngine {
 public:
  explicit AlertEngine(AlertEngineOptions options);
  ~AlertEngine();
  AlertEngine(const AlertEngine&) = delete;
  AlertEngine& operator=(const AlertEngine&) = delete;

  /// Alert transitions append JournalEventKind::Alert events here (the
  /// scheduler's own journal, so `--timeline`/debug/events interleave
  /// alerts with the decisions that caused them). Optional; set before
  /// start().
  void set_journal(DecisionJournal* journal);

  /// One deterministic evaluation step: ingest `exposition` at `now`,
  /// then run every rule's state machine. No-op (returns false) in a
  /// COSCHED_ALERTS_DISABLED translation unit.
  bool tick(const std::string& exposition, double now) {
    if (kAlertsDisabled) return false;
    return tick_impl(exposition, now);
  }
  /// tick() on a fresh render of `registry`.
  bool tick_registry(const MetricsRegistry& registry, double now);

  /// Spawns the background scrape-and-evaluate thread over the global
  /// registry at options().scrape_interval_seconds. Returns false (and
  /// stays stopped) in a COSCHED_ALERTS_DISABLED translation unit.
  bool start() {
    if (kAlertsDisabled) return false;
    return start_impl();
  }
  void stop();
  bool running() const { return thread_.joinable(); }

  /// Current state of every rule, evaluation order. since_seconds is
  /// relative to the newest tick.
  std::vector<AlertView> views() const;
  std::size_t firing_count() const;
  std::vector<std::string> firing_rules() const;
  /// Transitions into Firing over the engine's lifetime — benchmark_app's
  /// --fail-on-alert checks this after the measure phase.
  std::uint64_t fired_total() const;
  /// (rule, state) -> transition count, for the metrics family.
  std::map<std::string, std::uint64_t> transition_counts() const;

  const MetricsTsdb& tsdb() const { return tsdb_; }
  const AlertEngineOptions& options() const { return options_; }

 private:
  struct RuleState {
    AlertRule rule;
    AlertState state = AlertState::Inactive;
    double state_since = 0.0;   ///< when the current state began
    double clear_since = 0.0;   ///< firing: when the condition last cleared
    bool clear_pending = false;
    double value = 0.0;
    bool has_value = false;
    std::string detail;
  };

  bool tick_impl(const std::string& exposition, double now);
  bool start_impl();
  void evaluate_locked(RuleState& rs, double now, std::uint64_t trace_id);
  bool condition_locked(const RuleState& rs, double now, double& value,
                        std::string& detail) const;
  void transition_locked(RuleState& rs, AlertState next, double now,
                         std::uint64_t trace_id);
  void thread_main();

  AlertEngineOptions options_;
  MetricsTsdb tsdb_;
  DecisionJournal* journal_ = nullptr;

  mutable std::mutex mutex_;
  std::vector<RuleState> states_;
  std::map<std::string, std::uint64_t> transitions_;  ///< "rule\x1fstate"
  std::uint64_t fired_total_ = 0;
  double last_tick_ = 0.0;
  std::uint64_t tick_count_ = 0;

  std::thread thread_;
  mutable std::mutex stop_mutex_;
  bool stop_requested_ = false;
};

/// Prometheus exposition lines of one engine's families
/// (cosched_alerts_firing, cosched_alert_transitions_total{rule,state})
/// plus its store's cosched_tsdb_* accounting — appended to /metrics next
/// to the log/journal families (labels cannot ride the registry path).
std::string render_alert_metrics(const AlertEngine& engine);

}  // namespace cosched
