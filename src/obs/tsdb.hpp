// Bounded in-memory time-series store fed by Prometheus expositions.
//
// The metrics registry answers "what is the value now"; alerting needs
// "what happened over the last window". MetricsTsdb closes that gap: it
// periodically ingests a text exposition (normally the live
// MetricsRegistry's render), classifies each sample as counter-like or
// gauge-like by name, and appends it to a fixed-capacity per-series ring.
// Raw points are simultaneously folded into 10-second and 1-minute
// rollups (min/max/sum/count/first/last per bucket) so windows longer
// than the raw ring's span still answer from data, just coarser.
// Eviction is strictly oldest-first and exactly accounted per resolution
// (points_evicted_total), mirroring the trace/log/journal rings.
//
// Query surface (what the alert rule engine consumes):
//   * latest(series)                     — newest raw value
//   * window_stat(series, Avg|Min|Max)   — gauge aggregation over a window
//   * counter_delta / counter_rate       — monotone increase over a window,
//     counter-reset tolerant (a decrease restarts the baseline at zero)
//   * histogram_quantile(base, q)        — interpolated quantile of the
//     *windowed* bucket deltas of base_bucket{le="..."} series
//   * histogram_bad_fraction(base, T)    — fraction of windowed samples
//     above threshold T, the burn-rate numerator
//
// Series identity is the full exposition key: `name` or `name{labels}`.
// Histogram bucket series therefore arrive pre-labelled (le="...") and the
// histogram queries group them back by base name.
//
// Thread-safety: one mutex guards the store; ingest runs on the alert
// engine's scrape thread, queries on HTTP/RPC threads. All queries take an
// explicit `now` so tests drive a synthetic clock deterministically.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cosched {

class MetricsRegistry;

struct TsdbOptions {
  /// Raw ring capacity, points per series. At the default 1 Hz scrape this
  /// retains 10 minutes of raw history.
  std::size_t raw_capacity = 600;
  /// Rollup ring capacities (10 s and 1 m buckets): 360 buckets retain one
  /// hour at 10 s and six hours at 1 m.
  std::size_t rollup_capacity = 360;
  /// New series past this cap are rejected and counted, never stored — the
  /// store's footprint is bounded no matter what the exposition grows.
  std::size_t max_series = 1024;
};

/// Aggregate of one rollup bucket (or one raw point, degenerate).
struct TsdbBucket {
  double start = 0.0;  ///< bucket start time, seconds
  double end = 0.0;    ///< time of the newest folded point
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double first = 0.0;  ///< oldest folded value (counter baseline)
  double last = 0.0;   ///< newest folded value
  std::uint64_t count = 0;
};

struct TsdbStats {
  std::size_t series = 0;
  std::uint64_t scrapes = 0;
  std::uint64_t points_ingested = 0;
  std::uint64_t series_rejected = 0;  ///< samples dropped at the series cap
  std::uint64_t resident_raw = 0;
  std::uint64_t resident_rollup_10s = 0;
  std::uint64_t resident_rollup_1m = 0;
  std::uint64_t evicted_raw = 0;
  std::uint64_t evicted_rollup_10s = 0;
  std::uint64_t evicted_rollup_1m = 0;
};

class MetricsTsdb {
 public:
  enum class Stat { Avg, Min, Max };

  explicit MetricsTsdb(TsdbOptions options = {});

  /// Ingests every sample line of a Prometheus text exposition, stamped at
  /// `now`. Returns false when the exposition does not parse (nothing is
  /// ingested); individual samples never fail.
  bool scrape_text(const std::string& exposition, double now);
  /// Renders `registry` (without exemplars) and ingests it.
  bool scrape(const MetricsRegistry& registry, double now);

  /// Newest raw value of a series. False when the series is unknown/empty.
  bool latest(const std::string& series, double& out) const;

  /// Gauge aggregation over [now - window, now], answered from the finest
  /// resolution whose retention still covers the window. False when no
  /// point falls inside the window.
  bool window_stat(const std::string& series, double window_seconds,
                   double now, Stat stat, double& out) const;

  /// Monotone increase of a counter over [now - window, now]. The baseline
  /// is the newest point at-or-before the window start (so a window that
  /// spans the whole retention degrades gracefully to "since oldest").
  /// A decrease (process restart) restarts the baseline at zero. False
  /// when fewer than two points cover the window.
  bool counter_delta(const std::string& series, double window_seconds,
                     double now, double& delta, double& span_seconds) const;
  /// counter_delta per elapsed second. False under the same conditions.
  bool counter_rate(const std::string& series, double window_seconds,
                    double now, double& rate) const;

  /// Interpolated q-quantile of the windowed deltas of `base`'s cumulative
  /// bucket series (base_bucket{le="..."}). Overflow mass is credited at
  /// the largest finite edge. False when the histogram saw no samples in
  /// the window.
  bool histogram_quantile(const std::string& base, double q,
                          double window_seconds, double now,
                          double& out) const;
  /// Fraction of windowed samples strictly above `threshold` (native
  /// units), interpolating inside the straddling bucket; also reports the
  /// windowed sample total. False when the histogram saw no samples in the
  /// window — "no traffic" is not "all good", the caller decides.
  bool histogram_bad_fraction(const std::string& base, double threshold,
                              double window_seconds, double now, double& out,
                              double& total) const;

  TsdbStats stats() const;
  const TsdbOptions& options() const { return options_; }
  /// Sorted series keys (tests and the /alerts debug view).
  std::vector<std::string> series_keys() const;

 private:
  struct Rollup {
    double width = 10.0;
    std::deque<TsdbBucket> ring;
    TsdbBucket open;
    bool open_valid = false;
  };
  struct Series {
    bool counter = false;  ///< name-suffix classification at first sight
    std::deque<TsdbBucket> raw;  ///< degenerate buckets, one per point
    Rollup r10;
    Rollup r60;
  };

  void ingest_locked(const std::string& key, bool counter, double value,
                     double now);
  static void fold(TsdbBucket& bucket, double value, double now);
  void roll_locked(Series& series, Rollup& rollup, double value, double now,
                   std::uint64_t& evicted);
  /// Window [now - window, now] as buckets from the finest resolution that
  /// still covers it (open rollup buckets included). Empty when the series
  /// is unknown.
  std::vector<TsdbBucket> collect_locked(const Series& series,
                                         double window_seconds,
                                         double now) const;
  const Series* find_locked(const std::string& key) const;
  /// (le, windowed delta) pairs of `base`'s cumulative bucket series,
  /// ascending le. False when no bucket series exists.
  bool bucket_deltas_locked(const std::string& base, double window_seconds,
                            double now,
                            std::vector<std::pair<double, double>>& out) const;

  TsdbOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, Series> series_;  ///< ordered => deterministic dumps
  TsdbStats stats_;
};

/// True iff a sample name is counter-like by the exposition's naming
/// convention (`_total`, histogram `_count`/`_sum`/`_bucket` suffixes).
bool tsdb_counter_name(const std::string& name);

/// Prometheus exposition lines of one store's accounting
/// (cosched_tsdb_points_evicted_total{resolution="..."} et al.), appended
/// to /metrics next to the log/journal families.
std::string render_tsdb_metrics(const MetricsTsdb& tsdb);

}  // namespace cosched
