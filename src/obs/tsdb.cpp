#include "obs/tsdb.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "obs/metrics_registry.hpp"

namespace cosched {
namespace {

bool ends_with(const std::string& text, const char* suffix) {
  std::size_t n = std::char_traits<char>::length(suffix);
  return text.size() >= n && text.compare(text.size() - n, n, suffix) == 0;
}

/// Extracts the numeric `le` label of a bucket series key, e.g.
/// `foo_bucket{le="0.25"}` -> 0.25 and `le="+Inf"` -> +infinity.
bool parse_le(const std::string& key, double& out) {
  std::size_t pos = key.find("le=\"");
  if (pos == std::string::npos) return false;
  pos += 4;
  std::size_t end = key.find('"', pos);
  if (end == std::string::npos) return false;
  std::string text = key.substr(pos, end - pos);
  if (text == "+Inf" || text == "inf" || text == "Inf") {
    out = std::numeric_limits<double>::infinity();
    return true;
  }
  char* parse_end = nullptr;
  out = std::strtod(text.c_str(), &parse_end);
  return parse_end != text.c_str();
}

}  // namespace

bool tsdb_counter_name(const std::string& name) {
  return ends_with(name, "_total") || ends_with(name, "_count") ||
         ends_with(name, "_sum") || ends_with(name, "_bucket");
}

MetricsTsdb::MetricsTsdb(TsdbOptions options) : options_(options) {
  if (options_.raw_capacity == 0) options_.raw_capacity = 1;
  if (options_.rollup_capacity == 0) options_.rollup_capacity = 1;
  if (options_.max_series == 0) options_.max_series = 1;
}

bool MetricsTsdb::scrape_text(const std::string& exposition, double now) {
  std::vector<PrometheusSample> samples;
  if (!parse_prometheus_text(exposition, samples)) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.scrapes;
  for (const PrometheusSample& sample : samples) {
    std::string key = sample.name;
    if (!sample.labels.empty()) key += "{" + sample.labels + "}";
    ingest_locked(key, tsdb_counter_name(sample.name), sample.value, now);
  }
  return true;
}

bool MetricsTsdb::scrape(const MetricsRegistry& registry, double now) {
  return scrape_text(registry.render_prometheus(/*with_exemplars=*/false), now);
}

void MetricsTsdb::ingest_locked(const std::string& key, bool counter,
                                double value, double now) {
  if (!std::isfinite(value)) return;
  auto it = series_.find(key);
  if (it == series_.end()) {
    if (series_.size() >= options_.max_series) {
      ++stats_.series_rejected;
      return;
    }
    Series fresh;
    fresh.counter = counter;
    fresh.r10.width = 10.0;
    fresh.r60.width = 60.0;
    it = series_.emplace(key, std::move(fresh)).first;
  }
  Series& series = it->second;
  TsdbBucket point;
  point.start = point.end = now;
  point.min = point.max = point.sum = point.first = point.last = value;
  point.count = 1;
  series.raw.push_back(point);
  ++stats_.points_ingested;
  ++stats_.resident_raw;
  while (series.raw.size() > options_.raw_capacity) {
    series.raw.pop_front();
    --stats_.resident_raw;
    ++stats_.evicted_raw;
  }
  roll_locked(series, series.r10, value, now, stats_.evicted_rollup_10s);
  roll_locked(series, series.r60, value, now, stats_.evicted_rollup_1m);
}

void MetricsTsdb::fold(TsdbBucket& bucket, double value, double now) {
  bucket.end = now;
  bucket.min = std::min(bucket.min, value);
  bucket.max = std::max(bucket.max, value);
  bucket.sum += value;
  bucket.last = value;
  ++bucket.count;
}

void MetricsTsdb::roll_locked(Series& series, Rollup& rollup, double value,
                              double now, std::uint64_t& evicted) {
  (void)series;
  double bucket_start = std::floor(now / rollup.width) * rollup.width;
  if (rollup.open_valid && rollup.open.start != bucket_start) {
    rollup.ring.push_back(rollup.open);
    if (rollup.width >= 60.0)
      ++stats_.resident_rollup_1m;
    else
      ++stats_.resident_rollup_10s;
    rollup.open_valid = false;
    std::uint64_t& resident = rollup.width >= 60.0
                                  ? stats_.resident_rollup_1m
                                  : stats_.resident_rollup_10s;
    while (rollup.ring.size() > options_.rollup_capacity) {
      rollup.ring.pop_front();
      --resident;
      ++evicted;
    }
  }
  if (!rollup.open_valid) {
    rollup.open = TsdbBucket{};
    rollup.open.start = bucket_start;
    rollup.open.end = now;
    rollup.open.min = rollup.open.max = rollup.open.sum = value;
    rollup.open.first = rollup.open.last = value;
    rollup.open.count = 1;
    rollup.open_valid = true;
    return;
  }
  fold(rollup.open, value, now);
}

const MetricsTsdb::Series* MetricsTsdb::find_locked(
    const std::string& key) const {
  auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<TsdbBucket> MetricsTsdb::collect_locked(const Series& series,
                                                    double window_seconds,
                                                    double now) const {
  double start = now - window_seconds;
  std::vector<TsdbBucket> out;
  // Prefer raw; fall back to the 10 s then 1 m rollup when raw retention no
  // longer reaches the window start. "Covers" means the oldest retained
  // point is at-or-before the window start, or nothing was ever evicted
  // (the series simply hasn't lived that long yet).
  auto covers = [&](double oldest, bool evicted_any) {
    return !evicted_any || oldest <= start;
  };
  bool raw_ok = !series.raw.empty() &&
                covers(series.raw.front().start,
                       series.raw.size() >= options_.raw_capacity);
  if (raw_ok) {
    for (const TsdbBucket& point : series.raw)
      if (point.end >= start) out.push_back(point);
    if (!out.empty()) return out;
  }
  auto from_rollup = [&](const Rollup& rollup) {
    std::vector<TsdbBucket> buckets;
    for (const TsdbBucket& bucket : rollup.ring)
      if (bucket.end >= start) buckets.push_back(bucket);
    if (rollup.open_valid && rollup.open.end >= start)
      buckets.push_back(rollup.open);
    return buckets;
  };
  std::vector<TsdbBucket> r10 = from_rollup(series.r10);
  bool r10_ok =
      !r10.empty() && covers(r10.front().start,
                             series.r10.ring.size() >= options_.rollup_capacity);
  if (r10_ok) return r10;
  std::vector<TsdbBucket> r60 = from_rollup(series.r60);
  if (!r60.empty()) return r60;
  if (!r10.empty()) return r10;
  // Window predates all retained data: answer from whatever is newest so
  // `latest` style queries still see the series.
  if (!series.raw.empty()) out.push_back(series.raw.back());
  return out;
}

bool MetricsTsdb::latest(const std::string& series, double& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Series* found = find_locked(series);
  if (found == nullptr || found->raw.empty()) return false;
  out = found->raw.back().last;
  return true;
}

bool MetricsTsdb::window_stat(const std::string& series, double window_seconds,
                              double now, Stat stat, double& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Series* found = find_locked(series);
  if (found == nullptr) return false;
  std::vector<TsdbBucket> buckets = collect_locked(*found, window_seconds, now);
  if (buckets.empty()) return false;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const TsdbBucket& bucket : buckets) {
    min = std::min(min, bucket.min);
    max = std::max(max, bucket.max);
    sum += bucket.sum;
    count += bucket.count;
  }
  if (count == 0) return false;
  switch (stat) {
    case Stat::Avg:
      out = sum / static_cast<double>(count);
      return true;
    case Stat::Min:
      out = min;
      return true;
    case Stat::Max:
      out = max;
      return true;
  }
  return false;
}

bool MetricsTsdb::counter_delta(const std::string& series,
                                double window_seconds, double now,
                                double& delta, double& span_seconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Series* found = find_locked(series);
  if (found == nullptr) return false;
  std::vector<TsdbBucket> buckets = collect_locked(*found, window_seconds, now);
  if (buckets.size() < 2) return false;
  const TsdbBucket& oldest = buckets.front();
  const TsdbBucket& newest = buckets.back();
  delta = newest.last - oldest.first;
  span_seconds = newest.end - oldest.start;
  if (delta < 0.0) delta = newest.last;  // counter reset: baseline restarts at 0
  if (span_seconds <= 0.0) return false;
  return true;
}

bool MetricsTsdb::counter_rate(const std::string& series, double window_seconds,
                               double now, double& rate) const {
  double delta = 0.0;
  double span = 0.0;
  if (!counter_delta(series, window_seconds, now, delta, span)) return false;
  rate = delta / span;
  return true;
}

bool MetricsTsdb::bucket_deltas_locked(
    const std::string& base, double window_seconds, double now,
    std::vector<std::pair<double, double>>& out) const {
  std::string prefix = base + "_bucket{";
  out.clear();
  for (auto it = series_.lower_bound(prefix);
       it != series_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    double le = 0.0;
    if (!parse_le(it->first, le)) continue;
    std::vector<TsdbBucket> buckets =
        collect_locked(it->second, window_seconds, now);
    double delta = 0.0;
    if (buckets.size() >= 2) {
      delta = buckets.back().last - buckets.front().first;
      if (delta < 0.0) delta = buckets.back().last;
    }
    out.emplace_back(le, delta);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return !out.empty();
}

bool MetricsTsdb::histogram_quantile(const std::string& base, double q,
                                     double window_seconds, double now,
                                     double& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<double, double>> buckets;
  if (!bucket_deltas_locked(base, window_seconds, now, buckets)) return false;
  double total = buckets.back().second;  // cumulative: +Inf (or widest) bucket
  if (total <= 0.0) return false;
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * total;
  double prev_edge = 0.0;
  double prev_cum = 0.0;
  double widest_finite = 0.0;
  for (const auto& [le, cum] : buckets)
    if (std::isfinite(le)) widest_finite = le;
  for (const auto& [le, cum] : buckets) {
    if (cum >= rank) {
      if (!std::isfinite(le)) {
        // Overflow mass: credit at the widest finite edge, matching
        // Histogram::quantile's overflow-at-max convention.
        out = widest_finite;
        return true;
      }
      double in_bucket = cum - prev_cum;
      if (in_bucket <= 0.0) {
        out = le;
        return true;
      }
      double fraction = (rank - prev_cum) / in_bucket;
      out = prev_edge + fraction * (le - prev_edge);
      return true;
    }
    prev_cum = cum;
    if (std::isfinite(le)) prev_edge = le;
  }
  out = widest_finite;
  return true;
}

bool MetricsTsdb::histogram_bad_fraction(const std::string& base,
                                         double threshold,
                                         double window_seconds, double now,
                                         double& out, double& total) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<double, double>> buckets;
  if (!bucket_deltas_locked(base, window_seconds, now, buckets)) return false;
  total = buckets.back().second;
  if (total <= 0.0) return false;
  double prev_edge = 0.0;
  double prev_cum = 0.0;
  double cum_at_threshold = total;  // threshold beyond every finite edge
  for (const auto& [le, cum] : buckets) {
    if (!std::isfinite(le)) continue;
    if (le >= threshold) {
      double width = le - prev_edge;
      double in_bucket = cum - prev_cum;
      double fraction =
          width <= 0.0 ? 1.0 : std::clamp((threshold - prev_edge) / width, 0.0, 1.0);
      cum_at_threshold = prev_cum + fraction * in_bucket;
      break;
    }
    prev_edge = le;
    prev_cum = cum;
  }
  out = std::clamp((total - cum_at_threshold) / total, 0.0, 1.0);
  return true;
}

TsdbStats MetricsTsdb::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TsdbStats stats = stats_;
  stats.series = series_.size();
  return stats;
}

std::vector<std::string> MetricsTsdb::series_keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(series_.size());
  for (const auto& [key, series] : series_) keys.push_back(key);
  return keys;
}

std::string render_tsdb_metrics(const MetricsTsdb& tsdb) {
  TsdbStats stats = tsdb.stats();
  std::ostringstream out;
  out << "# HELP cosched_tsdb_series Live series in the embedded store.\n"
      << "# TYPE cosched_tsdb_series gauge\n"
      << "cosched_tsdb_series " << stats.series << "\n";
  out << "# HELP cosched_tsdb_scrapes_total Expositions ingested.\n"
      << "# TYPE cosched_tsdb_scrapes_total counter\n"
      << "cosched_tsdb_scrapes_total " << stats.scrapes << "\n";
  out << "# HELP cosched_tsdb_points_total Samples ingested across series.\n"
      << "# TYPE cosched_tsdb_points_total counter\n"
      << "cosched_tsdb_points_total " << stats.points_ingested << "\n";
  out << "# HELP cosched_tsdb_series_rejected_total Samples dropped at the "
         "series cap.\n"
      << "# TYPE cosched_tsdb_series_rejected_total counter\n"
      << "cosched_tsdb_series_rejected_total " << stats.series_rejected << "\n";
  out << "# HELP cosched_tsdb_points_resident Points currently retained per "
         "resolution.\n"
      << "# TYPE cosched_tsdb_points_resident gauge\n"
      << "cosched_tsdb_points_resident{resolution=\"raw\"} "
      << stats.resident_raw << "\n"
      << "cosched_tsdb_points_resident{resolution=\"10s\"} "
      << stats.resident_rollup_10s << "\n"
      << "cosched_tsdb_points_resident{resolution=\"1m\"} "
      << stats.resident_rollup_1m << "\n";
  out << "# HELP cosched_tsdb_points_evicted_total Points evicted "
         "oldest-first per resolution.\n"
      << "# TYPE cosched_tsdb_points_evicted_total counter\n"
      << "cosched_tsdb_points_evicted_total{resolution=\"raw\"} "
      << stats.evicted_raw << "\n"
      << "cosched_tsdb_points_evicted_total{resolution=\"10s\"} "
      << stats.evicted_rollup_10s << "\n"
      << "cosched_tsdb_points_evicted_total{resolution=\"1m\"} "
      << stats.evicted_rollup_1m << "\n";
  return out.str();
}

}  // namespace cosched
