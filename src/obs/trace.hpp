// Structured tracing for the co-scheduling stack.
//
// A Tracer collects spans (begin/end pairs), instants and counter samples
// into per-thread buffers; nothing is shared on the hot path beyond one
// relaxed atomic load when tracing is runtime-disabled. Each event carries
// a wall-clock stamp (microseconds since the tracer epoch, steady clock)
// and, when the caller is inside the virtual-time simulation, a virtual
// timestamp too — so a replan trace lines up both against real solver cost
// and against the simulated fleet.
//
// Long-lived-server safety: each thread buffer is a fixed-capacity ring
// (set_max_events_per_thread); once full, the oldest event is overwritten
// and a per-buffer dropped counter is bumped (surfaced via
// dropped_events(), exported to /metrics by CoschedServer). On top of the
// ring, head-based trace sampling keeps 1-in-N *traces*: make_context()
// decides sampled-or-not once per trace_id with a seeded deterministic
// hash, and every span/instant/counter recorded while that context is
// current inherits the decision. Always-keep name prefixes
// (set_always_keep) override sampling for critical categories such as
// replan commits. The raw begin_span/end_span API bypasses sampling; only
// the TraceSpan/macro layer and instant()/counter() consult it.
//
// Request correlation: a TraceContext{trace_id, parent_span_id, sampled}
// is installed per thread (TraceContextScope); record() stamps the current
// trace_id and a process-global sequence number onto every event. The
// Chrome exporter emits flow events ("s"/"t"/"f") linking all spans of one
// trace across threads, and collect_since() serves the streaming-telemetry
// RPC with cursor-based, drop-oldest batches.
//
// Two exporters:
//  * export_chrome_json() — Chrome trace-event JSON ("X" complete spans,
//    "i" instants, "C" counters, flow events), loadable in chrome://tracing
//    / Perfetto, sorted by (timestamp, tid, seq);
//  * dump_text() — a wall-time-free indented dump, deterministic for a
//    deterministic event sequence (threads in registration order, events in
//    record order), which is what the tests byte-compare.
//
// Compile-time kill switch: defining COSCHED_TRACE_DISABLED in a TU turns
// every COSCHED_TRACE_* macro in that TU into a no-op with zero residue
// (no Tracer call, no guard object). Runtime switch: Tracer::set_enabled —
// spans started while disabled record nothing, even if tracing is enabled
// before they close.
//
// Span names must be string literals (or otherwise outlive the tracer):
// events store the pointer, not a copy, to keep recording allocation-free
// for the common no-args case.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace cosched {

/// Per-request trace identity. trace_id == 0 means "no trace" (events are
/// recorded unconditionally, stamped with trace_id 0). parent_span_id is a
/// server-assigned id for the request's root span, carried so exporters and
/// remote peers can attach children without inspecting buffers.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  bool sampled = true;  ///< head-based decision, latched at make_context()
};

class Tracer {
 public:
  enum class Phase : std::uint8_t { Begin, End, Instant, Counter };

  struct Event {
    const char* name = "";   ///< static string; not owned
    Phase phase = Phase::Instant;
    double wall_us = 0.0;    ///< microseconds since the tracer epoch
    Real virtual_time = -1.0;  ///< virtual seconds; < 0 = not stamped
    double value = 0.0;      ///< Counter payload
    std::int32_t depth = 0;  ///< span nesting depth at record time
    std::uint64_t trace_id = 0;  ///< correlating request trace, 0 = none
    std::uint64_t seq = 0;   ///< process-global record order (cursor key)
    std::string args;        ///< optional "k=v ..." detail, may be empty
  };

  /// One telemetry-ready event copy (name materialised into a string so the
  /// sample outlives the tracer / crosses the wire).
  struct TelemetryEvent {
    std::string name;
    Phase phase = Phase::Instant;
    double wall_us = 0.0;
    Real virtual_time = -1.0;
    double value = 0.0;
    std::int32_t tid = 0;
    std::int32_t depth = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t seq = 0;
    std::string args;
  };

  struct TelemetryBatch {
    std::vector<TelemetryEvent> events;  ///< ascending seq
    std::uint64_t next_cursor = 0;  ///< pass back as min_seq next time
    std::uint64_t dropped = 0;  ///< matching events shed by max_events
  };

  Tracer();

  /// Process-wide tracer used by the COSCHED_TRACE_* macros.
  static Tracer& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops every buffered event, zeroes the dropped/sampled-out counters and
  /// re-stamps the epoch. Thread buffers stay registered (their tids are
  /// stable for the tracer's lifetime); the global sequence counter keeps
  /// climbing so telemetry cursors stay monotonic across resets.
  void reset();

  // ---- bounding ---------------------------------------------------------
  /// Ring capacity per thread buffer. Takes effect for new events; shrinking
  /// below a buffer's current size keeps existing events until reset().
  void set_max_events_per_thread(std::size_t n) {
    max_events_per_thread_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  std::size_t max_events_per_thread() const {
    return max_events_per_thread_.load(std::memory_order_relaxed);
  }
  /// Events overwritten by the ring, summed across threads (monotonic until
  /// reset()).
  std::uint64_t dropped_events() const;

  // ---- head-based trace sampling ---------------------------------------
  /// Keep 1-in-`n` traces (n <= 1 keeps everything). Runtime-adjustable;
  /// applies to contexts created by subsequent make_context() calls.
  void set_sample_every(std::uint64_t n) {
    sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  std::uint64_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }
  /// Seed for the deterministic trace_id -> keep/drop hash.
  void set_sample_seed(std::uint64_t seed) {
    sample_seed_.store(seed, std::memory_order_relaxed);
  }
  /// Span-name prefixes recorded even inside sampled-out traces (e.g.
  /// "online.replan" keeps replan commit evidence under heavy sampling).
  void set_always_keep(std::vector<std::string> prefixes);
  std::vector<std::string> always_keep() const;
  /// Traces whose events were suppressed by sampling (monotonic until
  /// reset()).
  std::uint64_t sampled_out_traces() const;

  /// Builds the context for a new trace: assigns a root span id and latches
  /// the head-based sampling decision for `trace_id`. Deterministic for a
  /// fixed (seed, rate, trace_id).
  TraceContext make_context(std::uint64_t trace_id);

  // ---- per-thread current context --------------------------------------
  static const TraceContext& current_context();
  static void set_current_context(const TraceContext& context);
  static void clear_current_context();

  /// False iff the current thread's context is sampled-out and `name` does
  /// not match an always-keep prefix. The macro layer checks this so whole
  /// spans vanish for dropped traces.
  bool should_record(const char* name) const;

  // ---- recording (the macros below are the intended entry points) -------
  void begin_span(const char* name, Real virtual_time = -1.0,
                  std::string args = {});
  void end_span();
  void instant(const char* name, Real virtual_time = -1.0,
               std::string args = {});
  void counter(const char* name, double value);

  std::uint64_t event_count() const;

  /// Next global sequence number: the starting cursor for a telemetry
  /// subscriber that only wants events recorded from "now" on.
  std::uint64_t current_seq() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  /// Copies events with seq >= min_seq whose name starts with `prefix`
  /// (empty prefix matches all), ascending by seq, at most `max_events`
  /// newest ones (older matches beyond the cap are counted in `dropped` —
  /// drop-oldest backpressure for slow subscribers).
  TelemetryBatch collect_since(std::uint64_t min_seq,
                               const std::string& prefix,
                               std::size_t max_events) const;

  /// Deterministic indented text dump (no wall times). Thread sections are
  /// ordered by tid — the registration order of the recording threads.
  std::string dump_text() const;

  /// Chrome trace-event JSON array, sorted by (wall ts, tid, seq). Spans of
  /// a shared trace_id additionally emit flow events so Perfetto draws the
  /// request -> solver arrows.
  std::string export_chrome_json() const;

  /// Writes export_chrome_json() to `path`, creating missing parent
  /// directories. False (with a stderr warning) on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  struct ThreadBuffer {
    std::int32_t tid = 0;
    std::int32_t depth = 0;        ///< touched only by the owning thread
    mutable std::mutex mutex;      ///< guards ring state against exporters
    std::vector<Event> events;     ///< ring storage, capped at capacity
    std::size_t next = 0;          ///< overwrite position once full
    std::uint64_t dropped = 0;     ///< events overwritten by the ring
  };

  ThreadBuffer& local_buffer();
  void record(ThreadBuffer& buffer, Event event);
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_snapshot() const;
  /// Ring contents oldest-first. Caller must hold `buffer.mutex`.
  static std::vector<Event> ordered_events(const ThreadBuffer& buffer);
  bool matches_always_keep(const char* name) const;

  std::atomic<bool> enabled_{false};
  std::uint64_t id_ = 0;  ///< unique per Tracer: thread-local cache key
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::size_t> max_events_per_thread_{65536};
  std::atomic<std::uint64_t> sample_every_{1};
  std::atomic<std::uint64_t> sample_seed_{0x5eed0c05c4ed0001ULL};
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> next_span_id_{0};
  std::atomic<std::uint64_t> sampled_out_traces_{0};
  mutable std::mutex always_keep_mutex_;
  std::vector<std::string> always_keep_;
  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

// ---- cross-process dump merging -------------------------------------------
// The router's TraceDump fan-in pulls each remote shard's own dump and
// merges it with the local one. These helpers understand exactly the two
// formats the exporters above produce — nothing more general.

/// Namespaces a dump_text() dump: prefixes every span/mark/count name and
/// every thread id with `prefix` (e.g. "shard0/"), so a merged dump keeps
/// shard provenance readable and collision-free.
std::string namespace_trace_text(const std::string& text,
                                 const std::string& prefix);

/// Namespaces an export_chrome_json() array for merging: rewrites pid 1 to
/// `pid` (Perfetto shows each process as its own track group) and prefixes
/// span/instant/counter names with `prefix`. Flow events are left untouched
/// on purpose — Perfetto binds flows by (cat, name, id), and an unchanged
/// "trace"/"flow" pair with a shared trace id is what draws the
/// router -> shard arrow across process tracks.
std::string namespace_chrome_trace(const std::string& json, int pid,
                                   const std::string& prefix);

/// Concatenates export_chrome_json() arrays (typically one local + N
/// namespaced remote ones) into one loadable array. Timestamps keep their
/// per-process epochs — cross-process skew is cosmetic; the flow events
/// carry the causality.
std::string merge_chrome_traces(const std::vector<std::string>& parts);

/// Installs `context` as the calling thread's current trace context for the
/// scope's lifetime, restoring the previous one on exit. Used by the RPC
/// server around request handling and by LiveSchedulerService when replaying
/// a command's captured context on the scheduler thread.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& context)
      : previous_(Tracer::current_context()) {
    Tracer::set_current_context(context);
  }
  ~TraceContextScope() { Tracer::set_current_context(previous_); }
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext previous_;
};

/// RAII span guard. Records nothing when the tracer was runtime-disabled at
/// construction or the current trace is sampled out (and never
/// "half-records": begin and end are paired).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Real virtual_time = -1.0,
                     std::string args = {})
      : active_(Tracer::global().enabled() &&
                Tracer::global().should_record(name)) {
    if (active_)
      Tracer::global().begin_span(name, virtual_time, std::move(args));
  }
  ~TraceSpan() {
    if (active_) Tracer::global().end_span();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
};

}  // namespace cosched

// ---- macros ---------------------------------------------------------------
// COSCHED_TRACE_SPAN(var, name[, virtual_time[, args]]) — RAII span bound to
// the enclosing scope. COSCHED_TRACE_INSTANT / COSCHED_TRACE_COUNTER record
// single events. All of them vanish entirely (no-ops, no tracer reference)
// in TUs compiled with -DCOSCHED_TRACE_DISABLED.
#ifdef COSCHED_TRACE_DISABLED

#define COSCHED_TRACE_SPAN(var, ...) \
  do {                               \
  } while (0)
#define COSCHED_TRACE_INSTANT(...) \
  do {                             \
  } while (0)
#define COSCHED_TRACE_COUNTER(name, value) \
  do {                                     \
  } while (0)

#else

#define COSCHED_TRACE_SPAN(var, ...) ::cosched::TraceSpan var(__VA_ARGS__)
#define COSCHED_TRACE_INSTANT(...)                        \
  do {                                                    \
    if (::cosched::Tracer::global().enabled())            \
      ::cosched::Tracer::global().instant(__VA_ARGS__);   \
  } while (0)
#define COSCHED_TRACE_COUNTER(name, value)                      \
  do {                                                          \
    if (::cosched::Tracer::global().enabled())                  \
      ::cosched::Tracer::global().counter((name), (value));     \
  } while (0)

#endif  // COSCHED_TRACE_DISABLED
