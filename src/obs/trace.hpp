// Structured tracing for the co-scheduling stack.
//
// A Tracer collects spans (begin/end pairs), instants and counter samples
// into per-thread buffers; nothing is shared on the hot path beyond one
// relaxed atomic load when tracing is runtime-disabled. Each event carries
// a wall-clock stamp (microseconds since the tracer epoch, steady clock)
// and, when the caller is inside the virtual-time simulation, a virtual
// timestamp too — so a replan trace lines up both against real solver cost
// and against the simulated fleet.
//
// Two exporters:
//  * export_chrome_json() — Chrome trace-event JSON ("X" complete spans,
//    "i" instants, "C" counters), loadable in chrome://tracing / Perfetto,
//    sorted by (timestamp, tid, seq);
//  * dump_text() — a wall-time-free indented dump, deterministic for a
//    deterministic event sequence (threads in registration order, events in
//    record order), which is what the tests byte-compare.
//
// Compile-time kill switch: defining COSCHED_TRACE_DISABLED in a TU turns
// every COSCHED_TRACE_* macro in that TU into a no-op with zero residue
// (no Tracer call, no guard object). Runtime switch: Tracer::set_enabled —
// spans started while disabled record nothing, even if tracing is enabled
// before they close.
//
// Span names must be string literals (or otherwise outlive the tracer):
// events store the pointer, not a copy, to keep recording allocation-free
// for the common no-args case.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace cosched {

class Tracer {
 public:
  enum class Phase : std::uint8_t { Begin, End, Instant, Counter };

  struct Event {
    const char* name = "";   ///< static string; not owned
    Phase phase = Phase::Instant;
    double wall_us = 0.0;    ///< microseconds since the tracer epoch
    Real virtual_time = -1.0;  ///< virtual seconds; < 0 = not stamped
    double value = 0.0;      ///< Counter payload
    std::int32_t depth = 0;  ///< span nesting depth at record time
    std::string args;        ///< optional "k=v ..." detail, may be empty
  };

  Tracer();

  /// Process-wide tracer used by the COSCHED_TRACE_* macros.
  static Tracer& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops every buffered event and re-stamps the epoch. Thread buffers
  /// stay registered (their tids are stable for the tracer's lifetime).
  void reset();

  // ---- recording (the macros below are the intended entry points) -------
  void begin_span(const char* name, Real virtual_time = -1.0,
                  std::string args = {});
  void end_span();
  void instant(const char* name, Real virtual_time = -1.0,
               std::string args = {});
  void counter(const char* name, double value);

  std::uint64_t event_count() const;

  /// Deterministic indented text dump (no wall times). Thread sections are
  /// ordered by tid — the registration order of the recording threads.
  std::string dump_text() const;

  /// Chrome trace-event JSON array, sorted by (wall ts, tid, seq).
  std::string export_chrome_json() const;

  /// Writes export_chrome_json() to `path`, creating missing parent
  /// directories. False (with a stderr warning) on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  struct ThreadBuffer {
    std::int32_t tid = 0;
    std::int32_t depth = 0;        ///< touched only by the owning thread
    mutable std::mutex mutex;      ///< guards `events` against exporters
    std::vector<Event> events;
  };

  ThreadBuffer& local_buffer();
  void record(ThreadBuffer& buffer, Event event);
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_snapshot() const;

  std::atomic<bool> enabled_{false};
  std::uint64_t id_ = 0;  ///< unique per Tracer: thread-local cache key
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span guard. Records nothing when the tracer was runtime-disabled at
/// construction (and never "half-records": begin and end are paired).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Real virtual_time = -1.0,
                     std::string args = {})
      : active_(Tracer::global().enabled()) {
    if (active_)
      Tracer::global().begin_span(name, virtual_time, std::move(args));
  }
  ~TraceSpan() {
    if (active_) Tracer::global().end_span();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
};

}  // namespace cosched

// ---- macros ---------------------------------------------------------------
// COSCHED_TRACE_SPAN(var, name[, virtual_time[, args]]) — RAII span bound to
// the enclosing scope. COSCHED_TRACE_INSTANT / COSCHED_TRACE_COUNTER record
// single events. All of them vanish entirely (no-ops, no tracer reference)
// in TUs compiled with -DCOSCHED_TRACE_DISABLED.
#ifdef COSCHED_TRACE_DISABLED

#define COSCHED_TRACE_SPAN(var, ...) \
  do {                               \
  } while (0)
#define COSCHED_TRACE_INSTANT(...) \
  do {                             \
  } while (0)
#define COSCHED_TRACE_COUNTER(name, value) \
  do {                                     \
  } while (0)

#else

#define COSCHED_TRACE_SPAN(var, ...) ::cosched::TraceSpan var(__VA_ARGS__)
#define COSCHED_TRACE_INSTANT(...)                        \
  do {                                                    \
    if (::cosched::Tracer::global().enabled())            \
      ::cosched::Tracer::global().instant(__VA_ARGS__);   \
  } while (0)
#define COSCHED_TRACE_COUNTER(name, value)                      \
  do {                                                          \
    if (::cosched::Tracer::global().enabled())                  \
      ::cosched::Tracer::global().counter((name), (value));     \
  } while (0)

#endif  // COSCHED_TRACE_DISABLED
