#include "obs/otlp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "net/socket.hpp"

namespace cosched {

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Shortest decimal form that round-trips (same policy as the Prometheus
/// exposition): OTLP JSON numbers should not read as 2.5000000000000001.
std::string fmt_number(double v) {
  if (std::isnan(v) || std::isinf(v)) return "0";  // JSON has no Inf/NaN
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char whole[32];
    std::snprintf(whole, sizeof(whole), "%.0f", v);
    return whole;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) return shorter;
  }
  return buf;
}

/// protojson encodes 64-bit integers as JSON strings.
std::string fmt_u64_string(std::uint64_t v) {
  return "\"" + std::to_string(v) + "\"";
}

/// 32-hex-digit OTLP traceId (64-bit tracer id, zero-padded).
std::string otlp_trace_id(std::uint64_t trace_id) {
  return "0000000000000000" + trace_id_hex(trace_id);
}

/// 16-hex-digit OTLP spanId.
std::string otlp_span_id(std::uint64_t span_id) {
  return trace_id_hex(span_id);
}

std::string resource_json(const OtlpExportOptions& options) {
  std::string out =
      "\"resource\":{\"attributes\":[{\"key\":\"service.name\","
      "\"value\":{\"stringValue\":\"";
  append_json_escaped(out, options.service_name);
  out += "\"}}]}";
  return out;
}

}  // namespace

std::string otlp_traces_json(const Tracer& tracer, TailSampler* tail,
                             const OtlpExportOptions& options) {
  // Everything buffered, ascending seq; 0 = no cap, no prefix filter.
  Tracer::TelemetryBatch batch = tracer.collect_since(0, "", 0);
  const bool filter = tail != nullptr && tail->active();
  if (filter) tail->flush();  // parked spans get their top-K verdict first

  struct Span {
    std::string name;
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span_id = 0;
    double start_us = 0.0;
    double end_us = 0.0;
    Real virtual_time = -1.0;
    std::int32_t tid = 0;
    std::string args;
  };
  std::vector<Span> spans;

  // Pair Begin/End per thread (events stay seq-ordered within a thread).
  // Unclosed Begins and ring-orphaned Ends are skipped: OTLP spans need
  // both timestamps.
  std::map<std::int32_t, std::vector<std::size_t>> open_by_tid;
  std::vector<Span> open_spans;  // indexed by open_by_tid entries
  for (const Tracer::TelemetryEvent& e : batch.events) {
    if (e.phase == Tracer::Phase::Begin) {
      Span span;
      span.name = e.name;
      span.trace_id = e.trace_id;
      span.span_id = e.seq + 1;  // nonzero, unique: derived from the seq
      std::vector<std::size_t>& stack = open_by_tid[e.tid];
      if (!stack.empty())
        span.parent_span_id = open_spans[stack.back()].span_id;
      span.start_us = e.wall_us;
      span.virtual_time = e.virtual_time;
      span.tid = e.tid;
      span.args = e.args;
      stack.push_back(open_spans.size());
      open_spans.push_back(std::move(span));
    } else if (e.phase == Tracer::Phase::End) {
      std::vector<std::size_t>& stack = open_by_tid[e.tid];
      if (stack.empty()) continue;  // Begin evicted by the ring
      Span span = std::move(open_spans[stack.back()]);
      stack.pop_back();
      span.end_us = e.wall_us;
      if (filter &&
          (span.trace_id == 0 || !tail->trace_retained(span.trace_id)))
        continue;
      spans.push_back(std::move(span));
    }
  }

  std::string out = "{\"resourceSpans\":[{";
  out += resource_json(options);
  out += ",\"scopeSpans\":[{\"scope\":{\"name\":\"cosched.tracer\"},"
         "\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& span = spans[i];
    if (i > 0) out += ",\n";
    // Untraced spans get a synthetic trace id derived from the span id —
    // OTLP requires nonzero ids; the 0x0c05c4ed prefix marks them apart
    // from real request traces.
    std::uint64_t trace_id = span.trace_id != 0
                                 ? span.trace_id
                                 : (0x0c05c4ed00000000ULL | span.span_id);
    out += "{\"traceId\":\"" + otlp_trace_id(trace_id) + "\"";
    out += ",\"spanId\":\"" + otlp_span_id(span.span_id) + "\"";
    if (span.parent_span_id != 0)
      out += ",\"parentSpanId\":\"" + otlp_span_id(span.parent_span_id) +
             "\"";
    out += ",\"name\":\"";
    append_json_escaped(out, span.name);
    out += "\",\"kind\":1";  // SPAN_KIND_INTERNAL
    std::uint64_t start_ns =
        options.base_unix_nanos +
        static_cast<std::uint64_t>(span.start_us * 1000.0);
    std::uint64_t end_ns = options.base_unix_nanos +
                           static_cast<std::uint64_t>(span.end_us * 1000.0);
    out += ",\"startTimeUnixNano\":" + fmt_u64_string(start_ns);
    out += ",\"endTimeUnixNano\":" + fmt_u64_string(end_ns);
    out += ",\"attributes\":[{\"key\":\"thread.id\",\"value\":{"
           "\"intValue\":\"" +
           std::to_string(span.tid) + "\"}}";
    if (span.virtual_time >= 0.0)
      out += ",{\"key\":\"cosched.virtual_time\",\"value\":{"
             "\"doubleValue\":" +
             fmt_number(span.virtual_time) + "}}";
    if (!span.args.empty()) {
      out += ",{\"key\":\"cosched.detail\",\"value\":{\"stringValue\":\"";
      append_json_escaped(out, span.args);
      out += "\"}}";
    }
    out += "]}";
  }
  out += "]}]}]}\n";
  return out;
}

std::string otlp_metrics_json(const MetricsRegistry& registry,
                              const OtlpExportOptions& options) {
  const std::string text = registry.render_prometheus(true);

  // The parser skips comments, so recover each metric's declared type from
  // the `# TYPE` lines directly.
  std::map<std::string, std::string> types;
  {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("# TYPE ", 0) != 0) continue;
      std::istringstream fields(line.substr(7));
      std::string name, type;
      fields >> name >> type;
      if (!name.empty() && !type.empty()) types[name] = type;
    }
  }
  std::vector<PrometheusSample> samples;
  if (!parse_prometheus_text(text, samples)) return "{}";

  struct HistogramData {
    std::vector<double> bounds;            ///< explicit bounds, no +Inf
    std::vector<std::uint64_t> cumulative;  ///< per rendered bucket line
    std::vector<std::string> exemplars;     ///< rendered JSON, may be empty
    double sum = 0.0;
    std::uint64_t count = 0;
  };

  auto exemplar_json = [&](const PrometheusSample& s) -> std::string {
    // exemplar_labels is trace_id="<16 hex>"; re-encode as OTLP traceId.
    std::string hex;
    std::size_t at = s.exemplar_labels.find("trace_id=\"");
    if (at != std::string::npos) {
      std::size_t start = at + 10;
      std::size_t end = s.exemplar_labels.find('"', start);
      if (end != std::string::npos)
        hex = s.exemplar_labels.substr(start, end - start);
    }
    std::string out = "{\"asDouble\":" + fmt_number(s.exemplar_value);
    if (!hex.empty()) {
      out += ",\"traceId\":\"";
      out += std::string(32 - std::min<std::size_t>(32, hex.size()), '0');
      out += hex;
      out += "\"";
    }
    out += ",\"timeUnixNano\":" + fmt_u64_string(options.base_unix_nanos);
    out += "}";
    return out;
  };

  // One pass, keeping first-seen order: scalar metrics render immediately,
  // histogram parts accumulate per base name.
  std::vector<std::string> rendered;
  std::map<std::string, std::size_t> histogram_slot;
  std::vector<std::pair<std::string, HistogramData>> histograms;
  std::vector<std::pair<std::string, std::size_t>> order;  // name, slot/kind

  auto histogram_base = [&](const std::string& name,
                            std::string& base) -> bool {
    static const char* suffixes[] = {"_bucket", "_sum", "_count",
                                     "_invalid_total"};
    for (const char* suffix : suffixes) {
      std::size_t len = std::string(suffix).size();
      if (name.size() > len &&
          name.compare(name.size() - len, len, suffix) == 0) {
        std::string candidate = name.substr(0, name.size() - len);
        auto it = types.find(candidate);
        if (it != types.end() && it->second == "histogram") {
          base = candidate;
          return true;
        }
      }
    }
    return false;
  };

  const std::string time_field =
      ",\"timeUnixNano\":" + fmt_u64_string(options.base_unix_nanos);

  for (const PrometheusSample& s : samples) {
    std::string base;
    if (histogram_base(s.name, base)) {
      auto slot = histogram_slot.find(base);
      if (slot == histogram_slot.end()) {
        slot = histogram_slot.emplace(base, histograms.size()).first;
        histograms.emplace_back(base, HistogramData{});
        order.emplace_back(base, histograms.size() - 1);
      }
      HistogramData& h = histograms[slot->second].second;
      if (s.name == base + "_bucket") {
        // le label value; "+Inf" closes the bucket list.
        std::size_t at = s.labels.find("le=\"");
        if (at == std::string::npos) continue;
        std::size_t start = at + 4;
        std::size_t end = s.labels.find('"', start);
        if (end == std::string::npos) continue;
        std::string le = s.labels.substr(start, end - start);
        if (le != "+Inf") {
          double bound = 0.0;
          std::sscanf(le.c_str(), "%lf", &bound);
          h.bounds.push_back(bound);
        }
        h.cumulative.push_back(static_cast<std::uint64_t>(s.value));
        h.exemplars.push_back(s.has_exemplar ? exemplar_json(s) : "");
      } else if (s.name == base + "_sum") {
        h.sum = s.value;
      } else if (s.name == base + "_count") {
        h.count = static_cast<std::uint64_t>(s.value);
      } else {
        // _invalid_total: a monotone side counter; export it standalone.
        std::string json = "{\"name\":\"" + s.name +
                           "\",\"sum\":{\"aggregationTemporality\":2,"
                           "\"isMonotonic\":true,\"dataPoints\":[{"
                           "\"asDouble\":" +
                           fmt_number(s.value) + time_field + "}]}}";
        order.emplace_back("", rendered.size());
        rendered.push_back(std::move(json));
      }
      continue;
    }
    auto type = types.find(s.name);
    const bool monotonic =
        type != types.end() && type->second == "counter";
    std::string json = "{\"name\":\"" + s.name + "\",";
    if (monotonic)
      json += "\"sum\":{\"aggregationTemporality\":2,\"isMonotonic\":true,";
    else
      json += "\"gauge\":{";
    json += "\"dataPoints\":[{\"asDouble\":" + fmt_number(s.value) +
            time_field + "}]}}";
    order.emplace_back("", rendered.size());
    rendered.push_back(std::move(json));
  }

  std::string out = "{\"resourceMetrics\":[{";
  out += resource_json(options);
  out += ",\"scopeMetrics\":[{\"scope\":{\"name\":\"cosched.metrics\"},"
         "\"metrics\":[";
  bool first = true;
  for (const auto& [histogram_name, index] : order) {
    if (!first) out += ",\n";
    first = false;
    if (histogram_name.empty()) {
      out += rendered[index];
      continue;
    }
    const HistogramData& h = histograms[index].second;
    out += "{\"name\":\"" + histogram_name +
           "\",\"histogram\":{\"aggregationTemporality\":2,"
           "\"dataPoints\":[{";
    out += "\"count\":" + fmt_u64_string(h.count);
    out += ",\"sum\":" + fmt_number(h.sum);
    out += time_field;
    out += ",\"explicitBounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ",";
      out += fmt_number(h.bounds[i]);
    }
    out += "],\"bucketCounts\":[";
    std::uint64_t previous = 0;
    for (std::size_t i = 0; i < h.cumulative.size(); ++i) {
      if (i > 0) out += ",";
      std::uint64_t in_bucket =
          h.cumulative[i] >= previous ? h.cumulative[i] - previous : 0;
      previous = h.cumulative[i];
      out += fmt_u64_string(in_bucket);
    }
    out += "]";
    std::string exemplars;
    for (const std::string& e : h.exemplars) {
      if (e.empty()) continue;
      if (!exemplars.empty()) exemplars += ",";
      exemplars += e;
    }
    if (!exemplars.empty()) out += ",\"exemplars\":[" + exemplars + "]";
    out += "}]}}";
  }
  out += "]}]}]}\n";
  return out;
}

std::string otlp_logs_json(const Logger& logger, const DecisionJournal* journal,
                           const OtlpExportOptions& options) {
  auto append_attr = [](std::string& out, bool& first, const std::string& key,
                        const std::string& value, bool quoted) {
    if (!first) out += ",";
    first = false;
    out += "{\"key\":\"";
    append_json_escaped(out, key);
    out += quoted ? "\",\"value\":{\"stringValue\":\"" : "\",\"value\":{";
    if (quoted) {
      append_json_escaped(out, value);
      out += "\"}}";
    } else {
      // Pre-rendered numeric/boolean literal; protojson doubles are fine
      // as-is, integers ride as stringValue to stay 64-bit safe.
      out += "\"stringValue\":\"" + value + "\"}}";
    }
  };
  auto severity = [](LogLevel level) {
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: break;
    }
    return "INFO";
  };

  std::string records;
  bool first_record = true;
  auto open_record = [&](double wall_us, const char* severity_text,
                         std::uint64_t trace_id, const std::string& body) {
    if (!first_record) records += ",";
    first_record = false;
    std::uint64_t nanos =
        options.base_unix_nanos +
        static_cast<std::uint64_t>(wall_us < 0.0 ? 0.0 : wall_us * 1000.0);
    records += "{\"timeUnixNano\":" + fmt_u64_string(nanos);
    records += ",\"severityText\":\"";
    records += severity_text;
    records += "\",\"body\":{\"stringValue\":\"";
    append_json_escaped(records, body);
    records += "\"}";
    if (trace_id != 0)
      records += ",\"traceId\":\"" + otlp_trace_id(trace_id) + "\"";
  };

  for (const LogRecord& record : logger.collect()) {
    open_record(record.wall_us, severity(record.level), record.trace_id,
                record.message);
    records += ",\"attributes\":[";
    bool first_attr = true;
    append_attr(records, first_attr, "component", record.component, true);
    for (const LogField& field : record.fields)
      append_attr(records, first_attr, field.key, field.value, field.quoted);
    records += "]}";
  }
  if (journal) {
    for (const JournalEvent& event : journal->tail(SIZE_MAX)) {
      // Journal timestamps are virtual seconds, not wall time; export at
      // the resource epoch and carry the virtual time as an attribute.
      open_record(0.0, "INFO", event.trace_id, render_journal_event(event));
      records += ",\"attributes\":[";
      bool first_attr = true;
      append_attr(records, first_attr, "journal.kind", to_string(event.kind),
                  true);
      append_attr(records, first_attr, "journal.job",
                  std::to_string(event.job_id), false);
      append_attr(records, first_attr, "journal.policy", event.policy, true);
      append_attr(records, first_attr, "journal.virtual_time",
                  fmt_number(event.time), false);
      records += "]}";
    }
  }

  std::string out = "{\"resourceLogs\":[{";
  out += resource_json(options);
  out += ",\"scopeLogs\":[{\"scope\":{\"name\":\"cosched\"},\"logRecords\":[";
  out += records;
  out += "]}]}]}\n";
  return out;
}

bool otlp_write_files(const std::string& dir, const Tracer& tracer,
                      const MetricsRegistry& registry, TailSampler* tail,
                      const OtlpExportOptions& options,
                      std::vector<std::string>* written, const Logger* logger,
                      const DecisionJournal* journal) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::cerr << "warning: cannot create OTLP export directory " << dir
              << ": " << ec.message() << "\n";
    return false;
  }
  auto write_one = [&](const char* file, const std::string& body) {
    fs::path path = fs::path(dir) / file;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path.string() << "\n";
      return false;
    }
    out << body;
    if (written) written->push_back(path.string());
    return true;
  };
  bool ok = write_one("otlp_traces.json",
                      otlp_traces_json(tracer, tail, options));
  ok = write_one("otlp_metrics.json", otlp_metrics_json(registry, options)) &&
       ok;
  if (logger)
    ok = write_one("otlp_logs.json",
                   otlp_logs_json(*logger, journal, options)) &&
         ok;
  return ok;
}

bool parse_otlp_endpoint(const std::string& spec, OtlpEndpoint& endpoint,
                         std::string& error) {
  if (spec.empty()) {
    error = "empty OTLP endpoint";
    return false;
  }
  std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    endpoint.host = spec;
    endpoint.port = 4318;
    return true;
  }
  endpoint.host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);
  char trailing = 0;
  unsigned parsed = 0;
  if (endpoint.host.empty() ||
      std::sscanf(port.c_str(), "%u%c", &parsed, &trailing) != 1 ||
      parsed == 0 || parsed > 65535) {
    error = "malformed OTLP endpoint '" + spec + "' (want host:port)";
    return false;
  }
  endpoint.port = static_cast<std::uint16_t>(parsed);
  return true;
}

bool otlp_post(const OtlpEndpoint& endpoint, const std::string& path,
               const std::string& json, std::string& error,
               double timeout_seconds) {
  NetStatus status = NetStatus::Ok;
  Deadline deadline = Deadline::after(timeout_seconds);
  Socket socket =
      Socket::connect_to(endpoint.host, endpoint.port, deadline, status);
  if (status != NetStatus::Ok) {
    error = "connect to " + endpoint.host + ":" +
            std::to_string(endpoint.port) + ": " + to_string(status);
    return false;
  }
  std::string request = "POST " + path + " HTTP/1.0\r\n";
  request += "Host: " + endpoint.host + "\r\n";
  request += "Content-Type: application/json\r\n";
  request += "Content-Length: " + std::to_string(json.size()) + "\r\n\r\n";
  request += json;
  if (socket.send_all(request.data(), request.size(), deadline) !=
      NetStatus::Ok) {
    error = "send failed";
    return false;
  }
  socket.shutdown_send();
  std::string response;
  char chunk[4096];
  while (true) {
    std::size_t got = 0;
    NetStatus recv_status =
        socket.recv_some(chunk, sizeof(chunk), got, deadline);
    if (recv_status == NetStatus::Closed) break;
    if (recv_status != NetStatus::Ok) {
      error = "recv failed: " + std::string(to_string(recv_status));
      return false;
    }
    response.append(chunk, got);
    if (response.size() > 1 << 20) break;  // status line is all we need
  }
  // "HTTP/1.x 2xx ..." — anything else is a collector-side refusal.
  if (response.rfind("HTTP/1.", 0) != 0 || response.size() < 12 ||
      response[9] != '2') {
    error = "collector answered: " +
            response.substr(0, std::min<std::size_t>(response.size(), 64));
    return false;
  }
  return true;
}

}  // namespace cosched
