// Tail-based trace sampling: keep/drop decided at span *end*.
//
// Head-based sampling (Tracer::make_context) throws traces away before
// knowing whether they turned out interesting — which is exactly backwards
// for tail-latency forensics: the slow replans and long OA*/HA* solves are
// the traces a 1-in-N head sampler is most likely to discard. The
// TailSampler closes that gap. Completed root spans (rpc.request,
// online.replan, replan.fresh_solve) are *observed* with their measured
// duration, and configurable policies decide at that moment:
//
//   * latency threshold  — duration >= min_duration_us keeps immediately;
//   * top-K-slowest      — spans below the threshold park in a bounded
//                          pending window; when the window fills (or
//                          flush() is called) the K slowest matching spans
//                          per policy survive, the rest are dropped;
//   * error flag         — spans observed with error=true keep immediately
//                          when the policy asks for errors;
//   * always-keep        — a policy may keep every matching span.
//
// The head-based sampler keeps running underneath as "one policy among
// several": it decides what the Tracer *records*, while the TailSampler
// decides which completed root spans are *retained* (exported over OTLP,
// surfaced in /metrics exemplars and the v4 GetMetrics block). A span from
// a head-sampled-out trace can still be observed here — the root-span
// end-hooks fire from timers, not from the Tracer — so slow outliers
// survive even a 1-in-64 head sampler.
//
// Everything is bounded and deterministic: the pending window, the retained
// ring and the retained trace-id set all have fixed capacities with
// drop/evict accounting, and every decision is a pure function of the
// observe() call sequence (no clock reads, no randomness) — virtual-time
// replays make identical keep/drop decisions.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/common.hpp"

namespace cosched {

/// One finished root span, as reported by an end-hook.
struct CompletedSpan {
  std::string name;            ///< e.g. "online.replan"
  std::uint64_t trace_id = 0;  ///< correlating request trace, 0 = none
  double duration_us = 0.0;    ///< measured wall duration
  Real virtual_time = -1.0;    ///< virtual seconds at end; < 0 = not stamped
  bool error = false;          ///< the operation failed / was rejected
  std::string args;            ///< optional "k=v ..." detail
};

/// One keep/drop rule. A span matches when its name starts with
/// `span_prefix` (empty prefix matches everything). Checks are applied in
/// this order: always_keep, keep_errors, min_duration_us (immediate keeps),
/// then top_k (deferred to window evaluation). A policy with only zeroed
/// criteria matches spans but never keeps them.
struct TailPolicy {
  std::string name;          ///< label surfaced in stats / telemetry frames
  std::string span_prefix;   ///< span-name prefix filter; empty = all
  double min_duration_us = 0.0;  ///< > 0: keep spans at least this slow
  std::size_t top_k = 0;     ///< > 0: keep the K slowest per pending window
  bool keep_errors = false;  ///< keep spans observed with error=true
  bool always_keep = false;  ///< keep every matching span
};

struct TailSamplerOptions {
  /// Pending-window capacity: spans awaiting a top-K verdict. When full the
  /// window is evaluated and cleared — memory stays bounded no matter how
  /// many spans stream through.
  std::size_t window_spans = 64;
  /// Retained-span ring capacity; the oldest retained span is evicted (and
  /// counted) when full.
  std::size_t max_retained_spans = 1024;
  /// Retained trace-id set capacity (FIFO eviction). Sized >= the retained
  /// ring so exemplar trace_ids stay resolvable.
  std::size_t max_retained_traces = 4096;
};

/// Why a span was retained. Doubles as the per-span "sampling mode" label
/// streamed to telemetry subscribers.
enum class TailKeepReason : std::uint8_t {
  Latency = 0,  ///< met a policy's min_duration_us
  TopK = 1,     ///< among the K slowest of its pending window
  Error = 2,    ///< error span under a keep_errors policy
  Always = 3,   ///< matched an always_keep policy
};

const char* to_string(TailKeepReason reason);

struct RetainedSpan {
  CompletedSpan span;
  TailKeepReason reason = TailKeepReason::Latency;
  std::string policy;       ///< name of the deciding policy
  std::uint64_t order = 0;  ///< monotone observation index (determinism key)
};

/// Aggregate accounting. All counters are monotone from construction (or
/// the last reset()) — the soak harness asserts exactly that.
struct TailSamplerStats {
  std::uint64_t considered = 0;    ///< observe() calls
  std::uint64_t kept_latency = 0;  ///< immediate keeps: latency threshold
  std::uint64_t kept_topk = 0;     ///< window keeps: top-K slowest
  std::uint64_t kept_error = 0;    ///< immediate keeps: error flag
  std::uint64_t kept_always = 0;   ///< immediate keeps: always_keep
  std::uint64_t dropped = 0;       ///< spans rejected by every policy
  std::uint64_t windows_evaluated = 0;   ///< pending-window evaluations
  std::uint64_t retained_evicted = 0;    ///< ring evictions (oldest out)
  std::uint64_t kept() const {
    return kept_latency + kept_topk + kept_error + kept_always;
  }
};

/// Per-policy accounting. over_threshold_seen counts matching spans at or
/// above the policy's latency threshold; over_threshold_kept counts how
/// many of those were retained. Threshold keeps are immediate, so seen ==
/// kept always — the "slow-span survival rate = 100%" invariant is
/// structural, and rpc_soak re-asserts it end to end.
struct TailPolicyStats {
  std::string policy;
  std::uint64_t matched = 0;
  std::uint64_t kept = 0;
  std::uint64_t over_threshold_seen = 0;
  std::uint64_t over_threshold_kept = 0;
};

class TailSampler {
 public:
  TailSampler() = default;
  TailSampler(const TailSampler&) = delete;
  TailSampler& operator=(const TailSampler&) = delete;

  /// Process-wide sampler fed by the root-span end-hooks (OnlineScheduler,
  /// CoschedServer) and drained by the OTLP exporter / metrics callbacks.
  static TailSampler& global();

  /// Installs policies and bounds, clears all state and counters. Passing
  /// an empty policy list deactivates the sampler (end-hooks short-circuit
  /// on active()).
  void configure(std::vector<TailPolicy> policies,
                 TailSamplerOptions options = {});

  /// True iff at least one policy is installed. Lock-free: the end-hooks in
  /// the replan/request hot paths check this before building a
  /// CompletedSpan.
  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Reports one finished root span. Returns true when the span was kept
  /// immediately (latency / error / always); parked or dropped spans return
  /// false — a parked span may still be retained when its window resolves.
  bool observe(CompletedSpan span);

  /// Forces evaluation of a partially-filled pending window (shutdown /
  /// export time), so parked spans get their top-K verdict.
  void flush();

  /// Spans currently parked awaiting a window verdict (bounded by
  /// options.window_spans).
  std::size_t pending() const;

  /// Retained spans currently resident (bounded by max_retained_spans).
  std::size_t retained() const;

  /// True iff `trace_id` belongs to a retained span (and has not been
  /// evicted from the bounded id set). trace_id 0 is never retained.
  bool trace_retained(std::uint64_t trace_id) const;

  /// Copy of the retained ring, oldest first.
  std::vector<RetainedSpan> retained_snapshot() const;

  TailSamplerStats stats() const;
  std::vector<TailPolicyStats> policy_stats() const;
  std::vector<std::string> policy_names() const;

  /// "tail(p1,p2)" when active, "" otherwise — the frame-level sampling
  /// mode label advertised to telemetry subscribers.
  std::string mode_label() const;

  /// Drops every buffered/retained span, zeroes counters, keeps policies.
  void reset();

 private:
  struct PendingSpan {
    CompletedSpan span;
    std::uint64_t order = 0;
  };

  // All three take `mutex_` held.
  void keep_locked(CompletedSpan span, TailKeepReason reason,
                   const std::string& policy, std::uint64_t order);
  void evaluate_window_locked();
  bool matches_locked(const TailPolicy& policy, const std::string& name) const;

  std::atomic<bool> active_{false};
  mutable std::mutex mutex_;
  std::vector<TailPolicy> policies_;
  std::vector<TailPolicyStats> policy_stats_;  ///< parallel to policies_
  TailSamplerOptions options_;
  TailSamplerStats stats_;
  std::uint64_t next_order_ = 0;
  std::vector<PendingSpan> pending_;
  std::deque<RetainedSpan> retained_;
  std::unordered_set<std::uint64_t> retained_traces_;
  std::deque<std::uint64_t> retained_trace_order_;  ///< FIFO eviction queue
};

}  // namespace cosched
