#include "vm/hungarian.hpp"

#include <algorithm>
#include <limits>

namespace cosched {

// The classic O(n³) potentials formulation (Jonker-style row-by-row
// shortest augmenting paths with dual updates).
std::vector<std::int32_t> solve_assignment_min(
    const std::vector<std::vector<Real>>& cost) {
  const std::size_t n = cost.size();
  COSCHED_EXPECTS(n >= 1);
  for (const auto& row : cost) COSCHED_EXPECTS(row.size() == n);

  // 1-based sentinel arrays, standard formulation.
  std::vector<Real> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<std::size_t> p(n + 1, 0);   // p[j] = row matched to column j
  std::vector<std::size_t> way(n + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<Real> minv(n + 1, kInfinity);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      std::size_t i0 = p[j0];
      std::size_t j1 = 0;
      Real delta = kInfinity;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        Real cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the path.
    do {
      std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<std::int32_t> assignment(n, -1);
  for (std::size_t j = 1; j <= n; ++j)
    if (p[j] >= 1)
      assignment[p[j] - 1] = static_cast<std::int32_t>(j - 1);
  return assignment;
}

std::vector<std::int32_t> solve_assignment_max(
    const std::vector<std::vector<Real>>& weight) {
  const std::size_t n = weight.size();
  COSCHED_EXPECTS(n >= 1);
  Real max_w = 0.0;
  for (const auto& row : weight) {
    COSCHED_EXPECTS(row.size() == n);
    for (Real w : row) max_w = std::max(max_w, w);
  }
  std::vector<std::vector<Real>> cost(n, std::vector<Real>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) cost[i][j] = max_w - weight[i][j];
  return solve_assignment_min(cost);
}

}  // namespace cosched
