#include "vm/migration.hpp"

#include <algorithm>

#include "astar/search.hpp"
#include "vm/hungarian.hpp"

namespace cosched {
namespace {

Real weight_of(std::span<const Real> weights, ProcessId p) {
  if (weights.empty()) return 1.0;
  COSCHED_EXPECTS(p >= 0 && static_cast<std::size_t>(p) < weights.size());
  return weights[static_cast<std::size_t>(p)];
}

/// machine index hosting each process (dense; ids must be < n).
std::vector<std::int32_t> machine_index(const Solution& s) {
  std::int32_t n = 0;
  for (const auto& m : s.machines) n += static_cast<std::int32_t>(m.size());
  std::vector<std::int32_t> idx(static_cast<std::size_t>(n), -1);
  for (std::size_t m = 0; m < s.machines.size(); ++m)
    for (ProcessId p : s.machines[m]) {
      COSCHED_EXPECTS(p >= 0 && p < n);
      idx[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(m);
    }
  return idx;
}

/// weight[old][new] = summed move weight of processes in both machines.
std::vector<std::vector<Real>> overlap_matrix(
    const Solution& old_placement, const Solution& fresh,
    std::span<const Real> weights) {
  const std::size_t m = old_placement.machines.size();
  COSCHED_EXPECTS(fresh.machines.size() == m);
  auto fresh_machine = machine_index(fresh);
  std::vector<std::vector<Real>> w(m, std::vector<Real>(m, 0.0));
  for (std::size_t a = 0; a < m; ++a) {
    for (ProcessId p : old_placement.machines[a]) {
      std::int32_t b = fresh_machine[static_cast<std::size_t>(p)];
      COSCHED_EXPECTS(b >= 0);
      w[a][static_cast<std::size_t>(b)] += weight_of(weights, p);
    }
  }
  return w;
}

std::int32_t total_processes(const Solution& s) {
  std::int32_t n = 0;
  for (const auto& m : s.machines)
    n += static_cast<std::int32_t>(m.size());
  return n;
}

struct MoveStats {
  std::int32_t moved = 0;     ///< moved processes with weight > 0
  Real moved_weight = 0.0;    ///< summed weight of moved processes
};

/// Migration statistics under the best (weighted-overlap) machine
/// relabeling of `fresh` onto `old_placement`.
MoveStats move_stats(const Solution& old_placement, const Solution& fresh,
                     std::span<const Real> weights) {
  auto w = overlap_matrix(old_placement, fresh, weights);
  auto assignment = solve_assignment_max(w);
  auto fresh_machine = machine_index(fresh);
  MoveStats stats;
  for (std::size_t a = 0; a < old_placement.machines.size(); ++a) {
    auto kept_group = assignment[a];
    for (ProcessId p : old_placement.machines[a]) {
      if (fresh_machine[static_cast<std::size_t>(p)] == kept_group) continue;
      Real wp = weight_of(weights, p);
      if (wp > 0.0) {
        ++stats.moved;
        stats.moved_weight += wp;
      }
    }
  }
  return stats;
}

}  // namespace

Solution align_to_placement(const Solution& old_placement, Solution fresh) {
  return align_to_placement(old_placement, std::move(fresh), {});
}

Solution align_to_placement(const Solution& old_placement, Solution fresh,
                            std::span<const Real> move_weight) {
  auto w = overlap_matrix(old_placement, fresh, move_weight);
  // assignment[a] = index of the fresh group that old machine a keeps.
  auto assignment = solve_assignment_max(w);
  Solution aligned;
  aligned.machines.resize(old_placement.machines.size());
  for (std::size_t a = 0; a < assignment.size(); ++a)
    aligned.machines[a] =
        std::move(fresh.machines[static_cast<std::size_t>(assignment[a])]);
  for (auto& m : aligned.machines) std::sort(m.begin(), m.end());
  return aligned;
}

std::int32_t min_migrations(const Solution& old_placement,
                            const Solution& fresh) {
  auto w = overlap_matrix(old_placement, fresh, {});
  auto assignment = solve_assignment_max(w);
  Real kept = 0.0;
  for (std::size_t a = 0; a < assignment.size(); ++a)
    kept += w[a][static_cast<std::size_t>(assignment[a])];
  return total_processes(old_placement) - static_cast<std::int32_t>(kept);
}

Real weighted_migrations(const Solution& old_placement, const Solution& fresh,
                         std::span<const Real> move_weight) {
  return move_stats(old_placement, fresh, move_weight).moved_weight;
}

ReplanResult replan_with_migrations(const Problem& problem,
                                    const Solution& current,
                                    const ReplanOptions& options) {
  auto fresh = solve_hastar(problem);
  return replan_with_migrations(problem, current,
                                fresh.found ? &fresh.solution : nullptr,
                                options);
}

ReplanResult replan_with_migrations(const Problem& problem,
                                    const Solution& current,
                                    const Solution* fresh,
                                    const ReplanOptions& options) {
  problem.check();
  validate_solution(problem, current);
  COSCHED_EXPECTS(options.migration_cost >= 0.0);
  std::span<const Real> weights(options.move_weight);
  if (!weights.empty())
    COSCHED_EXPECTS(weights.size() ==
                    static_cast<std::size_t>(problem.n()));

  auto combined_of = [&](const Solution& aligned) {
    ReplanResult r;
    r.placement = aligned;
    r.degradation = evaluate_solution(problem, aligned).total;
    MoveStats moves = move_stats(current, aligned, weights);
    r.migrations = moves.moved;
    r.migration_charge = options.migration_cost * moves.moved_weight;
    r.combined = r.degradation + r.migration_charge;
    return r;
  };

  // Candidate 1: stay put.
  ReplanResult best = combined_of(current);

  // Candidate 2: the fresh schedule (HA* unless the caller plugged in
  // another solver), machine-aligned to the old placement so its migration
  // charge is minimal.
  if (fresh != nullptr) {
    ReplanResult cand =
        combined_of(align_to_placement(current, *fresh, weights));
    if (cand.combined < best.combined) best = cand;
  }

  // Candidate 3: migration-aware local search from the best so far —
  // first-improvement swaps under the combined objective. Machine identity
  // is positional here, so migration deltas are exact per swap.
  Solution work = best.placement;
  const std::size_t m = work.machines.size();
  const std::size_t u = static_cast<std::size_t>(problem.u());
  Real work_combined = best.combined;
  for (std::uint64_t pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    for (std::size_t a = 0; a < m; ++a) {
      for (std::size_t b = a + 1; b < m; ++b) {
        for (std::size_t i = 0; i < u; ++i) {
          for (std::size_t j = 0; j < u; ++j) {
            std::swap(work.machines[a][i], work.machines[b][j]);
            ReplanResult cand = combined_of(work);
            if (cand.combined < work_combined - kObjectiveEps) {
              work_combined = cand.combined;
              improved = true;
            } else {
              std::swap(work.machines[a][i], work.machines[b][j]);
            }
          }
        }
      }
    }
    if (!improved) break;
  }
  {
    ReplanResult cand = combined_of(work);
    if (cand.combined < best.combined) best = cand;
  }
  return best;
}

}  // namespace cosched
