#include "vm/migration.hpp"

#include <algorithm>

#include "astar/search.hpp"
#include "vm/hungarian.hpp"

namespace cosched {
namespace {

/// weight[old][new] = |old machine ∩ new machine|.
std::vector<std::vector<Real>> overlap_matrix(const Solution& old_placement,
                                              const Solution& fresh) {
  const std::size_t m = old_placement.machines.size();
  COSCHED_EXPECTS(fresh.machines.size() == m);
  std::vector<std::vector<Real>> w(m, std::vector<Real>(m, 0.0));
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) {
      for (ProcessId p : old_placement.machines[a])
        for (ProcessId q : fresh.machines[b])
          if (p == q) w[a][b] += 1.0;
    }
  }
  return w;
}

std::int32_t total_processes(const Solution& s) {
  std::int32_t n = 0;
  for (const auto& m : s.machines)
    n += static_cast<std::int32_t>(m.size());
  return n;
}

}  // namespace

Solution align_to_placement(const Solution& old_placement, Solution fresh) {
  auto w = overlap_matrix(old_placement, fresh);
  // assignment[a] = index of the fresh group that old machine a keeps.
  auto assignment = solve_assignment_max(w);
  Solution aligned;
  aligned.machines.resize(old_placement.machines.size());
  for (std::size_t a = 0; a < assignment.size(); ++a)
    aligned.machines[a] =
        std::move(fresh.machines[static_cast<std::size_t>(assignment[a])]);
  for (auto& m : aligned.machines) std::sort(m.begin(), m.end());
  return aligned;
}

std::int32_t min_migrations(const Solution& old_placement,
                            const Solution& fresh) {
  auto w = overlap_matrix(old_placement, fresh);
  auto assignment = solve_assignment_max(w);
  Real kept = 0.0;
  for (std::size_t a = 0; a < assignment.size(); ++a)
    kept += w[a][static_cast<std::size_t>(assignment[a])];
  return total_processes(old_placement) - static_cast<std::int32_t>(kept);
}

ReplanResult replan_with_migrations(const Problem& problem,
                                    const Solution& current,
                                    const ReplanOptions& options) {
  problem.check();
  validate_solution(problem, current);
  COSCHED_EXPECTS(options.migration_cost >= 0.0);

  auto combined_of = [&](const Solution& aligned) {
    ReplanResult r;
    r.placement = aligned;
    r.degradation = evaluate_solution(problem, aligned).total;
    r.migrations = min_migrations(current, aligned);
    r.combined = r.degradation + options.migration_cost *
                                     static_cast<Real>(r.migrations);
    return r;
  };

  // Candidate 1: stay put.
  ReplanResult best = combined_of(current);

  // Candidate 2: a fresh HA* schedule, machine-aligned to the old
  // placement so its migration count is minimal.
  auto fresh = solve_hastar(problem);
  if (fresh.found) {
    ReplanResult cand =
        combined_of(align_to_placement(current, fresh.solution));
    if (cand.combined < best.combined) best = cand;
  }

  // Candidate 3: migration-aware local search from the best so far —
  // first-improvement swaps under the combined objective. Machine identity
  // is positional here, so migration deltas are exact per swap.
  Solution work = best.placement;
  const std::size_t m = work.machines.size();
  const std::size_t u = static_cast<std::size_t>(problem.u());
  Real work_combined = best.combined;
  for (std::uint64_t pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    for (std::size_t a = 0; a < m; ++a) {
      for (std::size_t b = a + 1; b < m; ++b) {
        for (std::size_t i = 0; i < u; ++i) {
          for (std::size_t j = 0; j < u; ++j) {
            std::swap(work.machines[a][i], work.machines[b][j]);
            ReplanResult cand = combined_of(work);
            if (cand.combined < work_combined - kObjectiveEps) {
              work_combined = cand.combined;
              improved = true;
            } else {
              std::swap(work.machines[a][i], work.machines[b][j]);
            }
          }
        }
      }
    }
    if (!improved) break;
  }
  {
    ReplanResult cand = combined_of(work);
    if (cand.combined < best.combined) best = cand;
  }
  return best;
}

}  // namespace cosched
