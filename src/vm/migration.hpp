// Migration-aware rescheduling — the paper's stated future work ("extend
// our co-scheduling methods to solve the optimal mapping of virtual
// machines on physical machines... allow the VM migrations between
// physical machines").
//
// A running placement identifies machines; a fresh co-schedule is only a
// partition. The bridge is an assignment problem: map new groups onto old
// machines so as many processes as possible stay put (max-weight matching
// on group overlap; Hungarian). Replanning then trades contention
// degradation against the number of migrations.
#pragma once

#include <cstdint>
#include <span>

#include "core/objective.hpp"
#include "core/problem.hpp"

namespace cosched {

/// Relabels `fresh.machines` so that machine k inherits the identity of the
/// old machine it overlaps most (max-weight assignment). Both solutions
/// must partition the same process set into the same number of machines.
/// The weighted overload maximizes the summed `move_weight` of processes
/// that stay put — weight-0 processes (e.g. newly admitted jobs with no
/// current home, or idle padding) do not influence the alignment.
Solution align_to_placement(const Solution& old_placement, Solution fresh);
Solution align_to_placement(const Solution& old_placement, Solution fresh,
                            std::span<const Real> move_weight);

/// Minimum number of processes that must move to turn `old_placement` into
/// (a machine-relabeling of) `fresh`.
std::int32_t min_migrations(const Solution& old_placement,
                            const Solution& fresh);

/// Minimum total `move_weight` of processes that must move (weighted
/// generalization; min_migrations is the all-ones special case).
Real weighted_migrations(const Solution& old_placement, const Solution& fresh,
                         std::span<const Real> move_weight);

struct ReplanOptions {
  /// Cost (in degradation units) charged per migrated process. 0 replans
  /// freely; large values pin the current placement.
  Real migration_cost = 0.05;
  /// Swap-improvement passes for the migration-aware local search.
  std::uint64_t max_passes = 30;
  /// Per-process move weight (indexed by ProcessId; empty = all ones).
  /// The combined objective charges migration_cost × weight per move, so
  /// weight-0 processes relocate freely — how the online service marks
  /// newly admitted jobs and idle padding slots.
  std::vector<Real> move_weight;
};

struct ReplanResult {
  Solution placement;          ///< machine-aligned to the old placement
  Real degradation = 0.0;      ///< Eq. 13 objective of the placement
  std::int32_t migrations = 0; ///< processes with weight > 0 that moved
  Real migration_charge = 0.0; ///< migration_cost × total moved weight
  Real combined = 0.0;         ///< degradation + migration_charge
};

/// Replans an existing placement: starts from `current`, applies a local
/// search over process swaps under the combined objective, compares against
/// a migration-aligned fresh schedule, and returns the better of the two.
/// Never returns anything worse (combined-objective-wise) than keeping
/// `current`. The fresh candidate is solved with HA* internally; the
/// `fresh` overload takes a precomputed candidate instead (nullptr = none),
/// which is how the online service plugs in alternative solvers.
ReplanResult replan_with_migrations(const Problem& problem,
                                    const Solution& current,
                                    const ReplanOptions& options = {});
ReplanResult replan_with_migrations(const Problem& problem,
                                    const Solution& current,
                                    const Solution* fresh,
                                    const ReplanOptions& options = {});

}  // namespace cosched
