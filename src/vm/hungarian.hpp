// Hungarian (Kuhn-Munkres) algorithm for the assignment problem.
//
// Substrate for the migration extension (the paper's stated future work:
// optimal VM-to-physical-machine mapping with migrations): matching new
// schedule groups to old machines so as to maximize kept processes is a
// max-weight bipartite assignment.
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace cosched {

/// Solves min-cost assignment on a square cost matrix (row-major,
/// cost[i][j] = cost of assigning row i to column j). Returns the column
/// assigned to each row. O(n³).
std::vector<std::int32_t> solve_assignment_min(
    const std::vector<std::vector<Real>>& cost);

/// Max-weight variant: maximizes Σ weight[i][assignment[i]].
std::vector<std::int32_t> solve_assignment_max(
    const std::vector<std::vector<Real>>& weight);

}  // namespace cosched
