#include "baseline/brute_force.hpp"

#include <algorithm>
#include <array>

#include "core/node_eval.hpp"
#include "util/combinatorics.hpp"

namespace cosched {
namespace {

class Enumerator {
 public:
  Enumerator(const Problem& problem, const DegradationModel& model,
             Aggregation aggregation)
      : problem_(problem),
        batch_(problem.batch),
        aggregation_(aggregation),
        eval_(problem, model),
        n_(problem.n()),
        u_(problem.u()),
        assigned_(static_cast<std::size_t>(n_), false),
        par_max_(static_cast<std::size_t>(batch_.parallel_job_count()), 0.0) {}

  BruteForceResult run() {
    recurse(0.0);
    result_.solution.canonicalize();
    return result_;
  }

 private:
  void recurse(Real g) {
    if (g >= result_.objective) return;  // completing never decreases g
    // Lowest unassigned process leads the next machine.
    ProcessId lead = kInvalidProcess;
    for (std::int32_t p = 0; p < n_; ++p)
      if (!assigned_[static_cast<std::size_t>(p)]) {
        lead = p;
        break;
      }
    if (lead == kInvalidProcess) {
      ++result_.partitions_examined;
      if (g < result_.objective) {
        result_.objective = g;
        result_.solution.machines = current_;
      }
      return;
    }
    std::vector<ProcessId> pool;
    for (std::int32_t p = lead + 1; p < n_; ++p)
      if (!assigned_[static_cast<std::size_t>(p)]) pool.push_back(p);

    std::vector<ProcessId> node(static_cast<std::size_t>(u_));
    node[0] = lead;
    std::vector<Real> d;
    for_each_combination(
        pool, static_cast<std::size_t>(u_ - 1),
        [&](const std::vector<std::int32_t>& comb) {
          for (std::size_t k = 0; k < comb.size(); ++k) node[k + 1] = comb[k];
          eval_.weight(node, d);

          Real delta = 0.0;
          // Saved maxima to restore on backtrack.
          std::array<std::pair<std::int32_t, Real>, 16> saved;
          std::size_t num_saved = 0;
          for (std::size_t k = 0; k < node.size(); ++k) {
            std::int32_t pj =
                aggregation_ == Aggregation::MaxPerParallelJob
                    ? batch_.parallel_index_of(node[k])
                    : -1;
            if (pj < 0) {
              delta += d[k];
            } else {
              Real& mx = par_max_[static_cast<std::size_t>(pj)];
              if (d[k] > mx) {
                saved[num_saved++] = {pj, mx};
                delta += d[k] - mx;
                mx = d[k];
              }
            }
          }
          for (ProcessId p : node) assigned_[static_cast<std::size_t>(p)] = true;
          current_.push_back(node);

          recurse(g + delta);

          current_.pop_back();
          for (ProcessId p : node)
            assigned_[static_cast<std::size_t>(p)] = false;
          // Restore in reverse: the same job may appear once per node only,
          // so order is immaterial, but reverse is safest.
          for (std::size_t s = num_saved; s > 0; --s)
            par_max_[static_cast<std::size_t>(saved[s - 1].first)] =
                saved[s - 1].second;
          return true;
        });
  }

  const Problem& problem_;
  const JobBatch& batch_;
  Aggregation aggregation_;
  NodeEvaluator eval_;
  const std::int32_t n_;
  const std::int32_t u_;
  std::vector<bool> assigned_;
  std::vector<Real> par_max_;
  std::vector<std::vector<ProcessId>> current_;
  BruteForceResult result_;
};

}  // namespace

BruteForceResult solve_brute_force(const Problem& problem,
                                   const DegradationModel& model,
                                   Aggregation aggregation) {
  problem.check();
  COSCHED_EXPECTS(problem.u() <= 16);
  Enumerator e(problem, model, aggregation);
  return e.run();
}

BruteForceResult solve_brute_force(const Problem& problem) {
  return solve_brute_force(problem, *problem.full_model,
                           Aggregation::MaxPerParallelJob);
}

}  // namespace cosched
