// Exhaustive optimal co-scheduler (test oracle).
//
// Enumerates every partition of the processes into u-sized machines in
// canonical order (each new machine is led by the lowest unassigned
// process), maintaining the exact Eq. 13 partial distance and pruning
// branches that already reach the best known objective. Exponential — used
// to validate OA* and the IP model on small instances, and as the
// "guaranteed optimum" in unit tests.
#pragma once

#include <cstdint>

#include "core/objective.hpp"
#include "core/problem.hpp"

namespace cosched {

struct BruteForceResult {
  Solution solution;
  Real objective = kInfinity;
  std::uint64_t partitions_examined = 0;  ///< complete partitions reached
};

BruteForceResult solve_brute_force(
    const Problem& problem, const DegradationModel& model,
    Aggregation aggregation = Aggregation::MaxPerParallelJob);

/// Convenience: full model + Eq. 13 aggregation.
BruteForceResult solve_brute_force(const Problem& problem);

}  // namespace cosched
