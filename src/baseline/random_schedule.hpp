// Uniform random valid schedule — the naive baseline and the starting point
// for local search.
#pragma once

#include "core/objective.hpp"
#include "core/problem.hpp"
#include "util/rng.hpp"

namespace cosched {

Solution solve_random(const Problem& problem, Rng& rng);

}  // namespace cosched
