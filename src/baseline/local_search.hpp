// Pairwise-swap local search: repeatedly exchanges two processes between
// machines while the Eq. 13 objective improves. An extra baseline (not in
// the paper) that brackets how much of the OA*/HA* gain simple hill
// climbing recovers.
#pragma once

#include <cstdint>

#include "core/objective.hpp"
#include "core/problem.hpp"

namespace cosched {

struct LocalSearchResult {
  Solution solution;
  Real objective = kInfinity;
  std::uint64_t swaps_applied = 0;
  std::uint64_t passes = 0;
};

/// First-improvement passes until a full pass finds no improving swap or
/// `max_passes` is reached.
LocalSearchResult improve_by_swaps(const Problem& problem, Solution start,
                                   std::uint64_t max_passes = 50);

}  // namespace cosched
