// PG — the politeness-based greedy co-scheduler of Jiang et al. [18], the
// heuristic baseline of the paper's Section V-E.
//
// Politeness of a process measures how little damage it inflicts on
// co-runners (estimated from pairwise co-runs). PG sorts processes by
// politeness, seeds each machine with one of the most impolite processes,
// and fills the remaining slots with the most polite processes — pairing
// "friendly" with "unfriendly" jobs exactly as [18] describes, without
// consulting the degradation model during placement.
//
// solve_pg_greedy_balanced (PG+) is a strengthened variant of our own: it
// keeps the politeness order but places each process on the open machine
// with the smallest pairwise-cost increase. It is not part of the paper's
// evaluation; the ablation bench quantifies how much of the HA*-PG gap a
// smarter greedy recovers.
#pragma once

#include "core/objective.hpp"
#include "core/problem.hpp"

namespace cosched {

/// Jiang et al.'s politeness pairing. Deterministic.
Solution solve_pg_greedy(const Problem& problem,
                         const DegradationModel& model);
Solution solve_pg_greedy(const Problem& problem);

/// PG+ — politeness order + min-increment placement. Deterministic.
Solution solve_pg_greedy_balanced(const Problem& problem,
                                  const DegradationModel& model);
Solution solve_pg_greedy_balanced(const Problem& problem);

}  // namespace cosched
