#include "baseline/pg_greedy.hpp"

#include <algorithm>
#include <numeric>

namespace cosched {
namespace {

/// pair_d[k][i] = degradation process k suffers when co-running with i
/// alone — the pairwise estimate politeness is computed from.
std::vector<std::vector<Real>> pairwise_damage(const Problem& problem,
                                               const DegradationModel& model) {
  const std::int32_t n = problem.n();
  std::vector<std::vector<Real>> pair_d(
      static_cast<std::size_t>(n),
      std::vector<Real>(static_cast<std::size_t>(n), 0.0));
  for (std::int32_t k = 0; k < n; ++k) {
    for (std::int32_t i = 0; i < n; ++i) {
      if (i == k) continue;
      ProcessId co[1] = {i};
      pair_d[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] =
          model.degradation(k, co);
    }
  }
  return pair_d;
}

/// Process ids sorted most-impolite first (ties by id).
std::vector<ProcessId> impolite_order(
    const Problem& problem,
    const std::vector<std::vector<Real>>& pair_d) {
  const std::int32_t n = problem.n();
  std::vector<Real> politeness(static_cast<std::size_t>(n), 0.0);
  for (std::int32_t i = 0; i < n; ++i) {
    Real damage = 0.0;
    for (std::int32_t k = 0; k < n; ++k)
      if (k != i)
        damage +=
            pair_d[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)];
    politeness[static_cast<std::size_t>(i)] = -damage;
  }
  std::vector<ProcessId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](ProcessId a, ProcessId b) {
    Real pa = politeness[static_cast<std::size_t>(a)];
    Real pb = politeness[static_cast<std::size_t>(b)];
    if (pa != pb) return pa < pb;
    return a < b;
  });
  return order;
}

}  // namespace

Solution solve_pg_greedy(const Problem& problem,
                         const DegradationModel& model) {
  problem.check();
  const std::int32_t n = problem.n();
  const std::int32_t u = problem.u();
  const std::int32_t m = problem.machine_count();

  auto pair_d = pairwise_damage(problem, model);
  auto order = impolite_order(problem, pair_d);

  // Machine j is seeded with the j-th most impolite process and filled with
  // the most polite processes still unassigned (polite-with-impolite
  // pairing, no cost lookups).
  Solution s;
  s.machines.assign(static_cast<std::size_t>(m), {});
  for (std::int32_t j = 0; j < m; ++j)
    s.machines[static_cast<std::size_t>(j)].push_back(
        order[static_cast<std::size_t>(j)]);
  std::int32_t polite_cursor = n - 1;  // most polite end of `order`
  for (std::int32_t j = 0; j < m; ++j)
    for (std::int32_t slot = 1; slot < u; ++slot)
      s.machines[static_cast<std::size_t>(j)].push_back(
          order[static_cast<std::size_t>(polite_cursor--)]);
  s.canonicalize();
  return s;
}

Solution solve_pg_greedy(const Problem& problem) {
  return solve_pg_greedy(problem, *problem.full_model);
}

Solution solve_pg_greedy_balanced(const Problem& problem,
                                  const DegradationModel& model) {
  problem.check();
  const std::int32_t n = problem.n();
  const std::int32_t u = problem.u();
  const std::int32_t m = problem.machine_count();

  auto pair_d = pairwise_damage(problem, model);
  auto order = impolite_order(problem, pair_d);

  Solution s;
  s.machines.assign(static_cast<std::size_t>(m), {});
  for (std::int32_t j = 0; j < m; ++j)
    s.machines[static_cast<std::size_t>(j)].push_back(
        order[static_cast<std::size_t>(j)]);

  // Remaining processes go, impolite first, to the open machine with the
  // smallest pairwise-cost increase (suffered + inflicted).
  for (std::int32_t idx = m; idx < n; ++idx) {
    ProcessId p = order[static_cast<std::size_t>(idx)];
    std::int32_t best_machine = -1;
    Real best_cost = kInfinity;
    for (std::int32_t j = 0; j < m; ++j) {
      const auto& members = s.machines[static_cast<std::size_t>(j)];
      if (static_cast<std::int32_t>(members.size()) >= u) continue;
      Real cost = 0.0;
      for (ProcessId q : members)
        cost +=
            pair_d[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)] +
            pair_d[static_cast<std::size_t>(q)][static_cast<std::size_t>(p)];
      if (cost < best_cost) {
        best_cost = cost;
        best_machine = j;
      }
    }
    COSCHED_ENSURES(best_machine >= 0);
    s.machines[static_cast<std::size_t>(best_machine)].push_back(p);
  }
  s.canonicalize();
  return s;
}

Solution solve_pg_greedy_balanced(const Problem& problem) {
  return solve_pg_greedy_balanced(problem, *problem.full_model);
}

}  // namespace cosched
