#include "baseline/local_search.hpp"

namespace cosched {

LocalSearchResult improve_by_swaps(const Problem& problem, Solution start,
                                   std::uint64_t max_passes) {
  validate_solution(problem, start);
  LocalSearchResult result;
  result.solution = std::move(start);
  result.objective = evaluate_solution(problem, result.solution).total;

  const std::size_t m = result.solution.machines.size();
  const std::size_t u = static_cast<std::size_t>(problem.u());

  for (result.passes = 0; result.passes < max_passes; ++result.passes) {
    bool improved = false;
    for (std::size_t a = 0; a < m; ++a) {
      for (std::size_t b = a + 1; b < m; ++b) {
        for (std::size_t i = 0; i < u; ++i) {
          for (std::size_t j = 0; j < u; ++j) {
            auto& ma = result.solution.machines[a];
            auto& mb = result.solution.machines[b];
            std::swap(ma[i], mb[j]);
            Real obj = evaluate_solution(problem, result.solution).total;
            if (obj < result.objective - kObjectiveEps) {
              result.objective = obj;
              ++result.swaps_applied;
              improved = true;
            } else {
              std::swap(ma[i], mb[j]);  // revert
            }
          }
        }
      }
    }
    if (!improved) break;
  }
  result.solution.canonicalize();
  return result;
}

}  // namespace cosched
