#include "baseline/random_schedule.hpp"

#include <numeric>

namespace cosched {

Solution solve_random(const Problem& problem, Rng& rng) {
  problem.check();
  std::vector<ProcessId> perm(static_cast<std::size_t>(problem.n()));
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);

  Solution s;
  const std::int32_t u = problem.u();
  for (std::int32_t j = 0; j < problem.machine_count(); ++j) {
    std::vector<ProcessId> machine(
        perm.begin() + static_cast<std::ptrdiff_t>(j) * u,
        perm.begin() + static_cast<std::ptrdiff_t>(j + 1) * u);
    s.machines.push_back(std::move(machine));
  }
  s.canonicalize();
  return s;
}

}  // namespace cosched
