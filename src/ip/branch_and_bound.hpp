// Branch & bound MILP solver over the co-scheduling set-partitioning model.
//
// Stands in for the four IP solvers the paper benchmarks (CPLEX, CBC, SCIP,
// GLPK): Table III's message is relative — a general MILP solver is orders
// of magnitude slower than the specialized graph search — and the bench
// exercises this solver in four configurations of node order / branching /
// warm start to mirror the spread between those solvers.
#pragma once

#include <cstdint>

#include "ip/ip_model.hpp"

namespace cosched {

struct BnBOptions {
  enum class NodeOrder { BestBound, DepthFirst };
  enum class BranchRule { MostFractional, FirstFractional };

  NodeOrder node_order = NodeOrder::BestBound;
  BranchRule branch_rule = BranchRule::MostFractional;
  /// Initial incumbent bound (e.g. from HA*); kInfinity disables.
  Real warm_start_bound = kInfinity;
  Real integrality_tol = 1e-6;
  /// Prune children whose LP bound is within this of the incumbent.
  Real bound_tol = 1e-9;
  Real time_limit_seconds = 0.0;  ///< 0 = unlimited
  std::uint64_t max_nodes = 0;    ///< 0 = unlimited
  SimplexSolver::Options lp_options{};
};

struct BnBResult {
  bool optimal = false;      ///< proven optimal
  bool feasible = false;     ///< an integral solution was found
  bool timed_out = false;
  Real objective = kInfinity;
  Solution solution;         ///< decoded machines (when feasible)
  std::uint64_t nodes_explored = 0;
  std::int64_t lp_iterations = 0;
  double seconds = 0.0;
};

/// Solves the model to optimality (or limit).
BnBResult solve_branch_and_bound(const CoschedIpModel& model,
                                 const BnBOptions& options = {});

}  // namespace cosched
