#include "ip/ip_model.hpp"

#include "core/node_eval.hpp"
#include "util/combinatorics.hpp"

namespace cosched {

Solution CoschedIpModel::decode(const std::vector<Real>& x, Real tol) const {
  Solution s;
  for (std::int32_t v = 0; v < num_y; ++v) {
    Real val = x[static_cast<std::size_t>(v)];
    if (val > 1.0 - tol) {
      s.machines.push_back(columns[static_cast<std::size_t>(v)]);
    } else {
      COSCHED_EXPECTS(val < tol);  // must be integral
    }
  }
  s.canonicalize();
  return s;
}

CoschedIpModel build_ip_model(const Problem& problem,
                              const DegradationModel& model,
                              Aggregation aggregation) {
  problem.check();
  const std::int32_t n = problem.n();
  const std::int32_t u = problem.u();
  const JobBatch& batch = problem.batch;
  NodeEvaluator eval(problem, model);

  CoschedIpModel ip;
  ip.num_z = aggregation == Aggregation::MaxPerParallelJob
                 ? batch.parallel_job_count()
                 : 0;

  // Enumerate all u-subsets; one y column each.
  std::vector<std::int32_t> pool(static_cast<std::size_t>(n));
  for (std::int32_t p = 0; p < n; ++p) pool[static_cast<std::size_t>(p)] = p;

  // Per-process membership lists for the partition rows, and per-parallel-
  // process (column, d) lists for the z-link rows.
  std::vector<std::vector<std::pair<std::int32_t, Real>>> member_cols(
      static_cast<std::size_t>(n));
  std::vector<Real> d_scratch;

  for_each_combination(
      pool, static_cast<std::size_t>(u),
      [&](const std::vector<std::int32_t>& comb) {
        std::vector<ProcessId> node(comb.begin(), comb.end());
        eval.weight(node, d_scratch);
        Real serial_cost = 0.0;
        for (std::size_t k = 0; k < node.size(); ++k) {
          bool counts_as_serial =
              aggregation == Aggregation::SumAllProcesses ||
              !batch.is_parallel_process(node[k]);
          if (counts_as_serial) serial_cost += d_scratch[k];
        }
        std::int32_t col = ip.lp.add_variable(serial_cost, 0.0, 1.0);
        for (std::size_t k = 0; k < node.size(); ++k)
          member_cols[static_cast<std::size_t>(node[k])].push_back(
              {col, d_scratch[k]});
        ip.columns.push_back(std::move(node));
        return true;
      });
  ip.num_y = static_cast<std::int32_t>(ip.columns.size());

  // z variables (cost 1 each — they stand for the job's max directly).
  std::vector<std::int32_t> z_var(
      static_cast<std::size_t>(std::max<std::int32_t>(ip.num_z, 1)), -1);
  for (std::int32_t pj = 0; pj < ip.num_z; ++pj)
    z_var[static_cast<std::size_t>(pj)] =
        ip.lp.add_variable(1.0, 0.0, kInfinity);

  // Partition rows: Σ_{T∋i} y_T = 1.
  for (std::int32_t i = 0; i < n; ++i) {
    std::vector<std::pair<std::int32_t, Real>> coeffs;
    coeffs.reserve(member_cols[static_cast<std::size_t>(i)].size());
    for (const auto& [col, d] : member_cols[static_cast<std::size_t>(i)]) {
      coeffs.push_back({col, 1.0});
      (void)d;
    }
    ip.lp.add_row(std::move(coeffs), LinearProgram::RowType::EQ, 1.0);
  }

  // z-link rows: Σ_{T∋i} d(i,T\{i})·y_T − z_j ≤ 0 for parallel i ∈ job j.
  if (ip.num_z > 0) {
    for (std::int32_t i = 0; i < n; ++i) {
      std::int32_t pj = batch.parallel_index_of(static_cast<ProcessId>(i));
      if (pj < 0) continue;
      std::vector<std::pair<std::int32_t, Real>> coeffs;
      for (const auto& [col, d] : member_cols[static_cast<std::size_t>(i)])
        if (d != 0.0) coeffs.push_back({col, d});
      coeffs.push_back({z_var[static_cast<std::size_t>(pj)], -1.0});
      ip.lp.add_row(std::move(coeffs), LinearProgram::RowType::LE, 0.0);
    }
  }
  return ip;
}

}  // namespace cosched
