#include "ip/simplex.hpp"

#include <algorithm>
#include <cmath>

namespace cosched {

// ------------------------------------------------------------ LinearProgram

std::int32_t LinearProgram::add_variable(Real cost, Real lb, Real ub) {
  COSCHED_EXPECTS(lb <= ub);
  cost_.push_back(cost);
  lb_.push_back(lb);
  ub_.push_back(ub);
  return num_vars() - 1;
}

void LinearProgram::add_row(
    std::vector<std::pair<std::int32_t, Real>> coeffs, RowType type,
    Real rhs) {
  for (const auto& [j, c] : coeffs) {
    COSCHED_EXPECTS(j >= 0 && j < num_vars());
    (void)c;
  }
  rows_.push_back(Row{std::move(coeffs), type, rhs});
}

void LinearProgram::set_bounds(std::int32_t j, Real lb, Real ub) {
  COSCHED_EXPECTS(j >= 0 && j < num_vars());
  COSCHED_EXPECTS(lb <= ub);
  lb_[static_cast<std::size_t>(j)] = lb;
  ub_[static_cast<std::size_t>(j)] = ub;
}

// ------------------------------------------------------------------ solver

namespace {

/// Standardized problem: equality rows over structural + slack + artificial
/// columns, bounded variables, explicit basis inverse (dense; the
/// co-scheduling LPs have few rows and many columns).
class SimplexCore {
 public:
  SimplexCore(const LinearProgram& lp, const SimplexSolver::Options& opt)
      : lp_(lp), opt_(opt), m_(lp.num_rows()) {
    build();
  }

  LpSolution run() {
    LpSolution sol;
    if (num_art_ > 0) {
      phase1_ = true;
      LpStatus st = iterate();
      if (st == LpStatus::Unbounded) st = LpStatus::Infeasible;  // cannot be
      if (st != LpStatus::Optimal) {
        sol.status = st;
        sol.iterations = iters_;
        return sol;
      }
      if (artificial_value() > 1e-7) {
        sol.status = LpStatus::Infeasible;
        sol.iterations = iters_;
        return sol;
      }
      freeze_artificials();
    }
    phase1_ = false;
    LpStatus st = iterate();
    sol.status = st;
    sol.iterations = iters_;
    if (st == LpStatus::Optimal) {
      sol.x.assign(static_cast<std::size_t>(lp_.num_vars()), 0.0);
      Real obj = 0.0;
      for (std::int32_t j = 0; j < lp_.num_vars(); ++j) {
        sol.x[static_cast<std::size_t>(j)] =
            value_[static_cast<std::size_t>(j)];
        obj += lp_.cost(j) * sol.x[static_cast<std::size_t>(j)];
      }
      sol.objective = obj;
    }
    return sol;
  }

 private:
  void build() {
    const std::int32_t nstruct = lp_.num_vars();
    cols_.assign(static_cast<std::size_t>(nstruct),
                 std::vector<Real>(static_cast<std::size_t>(m_), 0.0));
    for (std::int32_t i = 0; i < m_; ++i)
      for (const auto& [j, c] : lp_.row(i).coeffs)
        cols_[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] += c;
    for (std::int32_t j = 0; j < nstruct; ++j) {
      lb_.push_back(lp_.lower(j));
      ub_.push_back(lp_.upper(j));
      cost2_.push_back(lp_.cost(j));
    }
    b_.resize(static_cast<std::size_t>(m_));
    // Slacks: LE → +s with s ≥ 0; GE → −s with s ≥ 0.
    slack_of_row_.assign(static_cast<std::size_t>(m_), -1);
    for (std::int32_t i = 0; i < m_; ++i) {
      const auto& row = lp_.row(i);
      b_[static_cast<std::size_t>(i)] = row.rhs;
      if (row.type == LinearProgram::RowType::EQ) continue;
      std::vector<Real> col(static_cast<std::size_t>(m_), 0.0);
      col[static_cast<std::size_t>(i)] =
          row.type == LinearProgram::RowType::LE ? 1.0 : -1.0;
      cols_.push_back(std::move(col));
      lb_.push_back(0.0);
      ub_.push_back(kInfinity);
      cost2_.push_back(0.0);
      slack_of_row_[static_cast<std::size_t>(i)] =
          static_cast<std::int32_t>(cols_.size()) - 1;
    }
    const std::int32_t ntotal_pre_art =
        static_cast<std::int32_t>(cols_.size());

    // Nonbasic start: every variable at its finite bound nearest zero.
    value_.assign(static_cast<std::size_t>(ntotal_pre_art), 0.0);
    at_upper_.assign(static_cast<std::size_t>(ntotal_pre_art), false);
    for (std::int32_t j = 0; j < ntotal_pre_art; ++j) {
      std::size_t sj = static_cast<std::size_t>(j);
      if (lb_[sj] > -kInfinity) {
        value_[sj] = lb_[sj];
      } else if (ub_[sj] < kInfinity) {
        value_[sj] = ub_[sj];
        at_upper_[sj] = true;
      }
    }

    // Starting basis: slack absorbs the row residual when its sign allows;
    // otherwise an artificial is created.
    std::vector<Real> resid(static_cast<std::size_t>(m_));
    for (std::int32_t i = 0; i < m_; ++i) {
      Real ax = 0.0;
      for (std::int32_t j = 0; j < ntotal_pre_art; ++j)
        ax += cols_[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] *
              value_[static_cast<std::size_t>(j)];
      resid[static_cast<std::size_t>(i)] =
          b_[static_cast<std::size_t>(i)] - ax;
    }
    basis_.assign(static_cast<std::size_t>(m_), -1);
    in_basis_.assign(static_cast<std::size_t>(ntotal_pre_art), false);
    for (std::int32_t i = 0; i < m_; ++i) {
      std::size_t si = static_cast<std::size_t>(i);
      std::int32_t s = slack_of_row_[si];
      if (s >= 0) {
        Real coeff = cols_[static_cast<std::size_t>(s)][si];  // ±1
        Real sval = resid[si] / coeff;
        if (sval >= -opt_.tol) {
          basis_[si] = s;
          in_basis_[static_cast<std::size_t>(s)] = true;
          value_[static_cast<std::size_t>(s)] = std::max<Real>(sval, 0.0);
          continue;
        }
      }
      std::vector<Real> col(static_cast<std::size_t>(m_), 0.0);
      col[si] = resid[si] >= 0.0 ? 1.0 : -1.0;
      cols_.push_back(std::move(col));
      lb_.push_back(0.0);
      ub_.push_back(kInfinity);
      cost2_.push_back(0.0);
      value_.push_back(std::abs(resid[si]));
      at_upper_.push_back(false);
      in_basis_.push_back(true);
      basis_[si] = static_cast<std::int32_t>(cols_.size()) - 1;
      ++num_art_;
    }
    first_art_ = static_cast<std::int32_t>(cols_.size()) - num_art_;
    ntotal_ = static_cast<std::int32_t>(cols_.size());

    // Initial basis is diagonal (±1 slack/artificial columns).
    binv_.assign(static_cast<std::size_t>(m_),
                 std::vector<Real>(static_cast<std::size_t>(m_), 0.0));
    for (std::int32_t i = 0; i < m_; ++i) {
      std::size_t si = static_cast<std::size_t>(i);
      binv_[si][si] = 1.0 / cols_[static_cast<std::size_t>(basis_[si])][si];
    }
  }

  bool is_artificial(std::int32_t j) const { return j >= first_art_; }

  Real cost_of(std::int32_t j) const {
    if (phase1_) return is_artificial(j) ? 1.0 : 0.0;
    return cost2_[static_cast<std::size_t>(j)];
  }

  Real artificial_value() const {
    Real s = 0.0;
    for (std::int32_t j = first_art_; j < ntotal_; ++j)
      s += value_[static_cast<std::size_t>(j)];
    return s;
  }

  std::vector<Real> ftran(std::int32_t col) const {
    std::vector<Real> w(static_cast<std::size_t>(m_), 0.0);
    const auto& a = cols_[static_cast<std::size_t>(col)];
    for (std::int32_t i = 0; i < m_; ++i) {
      Real s = 0.0;
      for (std::int32_t t = 0; t < m_; ++t) {
        Real at = a[static_cast<std::size_t>(t)];
        if (at != 0.0)
          s += binv_[static_cast<std::size_t>(i)][static_cast<std::size_t>(t)] *
               at;
      }
      w[static_cast<std::size_t>(i)] = s;
    }
    return w;
  }

  void update_binv(const std::vector<Real>& w, std::int32_t r) {
    std::size_t sr = static_cast<std::size_t>(r);
    Real piv = w[sr];
    COSCHED_ENSURES(std::abs(piv) > 1e-12);
    for (std::int32_t t = 0; t < m_; ++t)
      binv_[sr][static_cast<std::size_t>(t)] /= piv;
    for (std::int32_t i = 0; i < m_; ++i) {
      if (i == r) continue;
      Real f = w[static_cast<std::size_t>(i)];
      if (std::abs(f) < 1e-14) continue;
      for (std::int32_t t = 0; t < m_; ++t)
        binv_[static_cast<std::size_t>(i)][static_cast<std::size_t>(t)] -=
            f * binv_[sr][static_cast<std::size_t>(t)];
    }
  }

  /// Pins artificials to zero after phase 1 and pivots basic ones out where
  /// a non-artificial replacement exists (rows without one are redundant:
  /// the artificial stays basic, fixed at 0).
  void freeze_artificials() {
    for (std::int32_t j = first_art_; j < ntotal_; ++j) {
      lb_[static_cast<std::size_t>(j)] = 0.0;
      ub_[static_cast<std::size_t>(j)] = 0.0;
    }
    for (std::int32_t i = 0; i < m_; ++i) {
      std::size_t si = static_cast<std::size_t>(i);
      if (!is_artificial(basis_[si])) continue;
      for (std::int32_t j = 0; j < first_art_; ++j) {
        std::size_t sj = static_cast<std::size_t>(j);
        if (in_basis_[sj]) continue;
        std::vector<Real> w = ftran(j);
        if (std::abs(w[si]) > 1e-7) {
          std::int32_t leaving = basis_[si];
          update_binv(w, i);
          in_basis_[static_cast<std::size_t>(leaving)] = false;
          value_[static_cast<std::size_t>(leaving)] = 0.0;
          basis_[si] = j;
          in_basis_[sj] = true;
          // Degenerate swap: the entering variable keeps its bound value
          // (the artificial it replaces was at 0, so xB is unchanged).
          break;
        }
      }
    }
  }

  LpStatus iterate() {
    std::int64_t degenerate_run = 0;
    while (true) {
      if (iters_++ > opt_.max_iterations) return LpStatus::IterationLimit;
      bool bland = degenerate_run > opt_.bland_threshold;

      // Pricing: y = Binvᵀ c_B; d_j = c_j − y·A_j.
      std::vector<Real> y(static_cast<std::size_t>(m_), 0.0);
      for (std::int32_t i = 0; i < m_; ++i) {
        Real cb = cost_of(basis_[static_cast<std::size_t>(i)]);
        if (cb == 0.0) continue;
        for (std::int32_t t = 0; t < m_; ++t)
          y[static_cast<std::size_t>(t)] +=
              cb *
              binv_[static_cast<std::size_t>(i)][static_cast<std::size_t>(t)];
      }
      std::int32_t enter = -1;
      int enter_dir = +1;
      Real best = 0.0;
      for (std::int32_t j = 0; j < ntotal_; ++j) {
        std::size_t sj = static_cast<std::size_t>(j);
        if (in_basis_[sj]) continue;
        if (!phase1_ && is_artificial(j)) continue;
        if (lb_[sj] == ub_[sj]) continue;
        Real d = cost_of(j);
        const auto& a = cols_[sj];
        for (std::int32_t t = 0; t < m_; ++t) {
          Real at = a[static_cast<std::size_t>(t)];
          if (at != 0.0) d -= y[static_cast<std::size_t>(t)] * at;
        }
        int dir = 0;
        Real viol = 0.0;
        if (!at_upper_[sj] && d < -opt_.tol) {
          dir = +1;
          viol = -d;
        } else if (at_upper_[sj] && d > opt_.tol) {
          dir = -1;
          viol = d;
        }
        if (dir == 0) continue;
        if (bland) {
          enter = j;
          enter_dir = dir;
          break;
        }
        if (viol > best) {
          best = viol;
          enter = j;
          enter_dir = dir;
        }
      }
      if (enter < 0) return LpStatus::Optimal;
      std::size_t se = static_cast<std::size_t>(enter);

      std::vector<Real> w = ftran(enter);

      // Ratio test: entering moves t ≥ 0 along enter_dir; basic variable i
      // changes by −enter_dir·w_i·t.
      Real limit = ub_[se] - lb_[se];  // bound-flip distance (may be inf)
      std::int32_t leave_row = -1;
      Real leave_bound = 0.0;
      for (std::int32_t i = 0; i < m_; ++i) {
        std::size_t si = static_cast<std::size_t>(i);
        Real delta = -static_cast<Real>(enter_dir) * w[si];
        if (std::abs(delta) < 1e-11) continue;
        std::size_t sbj = static_cast<std::size_t>(basis_[si]);
        Real xv = value_[sbj];
        Real t, bound;
        if (delta > 0) {
          if (ub_[sbj] >= kInfinity) continue;
          t = (ub_[sbj] - xv) / delta;
          bound = ub_[sbj];
        } else {
          if (lb_[sbj] <= -kInfinity) continue;
          t = (lb_[sbj] - xv) / delta;
          bound = lb_[sbj];
        }
        if (t < 0.0) t = 0.0;
        bool better = t < limit - 1e-12;
        bool tie = !better && leave_row >= 0 && t <= limit + 1e-12;
        if (better || (tie && bland &&
                       basis_[si] <
                           basis_[static_cast<std::size_t>(leave_row)])) {
          limit = std::min(limit, t);
          leave_row = i;
          leave_bound = bound;
        }
      }

      if (limit >= kInfinity) return LpStatus::Unbounded;
      degenerate_run = limit < 1e-10 ? degenerate_run + 1 : 0;

      for (std::int32_t i = 0; i < m_; ++i) {
        std::size_t si = static_cast<std::size_t>(i);
        value_[static_cast<std::size_t>(basis_[si])] -=
            static_cast<Real>(enter_dir) * w[si] * limit;
      }
      Real new_enter_val =
          value_[se] + static_cast<Real>(enter_dir) * limit;
      if (leave_row < 0) {
        value_[se] = new_enter_val;  // bound flip
        at_upper_[se] = !at_upper_[se];
        continue;
      }
      std::size_t slr = static_cast<std::size_t>(leave_row);
      std::size_t slv = static_cast<std::size_t>(basis_[slr]);
      value_[slv] = leave_bound;
      at_upper_[slv] =
          ub_[slv] < kInfinity && std::abs(leave_bound - ub_[slv]) < 1e-9;
      in_basis_[slv] = false;
      update_binv(w, leave_row);
      basis_[slr] = enter;
      in_basis_[se] = true;
      value_[se] = new_enter_val;
    }
  }

  const LinearProgram& lp_;
  SimplexSolver::Options opt_;
  const std::int32_t m_;

  std::vector<std::vector<Real>> cols_;  ///< dense, column-major
  std::vector<Real> lb_, ub_, cost2_, b_, value_;
  std::vector<bool> at_upper_, in_basis_;
  std::vector<std::int32_t> basis_, slack_of_row_;
  std::vector<std::vector<Real>> binv_;
  std::int32_t num_art_ = 0;
  std::int32_t first_art_ = 0;
  std::int32_t ntotal_ = 0;
  bool phase1_ = false;
  std::int64_t iters_ = 0;
};

}  // namespace

LpSolution SimplexSolver::solve(const LinearProgram& lp) const {
  COSCHED_EXPECTS(lp.num_rows() >= 1);
  COSCHED_EXPECTS(lp.num_vars() >= 1);
  SimplexCore core(lp, options_);
  return core.run();
}

}  // namespace cosched
