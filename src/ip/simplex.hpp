// A from-scratch LP solver: bounded-variable two-phase primal simplex with
// an explicitly maintained basis inverse.
//
// This is the substrate that replaces the commercial/OSS MILP solvers
// (CPLEX/CBC/SCIP/GLPK) the paper benchmarks against in Table III. The
// co-scheduling LPs are small-row/many-column (set partitioning over
// C(n,u) columns), which dense column storage and O(m²) pivots handle
// comfortably at the paper's scales.
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace cosched {

/// min cᵀx  s.t.  row constraints, lb ≤ x ≤ ub (ub may be +infinity).
class LinearProgram {
 public:
  enum class RowType { LE, GE, EQ };

  /// Adds a variable; returns its index.
  std::int32_t add_variable(Real cost, Real lb, Real ub);

  /// Adds a row Σ coeff·x {≤,≥,=} rhs. Variable indices must exist.
  void add_row(std::vector<std::pair<std::int32_t, Real>> coeffs,
               RowType type, Real rhs);

  std::int32_t num_vars() const {
    return static_cast<std::int32_t>(cost_.size());
  }
  std::int32_t num_rows() const {
    return static_cast<std::int32_t>(rows_.size());
  }

  Real cost(std::int32_t j) const { return cost_[static_cast<std::size_t>(j)]; }
  Real lower(std::int32_t j) const { return lb_[static_cast<std::size_t>(j)]; }
  Real upper(std::int32_t j) const { return ub_[static_cast<std::size_t>(j)]; }
  void set_bounds(std::int32_t j, Real lb, Real ub);

  struct Row {
    std::vector<std::pair<std::int32_t, Real>> coeffs;
    RowType type;
    Real rhs;
  };
  const Row& row(std::int32_t i) const {
    return rows_[static_cast<std::size_t>(i)];
  }

 private:
  std::vector<Real> cost_, lb_, ub_;
  std::vector<Row> rows_;
};

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::IterationLimit;
  Real objective = kInfinity;
  std::vector<Real> x;       ///< structural variable values
  std::int64_t iterations = 0;
};

class SimplexSolver {
 public:
  struct Options {
    Real tol = 1e-9;
    std::int64_t max_iterations = 200000;
    /// Consecutive degenerate pivots before switching to Bland's rule.
    std::int64_t bland_threshold = 500;
  };

  SimplexSolver() = default;
  explicit SimplexSolver(Options options) : options_(options) {}

  LpSolution solve(const LinearProgram& lp) const;

 private:
  Options options_;
};

}  // namespace cosched
