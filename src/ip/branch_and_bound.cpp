#include "ip/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/timer.hpp"

namespace cosched {
namespace {

struct Node {
  Real bound;  ///< parent LP objective (root: -inf)
  /// (variable, value) fixings along the path from the root.
  std::vector<std::pair<std::int32_t, std::int8_t>> fixings;
};

struct BestBoundCmp {
  bool operator()(const Node& a, const Node& b) const {
    return a.bound > b.bound;
  }
};

class BnB {
 public:
  BnB(const CoschedIpModel& model, const BnBOptions& opt)
      : model_(model), opt_(opt), lp_(model.lp) {
    // process → columns containing it (for conflict propagation on fix-1).
    std::int32_t max_pid = 0;
    for (const auto& col : model_.columns)
      for (ProcessId p : col) max_pid = std::max(max_pid, p);
    member_cols_.resize(static_cast<std::size_t>(max_pid) + 1);
    for (std::int32_t v = 0; v < model_.num_y; ++v)
      for (ProcessId p : model_.columns[static_cast<std::size_t>(v)])
        member_cols_[static_cast<std::size_t>(p)].push_back(v);
  }

  BnBResult run() {
    WallTimer timer;
    BnBResult result;
    incumbent_ = opt_.warm_start_bound;

    std::priority_queue<Node, std::vector<Node>, BestBoundCmp> best_queue;
    std::vector<Node> dfs_stack;
    auto push_node = [&](Node node) {
      if (opt_.node_order == BnBOptions::NodeOrder::BestBound)
        best_queue.push(std::move(node));
      else
        dfs_stack.push_back(std::move(node));
    };
    auto pop_node = [&]() -> Node {
      if (opt_.node_order == BnBOptions::NodeOrder::BestBound) {
        Node node = best_queue.top();
        best_queue.pop();
        return node;
      }
      Node node = std::move(dfs_stack.back());
      dfs_stack.pop_back();
      return node;
    };
    auto queue_empty = [&]() {
      return best_queue.empty() && dfs_stack.empty();
    };

    push_node(Node{-kInfinity, {}});
    bool exhausted = false;

    while (!queue_empty()) {
      if (opt_.time_limit_seconds > 0.0 &&
          timer.seconds() > opt_.time_limit_seconds) {
        result.timed_out = true;
        break;
      }
      if (opt_.max_nodes > 0 && result.nodes_explored >= opt_.max_nodes) {
        result.timed_out = true;
        break;
      }
      Node node = pop_node();
      if (node.bound >= incumbent_ - opt_.bound_tol) continue;  // pruned
      ++result.nodes_explored;

      std::vector<std::int32_t> touched = apply_fixings(node.fixings);
      SimplexSolver solver(opt_.lp_options);
      LpSolution lp_sol = solver.solve(lp_);
      result.lp_iterations += lp_sol.iterations;
      revert_fixings(touched);

      if (lp_sol.status == LpStatus::Infeasible) continue;
      if (lp_sol.status != LpStatus::Optimal) {
        // Iteration-limited LP: treat conservatively as unexplored bound.
        result.timed_out = true;
        continue;
      }
      if (lp_sol.objective >= incumbent_ - opt_.bound_tol) continue;

      std::int32_t frac = pick_branch_var(lp_sol.x);
      if (frac < 0) {
        // Integral: new incumbent.
        incumbent_ = lp_sol.objective;
        result.feasible = true;
        result.objective = lp_sol.objective;
        result.solution = model_.decode(lp_sol.x, opt_.integrality_tol * 10);
        continue;
      }
      Node child0{lp_sol.objective, node.fixings};
      child0.fixings.push_back({frac, 0});
      Node child1{lp_sol.objective, node.fixings};
      child1.fixings.push_back({frac, 1});
      // DFS dives on the 1-branch first (pushed last).
      push_node(std::move(child0));
      push_node(std::move(child1));
    }
    exhausted = queue_empty() && !result.timed_out;

    result.optimal = result.feasible && exhausted;
    // A warm-start bound that was never beaten is not "our" solution.
    if (!result.feasible) result.objective = kInfinity;
    result.seconds = timer.seconds();
    return result;
  }

 private:
  /// Applies fixings (and fix-1 conflict propagation); returns the touched
  /// variable list for revert.
  std::vector<std::int32_t> apply_fixings(
      const std::vector<std::pair<std::int32_t, std::int8_t>>& fixings) {
    std::vector<std::int32_t> touched;
    auto fix_zero = [&](std::int32_t v) {
      if (lp_.upper(v) == 0.0) return;
      touched.push_back(v);
      lp_.set_bounds(v, 0.0, 0.0);
    };
    for (const auto& [v, val] : fixings) {
      if (val == 1) {
        touched.push_back(v);
        lp_.set_bounds(v, 1.0, 1.0);
        // Columns overlapping v's subset cannot also be chosen.
        for (ProcessId p : model_.columns[static_cast<std::size_t>(v)])
          for (std::int32_t other :
               member_cols_[static_cast<std::size_t>(p)])
            if (other != v) fix_zero(other);
      } else {
        fix_zero(v);
      }
    }
    return touched;
  }

  void revert_fixings(const std::vector<std::int32_t>& touched) {
    for (std::int32_t v : touched) lp_.set_bounds(v, 0.0, 1.0);
  }

  /// Most/first fractional y variable, or -1 if integral.
  std::int32_t pick_branch_var(const std::vector<Real>& x) const {
    std::int32_t best = -1;
    Real best_score = -1.0;
    for (std::int32_t v = 0; v < model_.num_y; ++v) {
      Real val = x[static_cast<std::size_t>(v)];
      Real dist = std::min(val, 1.0 - val);
      if (dist <= opt_.integrality_tol) continue;
      if (opt_.branch_rule == BnBOptions::BranchRule::FirstFractional)
        return v;
      if (dist > best_score) {
        best_score = dist;
        best = v;
      }
    }
    return best;
  }

  const CoschedIpModel& model_;
  const BnBOptions& opt_;
  LinearProgram lp_;  ///< working copy; bounds mutate per node
  std::vector<std::vector<std::int32_t>> member_cols_;
  Real incumbent_ = kInfinity;
};

}  // namespace

BnBResult solve_branch_and_bound(const CoschedIpModel& model,
                                 const BnBOptions& options) {
  BnB solver(model, options);
  return solver.run();
}

}  // namespace cosched
