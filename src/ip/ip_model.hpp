// Integer-programming model of the co-scheduling problem (paper Section II).
//
// The paper's Eq. 2-8 formulation has one decision variable per (process,
// co-runner set) pair; the standard equivalent — and what a practitioner
// would feed a solver — is the set-partitioning form over machine loads:
//
//   variables  y_T ∈ {0,1}     for every u-subset T of processes
//              z_j ≥ 0         for every parallel job j (the Eq. 7 auxiliary
//                              that linearizes the max)
//   minimize   Σ_T s(T)·y_T + Σ_j z_j
//     where s(T) = Σ_{i∈T serial} d(i, T\{i})
//   s.t.       Σ_{T∋i} y_T = 1                          ∀ processes i
//              Σ_{T∋i} d(i,T\{i})·y_T ≤ z_j             ∀ parallel i ∈ job j
//
// Because each process belongs to exactly one chosen T, the z-link rows
// enforce z_j ≥ max over job j's processes — Eq. 7 exactly. With
// Aggregation::SumAllProcesses the z variables disappear and s(T) counts
// every member: Eq. 2.
#pragma once

#include <vector>

#include "core/objective.hpp"
#include "core/problem.hpp"
#include "ip/simplex.hpp"

namespace cosched {

struct CoschedIpModel {
  LinearProgram lp;
  /// columns[v] = the u-subset that variable v selects (v < num_y).
  std::vector<std::vector<ProcessId>> columns;
  std::int32_t num_y = 0;  ///< y variables occupy indices [0, num_y)
  std::int32_t num_z = 0;  ///< z_j at index num_y + parallel_index(j)

  /// Decodes an integral y-vector into machines. `x` must be integral
  /// within `tol`.
  Solution decode(const std::vector<Real>& x, Real tol = 1e-6) const;
};

/// Builds the model. `model` supplies d(i,S); aggregation picks Eq. 2
/// versus Eq. 6/13 semantics.
CoschedIpModel build_ip_model(const Problem& problem,
                              const DegradationModel& model,
                              Aggregation aggregation);

}  // namespace cosched
