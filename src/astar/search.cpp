#include "astar/search.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "graph/condensation.hpp"
#include "graph/level_stats.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/combinatorics.hpp"
#include "util/dynamic_bitset.hpp"
#include "util/timer.hpp"

namespace cosched {
namespace {

struct StateRec {
  DynamicBitset scheduled;
  Real g_serial = 0.0;        ///< summed part of the path distance
  std::vector<Real> par_max;  ///< running max per parallel job (Eq. 13)
  Real g = 0.0;               ///< g_serial + Σ par_max
  std::int32_t parent = -1;
  std::vector<ProcessId> via_node;  ///< node appended to reach this state
  std::int32_t q = 0;               ///< processes scheduled
  bool alive = true;                ///< false once superseded/dominated
};

struct HeapEntry {
  Real f;
  std::int32_t depth;  ///< processes scheduled; deeper first on equal f
  std::int64_t seq;    ///< FIFO tie-break keeps runs deterministic
  std::int32_t idx;
  bool operator>(const HeapEntry& o) const {
    if (f != o.f) return f > o.f;
    if (depth != o.depth) return depth < o.depth;
    return seq > o.seq;
  }
};

class Engine {
 public:
  Engine(const Problem& problem, const SearchOptions& options)
      : problem_(problem),
        options_(options),
        model_(options.use_comm_model ? *problem.full_model
                                      : *problem.contention_model),
        eval_(problem, model_),
        n_(problem.n()),
        u_(problem.u()),
        num_parallel_(problem.batch.parallel_job_count()) {}

  SearchResult run() {
    SearchResult result;
    WallTimer total_timer;
    COSCHED_TRACE_SPAN(search_span, "astar.search", -1.0,
                       options_.heuristic_search ? "variant=HA*"
                                                 : "variant=OA*");
    COSCHED_PROFILE_PHASE(search_phase, "astar.search");

    prepare_level_stats(result.stats);
    condense_ = options_.condense && num_parallel_ > 0;
    mer_cap_ = options_.mer_cap > 0 ? options_.mer_cap : (n_ + u_ - 1) / u_;
    // HA* falls back to beam mode when only approximate level statistics
    // exist (see SearchOptions::beam_width).
    beam_mode_ = options_.beam_width > 0 ||
                 (options_.heuristic_search && !level_stats_.exact() &&
                  options_.heuristic != HeuristicKind::None);
    beam_width_ =
        options_.beam_width > 0 ? options_.beam_width : mer_cap_;

    WallTimer search_timer;
    // Root: nothing scheduled.
    {
      StateRec root;
      root.scheduled = DynamicBitset(static_cast<std::size_t>(n_));
      root.par_max.assign(static_cast<std::size_t>(num_parallel_), 0.0);
      states_.push_back(std::move(root));
      if (!beam_mode_) push_heap(0, /*h=*/full_h(states_[0]));
      table_[states_[0].scheduled] = {0};
    }

    if (beam_mode_) {
      run_beam(result, search_timer);
      stats_.search_seconds = search_timer.seconds();
      result.stats = stats_;
      flush_observability();
      return result;
    }

    while (!heap_.empty()) {
      if (limits_hit(search_timer)) {
        result.timed_out = true;
        break;
      }
      HeapEntry top = heap_.top();
      heap_.pop();
      // Stale entries: records superseded by a cheaper subpath over the
      // same process set. Each record is pushed exactly once.
      if (!states_[static_cast<std::size_t>(top.idx)].alive) continue;

      if (states_[static_cast<std::size_t>(top.idx)].q == n_) {
        reconstruct(top.idx, result);
        break;
      }
      expand(top.idx);
      ++stats_.expanded;
    }

    stats_.search_seconds = search_timer.seconds();
    result.stats = stats_;
    flush_observability();
    return result;
  }

 private:
  /// One batched registry/trace update per solve: a map lookup and a few
  /// relaxed adds, instead of contended increments inside the expansion
  /// loop (the "tracing compiled in but off costs nothing" budget).
  void flush_observability() {
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("cosched_astar_searches_total", "graph searches run")
        .inc();
    reg.counter("cosched_astar_expansions_total", "subpaths expanded")
        .inc(stats_.expanded);
    reg.counter("cosched_astar_generated_total",
                "successor subpaths evaluated")
        .inc(stats_.generated);
    reg.counter("cosched_astar_dismissed_total",
                "successors pruned by dismissal")
        .inc(stats_.dismissed);
    reg.counter("cosched_astar_beam_pruned_total",
                "live candidates cut at beam depth synchronization")
        .inc(stats_.beam_pruned);
    reg.counter("cosched_astar_heuristic_evals_total", "h(v) evaluations")
        .inc(stats_.heuristic_evals);
    COSCHED_TRACE_COUNTER("astar.expansions",
                          static_cast<double>(stats_.expanded));
    COSCHED_TRACE_COUNTER("astar.heuristic_evals",
                          static_cast<double>(stats_.heuristic_evals));
    if (beam_mode_)
      COSCHED_TRACE_COUNTER("astar.beam_pruned",
                            static_cast<double>(stats_.beam_pruned));
  }

  void prepare_level_stats(SearchStats& out) {
    if (options_.heuristic == HeuristicKind::None) return;
    COSCHED_TRACE_SPAN(precompute_span, "astar.precompute");
    COSCHED_PROFILE_PHASE(precompute_phase, "astar.precompute");
    WallTimer timer;
    std::uint64_t total = binomial(static_cast<std::uint64_t>(n_),
                                   static_cast<std::uint64_t>(u_));
    bool exact_ok = total <= options_.max_stats_nodes;
    if (!exact_ok) {
      // Approximate statistics are heuristic: acceptable for HA*, but OA*
      // would silently lose its optimality guarantee — refuse instead.
      COSCHED_EXPECTS(options_.heuristic_search &&
                      options_.heuristic != HeuristicKind::Strategy1);
      level_stats_ = LevelStats::build_approx(eval_, options_.h_weight_mode);
    } else {
      level_stats_ = LevelStats::build_exact(eval_, options_.h_weight_mode,
                                             options_.max_stats_nodes);
    }
    stats_.precompute_seconds = timer.seconds();
    out.precompute_seconds = stats_.precompute_seconds;
  }

  bool limits_hit(const WallTimer& timer) {
    if (options_.max_expansions > 0 &&
        stats_.expanded >= options_.max_expansions)
      return true;
    if (options_.time_limit_seconds > 0.0 &&
        timer.seconds() > options_.time_limit_seconds)
      return true;
    return false;
  }

  /// Depth-synchronized beam search: expand the whole frontier one graph
  /// level at a time, keep the `beam_width_` best (by g + h) distinct
  /// states, repeat. Dismissal/condensation still apply within a depth.
  void run_beam(SearchResult& result, const WallTimer& timer) {
    COSCHED_PROFILE_PHASE(beam_phase, "astar.beam");
    std::vector<std::int32_t> frontier{0};
    const std::int32_t depth_count = n_ / u_;
    for (std::int32_t depth = 0; depth < depth_count; ++depth) {
      beam_next_.clear();
      for (std::int32_t idx : frontier) {
        if (limits_hit(timer)) {
          result.timed_out = true;
          return;
        }
        expand(idx);
        ++stats_.expanded;
      }
      // Two-stage selection. Stage 1: the cheap generation-time h ranks all
      // successors; keep the best 3×width alive states. Stage 2: re-rank
      // those few by g + a greedy-completion estimate — complement-pair the
      // remaining pool (heaviest with lightest) and sum true machine
      // weights — which discriminates partial schedules far better than
      // any per-level bound, at a cost paid only for the shortlist.
      std::sort(beam_next_.begin(), beam_next_.end(),
                [](const std::pair<Real, std::int32_t>& a,
                   const std::pair<Real, std::int32_t>& b) {
                  if (a.first != b.first) return a.first < b.first;
                  return a.second < b.second;
                });
      std::vector<std::pair<Real, std::int32_t>> shortlist;
      for (const auto& [f, idx] : beam_next_) {
        if (!states_[static_cast<std::size_t>(idx)].alive) continue;
        shortlist.push_back({f, idx});
        if (static_cast<std::int32_t>(shortlist.size()) >= 3 * beam_width_)
          break;
      }
      for (auto& [score, idx] : shortlist) {
        const StateRec& rec = states_[static_cast<std::size_t>(idx)];
        score = rec.g + completion_estimate(rec);
      }
      std::sort(shortlist.begin(), shortlist.end(),
                [](const std::pair<Real, std::int32_t>& a,
                   const std::pair<Real, std::int32_t>& b) {
                  if (a.first != b.first) return a.first < b.first;
                  return a.second < b.second;
                });
      frontier.clear();
      for (const auto& [score, idx] : shortlist) {
        frontier.push_back(idx);
        if (static_cast<std::int32_t>(frontier.size()) >= beam_width_)
          break;
      }
      // Everything alive this depth that did not make the frontier is a
      // beam prune (shortlist rejects and shortlist overflow alike).
      std::uint64_t alive_candidates = 0;
      for (const auto& [f, cand_idx] : beam_next_)
        if (states_[static_cast<std::size_t>(cand_idx)].alive)
          ++alive_candidates;
      stats_.beam_pruned += alive_candidates - frontier.size();
      if (frontier.empty()) return;  // should not happen on valid inputs
    }
    // The frontier now holds complete schedules; pick the cheapest.
    std::int32_t best = -1;
    for (std::int32_t idx : frontier) {
      const StateRec& rec = states_[static_cast<std::size_t>(idx)];
      COSCHED_ENSURES(rec.q == n_);
      if (best < 0 || rec.g < states_[static_cast<std::size_t>(best)].g)
        best = idx;
    }
    if (best >= 0) reconstruct(best, result);
  }

  /// Greedy-completion estimate of a partial schedule: deal the unscheduled
  /// pool across the remaining machines in serpentine order of pressure
  /// (1..m, m..1, 1..m, ...) — which near-balances per-machine pressure for
  /// any u — and sum the true machine weights. Ignores the level/lead
  /// structure: it estimates cost, it does not build the actual path.
  Real completion_estimate(const StateRec& rec) {
    thread_local std::vector<ProcessId> pool;
    pool.clear();
    rec.scheduled.collect_clear(pool);
    if (pool.empty()) return 0.0;
    const std::size_t machines = pool.size() / static_cast<std::size_t>(u_);
    if (machines == 0) return 0.0;
    std::sort(pool.begin(), pool.end(), [&](ProcessId a, ProcessId b) {
      Real pa = model_.pressure(a), pb = model_.pressure(b);
      if (pa != pb) return pa > pb;
      return a < b;
    });
    thread_local std::vector<std::vector<ProcessId>> deal;
    deal.assign(machines, {});
    std::size_t idx = 0;
    bool forward = true;
    for (ProcessId p : pool) {
      deal[idx].push_back(p);
      if (forward) {
        if (idx + 1 == machines) forward = false;
        else ++idx;
      } else {
        if (idx == 0) forward = true;
        else --idx;
      }
    }
    Real total = 0.0;
    for (auto& machine : deal) {
      std::sort(machine.begin(), machine.end());
      total += eval_.weight(machine);
    }
    return total;
  }

  // h(v) for a freshly created state; used for the root (expansions compute
  // h incrementally via the per-expansion caches below).
  Real full_h(const StateRec& rec) {
    std::int32_t remaining = n_ - rec.q;
    if (remaining == 0 || options_.heuristic == HeuristicKind::None)
      return 0.0;
    ++stats_.heuristic_evals;
    std::int32_t k = remaining / u_;
    std::vector<ProcessId> unscheduled;
    rec.scheduled.collect_clear(unscheduled);
    if (options_.heuristic == HeuristicKind::Strategy2)
      return level_stats_.strategy2_h(unscheduled, k);
    // Strategy 1 from the root: all levels qualify (level > -1).
    return level_stats_.strategy1_h(-1, k);
  }

  void expand(std::int32_t idx) {
    // Copy what we need: states_ may reallocate while pushing successors.
    const DynamicBitset parent_set = states_[static_cast<std::size_t>(idx)].scheduled;
    const Real parent_g_serial = states_[static_cast<std::size_t>(idx)].g_serial;
    const std::vector<Real> parent_par_max =
        states_[static_cast<std::size_t>(idx)].par_max;
    const std::int32_t parent_q = states_[static_cast<std::size_t>(idx)].q;

    const ProcessId lead =
        static_cast<ProcessId>(parent_set.find_first_clear());
    COSCHED_ENSURES(lead < n_);

    // Unscheduled ids beyond the lead form the combination pool.
    std::vector<ProcessId> pool;
    pool.reserve(static_cast<std::size_t>(n_ - parent_q - 1));
    for (std::size_t p = parent_set.find_next_clear(
             static_cast<std::size_t>(lead) + 1);
         p < static_cast<std::size_t>(n_);
         p = parent_set.find_next_clear(p + 1))
      pool.push_back(static_cast<ProcessId>(p));

    const std::int32_t remaining_after = n_ - parent_q - u_;
    const std::int32_t k_rem = remaining_after / u_;

    // Per-expansion heuristic caches.
    Real h1 = 0.0;
    if (options_.heuristic == HeuristicKind::Strategy1 && remaining_after > 0)
      h1 = level_stats_.strategy1_h(lead, k_rem);
    std::vector<std::pair<Real, ProcessId>> s2_sorted;
    if (options_.heuristic == HeuristicKind::Strategy2 &&
        remaining_after > 0) {
      s2_sorted.reserve(pool.size());
      for (ProcessId p : pool) {
        if (p + u_ > n_) continue;
        Real w = level_stats_.min_level_weight(p);
        if (w < kInfinity) s2_sorted.emplace_back(w, p);
      }
      std::sort(s2_sorted.begin(), s2_sorted.end());
    }

    // Beam-mode h: pool-average completion estimate. Strategy 1/2 sum the
    // *cheapest* remaining level minima — an admissible bound that cannot
    // penalize a successor for leaving all the heavy processes bunched at
    // the tail. The beam instead estimates the remaining cost as
    // k_rem × weight(representative machine), where the representative
    // machine holds the u pool processes whose pressure is closest to the
    // post-successor pool mean. Inadmissible, but the beam is heuristic
    // anyway, and this is what makes it balance load end to end.
    std::vector<ProcessId> pool_by_pressure;
    Real pool_pressure_sum = 0.0;
    if (beam_mode_ && remaining_after > 0) {
      pool_by_pressure = pool;
      std::sort(pool_by_pressure.begin(), pool_by_pressure.end(),
                [&](ProcessId a, ProcessId b) {
                  Real pa = model_.pressure(a), pb = model_.pressure(b);
                  if (pa != pb) return pa < pb;
                  return a < b;
                });
      for (ProcessId p : pool) pool_pressure_sum += model_.pressure(p);
    }

    auto beam_h = [&](std::span<const ProcessId> node) -> Real {
      if (remaining_after == 0) return 0.0;
      Real sum = pool_pressure_sum;
      for (ProcessId m : node)
        if (m != lead) sum -= model_.pressure(m);
      const Real mean =
          sum / static_cast<Real>(remaining_after);
      // u pool processes with pressure nearest the mean, skipping the
      // successor's members.
      auto in_node = [&](ProcessId p) {
        for (ProcessId m : node)
          if (m == p) return true;
        return false;
      };
      auto it = std::lower_bound(
          pool_by_pressure.begin(), pool_by_pressure.end(), mean,
          [&](ProcessId p, Real v) { return model_.pressure(p) < v; });
      std::ptrdiff_t hi = it - pool_by_pressure.begin();
      std::ptrdiff_t lo = hi - 1;
      thread_local std::vector<ProcessId> rep;
      rep.clear();
      const auto size =
          static_cast<std::ptrdiff_t>(pool_by_pressure.size());
      while (static_cast<std::int32_t>(rep.size()) < u_ &&
             (lo >= 0 || hi < size)) {
        bool take_hi;
        if (lo < 0) take_hi = true;
        else if (hi >= size) take_hi = false;
        else {
          Real dlo = mean - model_.pressure(pool_by_pressure[
                                static_cast<std::size_t>(lo)]);
          Real dhi = model_.pressure(pool_by_pressure[
                         static_cast<std::size_t>(hi)]) - mean;
          take_hi = dhi < dlo;
        }
        ProcessId cand = take_hi
                             ? pool_by_pressure[static_cast<std::size_t>(hi++)]
                             : pool_by_pressure[static_cast<std::size_t>(lo--)];
        if (!in_node(cand)) rep.push_back(cand);
      }
      if (rep.empty()) return 0.0;
      std::sort(rep.begin(), rep.end());
      return static_cast<Real>(k_rem) * eval_.weight(rep);
    };

    auto successor_h = [&](std::span<const ProcessId> node) -> Real {
      if (remaining_after == 0) return 0.0;
      ++stats_.heuristic_evals;
      if (beam_mode_) return beam_h(node);
      switch (options_.heuristic) {
        case HeuristicKind::None: return 0.0;
        case HeuristicKind::Strategy1: return h1;
        case HeuristicKind::Strategy2: {
          // Sum the k_rem smallest level minima over ids unscheduled after
          // taking `node` (walk the sorted cache, skipping node members).
          Real h = 0.0;
          std::int32_t taken = 0;
          for (const auto& [w, p] : s2_sorted) {
            bool in_node = false;
            for (ProcessId m : node)
              if (m == p) {
                in_node = true;
                break;
              }
            if (in_node) continue;
            h += w;
            if (++taken == k_rem) break;
          }
          return h;
        }
      }
      return 0.0;
    };

    auto make_successor = [&](std::span<const ProcessId> node,
                              const std::vector<Real>& member_d) {
      ++stats_.generated;
      Real g_serial = parent_g_serial;
      thread_local std::vector<Real> par_max;
      par_max = parent_par_max;
      for (std::size_t m = 0; m < node.size(); ++m) {
        ProcessId p = node[m];
        std::int32_t pj =
            options_.aggregation == Aggregation::MaxPerParallelJob
                ? problem_.batch.parallel_index_of(p)
                : -1;
        if (pj >= 0) {
          auto& mx = par_max[static_cast<std::size_t>(pj)];
          if (member_d[m] > mx) mx = member_d[m];
        } else {
          g_serial += member_d[m];
        }
      }
      Real g = g_serial;
      for (Real mx : par_max) g += mx;

      DynamicBitset set = parent_set;
      for (ProcessId p : node) set.set(static_cast<std::size_t>(p));

      if (!admit(set, g_serial, par_max, g)) {
        ++stats_.dismissed;
        return;
      }

      StateRec rec;
      rec.scheduled = std::move(set);
      rec.g_serial = g_serial;
      rec.par_max = par_max;
      rec.g = g;
      rec.parent = idx;
      rec.via_node.assign(node.begin(), node.end());
      rec.q = parent_q + u_;
      std::int32_t new_idx = static_cast<std::int32_t>(states_.size());
      register_record(new_idx, rec);
      Real h = successor_h(node);
      states_.push_back(std::move(rec));
      if (beam_mode_) {
        beam_next_.push_back({g + h, new_idx});
        ++stats_.visited_paths;
      } else {
        push_heap(new_idx, h);
      }
    };

    std::unordered_set<CondensationKey, CondensationKeyHash> seen_keys;
    auto condensed_duplicate = [&](std::span<const ProcessId> node) {
      if (!condense_) return false;
      CondensationKey key =
          condensation_key(node, problem_.batch, problem_.topology.get());
      if (!seen_keys.insert(std::move(key)).second) {
        ++stats_.condensed_skips;
        return true;
      }
      return false;
    };

    if (options_.heuristic_search) {
      std::int32_t request = condense_ ? mer_cap_ * 2 : mer_cap_;
      auto candidates =
          k_best_valid_nodes(eval_, lead, pool, u_, request,
                             options_.selection, options_.surrogate_overgen);
      std::int32_t attempted = 0;
      for (const auto& cand : candidates) {
        if (condensed_duplicate(cand.node)) continue;
        make_successor(cand.node, cand.member_d);
        if (++attempted == mer_cap_) break;
      }
      if (u_ >= 2 &&
          static_cast<std::int32_t>(pool.size()) >= u_ - 1) {
        // Diversity candidates (all HA* modes): the k cheapest nodes above
        // all pair the lead with light partners, so heavy processes would
        // pile up in the tail machines — on threshold-shaped landscapes
        // that costs tens of percent. The pressure-target family sweeps the
        // whole spectrum of co-runner loads: variant j aims for a total
        // partner pressure τ_j between "u-1 lightest" and "u-1 heaviest",
        // picking, slot by slot, the unused process closest to the
        // remaining per-slot budget. The search's f-ordering (or the
        // beam's g+h ranking) arbitrates between the families.
        if (pool_by_pressure.empty()) {
          pool_by_pressure = pool;
          std::sort(pool_by_pressure.begin(), pool_by_pressure.end(),
                    [&](ProcessId a, ProcessId b) {
                      Real pa = model_.pressure(a), pb = model_.pressure(b);
                      if (pa != pb) return pa < pb;
                      return a < b;
                    });
        }
        const auto pool_size =
            static_cast<std::int32_t>(pool_by_pressure.size());
        std::vector<Real> pool_pressures(
            static_cast<std::size_t>(pool_size));
        for (std::int32_t t = 0; t < pool_size; ++t)
          pool_pressures[static_cast<std::size_t>(t)] = model_.pressure(
              pool_by_pressure[static_cast<std::size_t>(t)]);
        Real lo_sum = 0.0, hi_sum = 0.0;
        for (std::int32_t t = 0; t < u_ - 1; ++t) {
          lo_sum += pool_pressures[static_cast<std::size_t>(t)];
          hi_sum +=
              pool_pressures[static_cast<std::size_t>(pool_size - 1 - t)];
        }
        std::vector<ProcessId> node;
        std::vector<Real> d_scratch;
        std::vector<bool> used(static_cast<std::size_t>(pool_size));
        const std::int32_t variants = std::max<std::int32_t>(2, mer_cap_);
        for (std::int32_t j = 0; j < variants; ++j) {
          Real budget = lo_sum + (hi_sum - lo_sum) *
                                     static_cast<Real>(j) /
                                     static_cast<Real>(variants - 1);
          std::fill(used.begin(), used.end(), false);
          node.clear();
          node.push_back(lead);
          for (std::int32_t slot = 0; slot < u_ - 1; ++slot) {
            Real desired = budget / static_cast<Real>(u_ - 1 - slot);
            // Nearest unused pool process by pressure: binary search, then
            // probe outward (used entries cluster little, so this is ~O(1)).
            auto it = std::lower_bound(pool_pressures.begin(),
                                       pool_pressures.end(), desired);
            std::int32_t hi = static_cast<std::int32_t>(
                it - pool_pressures.begin());
            std::int32_t lo = hi - 1;
            std::int32_t best = -1;
            while (lo >= 0 || hi < pool_size) {
              bool lo_ok = lo >= 0 && !used[static_cast<std::size_t>(lo)];
              bool hi_ok =
                  hi < pool_size && !used[static_cast<std::size_t>(hi)];
              if (lo_ok && hi_ok) {
                Real dlo = desired - pool_pressures[static_cast<std::size_t>(lo)];
                Real dhi = pool_pressures[static_cast<std::size_t>(hi)] - desired;
                best = dhi < dlo ? hi : lo;
                break;
              }
              if (lo_ok) { best = lo; break; }
              if (hi_ok) { best = hi; break; }
              if (lo >= 0) --lo;
              if (hi < pool_size) ++hi;
            }
            COSCHED_ENSURES(best >= 0);
            used[static_cast<std::size_t>(best)] = true;
            ProcessId chosen =
                pool_by_pressure[static_cast<std::size_t>(best)];
            node.push_back(chosen);
            budget -= pool_pressures[static_cast<std::size_t>(best)];
          }
          std::sort(node.begin(), node.end());
          if (condensed_duplicate(node)) continue;
          eval_.weight(node, d_scratch);
          make_successor(node, d_scratch);
        }
      }
    } else {
      // Generate successors in ascending node-weight order (the paper keeps
      // levels weight-sorted). Correctness does not depend on the order,
      // but on f-plateaus the FIFO tie-break then prefers cheap nodes, so
      // the optimal path returned among co-optimal ones is the one a
      // weight-sorted search finds — which the Fig. 5 MER statistics
      // measure.
      struct Cand {
        std::vector<ProcessId> node;
        std::vector<Real> d;
        Real weight;
      };
      std::vector<Cand> cands;
      std::vector<Real> d_scratch;
      for_each_valid_node(lead, pool, u_,
                          [&](std::span<const ProcessId> node) {
                            if (condensed_duplicate(node)) return true;
                            Real w = eval_.weight(node, d_scratch);
                            cands.push_back(
                                Cand{{node.begin(), node.end()},
                                     d_scratch, w});
                            return true;
                          });
      std::sort(cands.begin(), cands.end(),
                [](const Cand& a, const Cand& b) {
                  if (a.weight != b.weight) return a.weight < b.weight;
                  return a.node < b.node;
                });
      for (const Cand& c : cands) make_successor(c.node, c.d);
    }
  }

  /// Dismissal check. Returns true if the successor must be kept, in which
  /// case any superseded/dominated records have been retired already.
  bool admit(const DynamicBitset& set, Real g_serial,
             const std::vector<Real>& par_max, Real g) {
    auto it = table_.find(set);
    if (it == table_.end()) return true;
    auto& entries = it->second;
    if (options_.dismiss == DismissPolicy::PaperMinDistance) {
      COSCHED_ENSURES(entries.size() == 1);
      StateRec& existing = states_[static_cast<std::size_t>(entries[0])];
      if (g < existing.g) {
        existing.alive = false;
        return true;
      }
      return false;
    }
    // Pareto dominance over (g_serial, par_max...).
    auto dominates = [](Real gs_a, const std::vector<Real>& pm_a, Real gs_b,
                        const std::vector<Real>& pm_b) {
      if (gs_a > gs_b) return false;
      for (std::size_t j = 0; j < pm_a.size(); ++j)
        if (pm_a[j] > pm_b[j]) return false;
      return true;
    };
    for (std::int32_t e : entries) {
      const StateRec& ex = states_[static_cast<std::size_t>(e)];
      if (ex.alive &&
          dominates(ex.g_serial, ex.par_max, g_serial, par_max))
        return false;
    }
    for (std::int32_t e : entries) {
      StateRec& ex = states_[static_cast<std::size_t>(e)];
      if (ex.alive && dominates(g_serial, par_max, ex.g_serial, ex.par_max))
        ex.alive = false;
    }
    (void)g;
    return true;
  }

  /// Records the accepted successor in the dismissal table.
  void register_record(std::int32_t new_idx, const StateRec& rec) {
    auto& entries = table_[rec.scheduled];
    if (options_.dismiss == DismissPolicy::PaperMinDistance) {
      entries.assign(1, new_idx);
    } else {
      std::erase_if(entries, [&](std::int32_t e) {
        return !states_[static_cast<std::size_t>(e)].alive;
      });
      entries.push_back(new_idx);
    }
  }

  void push_heap(std::int32_t idx, Real h) {
    heap_.push(HeapEntry{states_[static_cast<std::size_t>(idx)].g + h,
                         states_[static_cast<std::size_t>(idx)].q, seq_++,
                         idx});
    ++stats_.visited_paths;
  }

  void reconstruct(std::int32_t idx, SearchResult& result) {
    result.found = true;
    result.objective = states_[static_cast<std::size_t>(idx)].g;
    std::vector<std::vector<ProcessId>> machines;
    for (std::int32_t cur = idx; cur >= 0;
         cur = states_[static_cast<std::size_t>(cur)].parent) {
      const auto& node = states_[static_cast<std::size_t>(cur)].via_node;
      if (!node.empty()) machines.push_back(node);
    }
    std::reverse(machines.begin(), machines.end());
    result.solution.machines = std::move(machines);
    result.solution.canonicalize();
  }

  const Problem& problem_;
  SearchOptions options_;
  const DegradationModel& model_;
  NodeEvaluator eval_;
  const std::int32_t n_;
  const std::int32_t u_;
  const std::int32_t num_parallel_;

  LevelStats level_stats_;
  bool condense_ = false;
  std::int32_t mer_cap_ = 0;
  bool beam_mode_ = false;
  std::int32_t beam_width_ = 0;
  std::vector<std::pair<Real, std::int32_t>> beam_next_;

  std::vector<StateRec> states_;
  std::unordered_map<DynamicBitset, std::vector<std::int32_t>,
                     DynamicBitsetHash>
      table_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap_;
  std::int64_t seq_ = 0;
  SearchStats stats_;
};

}  // namespace

CoScheduleSearch::CoScheduleSearch(const Problem& problem,
                                   SearchOptions options)
    : problem_(problem), options_(options) {
  problem.check();
}

SearchResult CoScheduleSearch::run() {
  Engine engine(problem_, options_);
  return engine.run();
}

SearchResult solve_oastar(const Problem& problem, SearchOptions options) {
  options.heuristic_search = false;
  return CoScheduleSearch(problem, options).run();
}

SearchResult solve_hastar(const Problem& problem, SearchOptions options) {
  options.heuristic_search = true;
  return CoScheduleSearch(problem, options).run();
}

SearchResult solve_osvp(const Problem& problem, SearchOptions options) {
  options.heuristic = HeuristicKind::None;
  options.heuristic_search = false;
  return CoScheduleSearch(problem, options).run();
}

}  // namespace cosched
