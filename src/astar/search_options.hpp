// Options, statistics and results of the co-scheduling graph search.
#pragma once

#include <cstdint>

#include "core/node_eval.hpp"
#include "core/objective.hpp"
#include "graph/node_enumerator.hpp"

namespace cosched {

/// h(v) estimation strategy (paper Section III-D). None turns the search
/// into Dijkstra over valid paths — exactly the O-SVP algorithm of the
/// authors' earlier work [33], used as a baseline in Tables III/IV.
enum class HeuristicKind { None, Strategy1, Strategy2 };

/// How subpaths over the same process set are dismissed (Section III-C1).
enum class DismissPolicy {
  /// The paper's strategy: keep only the minimum-distance subpath per
  /// process set (Theorem 1). Exact for serial-only batches.
  PaperMinDistance,
  /// Exact also with parallel jobs: keep the Pareto front over
  /// (serial-part distance, per-parallel-job running maxima).
  ParetoDominance,
};

struct SearchOptions {
  /// Path-distance aggregation: Eq. 12 (SumAllProcesses → the OA*-SE
  /// variant) or Eq. 13 (MaxPerParallelJob → OA*-PE / OA*-PC).
  Aggregation aggregation = Aggregation::MaxPerParallelJob;
  /// Use the communication-combined model (Eq. 9, OA*-PC) or contention
  /// only (OA*-PE)?
  bool use_comm_model = true;

  HeuristicKind heuristic = HeuristicKind::Strategy2;
  HWeightMode h_weight_mode = HWeightMode::Admissible;
  DismissPolicy dismiss = DismissPolicy::PaperMinDistance;

  /// Communication-aware process condensation (Section III-E).
  bool condense = true;

  /// HA*: cap the valid nodes attempted per level at `mer_cap`
  /// (0 → the paper's MER function ⌈n/u⌉). OA* when heuristic_search off.
  bool heuristic_search = false;
  std::int32_t mer_cap = 0;

  /// Depth-synchronized beam search width. 0 = pure (heuristic) A*.
  /// HA* switches to beam mode automatically (width = mer_cap) at scales
  /// where exact level statistics are infeasible: with only approximate
  /// h(v), best-first search over thousands of processes floods the open
  /// list, whereas a beam costs a predictable m × width × mer_cap node
  /// evaluations (the Fig. 12/13 regime).
  std::int32_t beam_width = 0;
  CandidateSelection selection = CandidateSelection::Auto;
  std::size_t surrogate_overgen = 4;

  /// Exact level statistics are built only when C(n,u) fits this budget;
  /// beyond it HA* falls back to approximate stats and Strategy1 (which
  /// requires the full node list) is rejected.
  std::uint64_t max_stats_nodes = 5'000'000;

  std::uint64_t max_expansions = 0;   ///< 0 = unlimited
  Real time_limit_seconds = 0.0;      ///< 0 = unlimited
};

struct SearchStats {
  std::uint64_t expanded = 0;         ///< subpaths popped and expanded
  std::uint64_t generated = 0;        ///< successor subpaths evaluated
  std::uint64_t visited_paths = 0;    ///< subpaths entered into the priority
                                      ///< list (the Table IV metric)
  std::uint64_t dismissed = 0;        ///< successors pruned by the dismissal
  std::uint64_t condensed_skips = 0;  ///< successors pruned by condensation
  std::uint64_t beam_pruned = 0;      ///< live candidates cut at beam depth
                                      ///< synchronization
  std::uint64_t heuristic_evals = 0;  ///< h(v) evaluations (root + successor)
  double precompute_seconds = 0.0;    ///< level statistics construction
  double search_seconds = 0.0;
  double total_seconds() const { return precompute_seconds + search_seconds; }
};

struct SearchResult {
  bool found = false;
  bool timed_out = false;
  Solution solution;
  /// Path distance of the returned solution under the search's own
  /// aggregation/model (Eq. 12/13). Re-evaluate with evaluate_solution()
  /// to compare variants under a common objective.
  Real objective = kInfinity;
  SearchStats stats;
};

}  // namespace cosched
