// The extended A*-search over the co-scheduling graph (paper Section III),
// covering three published algorithms through its options:
//
//   * OA*  — optimal A*: full expansion, Strategy 1/2 heuristics, dismissal
//            over process sets, condensation (solve_oastar).
//   * HA*  — heuristic A*: per-level candidate cap of n/u, the paper's MER
//            function (solve_hastar, Section IV).
//   * O-SVP — Dijkstra over valid paths, the baseline from the authors'
//            MASCOTS'14 work [33]: OA* with h ≡ 0 (solve_osvp).
//
// The search state is the *set of scheduled processes* plus the per-
// parallel-job running maximum degradations; see DESIGN.md §3 for why the
// per-set dismissal needs those maxima (DismissPolicy).
#pragma once

#include "astar/search_options.hpp"
#include "core/problem.hpp"

namespace cosched {

class CoScheduleSearch {
 public:
  CoScheduleSearch(const Problem& problem, SearchOptions options);

  /// Runs the search to completion (or limit). Reentrant: each call starts
  /// fresh.
  SearchResult run();

 private:
  const Problem& problem_;
  SearchOptions options_;
};

/// Optimal A*-search (paper Section III).
SearchResult solve_oastar(const Problem& problem, SearchOptions options = {});

/// Heuristic A*-search (paper Section IV). `options.heuristic_search` is
/// forced on.
SearchResult solve_hastar(const Problem& problem, SearchOptions options = {});

/// O-SVP baseline: Dijkstra over valid paths (h ≡ 0, no candidate cap).
SearchResult solve_osvp(const Problem& problem, SearchOptions options = {});

}  // namespace cosched
