#include "astar/mer.hpp"

#include <algorithm>

#include "graph/node_enumerator.hpp"

namespace cosched {

MerResult compute_mer(const NodeEvaluator& eval, Solution solution) {
  const Problem& problem = eval.problem();
  const std::int32_t n = problem.n();
  const std::int32_t u = problem.u();
  solution.canonicalize();

  MerResult result;
  std::vector<bool> scheduled_before(static_cast<std::size_t>(n), false);
  std::vector<Real> d_scratch;

  for (const auto& path_node : solution.machines) {
    const ProcessId lead = path_node[0];
    const Real own_weight = eval.weight(path_node, d_scratch);

    // Enumerate the whole level (all (u-1)-subsets of ids > lead, scheduled
    // or not — the level is a static part of the graph).
    std::vector<ProcessId> level_pool;
    for (ProcessId p = lead + 1; p < n; ++p) level_pool.push_back(p);

    // Rank = 1 + number of level nodes *strictly* cheaper: equal-weight
    // nodes are interchangeable in a weight-sorted level, so the path node
    // is credited with the first position of its tie class (a weight-aware
    // HA* can always attempt it there). Strictness uses a small relative
    // epsilon so float noise does not split tie classes.
    std::int64_t cheaper = 0;
    std::int64_t cheaper_invalid = 0;
    const Real tie_eps =
        1e-9 * std::max<Real>(1.0, std::abs(own_weight));
    for_each_valid_node(
        lead, level_pool, u, [&](std::span<const ProcessId> node) {
          Real w = eval.weight(node, d_scratch);
          bool before = w < own_weight - tie_eps;
          if (before) {
            ++cheaper;
            for (ProcessId p : node) {
              if (scheduled_before[static_cast<std::size_t>(p)]) {
                ++cheaper_invalid;
                break;
              }
            }
          }
          return true;
        });

    std::int32_t rank = static_cast<std::int32_t>(cheaper) + 1;
    std::int32_t eff =
        rank - static_cast<std::int32_t>(cheaper_invalid);
    result.ranks.push_back(rank);
    result.effective_ranks.push_back(eff);
    result.mer = std::max(result.mer, eff);

    for (ProcessId p : path_node)
      scheduled_before[static_cast<std::size_t>(p)] = true;
  }
  return result;
}

}  // namespace cosched
