// MER — Maximum Effective Rank of a shortest path (paper Section IV).
//
// For each node on the optimal path, its *rank* i is its position in its
// graph level when the level is sorted ascending by node weight; j of the
// i-1 cheaper nodes are invalid w.r.t. the processes scheduled by the path
// prefix; the *effective rank* is i - j. MER is the maximum effective rank
// over the path's nodes. The HA* trimming rests on the statistical
// observation (Fig. 5) that MER rarely exceeds n/u.
#pragma once

#include <cstdint>
#include <vector>

#include "core/node_eval.hpp"
#include "core/objective.hpp"

namespace cosched {

struct MerResult {
  std::int32_t mer = 0;
  std::vector<std::int32_t> effective_ranks;  ///< one per path node
  std::vector<std::int32_t> ranks;            ///< raw ranks i
};

/// Computes MER for `solution` (one machine = one path node). The solution
/// is canonicalized internally so machines appear in level order. The
/// evaluation enumerates each node's graph level, so it is only feasible
/// when C(n-1, u-1) is modest (the Fig. 5 scales).
MerResult compute_mer(const NodeEvaluator& eval, Solution solution);

}  // namespace cosched
