#include "net/frame.hpp"

#include <cstring>

namespace cosched {

namespace {

void put_u32_be(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

std::uint32_t get_u32_be(const std::uint8_t* in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

FrameStatus from_net(NetStatus st, FrameStatus on_closed) {
  switch (st) {
    case NetStatus::Ok: return FrameStatus::Ok;
    case NetStatus::Timeout: return FrameStatus::Timeout;
    case NetStatus::Closed: return on_closed;
    case NetStatus::Refused:
    case NetStatus::Error: return FrameStatus::Error;
  }
  return FrameStatus::Error;
}

}  // namespace

const char* to_string(FrameStatus status) {
  switch (status) {
    case FrameStatus::Ok: return "ok";
    case FrameStatus::Closed: return "closed";
    case FrameStatus::Truncated: return "truncated";
    case FrameStatus::Timeout: return "timeout";
    case FrameStatus::BadMagic: return "bad-magic";
    case FrameStatus::Oversized: return "oversized";
    case FrameStatus::Error: return "error";
  }
  return "?";
}

FrameStatus write_frame(Socket& socket, const std::uint8_t* payload,
                        std::size_t len, const Deadline& deadline) {
  std::uint8_t header[8];
  put_u32_be(header, kFrameMagic);
  put_u32_be(header + 4, static_cast<std::uint32_t>(len));
  // One buffered send: header and payload in a single syscall when small.
  std::vector<std::uint8_t> wire(sizeof(header) + len);
  std::memcpy(wire.data(), header, sizeof(header));
  if (len > 0) std::memcpy(wire.data() + sizeof(header), payload, len);
  NetStatus st = socket.send_all(wire.data(), wire.size(), deadline);
  return from_net(st, FrameStatus::Truncated);
}

FrameStatus write_frame(Socket& socket,
                        const std::vector<std::uint8_t>& payload,
                        const Deadline& deadline) {
  return write_frame(socket, payload.data(), payload.size(), deadline);
}

FrameStatus read_frame(Socket& socket, std::vector<std::uint8_t>& payload,
                       const Deadline& deadline, std::size_t max_payload) {
  std::uint8_t header[8];
  // The first header byte decides Closed vs Truncated: recv_all reports
  // Closed on EOF wherever it happens, so read byte 0 separately.
  NetStatus st = socket.recv_all(header, 1, deadline);
  if (st != NetStatus::Ok) return from_net(st, FrameStatus::Closed);
  st = socket.recv_all(header + 1, sizeof(header) - 1, deadline);
  if (st != NetStatus::Ok) return from_net(st, FrameStatus::Truncated);

  if (get_u32_be(header) != kFrameMagic) return FrameStatus::BadMagic;
  std::uint32_t len = get_u32_be(header + 4);
  if (len > max_payload) return FrameStatus::Oversized;

  payload.assign(len, 0);
  if (len > 0) {
    st = socket.recv_all(payload.data(), len, deadline);
    if (st != NetStatus::Ok) return from_net(st, FrameStatus::Truncated);
  }
  return FrameStatus::Ok;
}

}  // namespace cosched
