// Portable POSIX TCP socket wrapper for the RPC front-end.
//
// Design rules, in order of importance:
//  * RAII — a Socket owns exactly one file descriptor; moves transfer it,
//    destruction closes it. No fd ever leaks past a throw.
//  * deadlines, not sleeps — every blocking operation takes a Deadline and
//    is implemented as poll() + non-blocking I/O, so a hung peer turns into
//    NetStatus::Timeout instead of a stuck worker thread.
//  * status codes, not exceptions — transport failures are expected events
//    (peers disconnect mid-request all the time); callers branch on
//    NetStatus and decide whether to retry, close or report.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace cosched {

/// Outcome of a transport operation.
enum class NetStatus {
  Ok,
  Timeout,  ///< the deadline expired before the operation completed
  Closed,   ///< orderly shutdown by the peer (EOF) or on a closed socket
  Refused,  ///< connection refused / unreachable
  Error,    ///< any other socket-level failure (errno preserved in message)
};

const char* to_string(NetStatus status);

/// Absolute point in steady time after which blocking operations give up.
/// Deadline::never() never expires; Deadline::after(seconds) is the usual
/// constructor ("this request has 2 s of budget left").
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  static Deadline never() { return Deadline(Clock::time_point::max()); }
  static Deadline after(double seconds);
  static Deadline at(Clock::time_point when) { return Deadline(when); }

  bool expired() const;
  /// Remaining budget in milliseconds, clamped to [0, INT_MAX]; -1 = never.
  int remaining_ms() const;

 private:
  explicit Deadline(Clock::time_point when) : when_(when) {}
  Clock::time_point when_;
};

/// Move-only owner of one TCP socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Listening socket bound to `host`:`port` (port 0 = ephemeral; read the
  /// chosen one back with local_port()). SO_REUSEADDR is set; the socket is
  /// non-blocking so accept loops can poll.
  static Socket listen_on(const std::string& host, std::uint16_t port,
                          int backlog, NetStatus& status);

  /// Accepts one pending connection, waiting at most until `deadline`.
  /// The returned socket is blocking-mode with TCP_NODELAY set.
  Socket accept_connection(const Deadline& deadline, NetStatus& status);

  /// Non-blocking connect with a deadline, then back to blocking mode with
  /// TCP_NODELAY.
  static Socket connect_to(const std::string& host, std::uint16_t port,
                           const Deadline& deadline, NetStatus& status);

  /// Sends exactly `len` bytes or reports why it could not.
  NetStatus send_all(const void* data, std::size_t len,
                     const Deadline& deadline);
  /// Receives exactly `len` bytes; NetStatus::Closed on a clean EOF before
  /// the first byte *and* on a mid-buffer EOF (the frame layer distinguishes
  /// the two by how much it had already read).
  NetStatus recv_all(void* data, std::size_t len, const Deadline& deadline);

  /// Receives at most `max_len` bytes — whatever one recv() returns once
  /// the socket is readable. For self-delimiting text protocols (the
  /// /metrics HTTP endpoint) where the total length is unknown up front.
  /// `received` is 0 on any non-Ok status; Closed = clean peer EOF.
  NetStatus recv_some(void* data, std::size_t max_len, std::size_t& received,
                      const Deadline& deadline);

  /// Waits until the socket is readable. NetStatus::Ok means "poll says
  /// readable" — a subsequent recv may still return 0 (peer closed).
  NetStatus wait_readable(const Deadline& deadline);

  /// Local port (after listen_on/connect); 0 on error.
  std::uint16_t local_port() const;

  /// Disables further sends, letting the peer observe a clean EOF.
  void shutdown_send();

 private:
  int fd_ = -1;
};

}  // namespace cosched
