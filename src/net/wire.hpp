// Bounds-checked binary serialization for frame payloads.
//
// Big-endian, fixed-width integers; Reals travel as their IEEE-754 bit
// pattern in a u64 so values round-trip exactly (the loopback-equivalence
// test compares metrics byte for byte). Strings are u32 length + bytes.
//
// WireReader never throws on malformed input: every getter returns a
// zero value once the reader has failed, and decoders check ok() at the
// end. This keeps "peer sent garbage" on the error-status path rather than
// the exception path.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace cosched {

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_be(v, 2); }
  void u32(std::uint32_t v) { append_be(v, 4); }
  void u64(std::uint64_t v) { append_be(v, 8); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void real(Real v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// Appends pre-encoded bytes verbatim (no length prefix) — used to nest
  /// an already-encoded body inside an envelope.
  void bytes_raw(const std::vector<std::uint8_t>& b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void append_be(std::uint64_t v, int width) {
    for (int i = width - 1; i >= 0; --i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(read_be(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(read_be(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(read_be(4)); }
  std::uint64_t u64() { return read_be(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  Real real() { return std::bit_cast<Real>(u64()); }
  bool boolean() { return u8() != 0; }
  std::string str() {
    std::uint32_t n = u32();
    if (failed_ || n > size_ - pos_) {
      failed_ = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  /// All reads so far were in bounds *and* nothing is left unread.
  bool complete() const { return !failed_ && pos_ == size_; }
  bool ok() const { return !failed_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  std::uint64_t read_be(int width) {
    if (failed_ || static_cast<std::size_t>(width) > size_ - pos_) {
      failed_ = true;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < width; ++i) v = (v << 8) | data_[pos_++];
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace cosched
