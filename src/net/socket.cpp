#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstring>

namespace cosched {

namespace {

bool set_nonblocking(int fd, bool on) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  if (on)
    flags |= O_NONBLOCK;
  else
    flags &= ~O_NONBLOCK;
  return ::fcntl(fd, F_SETFL, flags) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// poll() one fd for `events`, honouring the deadline and EINTR.
NetStatus poll_fd(int fd, short events, const Deadline& deadline) {
  while (true) {
    int budget = deadline.remaining_ms();
    if (budget == 0) return NetStatus::Timeout;
    struct pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    int rc = ::poll(&p, 1, budget);
    if (rc > 0) {
      if (p.revents & (POLLERR | POLLNVAL)) return NetStatus::Error;
      return NetStatus::Ok;  // readable/writable or HUP (recv sees the EOF)
    }
    if (rc == 0) return NetStatus::Timeout;
    if (errno != EINTR) return NetStatus::Error;
  }
}

bool parse_address(const std::string& host, std::uint16_t port,
                   sockaddr_in& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* h = host.empty() ? "127.0.0.1" : host.c_str();
  return ::inet_pton(AF_INET, h, &addr.sin_addr) == 1;
}

}  // namespace

const char* to_string(NetStatus status) {
  switch (status) {
    case NetStatus::Ok: return "ok";
    case NetStatus::Timeout: return "timeout";
    case NetStatus::Closed: return "closed";
    case NetStatus::Refused: return "refused";
    case NetStatus::Error: return "error";
  }
  return "?";
}

Deadline Deadline::after(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  auto delta = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
  return Deadline(Clock::now() + delta);
}

bool Deadline::expired() const {
  return when_ != Clock::time_point::max() && Clock::now() >= when_;
}

int Deadline::remaining_ms() const {
  if (when_ == Clock::time_point::max()) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      when_ - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > INT_MAX) return INT_MAX;
  return static_cast<int>(left.count());
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::listen_on(const std::string& host, std::uint16_t port,
                         int backlog, NetStatus& status) {
  sockaddr_in addr;
  if (!parse_address(host, port, addr)) {
    status = NetStatus::Error;
    return {};
  }
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    status = NetStatus::Error;
    return {};
  }
  int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(s.fd(), backlog) != 0 || !set_nonblocking(s.fd(), true)) {
    status = NetStatus::Error;
    return {};
  }
  status = NetStatus::Ok;
  return s;
}

Socket Socket::accept_connection(const Deadline& deadline, NetStatus& status) {
  while (true) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      set_nonblocking(fd, false);
      set_nodelay(fd);
      status = NetStatus::Ok;
      return Socket(fd);
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      status = poll_fd(fd_, POLLIN, deadline);
      if (status != NetStatus::Ok) return {};
      continue;
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    status = NetStatus::Error;
    return {};
  }
}

Socket Socket::connect_to(const std::string& host, std::uint16_t port,
                          const Deadline& deadline, NetStatus& status) {
  sockaddr_in addr;
  if (!parse_address(host, port, addr)) {
    status = NetStatus::Error;
    return {};
  }
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid() || !set_nonblocking(s.fd(), true)) {
    status = NetStatus::Error;
    return {};
  }
  int rc = ::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno == ECONNREFUSED) {
      status = NetStatus::Refused;
      return {};
    }
    if (errno != EINPROGRESS && errno != EINTR) {
      status = NetStatus::Error;
      return {};
    }
    status = poll_fd(s.fd(), POLLOUT, deadline);
    if (status == NetStatus::Timeout) return {};
    // A refused connect surfaces as POLLERR, which poll_fd reports as Error;
    // SO_ERROR identifies the actual failure either way.
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      status = NetStatus::Error;
      return {};
    }
    if (err != 0) {
      status = (err == ECONNREFUSED || err == EHOSTUNREACH ||
                err == ENETUNREACH)
                   ? NetStatus::Refused
                   : NetStatus::Error;
      return {};
    }
    if (status != NetStatus::Ok) return {};
  }
  if (!set_nonblocking(s.fd(), false)) {
    status = NetStatus::Error;
    return {};
  }
  set_nodelay(s.fd());
  status = NetStatus::Ok;
  return s;
}

NetStatus Socket::send_all(const void* data, std::size_t len,
                           const Deadline& deadline) {
  if (!valid()) return NetStatus::Closed;
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    if (deadline.expired()) return NetStatus::Timeout;
    ssize_t n = ::send(fd_, p + sent, len - sent,
                       MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      NetStatus st = poll_fd(fd_, POLLOUT, deadline);
      if (st != NetStatus::Ok) return st;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET))
      return NetStatus::Closed;
    return NetStatus::Error;
  }
  return NetStatus::Ok;
}

NetStatus Socket::recv_all(void* data, std::size_t len,
                           const Deadline& deadline) {
  if (!valid()) return NetStatus::Closed;
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    if (deadline.expired()) return NetStatus::Timeout;
    ssize_t n = ::recv(fd_, p + got, len - got, MSG_DONTWAIT);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return NetStatus::Closed;  // peer EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      NetStatus st = poll_fd(fd_, POLLIN, deadline);
      if (st != NetStatus::Ok) return st;
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return NetStatus::Closed;
    return NetStatus::Error;
  }
  return NetStatus::Ok;
}

NetStatus Socket::recv_some(void* data, std::size_t max_len,
                            std::size_t& received, const Deadline& deadline) {
  received = 0;
  if (!valid()) return NetStatus::Closed;
  while (true) {
    if (deadline.expired()) return NetStatus::Timeout;
    ssize_t n = ::recv(fd_, data, max_len, MSG_DONTWAIT);
    if (n > 0) {
      received = static_cast<std::size_t>(n);
      return NetStatus::Ok;
    }
    if (n == 0) return NetStatus::Closed;  // peer EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      NetStatus st = poll_fd(fd_, POLLIN, deadline);
      if (st != NetStatus::Ok) return st;
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return NetStatus::Closed;
    return NetStatus::Error;
  }
}

NetStatus Socket::wait_readable(const Deadline& deadline) {
  if (!valid()) return NetStatus::Closed;
  return poll_fd(fd_, POLLIN, deadline);
}

std::uint16_t Socket::local_port() const {
  if (!valid()) return 0;
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

void Socket::shutdown_send() {
  if (valid()) ::shutdown(fd_, SHUT_WR);
}

}  // namespace cosched
