// Length-prefixed binary framing over a Socket.
//
// Every message on the wire is one frame:
//
//     0        4        8                8+len
//     +--------+--------+----------------+
//     | magic  | length |    payload     |
//     | u32 BE | u32 BE |   `length` B   |
//     +--------+--------+----------------+
//
// The magic word ("CSC1") rejects garbage and cross-protocol traffic at the
// first read; the length prefix is validated against a caller-supplied
// maximum before any payload allocation, so an adversarial or corrupted
// header cannot balloon memory. A peer that disappears mid-frame surfaces
// as FrameStatus::Truncated — distinct from a clean between-frames EOF
// (Closed), which is how connections are expected to end.
#pragma once

#include <cstdint>
#include <vector>

#include "net/socket.hpp"

namespace cosched {

/// "CSC1" — cosched protocol, framing revision 1.
inline constexpr std::uint32_t kFrameMagic = 0x43534331u;
/// Default ceiling on a frame payload (1 MiB); both ends enforce it.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

enum class FrameStatus {
  Ok,
  Closed,     ///< clean EOF before any header byte (normal disconnect)
  Truncated,  ///< EOF or reset in the middle of a frame
  Timeout,
  BadMagic,   ///< header does not start with kFrameMagic
  Oversized,  ///< declared length exceeds the maximum
  Error,
};

const char* to_string(FrameStatus status);

/// Writes one frame (header + payload).
FrameStatus write_frame(Socket& socket, const std::uint8_t* payload,
                        std::size_t len, const Deadline& deadline);
FrameStatus write_frame(Socket& socket, const std::vector<std::uint8_t>& payload,
                        const Deadline& deadline);

/// Reads one frame into `payload` (replaced, not appended). On BadMagic /
/// Oversized the connection is in an undefined mid-stream state and must be
/// closed by the caller.
FrameStatus read_frame(Socket& socket, std::vector<std::uint8_t>& payload,
                       const Deadline& deadline,
                       std::size_t max_payload = kDefaultMaxFrameBytes);

}  // namespace cosched
