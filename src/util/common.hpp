// Common definitions shared by every cosched module.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <source_location>
#include <stdexcept>
#include <string>

namespace cosched {

/// Floating-point type used for degradations, times and objective values.
using Real = double;

/// Identifier of a process (0-based). A serial job owns exactly one process;
/// a parallel job owns several consecutive ones.
using ProcessId = std::int32_t;

/// Identifier of a job (0-based), serial or parallel.
using JobId = std::int32_t;

inline constexpr ProcessId kInvalidProcess = -1;
inline constexpr JobId kInvalidJob = -1;
inline constexpr Real kInfinity = std::numeric_limits<Real>::infinity();

/// Thrown when an API precondition is violated by the caller.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* what, const char* expr,
                                       std::source_location loc) {
  std::string msg = std::string(what) + ": `" + expr + "` at " +
                    loc.file_name() + ":" + std::to_string(loc.line()) + " (" +
                    loc.function_name() + ")";
  throw ContractViolation(msg);
}
}  // namespace detail

/// Precondition check. Always on (the costs are negligible next to search);
/// throws ContractViolation so tests can assert on misuse.
#define COSCHED_EXPECTS(cond)                                       \
  do {                                                              \
    if (!(cond))                                                    \
      ::cosched::detail::contract_fail("precondition failed", #cond, \
                                       std::source_location::current()); \
  } while (0)

/// Internal invariant check.
#define COSCHED_ENSURES(cond)                                      \
  do {                                                             \
    if (!(cond))                                                   \
      ::cosched::detail::contract_fail("invariant failed", #cond,  \
                                       std::source_location::current()); \
  } while (0)

/// Approximate floating-point comparison tolerance used across the library
/// when comparing objective values produced along different code paths.
inline constexpr Real kObjectiveEps = 1e-9;

inline bool approx_equal(Real a, Real b, Real eps = 1e-9) {
  Real diff = a > b ? a - b : b - a;
  Real scale = 1.0;
  Real aa = a < 0 ? -a : a;
  Real bb = b < 0 ? -b : b;
  if (aa > scale) scale = aa;
  if (bb > scale) scale = bb;
  return diff <= eps * scale;
}

}  // namespace cosched
