// Deterministic, fast pseudo-random number generation.
//
// All experiments in this repository are seed-reproducible: the same seed
// yields the same synthetic workload, the same co-scheduling graph and the
// same results, on any platform. We therefore avoid std::mt19937's
// distribution non-portability by implementing the distributions we need on
// top of xoshiro256** (public-domain algorithm by Blackman & Vigna).
#pragma once

#include <array>
#include <cstdint>

#include "util/common.hpp"

namespace cosched {

/// SplitMix64 — used to seed xoshiro and as a cheap standalone mixer.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — the library's workhorse generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDC05CEDULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) {
    COSCHED_EXPECTS(bound > 0);
    // Lemire's nearly-divisionless method, with rejection for exactness.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    COSCHED_EXPECTS(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform real in [0, 1).
  Real uniform01() {
    return static_cast<Real>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  Real uniform_real(Real lo, Real hi) {
    COSCHED_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform01();
  }

  /// Standard normal via Box-Muller (single value; we do not cache the pair
  /// to keep the generator state a pure function of the call count).
  Real normal(Real mean = 0.0, Real stddev = 1.0);

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    const std::size_t n = c.size();
    for (std::size_t i = n; i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

inline Real Rng::normal(Real mean, Real stddev) {
  // Box-Muller; u1 in (0,1] to avoid log(0).
  Real u1 = 1.0 - uniform01();
  Real u2 = uniform01();
  constexpr Real kTwoPi = 6.283185307179586476925286766559;
  Real mag = stddev * __builtin_sqrt(-2.0 * __builtin_log(u1));
  return mean + mag * __builtin_cos(kTwoPi * u2);
}

}  // namespace cosched
