#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace cosched {

Real mean(const std::vector<Real>& xs) {
  if (xs.empty()) return 0.0;
  Real s = 0.0;
  for (Real x : xs) s += x;
  return s / static_cast<Real>(xs.size());
}

Real stddev(const std::vector<Real>& xs) {
  if (xs.size() < 2) return 0.0;
  Real m = mean(xs);
  Real s = 0.0;
  for (Real x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<Real>(xs.size() - 1));
}

Real percentile(std::vector<Real> xs, Real p) {
  COSCHED_EXPECTS(!xs.empty());
  COSCHED_EXPECTS(p >= 0.0 && p <= 1.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  Real idx = p * static_cast<Real>(xs.size() - 1);
  auto lo = static_cast<std::size_t>(idx);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  Real frac = idx - static_cast<Real>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

std::vector<CdfPoint> empirical_cdf(const std::vector<Real>& samples,
                                    const std::vector<Real>& thresholds) {
  std::vector<Real> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> out;
  out.reserve(thresholds.size());
  for (Real t : thresholds) {
    auto it = std::upper_bound(sorted.begin(), sorted.end(), t);
    Real frac = sorted.empty()
                    ? 0.0
                    : static_cast<Real>(it - sorted.begin()) /
                          static_cast<Real>(sorted.size());
    out.push_back({t, frac});
  }
  return out;
}

std::vector<CdfPoint> empirical_cdf(const std::vector<Real>& samples) {
  std::vector<Real> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return empirical_cdf(samples, sorted);
}

}  // namespace cosched
