// A compact dynamically-sized bitset used to represent process sets.
//
// The OA* search keeps one open-list entry per *set of scheduled processes*
// (see DESIGN.md, "OA* state"), so this type is on the hottest path of the
// whole library: it must hash fast, compare fast, and iterate set bits fast.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace cosched {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset of `size` bits, all cleared.
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool test(std::size_t pos) const {
    COSCHED_EXPECTS(pos < size_);
    return (words_[pos >> 6] >> (pos & 63)) & 1ULL;
  }

  void set(std::size_t pos) {
    COSCHED_EXPECTS(pos < size_);
    words_[pos >> 6] |= (1ULL << (pos & 63));
  }

  void reset(std::size_t pos) {
    COSCHED_EXPECTS(pos < size_);
    words_[pos >> 6] &= ~(1ULL << (pos & 63));
  }

  void clear_all() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  std::size_t count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  bool none() const { return !any(); }

  /// Index of the lowest clear bit, or size() if all bits are set.
  /// This is the "valid level" lookup in the co-scheduling graph: the next
  /// level to expand is the smallest unscheduled process id.
  std::size_t find_first_clear() const;

  /// Index of the lowest set bit >= from, or size() if none.
  std::size_t find_next_set(std::size_t from) const;

  /// Index of the lowest clear bit >= from, or size() if none.
  std::size_t find_next_clear(std::size_t from) const;

  /// Appends the indices of all set bits to `out`.
  void collect_set(std::vector<std::int32_t>& out) const;

  /// Appends the indices of all clear bits to `out`.
  void collect_clear(std::vector<std::int32_t>& out) const;

  /// True if every set bit of `other` is also set in *this.
  bool contains_all(const DynamicBitset& other) const;

  /// True if *this and `other` share no set bits.
  bool disjoint_with(const DynamicBitset& other) const;

  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// 64-bit hash of the contents (FNV-1a over words, size-mixed).
  std::uint64_t hash() const;

  /// "{0,3,7}"-style rendering for diagnostics.
  std::string to_string() const;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

struct DynamicBitsetHash {
  std::size_t operator()(const DynamicBitset& b) const {
    return static_cast<std::size_t>(b.hash());
  }
};

}  // namespace cosched
