#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace cosched {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  COSCHED_EXPECTS(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  COSCHED_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(Real value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::fmt_int(std::int64_t value) {
  return std::to_string(value);
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << ' ';
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|";
    for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::render_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += '"';
    return q;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << quote(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << render(); }

}  // namespace cosched
