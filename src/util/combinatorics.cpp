#include "util/combinatorics.hpp"

#include <limits>

namespace cosched {

std::uint64_t binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    std::uint64_t num = n - k + i;
    // result = result * num / i, with overflow detection. Compute via gcd-free
    // check: exact division always holds after multiplication because
    // result is C(n-k+i-1, i-1) * ... pattern; do it in 128 bits.
    __uint128_t wide = static_cast<__uint128_t>(result) * num;
    wide /= i;
    if (wide > std::numeric_limits<std::uint64_t>::max())
      return std::numeric_limits<std::uint64_t>::max();
    result = static_cast<std::uint64_t>(wide);
  }
  return result;
}

void for_each_combination(
    const std::vector<std::int32_t>& pool, std::size_t k,
    const std::function<bool(const std::vector<std::int32_t>&)>& fn) {
  const std::size_t n = pool.size();
  if (k > n) return;
  if (k == 0) {
    static const std::vector<std::int32_t> empty;
    fn(empty);
    return;
  }
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  std::vector<std::int32_t> comb(k);
  while (true) {
    for (std::size_t i = 0; i < k; ++i) comb[i] = pool[idx[i]];
    if (!fn(comb)) return;
    if (!next_combination_indices(idx, n)) return;
  }
}

bool next_combination_indices(std::vector<std::size_t>& comb,
                              std::size_t pool_size) {
  const std::size_t k = comb.size();
  COSCHED_EXPECTS(k <= pool_size);
  // Find the rightmost index that can be advanced.
  std::size_t i = k;
  while (i > 0) {
    --i;
    if (comb[i] != i + pool_size - k) {
      ++comb[i];
      for (std::size_t j = i + 1; j < k; ++j) comb[j] = comb[j - 1] + 1;
      return true;
    }
  }
  return false;
}

std::uint64_t rank_combination(const std::vector<std::int32_t>& comb,
                               std::int32_t n) {
  const std::size_t k = comb.size();
  std::uint64_t rank = 0;
  std::int32_t prev = -1;
  for (std::size_t i = 0; i < k; ++i) {
    COSCHED_EXPECTS(comb[i] > prev && comb[i] < n);
    // Count combinations that start with a smaller element at position i.
    for (std::int32_t v = prev + 1; v < comb[i]; ++v) {
      std::uint64_t c = binomial(static_cast<std::uint64_t>(n - v - 1),
                                 static_cast<std::uint64_t>(k - i - 1));
      if (rank > std::numeric_limits<std::uint64_t>::max() - c)
        return std::numeric_limits<std::uint64_t>::max();
      rank += c;
    }
    prev = comb[i];
  }
  return rank;
}

std::vector<std::int32_t> unrank_combination(std::uint64_t rank,
                                             std::int32_t n, std::size_t k) {
  std::vector<std::int32_t> comb;
  comb.reserve(k);
  std::int32_t v = 0;
  for (std::size_t i = 0; i < k; ++i) {
    while (true) {
      COSCHED_EXPECTS(v < n);
      std::uint64_t c = binomial(static_cast<std::uint64_t>(n - v - 1),
                                 static_cast<std::uint64_t>(k - i - 1));
      if (rank < c) {
        comb.push_back(v);
        ++v;
        break;
      }
      rank -= c;
      ++v;
    }
  }
  return comb;
}

}  // namespace cosched
