// Combinatorial helpers: binomials, combination enumeration/ranking.
//
// The co-scheduling graph has C(n,u) nodes; level i holds C(n-i-1, u-1) of
// them (all u-subsets whose smallest member is i). These helpers enumerate
// and rank such subsets without materializing the graph.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/common.hpp"

namespace cosched {

/// Binomial coefficient C(n, k) as a saturating 64-bit value.
/// Returns UINT64_MAX on overflow (callers treat that as "too many to count").
std::uint64_t binomial(std::uint64_t n, std::uint64_t k);

/// Enumerates all k-combinations of the values in `pool` (pool need not be
/// contiguous), invoking `fn` with each combination in lexicographic order of
/// pool positions. `fn` returns false to stop early.
///
/// The combination buffer handed to `fn` is reused between calls.
void for_each_combination(
    const std::vector<std::int32_t>& pool, std::size_t k,
    const std::function<bool(const std::vector<std::int32_t>&)>& fn);

/// In-place advance of `comb` (positions into a pool of size `pool_size`)
/// to the lexicographically next k-combination. Returns false when `comb`
/// was the last combination.
bool next_combination_indices(std::vector<std::size_t>& comb,
                              std::size_t pool_size);

/// Lexicographic rank of a sorted k-subset of {0..n-1}. Inverse of
/// unrank_combination. Saturates like binomial().
std::uint64_t rank_combination(const std::vector<std::int32_t>& comb,
                               std::int32_t n);

/// The `rank`-th (0-based, lexicographic) k-subset of {0..n-1}.
std::vector<std::int32_t> unrank_combination(std::uint64_t rank,
                                             std::int32_t n, std::size_t k);

}  // namespace cosched
