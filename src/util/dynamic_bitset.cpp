#include "util/dynamic_bitset.hpp"

#include <sstream>

namespace cosched {

std::size_t DynamicBitset::find_first_clear() const {
  return find_next_clear(0);
}

std::size_t DynamicBitset::find_next_set(std::size_t from) const {
  if (from >= size_) return size_;
  std::size_t wi = from >> 6;
  std::uint64_t w = words_[wi] & (~0ULL << (from & 63));
  while (true) {
    if (w) {
      std::size_t pos = (wi << 6) +
                        static_cast<std::size_t>(__builtin_ctzll(w));
      return pos < size_ ? pos : size_;
    }
    if (++wi >= words_.size()) return size_;
    w = words_[wi];
  }
}

std::size_t DynamicBitset::find_next_clear(std::size_t from) const {
  if (from >= size_) return size_;
  std::size_t wi = from >> 6;
  std::uint64_t w = ~words_[wi] & (~0ULL << (from & 63));
  while (true) {
    if (w) {
      std::size_t pos = (wi << 6) +
                        static_cast<std::size_t>(__builtin_ctzll(w));
      return pos < size_ ? pos : size_;
    }
    if (++wi >= words_.size()) return size_;
    w = ~words_[wi];
  }
}

void DynamicBitset::collect_set(std::vector<std::int32_t>& out) const {
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w) {
      int bit = __builtin_ctzll(w);
      out.push_back(static_cast<std::int32_t>((wi << 6) + bit));
      w &= w - 1;
    }
  }
}

void DynamicBitset::collect_clear(std::vector<std::int32_t>& out) const {
  for (std::size_t i = find_next_clear(0); i < size_;
       i = find_next_clear(i + 1)) {
    out.push_back(static_cast<std::int32_t>(i));
  }
}

bool DynamicBitset::contains_all(const DynamicBitset& other) const {
  COSCHED_EXPECTS(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((other.words_[i] & ~words_[i]) != 0) return false;
  return true;
}

bool DynamicBitset::disjoint_with(const DynamicBitset& other) const {
  COSCHED_EXPECTS(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & other.words_[i]) != 0) return false;
  return true;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  COSCHED_EXPECTS(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  COSCHED_EXPECTS(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

std::uint64_t DynamicBitset::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ (size_ * 0x100000001b3ULL);
  for (auto w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return h;
}

std::string DynamicBitset::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (std::size_t i = find_next_set(0); i < size_; i = find_next_set(i + 1)) {
    if (!first) os << ',';
    os << i;
    first = false;
  }
  os << '}';
  return os.str();
}

}  // namespace cosched
