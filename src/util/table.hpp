// Text-table and CSV rendering for the experiment harness.
//
// Every bench binary prints (a) an aligned human-readable table mirroring the
// paper's table/figure and (b) optionally the same data as CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace cosched {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats Real cells with `precision` significant decimals.
  static std::string fmt(Real value, int precision = 4);
  static std::string fmt_int(std::int64_t value);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with column alignment and a header separator.
  std::string render() const;

  /// Renders as RFC-4180-ish CSV (cells containing commas/quotes get quoted).
  std::string render_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cosched
