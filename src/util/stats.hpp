// Small statistics helpers for the benchmark harness (means, percentiles,
// empirical CDFs for the Fig. 5 MER study).
#pragma once

#include <cstddef>
#include <vector>

#include "util/common.hpp"

namespace cosched {

Real mean(const std::vector<Real>& xs);
Real stddev(const std::vector<Real>& xs);

/// p in [0,1]; linear interpolation between order statistics.
Real percentile(std::vector<Real> xs, Real p);

/// Empirical CDF evaluated at integer thresholds: for each t in `thresholds`,
/// the fraction of samples <= t.
struct CdfPoint {
  Real threshold;
  Real fraction;  // in [0,1]
};

std::vector<CdfPoint> empirical_cdf(const std::vector<Real>& samples,
                                    const std::vector<Real>& thresholds);

/// Full empirical CDF over the distinct sample values (sorted ascending).
std::vector<CdfPoint> empirical_cdf(const std::vector<Real>& samples);

}  // namespace cosched
