// Wall-clock timing helpers for the benchmark harness.
#pragma once

#include <chrono>

namespace cosched {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` and returns its wall-clock duration in seconds.
template <typename Fn>
double timed_seconds(Fn&& fn) {
  WallTimer t;
  fn();
  return t.seconds();
}

}  // namespace cosched
