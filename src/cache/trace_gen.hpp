// Synthetic memory-trace generation.
//
// The paper profiles real NPB/SPEC programs; we stand in for them with a
// parametric locality model (see DESIGN.md "Substitutions"). A program is a
// mixture of *regions* — address ranges walked with a stride — plus a random
// far-miss component. Small hot regions produce low-stack-distance hits
// (cache-friendly programs such as EP/PI); regions larger than the shared
// cache produce high miss rates (memory-intensive programs such as RA/art).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace cosched {

/// One region of a program's locality mixture.
struct LocalityRegion {
  /// Size of the region in cache lines.
  std::uint64_t size_lines = 1024;
  /// Relative probability of the next access landing in this region.
  Real weight = 1.0;
  /// Stride in lines for the sequential walk inside the region.
  std::uint64_t stride_lines = 1;
  /// Probability of a random jump within the region instead of the walk.
  Real jump_prob = 0.0;
};

/// Locality model of one program.
struct LocalitySpec {
  std::vector<LocalityRegion> regions;
  /// Probability of an access going to a fresh, never-reused line
  /// (compulsory-miss stream, models streaming writes / huge footprints).
  Real streaming_prob = 0.0;
};

/// Generates a line-granular address trace for a LocalitySpec.
class TraceGenerator {
 public:
  /// `seed` makes the trace reproducible.
  TraceGenerator(LocalitySpec spec, std::uint64_t seed);

  /// Next accessed line address (already divided by line size).
  std::uint64_t next_line();

  /// Generates `n` accesses into a fresh vector.
  std::vector<std::uint64_t> generate(std::size_t n);

 private:
  LocalitySpec spec_;
  Rng rng_;
  std::vector<std::uint64_t> cursor_;      // per-region walk position
  std::vector<std::uint64_t> base_;        // per-region base line address
  std::vector<Real> cumulative_weight_;
  Real total_weight_ = 0.0;
  std::uint64_t streaming_next_ = 0;       // fresh-line counter
  std::uint64_t streaming_base_ = 0;
};

}  // namespace cosched
