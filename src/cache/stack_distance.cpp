#include "cache/stack_distance.hpp"

#include <sstream>

namespace cosched {

StackDistanceProfile::StackDistanceProfile(std::uint32_t associativity)
    : hits_(associativity, 0.0) {
  COSCHED_EXPECTS(associativity >= 1);
}

StackDistanceProfile::StackDistanceProfile(std::vector<Real> hits_per_distance,
                                           Real misses)
    : hits_(std::move(hits_per_distance)), misses_(misses) {
  COSCHED_EXPECTS(!hits_.empty());
  COSCHED_EXPECTS(misses_ >= 0.0);
  for (Real h : hits_) COSCHED_EXPECTS(h >= 0.0);
}

Real StackDistanceProfile::total_hits() const {
  Real s = 0.0;
  for (Real h : hits_) s += h;
  return s;
}

Real StackDistanceProfile::miss_rate() const {
  Real total = total_accesses();
  return total > 0.0 ? misses_ / total : 0.0;
}

Real StackDistanceProfile::hits_beyond(std::uint32_t ways) const {
  Real s = 0.0;
  for (std::uint32_t d = ways + 1; d <= hits_.size(); ++d) s += hits_[d - 1];
  return s;
}

StackDistanceProfile StackDistanceProfile::scaled(Real factor) const {
  COSCHED_EXPECTS(factor >= 0.0);
  StackDistanceProfile out(*this);
  for (Real& h : out.hits_) h *= factor;
  out.misses_ *= factor;
  return out;
}

std::string StackDistanceProfile::summary() const {
  std::ostringstream os;
  os << "SDP(A=" << associativity() << ", hits=" << total_hits()
     << ", misses=" << misses_ << ", miss_rate=" << miss_rate() << ")";
  return os.str();
}

}  // namespace cosched
