// Machine models: core count, shared last-level cache geometry, and the
// timing constants of the Eq. 14-15 CPU-time model.
//
// The paper evaluates on three machines; we model the shared cache each one
// exposes to co-running processes (private L1/L2 levels do not participate in
// inter-core contention and are folded into the base CPI of each program):
//   * Dual-core  — Intel Core 2 Duo:   4 MB, 16-way shared L2
//   * Quad-core  — Intel Core i7-2600: 8 MB, 16-way shared L3
//   * 8-core     — Intel Xeon E5-2450L: 20 MB, 16-way shared L3
#pragma once

#include <cstdint>
#include <string>

#include "util/common.hpp"

namespace cosched {

/// Geometry of one (shared) cache level.
struct CacheConfig {
  std::uint32_t line_size = 64;     ///< bytes per cache line
  std::uint32_t associativity = 16; ///< ways per set
  std::uint32_t num_sets = 4096;    ///< sets

  std::uint64_t size_bytes() const {
    return static_cast<std::uint64_t>(line_size) * associativity * num_sets;
  }
  std::uint64_t size_lines() const {
    return static_cast<std::uint64_t>(associativity) * num_sets;
  }
};

/// A machine = u cores sharing one cache, plus timing constants.
struct MachineConfig {
  std::string name;
  std::uint32_t cores = 4;       ///< u: processes co-scheduled per machine
  CacheConfig shared_cache;
  Real clock_ghz = 3.0;          ///< determines Clock_Cycle_Time (Eq. 14)
  Real miss_penalty_cycles = 200;///< Miss_Penalty (Eq. 15)
  /// Inter-machine bandwidth for PC jobs (Eq. 10), bytes/second. The paper
  /// uses 10 GbE; effective ~1.1 GB/s.
  Real network_bandwidth = 1.1e9;

  Real clock_cycle_seconds() const { return 1e-9 / clock_ghz; }
};

/// The three machines of the paper's evaluation (Section V).
MachineConfig dual_core_machine();
MachineConfig quad_core_machine();
MachineConfig eight_core_machine();

/// Lookup by core count (2, 4 or 8).
MachineConfig machine_by_cores(std::uint32_t cores);

}  // namespace cosched
