#include "cache/trace_gen.hpp"

namespace cosched {

TraceGenerator::TraceGenerator(LocalitySpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
  COSCHED_EXPECTS(!spec_.regions.empty() || spec_.streaming_prob > 0.0);
  COSCHED_EXPECTS(spec_.streaming_prob >= 0.0 && spec_.streaming_prob <= 1.0);
  // Lay regions out in disjoint address ranges, separated by guard gaps so
  // distinct regions never alias to the same lines.
  std::uint64_t base = 0;
  for (const auto& r : spec_.regions) {
    COSCHED_EXPECTS(r.size_lines > 0);
    COSCHED_EXPECTS(r.weight >= 0.0);
    COSCHED_EXPECTS(r.stride_lines > 0);
    COSCHED_EXPECTS(r.jump_prob >= 0.0 && r.jump_prob <= 1.0);
    base_.push_back(base);
    cursor_.push_back(0);
    base += r.size_lines + 64;  // guard gap
    total_weight_ += r.weight;
    cumulative_weight_.push_back(total_weight_);
  }
  streaming_base_ = base + (1ULL << 40);  // far away from every region
}

std::uint64_t TraceGenerator::next_line() {
  if (spec_.streaming_prob > 0.0 && rng_.uniform01() < spec_.streaming_prob) {
    return streaming_base_ + streaming_next_++;
  }
  COSCHED_ENSURES(total_weight_ > 0.0);
  // Pick a region by weight.
  Real pick = rng_.uniform01() * total_weight_;
  std::size_t ri = 0;
  while (ri + 1 < cumulative_weight_.size() && pick > cumulative_weight_[ri])
    ++ri;
  const auto& r = spec_.regions[ri];
  if (r.jump_prob > 0.0 && rng_.uniform01() < r.jump_prob) {
    cursor_[ri] = rng_.uniform(r.size_lines);
  } else {
    cursor_[ri] = (cursor_[ri] + r.stride_lines) % r.size_lines;
  }
  return base_[ri] + cursor_[ri];
}

std::vector<std::uint64_t> TraceGenerator::generate(std::size_t n) {
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next_line());
  return out;
}

}  // namespace cosched
