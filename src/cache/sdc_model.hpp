// SDC — Stack Distance Competition (Chandra, Guo, Kim, Solihin; HPCA'05).
//
// Predicts how co-running processes share a cache of associativity A from
// their *solo* stack distance profiles. The model merges the individual
// profiles position by position: at each of the A merge steps the process
// with the highest hit count at its next unclaimed stack position wins one
// way. A process that ends up with e_i ways re-classifies its solo hits at
// stack distance > e_i as misses. This is exactly the predictor the paper
// uses to synthesize co-run execution times (Section V).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/stack_distance.hpp"

namespace cosched {

/// Outcome of the competition: one effective way count per input profile.
struct SdcAllocation {
  std::vector<std::uint32_t> ways;  // Σ ways == associativity
};

/// Runs the SDC merge over `profiles` (all must share the same
/// associativity A). Deterministic: ties go to the earlier profile.
SdcAllocation sdc_compete(
    const std::vector<const StackDistanceProfile*>& profiles);

/// Predicted co-run miss count for a process granted `ways` effective ways:
/// its solo misses plus its solo hits at stack distance > ways.
Real sdc_corun_misses(const StackDistanceProfile& profile,
                      std::uint32_t ways);

/// Convenience: competition + per-process predicted co-run misses.
std::vector<Real> sdc_predict_misses(
    const std::vector<const StackDistanceProfile*>& profiles);

}  // namespace cosched
