#include "cache/lru_cache_sim.hpp"

namespace cosched {

LruCacheSim::LruCacheSim(CacheConfig config) : config_(config) {
  COSCHED_EXPECTS(config_.num_sets >= 1);
  COSCHED_EXPECTS(config_.associativity >= 1);
  ways_.assign(static_cast<std::size_t>(config_.num_sets) *
                   config_.associativity,
               kEmpty);
}

void LruCacheSim::reset() {
  std::fill(ways_.begin(), ways_.end(), kEmpty);
}

std::uint32_t LruCacheSim::access(std::uint64_t line_addr) {
  const std::uint32_t A = config_.associativity;
  const std::uint64_t set = line_addr % config_.num_sets;
  const std::uint64_t tag = line_addr / config_.num_sets;
  std::uint64_t* w = &ways_[static_cast<std::size_t>(set) * A];

  // Search MRU..LRU for the tag; on hit, its index+1 is the stack distance.
  std::uint32_t pos = A;  // A == not found
  for (std::uint32_t i = 0; i < A; ++i) {
    if (w[i] == tag) {
      pos = i;
      break;
    }
  }
  if (pos < A) {
    // Hit at stack distance pos+1; rotate [0..pos] right to promote to MRU.
    for (std::uint32_t i = pos; i > 0; --i) w[i] = w[i - 1];
    w[0] = tag;
    return pos + 1;
  }
  // Miss: evict LRU, shift right, install at MRU.
  for (std::uint32_t i = A - 1; i > 0; --i) w[i] = w[i - 1];
  w[0] = tag;
  return 0;
}

CacheSimResult LruCacheSim::simulate(const CacheConfig& config,
                                     const std::vector<std::uint64_t>& trace) {
  LruCacheSim sim(config);
  CacheSimResult result;
  result.sdp = StackDistanceProfile(config.associativity);
  result.accesses = trace.size();
  for (std::uint64_t line : trace) {
    std::uint32_t d = sim.access(line);
    if (d == 0) {
      result.sdp.record_miss();
      ++result.misses;
    } else {
      result.sdp.record_hit(d);
      ++result.hits;
    }
  }
  return result;
}

}  // namespace cosched
