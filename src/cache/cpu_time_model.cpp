#include "cache/cpu_time_model.hpp"

namespace cosched {

Real cpu_time_seconds(const ProgramTiming& timing, Real misses,
                      const MachineConfig& machine) {
  COSCHED_EXPECTS(misses >= 0.0);
  Real stall = misses * machine.miss_penalty_cycles;
  return (timing.base_cycles + stall) * machine.clock_cycle_seconds();
}

Real degradation_from_misses(const ProgramTiming& timing, Real corun_misses,
                             const MachineConfig& machine) {
  Real solo_cycles =
      timing.base_cycles + timing.solo_misses * machine.miss_penalty_cycles;
  COSCHED_EXPECTS(solo_cycles > 0.0);
  Real extra =
      (corun_misses - timing.solo_misses) * machine.miss_penalty_cycles;
  // Co-running never speeds a process up in this model; clamp tiny negative
  // values that can arise from SDC granting a process more ways than it uses.
  Real d = extra / solo_cycles;
  return d > 0.0 ? d : 0.0;
}

}  // namespace cosched
