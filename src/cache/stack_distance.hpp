// Stack Distance Profiles (SDPs).
//
// For a set-associative LRU cache of associativity A, the stack distance of
// an access is the LRU-stack position (1-based) of the accessed line within
// its set; accesses to lines deeper than A (or not resident) are misses.
// An SDP is the histogram C_1..C_A of hits per stack position plus the miss
// counter C_{>A}. The paper obtains SDPs with the gcc-slo compiler suite and
// feeds them to the SDC model of Chandra et al.; we obtain them from our own
// cache simulator (see lru_cache_sim.hpp) or synthesize them directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace cosched {

class StackDistanceProfile {
 public:
  StackDistanceProfile() = default;

  /// Creates an all-zero profile for associativity A.
  explicit StackDistanceProfile(std::uint32_t associativity);

  /// Builds a profile from explicit hit counters (size = A) and misses.
  StackDistanceProfile(std::vector<Real> hits_per_distance, Real misses);

  std::uint32_t associativity() const {
    return static_cast<std::uint32_t>(hits_.size());
  }

  /// Hits with stack distance exactly d (1-based, 1 <= d <= A).
  Real hits_at(std::uint32_t d) const {
    COSCHED_EXPECTS(d >= 1 && d <= hits_.size());
    return hits_[d - 1];
  }

  void record_hit(std::uint32_t d) {
    COSCHED_EXPECTS(d >= 1 && d <= hits_.size());
    hits_[d - 1] += 1.0;
  }
  void record_miss() { misses_ += 1.0; }

  Real total_hits() const;
  Real misses() const { return misses_; }
  Real total_accesses() const { return total_hits() + misses_; }

  /// misses / accesses; 0 for an empty profile.
  Real miss_rate() const;

  /// Hits that would become misses if the process only kept `ways` ways of
  /// the cache: sum of hits at stack distance > ways (Chandra's reallocation
  /// rule). ways may be 0 (all hits lost).
  Real hits_beyond(std::uint32_t ways) const;

  /// Multiplies every counter by `factor` (used to normalize profiles of
  /// programs with different trace lengths to a common time base).
  StackDistanceProfile scaled(Real factor) const;

  std::string summary() const;

 private:
  std::vector<Real> hits_;  // hits_[d-1] = hits at stack distance d
  Real misses_ = 0.0;
};

}  // namespace cosched
