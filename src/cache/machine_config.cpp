#include "cache/machine_config.hpp"

namespace cosched {

MachineConfig dual_core_machine() {
  MachineConfig m;
  m.name = "dual-core (Core 2 Duo, 4MB 16-way shared L2)";
  m.cores = 2;
  m.shared_cache = CacheConfig{64, 16, 4096};  // 4 MB
  m.clock_ghz = 2.4;
  m.miss_penalty_cycles = 180;
  return m;
}

MachineConfig quad_core_machine() {
  MachineConfig m;
  m.name = "quad-core (Core i7-2600, 8MB 16-way shared L3)";
  m.cores = 4;
  m.shared_cache = CacheConfig{64, 16, 8192};  // 8 MB
  m.clock_ghz = 3.4;
  m.miss_penalty_cycles = 220;
  return m;
}

MachineConfig eight_core_machine() {
  MachineConfig m;
  m.name = "8-core (Xeon E5-2450L, 20MB 16-way shared L3)";
  m.cores = 8;
  m.shared_cache = CacheConfig{64, 16, 20480};  // 20 MB
  m.clock_ghz = 1.8;
  m.miss_penalty_cycles = 240;
  return m;
}

MachineConfig machine_by_cores(std::uint32_t cores) {
  switch (cores) {
    case 2: return dual_core_machine();
    case 4: return quad_core_machine();
    case 8: return eight_core_machine();
    default: {
      // Generic machine interpolating the presets; used by tests and sweeps.
      MachineConfig m = quad_core_machine();
      m.name = "generic " + std::to_string(cores) + "-core";
      m.cores = cores;
      return m;
    }
  }
}

}  // namespace cosched
