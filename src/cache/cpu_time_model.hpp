// CPU-time model, Eq. 14-15 of the paper (after Patterson & Hennessy):
//
//   CPU_Time          = (CPU_Clock_Cycle + Memory_Stall_Cycle) * Clock_Cycle_Time
//   Memory_Stall_Cycle = Number_of_Misses * Miss_Penalty
//
// CPU_Clock_Cycle (the non-stall cycle count) and the solo miss count come
// from the program's solo simulation; co-run miss counts come from the SDC
// model. Degradation then follows from Eq. 1.
#pragma once

#include "cache/machine_config.hpp"
#include "util/common.hpp"

namespace cosched {

/// Timing characterization of one program on one machine.
struct ProgramTiming {
  Real base_cycles = 0.0;   ///< CPU_Clock_Cycle: non-memory-stall cycles
  Real solo_misses = 0.0;   ///< Number_of_Misses when running alone
};

/// Eq. 14: CPU time in seconds for a given miss count.
Real cpu_time_seconds(const ProgramTiming& timing, Real misses,
                      const MachineConfig& machine);

/// Eq. 1 evaluated through Eq. 14-15:
///   d = (t_corun - t_solo) / t_solo
///     = penalty * (misses_corun - misses_solo) / (base + misses_solo*penalty)
/// (Clock_Cycle_Time cancels.)
Real degradation_from_misses(const ProgramTiming& timing, Real corun_misses,
                             const MachineConfig& machine);

}  // namespace cosched
