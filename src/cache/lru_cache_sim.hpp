// Trace-driven set-associative LRU cache simulator with stack-distance
// profiling.
//
// This replaces the paper's measurement stack (`perf` counters + gcc-slo
// SDPs): we run a program's synthetic trace through the modelled shared
// cache once, solo, collecting its SDP; the SDC model then predicts co-run
// behaviour from the solo SDPs, exactly as in the paper's Section V.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/machine_config.hpp"
#include "cache/stack_distance.hpp"

namespace cosched {

/// Result of one simulation run.
struct CacheSimResult {
  StackDistanceProfile sdp;   ///< per-access stack distances (A+1 buckets)
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  Real miss_rate() const {
    return accesses ? static_cast<Real>(misses) / static_cast<Real>(accesses)
                    : 0.0;
  }
};

/// A set-associative cache with true-LRU replacement.
class LruCacheSim {
 public:
  explicit LruCacheSim(CacheConfig config);

  /// Processes one line-granular access; returns the 1-based stack distance
  /// on a hit, or 0 on a miss. The line is installed/promoted to MRU.
  std::uint32_t access(std::uint64_t line_addr);

  /// Resets cache contents (not the config).
  void reset();

  const CacheConfig& config() const { return config_; }

  /// Runs a whole trace through a fresh cache, collecting the SDP.
  static CacheSimResult simulate(const CacheConfig& config,
                                 const std::vector<std::uint64_t>& trace);

 private:
  CacheConfig config_;
  // ways_[set * A + way] = tag, ordered MRU..LRU. kEmpty marks an empty way.
  static constexpr std::uint64_t kEmpty = ~0ULL;
  std::vector<std::uint64_t> ways_;
};

}  // namespace cosched
