#include "cache/sdc_model.hpp"

namespace cosched {

SdcAllocation sdc_compete(
    const std::vector<const StackDistanceProfile*>& profiles) {
  COSCHED_EXPECTS(!profiles.empty());
  const std::uint32_t A = profiles[0]->associativity();
  for (const auto* p : profiles) {
    COSCHED_EXPECTS(p != nullptr);
    COSCHED_EXPECTS(p->associativity() == A);
  }

  SdcAllocation alloc;
  alloc.ways.assign(profiles.size(), 0);

  // next_[i] = the stack position profile i competes with next (1-based).
  // Ties go to the process currently holding fewer ways (then the lower
  // index), so identical profiles split the cache evenly.
  std::vector<std::uint32_t> next(profiles.size(), 1);
  for (std::uint32_t step = 0; step < A; ++step) {
    std::size_t winner = 0;
    Real best = -1.0;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      Real contender =
          next[i] <= A ? profiles[i]->hits_at(next[i]) : 0.0;
      if (contender > best ||
          (contender == best && alloc.ways[i] < alloc.ways[winner])) {
        best = contender;
        winner = i;
      }
    }
    ++alloc.ways[winner];
    if (next[winner] <= A) ++next[winner];
  }
  return alloc;
}

Real sdc_corun_misses(const StackDistanceProfile& profile,
                      std::uint32_t ways) {
  return profile.misses() + profile.hits_beyond(ways);
}

std::vector<Real> sdc_predict_misses(
    const std::vector<const StackDistanceProfile*>& profiles) {
  SdcAllocation alloc = sdc_compete(profiles);
  std::vector<Real> misses;
  misses.reserve(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i)
    misses.push_back(sdc_corun_misses(*profiles[i], alloc.ways[i]));
  return misses;
}

}  // namespace cosched
