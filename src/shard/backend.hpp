// ShardBackend — the router's uniform view of one scheduler shard.
//
// A shard is one LiveSchedulerService with its own scheduler thread, its
// own virtual clock and its own metrics; the router only needs five verbs
// (submit / job_status / snapshot / metrics / drain) plus a cheap load
// probe for the spillover policy. Two deployments hide behind the
// interface:
//
//  * LocalShard — owns the service in-process. This is the default and the
//    deterministic one: no sockets, results are a pure function of the
//    routed submission sequence.
//  * RemoteShard — speaks protocol v7 to a CoschedServer started elsewhere
//    with ServerOptions::shard_id set (the RPC-addressable deployment).
//    Calls are serialized on one connection; the load probe is the cached
//    fan-in block of the last GetMetrics, refreshed by refresh_load().
//
// Every verb reports an RpcStatus so the router front door can forward
// shard verdicts (Draining, InvalidJob, UnknownJob, ...) unchanged; local
// command-queue timeouts and remote transport failures both surface as
// DeadlineExpired/ServerError rather than hanging the router worker.
//
// Observability across the process boundary: every remote verb forwards
// the calling thread's current trace id on the wire (the shard's spans
// then carry the router-assigned id, so a merged dump stitches into one
// request timeline), every folded failure is counted by error kind
// (transport / protocol / application — surfaced as
// cosched_shard_rpc_errors_total and the v6 GetMetrics health block), and
// probe()/trace_dump() feed the router's /healthz and TraceDump fan-in.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "online/live_service.hpp"
#include "rpc/client.hpp"
#include "rpc/protocol.hpp"

namespace cosched {

/// Per-kind RPC failure counts a backend has folded, matching the client
/// error taxonomy. Always zero for local shards (no wire to fail on).
struct ShardRpcErrors {
  std::uint64_t transport = 0;
  std::uint64_t protocol = 0;
  std::uint64_t application = 0;
};

class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  virtual std::int32_t shard_id() const = 0;
  virtual bool is_local() const = 0;
  virtual std::int32_t total_cores() const = 0;

  /// `job_id`s below are shard-local; the router owns the global encoding.
  virtual RpcStatus submit(const TraceJob& job, SubmitJobResponse& out,
                           std::string& error) = 0;
  virtual RpcStatus job_status(std::int64_t job_id, JobStatusResponse& out,
                               std::string& error) = 0;
  /// v7: the shard's decision-journal timeline of one (shard-local) job.
  virtual RpcStatus job_timeline(std::int64_t job_id, JobTimelineResponse& out,
                                 std::string& error) = 0;
  virtual RpcStatus snapshot(ServiceSnapshot& out, std::string& error) = 0;
  /// Fills the shard's own counters plus the v5 load fields (queue depth,
  /// replan p95). The fan-in `shards` vector stays empty — nesting routers
  /// is not a thing.
  virtual RpcStatus metrics(MetricsResponse& out, std::string& error) = 0;
  virtual RpcStatus drain(DrainResponse& out, std::string& error) = 0;

  /// Spillover signal. Local shards answer live (lock-light atomics);
  /// remote shards answer from the snapshot cached by the last metrics()/
  /// refresh_load() round-trip.
  virtual LoadProbe load() = 0;
  /// Forces a probe refresh. No-op for local shards (always live); one
  /// GetMetrics round-trip for remote ones.
  virtual void refresh_load() {}

  /// Liveness probe for the router's health fan-in. Local shards are up by
  /// construction (their scheduler thread lives in this process); remote
  /// shards answer with a GetMetrics round-trip.
  virtual bool probe(std::string& error) {
    (void)error;
    return true;
  }
  /// The shard's own trace dump, for the router's TraceDump fan-in. Only
  /// remote shards have a tracer of their own to pull — a local shard
  /// shares the process-global tracer the router already dumps.
  virtual RpcStatus trace_dump(TraceDumpResponse& out, std::string& error) {
    (void)out;
    error = "shard shares the local tracer";
    return RpcStatus::BadRequest;
  }
  /// The shard's own alert states, for the router's GetAlerts//alerts
  /// fan-in. Only remote shards run a watchdog of their own — a local
  /// shard shares the process registry the router's engine already scrapes.
  virtual RpcStatus alerts(AlertsResponse& out, std::string& error) {
    (void)out;
    error = "shard shares the local alert engine";
    return RpcStatus::BadRequest;
  }
  /// Folded RPC failures by kind; zero for local shards.
  virtual ShardRpcErrors rpc_errors() const { return {}; }
};

/// In-process shard: owns the service and its scheduler thread.
class LocalShard : public ShardBackend {
 public:
  LocalShard(std::int32_t shard_id, LiveServiceOptions options,
             double command_timeout_seconds = 30.0);

  std::int32_t shard_id() const override { return shard_id_; }
  bool is_local() const override { return true; }
  std::int32_t total_cores() const override { return service_.total_cores(); }

  RpcStatus submit(const TraceJob& job, SubmitJobResponse& out,
                   std::string& error) override;
  RpcStatus job_status(std::int64_t job_id, JobStatusResponse& out,
                       std::string& error) override;
  RpcStatus job_timeline(std::int64_t job_id, JobTimelineResponse& out,
                         std::string& error) override;
  RpcStatus snapshot(ServiceSnapshot& out, std::string& error) override;
  RpcStatus metrics(MetricsResponse& out, std::string& error) override;
  RpcStatus drain(DrainResponse& out, std::string& error) override;
  LoadProbe load() override { return service_.load(); }

  LiveSchedulerService& service() { return service_; }

 private:
  std::int32_t shard_id_;
  double timeout_;
  LiveSchedulerService service_;
};

/// RPC-addressable shard: a v6 CoschedServer somewhere else.
class RemoteShard : public ShardBackend {
 public:
  RemoteShard(std::int32_t shard_id, ClientOptions options,
              std::int32_t total_cores);

  std::int32_t shard_id() const override { return shard_id_; }
  bool is_local() const override { return false; }
  std::int32_t total_cores() const override { return total_cores_; }

  RpcStatus submit(const TraceJob& job, SubmitJobResponse& out,
                   std::string& error) override;
  RpcStatus job_status(std::int64_t job_id, JobStatusResponse& out,
                       std::string& error) override;
  RpcStatus job_timeline(std::int64_t job_id, JobTimelineResponse& out,
                         std::string& error) override;
  RpcStatus snapshot(ServiceSnapshot& out, std::string& error) override;
  RpcStatus metrics(MetricsResponse& out, std::string& error) override;
  RpcStatus drain(DrainResponse& out, std::string& error) override;
  LoadProbe load() override;
  void refresh_load() override;

  /// One GetMetrics round-trip; false (with the fold error) when the shard
  /// server is unreachable or answers garbage.
  bool probe(std::string& error) override;
  /// Pulls the shard server's own trace dump (its text + Chrome JSON).
  RpcStatus trace_dump(TraceDumpResponse& out, std::string& error) override;
  /// Pulls the shard server's alert states (one GetAlerts round-trip).
  RpcStatus alerts(AlertsResponse& out, std::string& error) override;
  ShardRpcErrors rpc_errors() const override;

 private:
  /// Folds an RpcError into (status, error) and counts the failure by
  /// kind; transport/protocol failures become ServerError so the router
  /// can answer something structured.
  RpcStatus fold(const RpcError& rpc, RpcStatus app_status,
                 std::string& error);
  /// Stamps the calling thread's current trace id onto the next client
  /// call, so the shard's spans join the router-assigned trace. Caller
  /// holds mutex_.
  void forward_trace_locked();

  std::int32_t shard_id_;
  std::int32_t total_cores_;
  std::mutex mutex_;  ///< one connection, one outstanding request
  CoschedClient client_;
  LoadProbe cached_load_;  ///< guarded by mutex_
  std::atomic<std::uint64_t> transport_errors_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> application_errors_{0};
};

}  // namespace cosched
