// ShardBackend — the router's uniform view of one scheduler shard.
//
// A shard is one LiveSchedulerService with its own scheduler thread, its
// own virtual clock and its own metrics; the router only needs five verbs
// (submit / job_status / snapshot / metrics / drain) plus a cheap load
// probe for the spillover policy. Two deployments hide behind the
// interface:
//
//  * LocalShard — owns the service in-process. This is the default and the
//    deterministic one: no sockets, results are a pure function of the
//    routed submission sequence.
//  * RemoteShard — speaks protocol v5 to a CoschedServer started elsewhere
//    with ServerOptions::shard_id set (the RPC-addressable deployment).
//    Calls are serialized on one connection; the load probe is the cached
//    fan-in block of the last GetMetrics, refreshed by refresh_load().
//
// Every verb reports an RpcStatus so the router front door can forward
// shard verdicts (Draining, InvalidJob, UnknownJob, ...) unchanged; local
// command-queue timeouts and remote transport failures both surface as
// DeadlineExpired/ServerError rather than hanging the router worker.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "online/live_service.hpp"
#include "rpc/client.hpp"
#include "rpc/protocol.hpp"

namespace cosched {

class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  virtual std::int32_t shard_id() const = 0;
  virtual bool is_local() const = 0;
  virtual std::int32_t total_cores() const = 0;

  /// `job_id`s below are shard-local; the router owns the global encoding.
  virtual RpcStatus submit(const TraceJob& job, SubmitJobResponse& out,
                           std::string& error) = 0;
  virtual RpcStatus job_status(std::int64_t job_id, JobStatusResponse& out,
                               std::string& error) = 0;
  virtual RpcStatus snapshot(ServiceSnapshot& out, std::string& error) = 0;
  /// Fills the shard's own counters plus the v5 load fields (queue depth,
  /// replan p95). The fan-in `shards` vector stays empty — nesting routers
  /// is not a thing.
  virtual RpcStatus metrics(MetricsResponse& out, std::string& error) = 0;
  virtual RpcStatus drain(DrainResponse& out, std::string& error) = 0;

  /// Spillover signal. Local shards answer live (lock-light atomics);
  /// remote shards answer from the snapshot cached by the last metrics()/
  /// refresh_load() round-trip.
  virtual LoadProbe load() = 0;
  /// Forces a probe refresh. No-op for local shards (always live); one
  /// GetMetrics round-trip for remote ones.
  virtual void refresh_load() {}
};

/// In-process shard: owns the service and its scheduler thread.
class LocalShard : public ShardBackend {
 public:
  LocalShard(std::int32_t shard_id, LiveServiceOptions options,
             double command_timeout_seconds = 30.0);

  std::int32_t shard_id() const override { return shard_id_; }
  bool is_local() const override { return true; }
  std::int32_t total_cores() const override { return service_.total_cores(); }

  RpcStatus submit(const TraceJob& job, SubmitJobResponse& out,
                   std::string& error) override;
  RpcStatus job_status(std::int64_t job_id, JobStatusResponse& out,
                       std::string& error) override;
  RpcStatus snapshot(ServiceSnapshot& out, std::string& error) override;
  RpcStatus metrics(MetricsResponse& out, std::string& error) override;
  RpcStatus drain(DrainResponse& out, std::string& error) override;
  LoadProbe load() override { return service_.load(); }

  LiveSchedulerService& service() { return service_; }

 private:
  std::int32_t shard_id_;
  double timeout_;
  LiveSchedulerService service_;
};

/// RPC-addressable shard: a v5 CoschedServer somewhere else.
class RemoteShard : public ShardBackend {
 public:
  RemoteShard(std::int32_t shard_id, ClientOptions options,
              std::int32_t total_cores);

  std::int32_t shard_id() const override { return shard_id_; }
  bool is_local() const override { return false; }
  std::int32_t total_cores() const override { return total_cores_; }

  RpcStatus submit(const TraceJob& job, SubmitJobResponse& out,
                   std::string& error) override;
  RpcStatus job_status(std::int64_t job_id, JobStatusResponse& out,
                       std::string& error) override;
  RpcStatus snapshot(ServiceSnapshot& out, std::string& error) override;
  RpcStatus metrics(MetricsResponse& out, std::string& error) override;
  RpcStatus drain(DrainResponse& out, std::string& error) override;
  LoadProbe load() override;
  void refresh_load() override;

 private:
  /// Folds an RpcError into (status, error); transport/protocol failures
  /// become ServerError so the router can answer something structured.
  static RpcStatus fold(const RpcError& rpc, RpcStatus app_status,
                        std::string& error);

  std::int32_t shard_id_;
  std::int32_t total_cores_;
  std::mutex mutex_;  ///< one connection, one outstanding request
  CoschedClient client_;
  LoadProbe cached_load_;  ///< guarded by mutex_
};

}  // namespace cosched
