#include "shard/backend.hpp"

#include "obs/trace.hpp"

namespace cosched {

// ---- LocalShard -----------------------------------------------------------

LocalShard::LocalShard(std::int32_t shard_id, LiveServiceOptions options,
                       double command_timeout_seconds)
    : shard_id_(shard_id),
      timeout_(command_timeout_seconds),
      service_(std::move(options)) {}

RpcStatus LocalShard::submit(const TraceJob& job, SubmitJobResponse& out,
                             std::string& error) {
  SubmitOutcome outcome;
  if (!service_.submit(job, outcome, timeout_)) {
    error = "shard command queue timeout";
    return RpcStatus::DeadlineExpired;
  }
  switch (outcome.error) {
    case SubmitError::Draining:
      error = "shard is draining";
      return RpcStatus::Draining;
    case SubmitError::Invalid:
      error = "job rejected by shard";
      return RpcStatus::InvalidJob;
    case SubmitError::None:
      break;
  }
  out.job_id = outcome.job_id;
  out.virtual_now = outcome.virtual_now;
  out.status = outcome.status;
  out.shard_id = shard_id_;
  return RpcStatus::Ok;
}

RpcStatus LocalShard::job_status(std::int64_t job_id, JobStatusResponse& out,
                                 std::string& error) {
  StatusOutcome outcome;
  if (!service_.job_status(job_id, outcome, timeout_)) {
    error = "shard command queue timeout";
    return RpcStatus::DeadlineExpired;
  }
  out.found = outcome.found;
  out.virtual_now = outcome.virtual_now;
  out.status = outcome.status;
  return outcome.found ? RpcStatus::Ok : RpcStatus::UnknownJob;
}

RpcStatus LocalShard::job_timeline(std::int64_t job_id,
                                   JobTimelineResponse& out,
                                   std::string& error) {
  TimelineOutcome outcome;
  if (!service_.job_timeline(job_id, outcome, timeout_)) {
    error = "shard command queue timeout";
    return RpcStatus::DeadlineExpired;
  }
  out.job_id = job_id;
  out.found = outcome.found;
  out.truncated = outcome.timeline.truncated;
  out.virtual_now = outcome.virtual_now;
  out.events = std::move(outcome.timeline.events);
  if (!outcome.found) {
    error = "no job with id " + std::to_string(job_id);
    return RpcStatus::UnknownJob;
  }
  return RpcStatus::Ok;
}

RpcStatus LocalShard::snapshot(ServiceSnapshot& out, std::string& error) {
  if (!service_.snapshot(out, timeout_)) {
    error = "shard command queue timeout";
    return RpcStatus::DeadlineExpired;
  }
  return RpcStatus::Ok;
}

RpcStatus LocalShard::metrics(MetricsResponse& out, std::string& error) {
  MetricsOutcome outcome;
  if (!service_.metrics(outcome, timeout_)) {
    error = "shard command queue timeout";
    return RpcStatus::DeadlineExpired;
  }
  // Scheduler counters + the v5 load fields. The v2–v4 blocks (A* counters,
  // RPC latency, tail sampler) describe a CoschedServer process, which an
  // in-process shard does not run — they stay zero.
  out = MetricsResponse{};
  out.virtual_now = outcome.virtual_now;
  out.arrivals = outcome.arrivals;
  out.admissions = outcome.admissions;
  out.completions = outcome.completions;
  out.replans = outcome.replans;
  out.migrations = outcome.migrations;
  out.running_mean_degradation = outcome.running_mean_degradation;
  out.cache = outcome.cache;
  out.deterministic_csv = outcome.deterministic_csv;
  out.shard_id = shard_id_;
  LoadProbe probe = service_.load();
  out.command_queue_depth = probe.queue_depth;
  out.replan_p95_seconds = probe.replan_p95_seconds;
  return RpcStatus::Ok;
}

RpcStatus LocalShard::drain(DrainResponse& out, std::string& error) {
  DrainOutcome outcome;
  // Drain runs every queued job to completion — give it an order of
  // magnitude more budget than a unary command.
  if (!service_.drain(outcome, timeout_ * 10.0)) {
    error = "shard drain timeout";
    return RpcStatus::DeadlineExpired;
  }
  out.completions = outcome.completions;
  out.virtual_now = outcome.virtual_now;
  return RpcStatus::Ok;
}

// ---- RemoteShard ----------------------------------------------------------

RemoteShard::RemoteShard(std::int32_t shard_id, ClientOptions options,
                         std::int32_t total_cores)
    : shard_id_(shard_id),
      total_cores_(total_cores),
      client_(std::move(options)) {}

RpcStatus RemoteShard::fold(const RpcError& rpc, RpcStatus app_status,
                            std::string& error) {
  if (rpc.ok()) return RpcStatus::Ok;
  switch (rpc.kind) {
    case RpcErrorKind::Transport:
      transport_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RpcErrorKind::Protocol:
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RpcErrorKind::Application:
      application_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RpcErrorKind::None:
      break;
  }
  error = rpc.describe();
  // Application verdicts pass through; transport/protocol failures become
  // ServerError — the shard is unreachable, not wrong.
  return rpc.kind == RpcErrorKind::Application ? app_status
                                               : RpcStatus::ServerError;
}

void RemoteShard::forward_trace_locked() {
  // 0 (no context on this thread — e.g. a background load refresh) lets
  // the client derive its own per-request id, as before.
  client_.set_trace_id(Tracer::current_context().trace_id);
}

RpcStatus RemoteShard::submit(const TraceJob& job, SubmitJobResponse& out,
                              std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  forward_trace_locked();
  RpcError rpc = client_.submit_job(job, out);
  RpcStatus status = fold(rpc, rpc.app, error);
  if (status == RpcStatus::Ok && out.shard_id < 0) out.shard_id = shard_id_;
  return status;
}

RpcStatus RemoteShard::job_status(std::int64_t job_id, JobStatusResponse& out,
                                  std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  forward_trace_locked();
  RpcError rpc = client_.query_job_status(job_id, out);
  return fold(rpc, rpc.app, error);
}

RpcStatus RemoteShard::job_timeline(std::int64_t job_id,
                                    JobTimelineResponse& out,
                                    std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  forward_trace_locked();
  RpcError rpc = client_.query_job_timeline(job_id, out);
  return fold(rpc, rpc.app, error);
}

RpcStatus RemoteShard::snapshot(ServiceSnapshot& out, std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  forward_trace_locked();
  RpcError rpc = client_.query_snapshot(out);
  return fold(rpc, rpc.app, error);
}

RpcStatus RemoteShard::metrics(MetricsResponse& out, std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  forward_trace_locked();
  RpcError rpc = client_.get_metrics(out);
  RpcStatus status = fold(rpc, rpc.app, error);
  if (status == RpcStatus::Ok) {
    if (out.shard_id < 0) out.shard_id = shard_id_;
    cached_load_.queue_depth =
        static_cast<std::size_t>(out.command_queue_depth);
    cached_load_.arrivals = out.arrivals;
    cached_load_.completions = out.completions;
    cached_load_.virtual_now = out.virtual_now;
    cached_load_.replan_p95_seconds = out.replan_p95_seconds;
  }
  return status;
}

RpcStatus RemoteShard::drain(DrainResponse& out, std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  forward_trace_locked();
  RpcError rpc = client_.drain(out);
  return fold(rpc, rpc.app, error);
}

LoadProbe RemoteShard::load() {
  std::lock_guard<std::mutex> lock(mutex_);
  return cached_load_;
}

void RemoteShard::refresh_load() {
  MetricsResponse ignored;
  std::string error;
  metrics(ignored, error);  // side effect: cached_load_ update
}

bool RemoteShard::probe(std::string& error) {
  MetricsResponse ignored;
  return metrics(ignored, error) == RpcStatus::Ok;
}

RpcStatus RemoteShard::trace_dump(TraceDumpResponse& out, std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  forward_trace_locked();
  RpcError rpc = client_.trace_dump(out);
  return fold(rpc, rpc.app, error);
}

RpcStatus RemoteShard::alerts(AlertsResponse& out, std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  forward_trace_locked();
  RpcError rpc = client_.get_alerts(out);
  return fold(rpc, rpc.app, error);
}

ShardRpcErrors RemoteShard::rpc_errors() const {
  ShardRpcErrors errors;
  errors.transport = transport_errors_.load(std::memory_order_relaxed);
  errors.protocol = protocol_errors_.load(std::memory_order_relaxed);
  errors.application = application_errors_.load(std::memory_order_relaxed);
  return errors;
}

}  // namespace cosched
