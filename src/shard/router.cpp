#include "shard/router.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "obs/log.hpp"
#include "obs/metrics_registry.hpp"

namespace cosched {
namespace {

/// Router-side submit latency buckets, seconds. Sub-millisecond lower edges
/// because an uncontended in-process shard answers in microseconds; the
/// tail buckets catch command-queue backlog.
std::vector<Real> router_latency_edges() {
  return {0.0005, 0.001, 0.002, 0.005, 0.01, 0.02,
          0.05,   0.1,   0.2,   0.5,   1.0,  2.0, 5.0};
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimal JSON string escaping for health error messages.
void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

const char* to_string(FleetHealth::State state) {
  switch (state) {
    case FleetHealth::State::Ok: return "ok";
    case FleetHealth::State::Degraded: return "degraded";
    case FleetHealth::State::Down: return "down";
  }
  return "unknown";
}

ShardRouter::ShardRouter(RouterOptions options)
    : options_(options), ring_(options.vnodes_per_shard) {}

void ShardRouter::add_local_shard(LiveServiceOptions service_options) {
  std::int32_t id = static_cast<std::int32_t>(shards_.size());
  ShardSlot slot;
  slot.backend = std::make_unique<LocalShard>(
      id, std::move(service_options), options_.shard_timeout_seconds);
  shards_.push_back(std::move(slot));
  ring_.add_shard(id);
  latency_.emplace_back(router_latency_edges());
  stats_.per_shard_requests.push_back(0);
}

void ShardRouter::add_remote_shard(ClientOptions client_options,
                                   std::int32_t total_cores) {
  std::int32_t id = static_cast<std::int32_t>(shards_.size());
  ShardSlot slot;
  slot.backend = std::make_unique<RemoteShard>(id, std::move(client_options),
                                               total_cores);
  shards_.push_back(std::move(slot));
  ring_.add_shard(id);
  latency_.emplace_back(router_latency_edges());
  stats_.per_shard_requests.push_back(0);
}

std::int32_t ShardRouter::total_cores() const {
  std::int32_t total = 0;
  for (const auto& slot : shards_) total += slot.backend->total_cores();
  return total;
}

std::string ShardRouter::tenant_key(const std::string& job_name) {
  std::size_t slash = job_name.find('/');
  return slash == std::string::npos ? job_name : job_name.substr(0, slash);
}

std::int32_t ShardRouter::ring_shard(const std::string& job_name) const {
  return ring_.shard_for_key(tenant_key(job_name));
}

LoadProbe ShardRouter::probe_of(std::size_t index) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shards_[index].probe_override) return shards_[index].probe;
  }
  return shards_[index].backend->load();
}

std::size_t ShardRouter::least_loaded_shard_locked(
    const std::vector<LoadProbe>& probes) const {
  // Least loaded = shallowest command queue, then fewest in-flight jobs,
  // then lowest index — a total order, so the pick is deterministic.
  std::size_t best = 0;
  for (std::size_t i = 1; i < probes.size(); ++i) {
    const LoadProbe& a = probes[i];
    const LoadProbe& b = probes[best];
    if (a.queue_depth != b.queue_depth) {
      if (a.queue_depth < b.queue_depth) best = i;
    } else if (a.in_flight() < b.in_flight()) {
      best = i;
    }
  }
  return best;
}

std::size_t ShardRouter::route_for_submit(const std::string& job_name) {
  std::uint64_t key_hash = HashRing::hash_key(tenant_key(job_name));
  std::size_t ring_target =
      static_cast<std::size_t>(ring_.shard_for(key_hash));

  // Remap table first: a spilled key sticks to its new home.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto remapped = remap_.find(key_hash);
    if (remapped != remap_.end()) return remapped->second;
  }

  // Spillover check — probes are read outside the lock (they are
  // lock-light by design; see LoadProbe).
  LoadProbe target_probe = probe_of(ring_target);
  bool queue_hot = options_.spill_queue_depth > 0 &&
                   target_probe.queue_depth > options_.spill_queue_depth;
  bool replan_hot =
      options_.spill_replan_p95_seconds > 0.0 &&
      target_probe.replan_p95_seconds > options_.spill_replan_p95_seconds;
  if (!queue_hot && !replan_hot) return ring_target;

  std::vector<LoadProbe> probes(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) probes[i] = probe_of(i);

  std::lock_guard<std::mutex> lock(mutex_);
  // Re-check under the lock: another worker may have spilled this key
  // while we were probing.
  auto remapped = remap_.find(key_hash);
  if (remapped != remap_.end()) return remapped->second;
  std::size_t target = least_loaded_shard_locked(probes);
  if (target == ring_target) return ring_target;  // nowhere better
  if (remap_.size() >= options_.max_remap_entries) {
    ++stats_.remap_refused;
    return ring_target;
  }
  remap_.emplace(key_hash, target);
  ++stats_.spillovers;
  stats_.remapped_keys = remap_.size();
  return target;
}

RpcStatus ShardRouter::submit(const TraceJob& job, SubmitJobResponse& out,
                              std::string& error, std::uint64_t trace_id) {
  if (shards_.empty()) {
    error = "router has no shards";
    return RpcStatus::ServerError;
  }
  std::size_t shard = route_for_submit(job.name);
  double started = now_seconds();
  RpcStatus status = shards_[shard].backend->submit(job, out, error);
  double elapsed = now_seconds() - started;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
    ++stats_.per_shard_requests[shard];
    if (status == RpcStatus::Ok) ++stats_.submitted_ok;
    latency_[shard].add(elapsed, trace_id);
  }
  if (status == RpcStatus::Ok) {
    out.shard_id = static_cast<std::int32_t>(shard);
    out.job_id = to_global(out.job_id, shard);
    rewrite_view_global(out.status, shard);
    std::size_t ring_target = static_cast<std::size_t>(ring_shard(job.name));
    if (shard != ring_target) {
      // The routed shard differs from pure consistent hashing: attribute
      // the spillover (or sticky remap) in the router journal under the
      // *global* id, timestamped 0.0 — before any shard virtual time, so a
      // merged timeline stays ordered across clock domains.
      JournalEvent event;
      event.job_id = out.job_id;
      event.kind = JournalEventKind::Spillover;
      event.time = 0.0;
      event.trace_id = trace_id;
      event.policy = "least_loaded";
      event.machine = static_cast<std::int32_t>(shard);
      event.candidates = static_cast<std::int32_t>(shards_.size());
      event.detail = "ring_shard=" + std::to_string(ring_target) +
                     " tenant=" + tenant_key(job.name);
      journal_.append(std::move(event));
      COSCHED_LOG(LogLevel::Info, "router", "submit spilled off ring shard",
                  {log_kv("job", out.job_id),
                   log_kv("ring_shard", static_cast<std::int64_t>(ring_target)),
                   log_kv("shard", static_cast<std::int64_t>(shard)),
                   log_kv("tenant", tenant_key(job.name))});
    }
  }
  return status;
}

RpcStatus ShardRouter::job_timeline(std::int64_t global_id,
                                    JobTimelineResponse& out,
                                    std::string& error) {
  if (shards_.empty()) {
    error = "router has no shards";
    return RpcStatus::ServerError;
  }
  if (global_id < 0) {
    error = "negative job id";
    return RpcStatus::UnknownJob;
  }
  std::int64_t n = static_cast<std::int64_t>(shards_.size());
  std::size_t shard = static_cast<std::size_t>(global_id % n);
  std::int64_t local_id = global_id / n;
  RpcStatus status =
      shards_[shard].backend->job_timeline(local_id, out, error);
  if (status != RpcStatus::Ok) return status;
  out.job_id = global_id;
  for (JournalEvent& event : out.events) {
    event.job_id = to_global(event.job_id, shard);
    for (std::int64_t& co : event.co_runners) co = to_global(co, shard);
  }
  // Router spillover events lead (time 0.0 ≤ every shard virtual time).
  JobTimeline routed = journal_.query(global_id);
  if (!routed.events.empty()) {
    out.events.insert(out.events.begin(), routed.events.begin(),
                      routed.events.end());
  }
  return RpcStatus::Ok;
}

RpcStatus ShardRouter::job_status(std::int64_t global_id,
                                  JobStatusResponse& out,
                                  std::string& error) {
  if (shards_.empty()) {
    error = "router has no shards";
    return RpcStatus::ServerError;
  }
  if (global_id < 0) {
    error = "negative job id";
    return RpcStatus::UnknownJob;
  }
  std::int64_t n = static_cast<std::int64_t>(shards_.size());
  std::size_t shard = static_cast<std::size_t>(global_id % n);
  std::int64_t local_id = global_id / n;
  RpcStatus status = shards_[shard].backend->job_status(local_id, out, error);
  if (out.found) rewrite_view_global(out.status, shard);
  return status;
}

RpcStatus ShardRouter::snapshot(ServiceSnapshot& out, std::string& error) {
  out = ServiceSnapshot{};
  std::int64_t live_procs = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ServiceSnapshot shard_view;
    RpcStatus status = shards_[i].backend->snapshot(shard_view, error);
    if (status != RpcStatus::Ok) return status;
    out.now = std::max(out.now, shard_view.now);
    out.pending_jobs += shard_view.pending_jobs;
    out.free_slots += shard_view.free_slots;
    out.completions += shard_view.completions;
    out.live_degradation_sum += shard_view.live_degradation_sum;
    for (auto& machine : shard_view.machines) {
      for (auto& proc : machine) {
        proc.gid = to_global(proc.gid, i);
        proc.job = to_global(proc.job, i);
        ++live_procs;
      }
      out.machines.push_back(std::move(machine));
    }
  }
  out.mean_live_degradation =
      live_procs == 0 ? 0.0
                      : out.live_degradation_sum /
                            static_cast<Real>(live_procs);
  return RpcStatus::Ok;
}

RpcStatus ShardRouter::metrics(MetricsResponse& out, std::string& error) {
  out = MetricsResponse{};
  out.shard_id = -1;  // the router itself is not a shard
  std::ostringstream csv;
  std::uint64_t mean_weight = 0;
  Real mean_weighted_sum = 0.0;
  RouterStats router = stats();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    MetricsResponse shard_view;
    RpcStatus status = shards_[i].backend->metrics(shard_view, error);
    if (status != RpcStatus::Ok) return status;

    ShardMetricsEntry entry;
    entry.shard_id = static_cast<std::int32_t>(i);
    entry.requests = router.per_shard_requests[i];
    entry.arrivals = shard_view.arrivals;
    entry.admissions = shard_view.admissions;
    entry.completions = shard_view.completions;
    entry.replans = shard_view.replans;
    entry.migrations = shard_view.migrations;
    entry.virtual_now = shard_view.virtual_now;
    entry.queue_depth = shard_view.command_queue_depth;
    entry.replan_p95_seconds = shard_view.replan_p95_seconds;
    out.shards.push_back(entry);

    // Fleet totals: counters sum over shards (the Σ invariant the replay
    // test pins); the clock reports the furthest shard; the running mean
    // is completion-weighted; p95 reports the worst shard (a fleet-wide
    // percentile needs the buckets, which the Prometheus page merges).
    out.arrivals += entry.arrivals;
    out.admissions += entry.admissions;
    out.completions += entry.completions;
    out.replans += entry.replans;
    out.migrations += entry.migrations;
    out.command_queue_depth += entry.queue_depth;
    out.virtual_now = std::max(out.virtual_now, entry.virtual_now);
    out.replan_p95_seconds =
        std::max(out.replan_p95_seconds, entry.replan_p95_seconds);
    if (entry.completions > 0) {
      mean_weight += entry.completions;
      mean_weighted_sum += shard_view.running_mean_degradation *
                           static_cast<Real>(entry.completions);
    }
    out.cache.hits += shard_view.cache.hits;
    out.cache.misses += shard_view.cache.misses;
    out.cache.entries += shard_view.cache.entries;
    out.cache.evictions += shard_view.cache.evictions;
    out.cache.compactions += shard_view.cache.compactions;
    csv << "# shard " << i << "\n" << shard_view.deterministic_csv;
  }
  if (mean_weight > 0) {
    out.running_mean_degradation =
        mean_weighted_sum / static_cast<Real>(mean_weight);
  }
  out.deterministic_csv = csv.str();
  out.router_spillovers = router.spillovers;
  out.router_remapped_keys = router.remapped_keys;
  // v6 health block: every shard answered its metrics round-trip above
  // (fail-fast on the first miss preserves the Σ invariant), so each is up
  // by observation; record that in the health cache too — a successful
  // GetMetrics is exactly the probe a stale verdict would re-run.
  double checked_at = now_seconds();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardHealthEntry health;
    health.shard_id = static_cast<std::int32_t>(i);
    health.up = true;
    ShardRpcErrors rpc_errors = shards_[i].backend->rpc_errors();
    health.transport_errors = rpc_errors.transport;
    health.protocol_errors = rpc_errors.protocol;
    health.application_errors = rpc_errors.application;
    out.shard_health.push_back(health);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& slot : shards_) {
      slot.health_probed = true;
      slot.health_up = true;
      slot.health_error.clear();
      slot.health_checked_at = checked_at;
    }
  }
  return RpcStatus::Ok;
}

RpcStatus ShardRouter::drain(DrainResponse& out, std::string& error) {
  out = DrainResponse{};
  for (auto& slot : shards_) {
    DrainResponse shard_out;
    RpcStatus status = slot.backend->drain(shard_out, error);
    if (status != RpcStatus::Ok) return status;
    out.completions += shard_out.completions;
    out.virtual_now = std::max(out.virtual_now, shard_out.virtual_now);
  }
  return RpcStatus::Ok;
}

RouterStats ShardRouter::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

FleetHealth ShardRouter::health(double max_age_seconds) {
  FleetHealth fleet;
  fleet.shards.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    bool need_probe;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const ShardSlot& slot = shards_[i];
      need_probe = !slot.health_probed ||
                   now_seconds() - slot.health_checked_at > max_age_seconds;
    }
    if (need_probe) {
      // Probe outside the lock: a dead remote shard costs its connect
      // timeout here, and must stall only this caller, not the router.
      std::string error;
      bool up = shards_[i].backend->probe(error);
      std::lock_guard<std::mutex> lock(mutex_);
      ShardSlot& slot = shards_[i];
      slot.health_probed = true;
      slot.health_up = up;
      slot.health_error = up ? std::string() : error;
      slot.health_checked_at = now_seconds();
    }
    ShardHealth entry;
    entry.shard_id = static_cast<std::int32_t>(i);
    entry.local = shards_[i].backend->is_local();
    entry.rpc_errors = shards_[i].backend->rpc_errors();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const ShardSlot& slot = shards_[i];
      entry.up = slot.health_up;
      entry.error = slot.health_error;
      entry.age_seconds =
          std::max(0.0, now_seconds() - slot.health_checked_at);
    }
    if (entry.up) ++fleet.shards_up;
    fleet.shards.push_back(std::move(entry));
  }
  if (fleet.shards.empty() || fleet.shards_up == 0)
    fleet.state = FleetHealth::State::Down;
  else if (fleet.shards_up < fleet.shards.size())
    fleet.state = FleetHealth::State::Degraded;
  else
    fleet.state = FleetHealth::State::Ok;
  return fleet;
}

std::string ShardRouter::health_json(
    const FleetHealth& health, const std::vector<std::string>& firing_alerts) {
  // A fleet whose transports are all up but whose watchdog is paging is
  // not "ok": firing alerts demote the verdict one notch (never below the
  // transport fold — a down fleet stays down).
  const char* status = to_string(health.state);
  if (!firing_alerts.empty() && health.state == FleetHealth::State::Ok)
    status = "degraded";
  std::string out = "{\"status\":\"";
  out += status;
  if (!firing_alerts.empty()) {
    out += "\",\"firing_alerts\":[";
    for (std::size_t i = 0; i < firing_alerts.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"";
      append_json_escaped(out, firing_alerts[i]);
      out += "\"";
    }
    out += "],\"transport\":\"";
    out += to_string(health.state);
  }
  out += "\",\"shards_up\":" + std::to_string(health.shards_up);
  out += ",\"shards_total\":" + std::to_string(health.shards.size());
  out += ",\"shards\":[";
  for (std::size_t i = 0; i < health.shards.size(); ++i) {
    const ShardHealth& shard = health.shards[i];
    if (i > 0) out += ",";
    out += "{\"shard\":" + std::to_string(shard.shard_id);
    out += std::string(",\"backend\":\"") +
           (shard.local ? "local" : "remote") + "\"";
    out += std::string(",\"up\":") + (shard.up ? "true" : "false");
    char age[32];
    std::snprintf(age, sizeof(age), "%.3f", shard.age_seconds);
    out += std::string(",\"age_seconds\":") + age;
    out += ",\"rpc_errors\":{\"transport\":" +
           std::to_string(shard.rpc_errors.transport) +
           ",\"protocol\":" + std::to_string(shard.rpc_errors.protocol) +
           ",\"application\":" +
           std::to_string(shard.rpc_errors.application) + "}";
    if (!shard.error.empty()) {
      out += ",\"error\":\"";
      append_json_escaped(out, shard.error);
      out += "\"";
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

std::string ShardRouter::render_prometheus() {
  // Health first: refreshes stale verdicts (probes run unlocked) and
  // carries the per-kind RPC failure counters.
  FleetHealth fleet_health = health(options_.health_max_age_seconds);

  // Assemble per-shard snapshots first (shard probes and histogram copies),
  // holding the router mutex only around router-owned state.
  std::vector<LoadProbe> probes(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    // The fleet page reports live load; overrides only steer routing tests.
    probes[i] = shards_[i].backend->load();
  }

  RouterStats router;
  Histogram fleet(router_latency_edges());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    router = stats_;
    for (const Histogram& shard_hist : latency_) fleet.merge(shard_hist);
  }

  std::ostringstream out;
  out << "# HELP cosched_router_requests_total Submits routed (including "
         "rejected).\n";
  out << "# TYPE cosched_router_requests_total counter\n";
  out << "cosched_router_requests_total "
      << format_prometheus_value(static_cast<double>(router.requests))
      << "\n";
  out << "# HELP cosched_router_spillovers_total Keys re-homed off their "
         "ring shard by load.\n";
  out << "# TYPE cosched_router_spillovers_total counter\n";
  out << "cosched_router_spillovers_total "
      << format_prometheus_value(static_cast<double>(router.spillovers))
      << "\n";
  out << "# HELP cosched_router_remapped_keys Live remap-table entries.\n";
  out << "# TYPE cosched_router_remapped_keys gauge\n";
  out << "cosched_router_remapped_keys "
      << format_prometheus_value(static_cast<double>(router.remapped_keys))
      << "\n";
  out << "# HELP cosched_router_shard_requests_total Submits routed per "
         "shard.\n";
  out << "# TYPE cosched_router_shard_requests_total counter\n";
  for (std::size_t i = 0; i < router.per_shard_requests.size(); ++i) {
    out << "cosched_router_shard_requests_total{shard=\"" << i << "\"} "
        << format_prometheus_value(
               static_cast<double>(router.per_shard_requests[i]))
        << "\n";
  }
  out << "# HELP cosched_router_shard_queue_depth Shard command-queue "
         "depth.\n";
  out << "# TYPE cosched_router_shard_queue_depth gauge\n";
  for (std::size_t i = 0; i < probes.size(); ++i) {
    out << "cosched_router_shard_queue_depth{shard=\"" << i << "\"} "
        << format_prometheus_value(static_cast<double>(probes[i].queue_depth))
        << "\n";
  }
  out << "# HELP cosched_router_shard_virtual_now Shard-local virtual "
         "clock, seconds.\n";
  out << "# TYPE cosched_router_shard_virtual_now gauge\n";
  for (std::size_t i = 0; i < probes.size(); ++i) {
    out << "cosched_router_shard_virtual_now{shard=\"" << i << "\"} "
        << format_prometheus_value(probes[i].virtual_now) << "\n";
  }
  out << "# HELP cosched_router_shard_replan_p95_seconds Shard wall-clock "
         "replan p95.\n";
  out << "# TYPE cosched_router_shard_replan_p95_seconds gauge\n";
  for (std::size_t i = 0; i < probes.size(); ++i) {
    out << "cosched_router_shard_replan_p95_seconds{shard=\"" << i << "\"} "
        << format_prometheus_value(probes[i].replan_p95_seconds) << "\n";
  }
  out << "# HELP cosched_shard_up Shard liveness from the health fan-in "
         "(1 up, 0 down).\n";
  out << "# TYPE cosched_shard_up gauge\n";
  for (const ShardHealth& shard : fleet_health.shards) {
    out << "cosched_shard_up{shard=\"" << shard.shard_id << "\"} "
        << (shard.up ? "1" : "0") << "\n";
  }
  out << "# HELP cosched_shard_rpc_errors_total Folded shard RPC failures "
         "by error kind.\n";
  out << "# TYPE cosched_shard_rpc_errors_total counter\n";
  for (const ShardHealth& shard : fleet_health.shards) {
    out << "cosched_shard_rpc_errors_total{shard=\"" << shard.shard_id
        << "\",kind=\"transport\"} "
        << format_prometheus_value(
               static_cast<double>(shard.rpc_errors.transport))
        << "\n";
    out << "cosched_shard_rpc_errors_total{shard=\"" << shard.shard_id
        << "\",kind=\"protocol\"} "
        << format_prometheus_value(
               static_cast<double>(shard.rpc_errors.protocol))
        << "\n";
    out << "cosched_shard_rpc_errors_total{shard=\"" << shard.shard_id
        << "\",kind=\"application\"} "
        << format_prometheus_value(
               static_cast<double>(shard.rpc_errors.application))
        << "\n";
  }
  out << "# HELP cosched_router_request_seconds Router-side submit latency, "
         "all shards merged.\n";
  render_prometheus_histogram(out, "cosched_router_request_seconds", fleet,
                              /*with_exemplars=*/true);
  // Labeled log/journal accounting (the router's own spillover journal).
  out << render_log_metrics();
  out << render_journal_metrics(journal_);
  return out.str();
}

void ShardRouter::refresh_remote_loads() {
  for (auto& slot : shards_) {
    if (!slot.backend->is_local()) slot.backend->refresh_load();
  }
}

void ShardRouter::set_load_probe_override(std::size_t index,
                                          const LoadProbe& probe,
                                          bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  shards_[index].probe_override = enabled;
  shards_[index].probe = probe;
}

void ShardRouter::rewrite_view_global(JobStatusView& view,
                                      std::size_t shard_index) const {
  view.id = to_global(view.id, shard_index);
  for (auto& proc : view.procs) {
    proc.gid = to_global(proc.gid, shard_index);
  }
}

}  // namespace cosched
