#include "shard/hash_ring.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace cosched {

HashRing::HashRing(std::int32_t vnodes_per_shard)
    : vnodes_(vnodes_per_shard > 0 ? vnodes_per_shard : 1) {}

void HashRing::add_shard(std::int32_t shard_id) {
  auto member = std::lower_bound(shards_.begin(), shards_.end(), shard_id);
  if (member != shards_.end() && *member == shard_id) return;
  shards_.insert(member, shard_id);
  points_.reserve(points_.size() + static_cast<std::size_t>(vnodes_));
  for (std::int32_t vnode = 0; vnode < vnodes_; ++vnode) {
    Point point{ring_point(shard_id, vnode), shard_id};
    points_.insert(std::lower_bound(points_.begin(), points_.end(), point),
                   point);
  }
}

void HashRing::remove_shard(std::int32_t shard_id) {
  auto member = std::lower_bound(shards_.begin(), shards_.end(), shard_id);
  if (member == shards_.end() || *member != shard_id) return;
  shards_.erase(member);
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [shard_id](const Point& point) {
                                 return point.shard == shard_id;
                               }),
                points_.end());
}

std::int32_t HashRing::shard_for(std::uint64_t key_hash) const {
  if (points_.empty()) return -1;
  // First point at or after the hash; wrap to the smallest point when the
  // hash lands past the last one.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key_hash,
      [](const Point& point, std::uint64_t hash) {
        return point.position < hash;
      });
  if (it == points_.end()) it = points_.begin();
  return it->shard;
}

std::int32_t HashRing::shard_for_key(const std::string& key) const {
  return shard_for(hash_key(key));
}

std::uint64_t HashRing::hash_key(const std::string& key) {
  // FNV-1a 64-bit over the bytes...
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : key) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 0x100000001B3ULL;
  }
  // ...then one SplitMix64 round: FNV alone keeps short ASCII keys in a
  // narrow band of the ring, which would starve shards.
  return SplitMix64(h).next();
}

std::uint64_t HashRing::ring_point(std::int32_t shard_id, std::int32_t vnode) {
  // Mix the pair through two SplitMix64 rounds; a single round of
  // (shard << 32 | vnode) leaves adjacent shards' points correlated.
  SplitMix64 mixer((static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                        shard_id)) << 32) ^
                   static_cast<std::uint32_t>(vnode));
  std::uint64_t first = mixer.next();
  return SplitMix64(first).next();
}

}  // namespace cosched
