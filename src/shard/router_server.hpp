// RouterServer — TCP front door of a sharded deployment.
//
// Same wire contract as CoschedServer (CSC1 frames, versioned envelopes,
// v1..v6 accepted, answered in the requester's version) so every existing
// client — CoschedClient, the loopback bench, the examples — talks to a
// sharded fleet unchanged. The difference is behind the dispatcher: requests
// go to a ShardRouter instead of one LiveSchedulerService, job ids are
// global (shard-encoded), SubmitJob acks carry the routed shard on v5
// wires, and GetMetrics answers the fan-in block (with the v6 per-shard
// health entries).
//
// Deliberately simpler than CoschedServer: no telemetry streaming
// (SubscribeTelemetry answers BadRequest — subscribe to the shards' own
// servers in an RPC-addressable deployment) and no per-request tail
// sampling. The HTTP side door serves the *fleet* view:
// ShardRouter::render_prometheus() — router counters, per-shard gauges and
// the merged latency histogram — instead of the process registry, /healthz
// answers the health fan-in (JSON breakdown, 503 when every shard is down)
// and /debug/profile serves the process profiler's collapsed stacks.
//
// TraceDump fans in too: the reply merges the router's own dump with each
// remote shard's dump — span names namespaced "shard<k>/", pids separated,
// flow events left intact so Perfetto stitches a request's router span to
// the shard's replan span through the shared trace id.
//
// The router is borrowed, not owned: the caller builds the fleet (add
// shards), hands it in, and may keep using it directly (the router is
// thread-safe).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/alerts.hpp"
#include "obs/http.hpp"
#include "shard/router.hpp"

namespace cosched {

struct RouterServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back with port()
  int backlog = 16;
  std::size_t worker_threads = 2;
  std::size_t max_connections = 32;
  double idle_poll_seconds = 0.2;
  double request_deadline_seconds = 10.0;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  bool enable_http = true;
  std::uint16_t http_port = 0;  ///< 0 = ephemeral; read back with http_port()
  /// SLO watchdog over the router process's registry (which includes every
  /// local shard — they share the process). Remote shards run their own
  /// engines; GetAlerts//alerts fans those in shard-labelled. Compiled out
  /// under COSCHED_ALERTS_DISABLED regardless of this switch.
  bool enable_alerts = true;
  AlertEngineOptions alerts;
  /// Latency budget (ms) behind the default burn-rate rules.
  double alert_budget_ms = 900.0;
};

struct RouterServerStats {
  std::uint64_t accepted_connections = 0;
  std::uint64_t rejected_connections = 0;
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_failed = 0;
  std::uint64_t malformed_frames = 0;
};

class RouterServer {
 public:
  /// `router` must outlive the server and have its shards added already.
  RouterServer(ShardRouter& router, RouterServerOptions options);
  ~RouterServer();

  RouterServer(const RouterServer&) = delete;
  RouterServer& operator=(const RouterServer&) = delete;

  bool start(std::string& error);
  std::uint16_t port() const { return port_; }
  std::uint16_t http_port() const { return http_ ? http_->port() : 0; }

  /// Blocks until stop() is called or an RPC Shutdown arrives.
  void wait();
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }
  void stop();

  ShardRouter& router() { return router_; }
  /// The router's own SLO watchdog (nullptr when disabled/compiled out).
  AlertEngine* alert_engine() { return alerts_.get(); }
  RouterServerStats stats() const;

 private:
  void accept_main();
  /// Fleet alert fan-in: the router's own rules (shard_id == -1) plus each
  /// remote shard's GetAlerts entries rewritten with its shard id. Local
  /// shards share the process registry the router engine already watches.
  AlertsResponse collect_alerts();
  void worker_main();
  void serve_connection(Socket socket);
  ResponseEnvelope handle_request(const RequestEnvelope& request,
                                  std::uint64_t trace_id);
  std::uint64_t next_server_trace_id();

  ShardRouter& router_;
  RouterServerOptions options_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::unique_ptr<HttpEndpoint> http_;
  std::unique_ptr<AlertEngine> alerts_;

  std::mutex mutex_;
  std::condition_variable wake_;      ///< workers: connection queue
  std::condition_variable finished_;  ///< wait(): shutdown latch
  std::deque<Socket> pending_;
  std::size_t active_sessions_ = 0;
  bool stopping_ = false;
  bool started_ = false;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<std::uint64_t> trace_id_counter_{0};

  mutable std::mutex stats_mutex_;
  RouterServerStats stats_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace cosched
