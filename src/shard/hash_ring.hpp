// Consistent-hash ring with virtual nodes — the deterministic admission
// router of the sharded deployment.
//
// Every shard owns `vnodes_per_shard` points on a 64-bit ring; a key is
// served by the shard owning the first point at or clockwise-after the
// key's hash. Virtual nodes smooth the arc lengths so K keys over N shards
// land near-uniformly (the classic consistent-hashing construction), and
// membership changes stay local: adding a shard steals only the keys whose
// arcs its new points split (~K/N in expectation), removing one reassigns
// only *its* keys — every other key keeps its shard. That ≤K/N remap bound
// is what makes scale-out cheap: a fleet resize does not reshuffle the
// world, and the router's QueryJobStatus routing stays valid for every
// unmoved key.
//
// Everything is deterministic: points are derived from (shard id, vnode
// index) with SplitMix64 and keys hash with FNV-1a + a SplitMix64
// finalizer, so the same key maps to the same shard across processes,
// platforms and runs — the property the deterministic-replay tests pin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cosched {

class HashRing {
 public:
  /// More virtual nodes = smoother key distribution, linearly slower
  /// membership changes (lookups stay O(log(N * vnodes))).
  explicit HashRing(std::int32_t vnodes_per_shard = 64);

  /// Adds `shard_id`'s virtual nodes. Adding a present shard is a no-op.
  void add_shard(std::int32_t shard_id);
  /// Removes `shard_id`'s virtual nodes. Removing an absent shard is a
  /// no-op.
  void remove_shard(std::int32_t shard_id);

  /// Owner of `key_hash`: the shard of the first ring point at or after it
  /// (wrapping). -1 when the ring is empty.
  std::int32_t shard_for(std::uint64_t key_hash) const;
  /// Convenience: shard_for(hash_key(key)).
  std::int32_t shard_for_key(const std::string& key) const;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t point_count() const { return points_.size(); }
  /// Member shard ids, ascending.
  const std::vector<std::int32_t>& shards() const { return shards_; }

  /// Deterministic 64-bit key hash: FNV-1a over the bytes, finished with a
  /// SplitMix64 mix so short/sequential tenant names still spread over the
  /// whole ring.
  static std::uint64_t hash_key(const std::string& key);
  /// Ring point of (shard, vnode) — exposed for the distribution tests.
  static std::uint64_t ring_point(std::int32_t shard_id, std::int32_t vnode);

 private:
  struct Point {
    std::uint64_t position;
    std::int32_t shard;
    bool operator<(const Point& other) const {
      // Position ties (vanishingly rare) resolve to the smaller shard id,
      // independent of insertion order — determinism over history.
      return position != other.position ? position < other.position
                                        : shard < other.shard;
    }
  };

  std::int32_t vnodes_;
  std::vector<Point> points_;        ///< sorted by (position, shard)
  std::vector<std::int32_t> shards_; ///< sorted member ids
};

}  // namespace cosched
