#include "shard/router_server.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace cosched {

RouterServer::RouterServer(ShardRouter& router, RouterServerOptions options)
    : router_(router), options_(std::move(options)) {
  COSCHED_EXPECTS(options_.worker_threads >= 1);
  COSCHED_EXPECTS(options_.max_connections >= 1);
}

RouterServer::~RouterServer() { stop(); }

bool RouterServer::start(std::string& error) {
  NetStatus status = NetStatus::Ok;
  listener_ = Socket::listen_on(options_.host, options_.port,
                                options_.backlog, status);
  if (status != NetStatus::Ok) {
    error = std::string("cannot listen on ") + options_.host + ": " +
            to_string(status);
    return false;
  }
  port_ = listener_.local_port();

  // A serving router profiles itself — the phase timers are cheap enough
  // to leave on, and /debug/profile is only useful with data behind it.
  Profiler::global().set_enabled(true);

  // The router's own SLO watchdog. It scrapes the *fleet* page — router
  // counters, per-shard gauges and the merged latency histogram — so the
  // default burn-rate rules watch fleet-wide latency, not just this
  // process's registry. Remote shards run their own engines and are fanned
  // in by collect_alerts().
  if (options_.enable_alerts && !kAlertsDisabled) {
    AlertEngineOptions alert_options = options_.alerts;
    if (alert_options.rules.rules.empty()) {
      alert_options.rules = default_alert_rules(options_.alert_budget_ms);
      // The fleet page's latency histogram is the router-side submit
      // latency (cosched_router_request_seconds) — cosched_rpc_request
      // _seconds belongs to the shard processes and never appears here.
      // Repoint the default burn rules at the family that exists.
      for (AlertRule& rule : alert_options.rules.rules)
        if (rule.histogram == "cosched_rpc_request_seconds")
          rule.histogram = "cosched_router_request_seconds";
    }
    if (!alert_options.exposition_source) {
      ShardRouter* router = &router_;
      alert_options.exposition_source = [router] {
        return router->render_prometheus();
      };
    }
    alerts_ = std::make_unique<AlertEngine>(std::move(alert_options));
    alerts_->set_journal(&router_.journal());
    if (!alerts_->start()) alerts_.reset();
  }

  if (options_.enable_http) {
    HttpOptions http_options;
    http_options.host = options_.host;
    http_options.port = options_.http_port;
    http_ = std::make_unique<HttpEndpoint>(http_options);
    ShardRouter* router = &router_;
    http_->handle("/metrics", [this, router](const std::string&,
                                             std::string& body,
                                             std::string& content_type) {
      body = router->render_prometheus();
      if (alerts_) body += render_alert_metrics(*alerts_);
      content_type = "text/plain; version=0.0.4; charset=utf-8";
      return true;
    });
    // Liveness fans in: ok / degraded answer 200 (the body carries the
    // verdict and the per-shard breakdown), a fully-down fleet answers 503
    // so dumb load-balancer probes fail over without parsing JSON. Firing
    // alerts — the router's own or any shard's — demote ok to degraded but
    // never change the status code: the process is still serving.
    http_->handle_status(
        "/healthz", [this, router](const std::string&, std::string& body,
                                   std::string& content_type) {
          FleetHealth health = router->health();
          std::vector<std::string> firing;
          AlertsResponse fleet_alerts = collect_alerts();
          for (const AlertEntry& entry : fleet_alerts.alerts) {
            if (entry.state != static_cast<std::uint8_t>(AlertState::Firing))
              continue;
            firing.push_back(entry.shard_id < 0
                                 ? entry.rule
                                 : "shard" + std::to_string(entry.shard_id) +
                                       "/" + entry.rule);
          }
          body = ShardRouter::health_json(health, firing);
          content_type = "application/json";
          return health.state == FleetHealth::State::Down ? 503 : 200;
        });
    // Fleet alert fan-in: the router's own rules (shard=-1) plus every
    // remote shard's, shard-labelled. Text by default, ?format=json for
    // machines — same contract as the single-server /alerts.
    http_->handle("/alerts", [this](const std::string& target,
                                    std::string& body,
                                    std::string& content_type) {
      AlertsResponse fleet_alerts = collect_alerts();
      std::vector<AlertView> views;
      views.reserve(fleet_alerts.alerts.size());
      for (const AlertEntry& entry : fleet_alerts.alerts) {
        AlertView view;
        view.shard_id = entry.shard_id;
        view.rule = entry.rule;
        alert_state_from(entry.state, view.state);
        view.severity = entry.severity <= 2
                            ? static_cast<AlertSeverity>(entry.severity)
                            : AlertSeverity::Warn;
        view.value = entry.value;
        view.threshold = entry.threshold;
        view.since_seconds = entry.since_seconds;
        view.detail = entry.detail;
        views.push_back(std::move(view));
      }
      if (http_query_param(target, "format") == "json") {
        body = render_alerts_json(views, fleet_alerts.engine_enabled);
        content_type = "application/json";
      } else {
        body = render_alerts_text(views, fleet_alerts.engine_enabled);
      }
      return true;
    });
    http_->handle("/debug/profile", [](const std::string&, std::string& body,
                                       std::string&) {
      body = Profiler::global().render_collapsed();
      return true;
    });
    http_->handle("/debug/events", [router](const std::string& target,
                                            std::string& body, std::string&) {
      // ?job=<global id> fans through to the owning shard's journal (ids
      // rewritten to the global domain); bare = the router's own spillover
      // journal tail.
      const std::string job_param = http_query_param(target, "job");
      if (!job_param.empty()) {
        char* end = nullptr;
        long long id = std::strtoll(job_param.c_str(), &end, 10);
        if (end == job_param.c_str() || *end != '\0') {
          body = "bad job id: " + job_param + "\n";
          return true;
        }
        JobTimelineResponse reply;
        std::string error;
        RpcStatus status = router->job_timeline(id, reply, error);
        if (status != RpcStatus::Ok) {
          body = std::string(to_string(status)) + ": " + error + "\n";
          return true;
        }
        body = "job=" + std::to_string(id) +
               " events=" + std::to_string(reply.events.size()) +
               " truncated=" + (reply.truncated ? "1" : "0") + "\n";
        for (const JournalEvent& event : reply.events)
          body += render_journal_event(event) + "\n";
        return true;
      }
      for (const JournalEvent& event : router->journal().tail(256))
        body += render_journal_event(event) + "\n";
      return true;
    });
    if (!http_->start(error)) {
      http_.reset();
      listener_.close();
      return false;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    started_ = true;
    stopping_ = false;
  }
  accept_thread_ = std::thread(&RouterServer::accept_main, this);
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i)
    workers_.emplace_back(&RouterServer::worker_main, this);
  return true;
}

void RouterServer::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  finished_.wait(lock, [&] {
    return stopping_ || shutdown_requested_.load(std::memory_order_acquire);
  });
}

void RouterServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    stopping_ = true;
  }
  wake_.notify_all();
  finished_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
  listener_.close();
  if (http_) {
    http_->stop();
    http_.reset();
  }
  if (alerts_) {
    alerts_->stop();
    alerts_.reset();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.clear();
  started_ = false;
  // Shards are the caller's: the router (and its scheduler threads) outlive
  // this front door by design.
}

RouterServerStats RouterServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

AlertsResponse RouterServer::collect_alerts() {
  AlertsResponse fleet;
  fleet.engine_enabled = alerts_ != nullptr;
  if (alerts_) {
    for (const AlertView& view : alerts_->views()) {
      AlertEntry entry;
      entry.shard_id = -1;  // the router's own watchdog
      entry.rule = view.rule;
      entry.state = static_cast<std::uint8_t>(view.state);
      entry.severity = static_cast<std::uint8_t>(view.severity);
      entry.value = view.value;
      entry.threshold = view.threshold;
      entry.since_seconds = view.since_seconds;
      entry.detail = view.detail;
      if (view.state == AlertState::Firing) ++fleet.firing;
      fleet.alerts.push_back(std::move(entry));
    }
  }
  // Remote shards run their own engines; local shards share this process's
  // registry (the router engine above already watches them), and their
  // backend answers BadRequest — skipped, not an error. A remote shard that
  // cannot answer is skipped too: a partial fan-in beats none, and the
  // failure shows in cosched_shard_rpc_errors_total.
  for (std::size_t i = 0; i < router_.shard_count(); ++i) {
    ShardBackend& shard = router_.shard(i);
    if (shard.is_local()) continue;
    AlertsResponse remote;
    std::string shard_error;
    if (shard.alerts(remote, shard_error) != RpcStatus::Ok) continue;
    for (AlertEntry& entry : remote.alerts) {
      entry.shard_id = static_cast<std::int32_t>(i);
      if (entry.state == static_cast<std::uint8_t>(AlertState::Firing))
        ++fleet.firing;
      fleet.alerts.push_back(std::move(entry));
    }
  }
  return fleet;
}

void RouterServer::accept_main() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    NetStatus status = NetStatus::Ok;
    Socket conn = listener_.accept_connection(
        Deadline::after(options_.idle_poll_seconds), status);
    if (status == NetStatus::Timeout) continue;
    if (status != NetStatus::Ok) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      continue;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    if (pending_.size() + active_sessions_ >= options_.max_connections) {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.rejected_connections;
      continue;  // `conn` closes as it goes out of scope
    }
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.accepted_connections;
    }
    pending_.push_back(std::move(conn));
    wake_.notify_one();
  }
}

void RouterServer::worker_main() {
  while (true) {
    Socket conn;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;
      conn = std::move(pending_.front());
      pending_.pop_front();
      ++active_sessions_;
    }
    serve_connection(std::move(conn));
    std::lock_guard<std::mutex> lock(mutex_);
    --active_sessions_;
  }
}

std::uint64_t RouterServer::next_server_trace_id() {
  // Distinct mix constant from CoschedServer's so router-minted ids do not
  // collide with shard-minted ones in a shared tracer.
  std::uint64_t n = trace_id_counter_.fetch_add(1, std::memory_order_relaxed);
  return SplitMix64(0x40D7E45EEDULL + n).next() | 1;
}

void RouterServer::serve_connection(Socket socket) {
  std::vector<std::uint8_t> payload;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    FrameStatus frame_status =
        read_frame(socket, payload, Deadline::after(options_.idle_poll_seconds),
                   options_.max_frame_bytes);
    if (frame_status == FrameStatus::Timeout) continue;
    if (frame_status == FrameStatus::Closed) return;
    if (frame_status != FrameStatus::Ok) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.malformed_frames;
      return;
    }

    RequestEnvelope request;
    ResponseEnvelope response;
    if (!decode_request(payload, request)) {
      response.status = RpcStatus::BadRequest;
      response.error = "malformed request envelope";
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.malformed_frames;
    } else {
      std::uint64_t trace_id =
          request.trace_id != 0 ? request.trace_id : next_server_trace_id();
      TraceContext context = Tracer::global().make_context(trace_id);
      TraceContextScope trace_scope(context);
      COSCHED_TRACE_SPAN(request_span, "router.request", -1.0,
                         std::string("type=") + to_string(request.type));
      COSCHED_PROFILE_PHASE(request_phase, "router.request");
      response = handle_request(request, trace_id);
      response.trace_id = trace_id;
    }

    std::vector<std::uint8_t> bytes = encode_response(response);
    FrameStatus write_status = write_frame(
        socket, bytes, Deadline::after(options_.request_deadline_seconds +
                                       options_.idle_poll_seconds));
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (response.status == RpcStatus::Ok)
        ++stats_.requests_ok;
      else
        ++stats_.requests_failed;
    }
    if (write_status != FrameStatus::Ok) return;
    if (response.status == RpcStatus::Ok &&
        response.type == MessageType::Shutdown) {
      shutdown_requested_.store(true, std::memory_order_release);
      finished_.notify_all();
      return;
    }
  }
}

ResponseEnvelope RouterServer::handle_request(const RequestEnvelope& request,
                                              std::uint64_t trace_id) {
  ResponseEnvelope response;
  response.type = request.type;
  response.request_id = request.request_id;
  if (request.version < kMinProtocolVersion ||
      request.version > kProtocolVersion) {
    response.status = RpcStatus::VersionMismatch;
    response.error = "server speaks protocol versions " +
                     std::to_string(kMinProtocolVersion) + ".." +
                     std::to_string(kProtocolVersion);
    return response;
  }
  response.version = request.version;

  WireWriter body;
  WireReader reader(request.body);
  std::string error;
  auto fail = [&](RpcStatus status, std::string message) {
    response.status = status;
    response.error = std::move(message);
    return response;
  };

  switch (request.type) {
    case MessageType::SubmitJob: {
      TraceJob job;
      if (!decode_trace_job(reader, job) || !reader.complete())
        return fail(RpcStatus::BadRequest, "malformed SubmitJob body");
      SubmitJobResponse reply;
      RpcStatus status = router_.submit(job, reply, error, trace_id);
      if (status != RpcStatus::Ok) return fail(status, error);
      encode_submit_response(body, reply, request.version);
      break;
    }
    case MessageType::QueryJobStatus: {
      std::int64_t job_id = reader.i64();
      if (!reader.complete())
        return fail(RpcStatus::BadRequest, "malformed QueryJobStatus body");
      JobStatusResponse reply;
      RpcStatus status = router_.job_status(job_id, reply, error);
      if (status != RpcStatus::Ok) {
        return fail(status, error.empty()
                                ? "no job with id " + std::to_string(job_id)
                                : error);
      }
      encode_status_response(body, reply);
      break;
    }
    case MessageType::QueryJobTimeline: {
      if (request.version < 7)
        return fail(RpcStatus::BadRequest,
                    "QueryJobTimeline requires protocol v7");
      std::int64_t job_id = reader.i64();
      if (!reader.complete())
        return fail(RpcStatus::BadRequest, "malformed QueryJobTimeline body");
      JobTimelineResponse reply;
      RpcStatus status = router_.job_timeline(job_id, reply, error);
      if (status != RpcStatus::Ok) {
        return fail(status, error.empty()
                                ? "no job with id " + std::to_string(job_id)
                                : error);
      }
      encode_timeline_response(body, reply);
      break;
    }
    case MessageType::QueryScheduleSnapshot: {
      if (!reader.complete())
        return fail(RpcStatus::BadRequest,
                    "unexpected QueryScheduleSnapshot body");
      ServiceSnapshot snapshot;
      RpcStatus status = router_.snapshot(snapshot, error);
      if (status != RpcStatus::Ok) return fail(status, error);
      encode_service_snapshot(body, snapshot);
      break;
    }
    case MessageType::GetMetrics: {
      if (!reader.complete())
        return fail(RpcStatus::BadRequest, "unexpected GetMetrics body");
      MetricsResponse reply;
      RpcStatus status = router_.metrics(reply, error);
      if (status != RpcStatus::Ok) return fail(status, error);
      encode_metrics_response(body, reply, request.version);
      break;
    }
    case MessageType::TraceDump: {
      if (!reader.complete())
        return fail(RpcStatus::BadRequest, "unexpected TraceDump body");
      // Fan-in: the router's own dump (which covers local shards — they
      // share this process's tracer) merged with every remote shard's
      // dump, namespaced "shard<k>/" and moved to its own Perfetto pid.
      // Flow events keep their name/id so the shared trace ids draw the
      // router -> shard arrows. A shard that cannot answer is skipped: a
      // partial trace beats no trace, and the failure shows up in the
      // cosched_shard_rpc_errors_total counters.
      const Tracer& tracer = Tracer::global();
      TraceDumpResponse reply;
      reply.enabled = tracer.enabled();
      reply.event_count = tracer.event_count();
      reply.text = tracer.dump_text();
      std::vector<std::string> chrome_parts;
      chrome_parts.push_back(tracer.export_chrome_json());
      for (std::size_t i = 0; i < router_.shard_count(); ++i) {
        ShardBackend& shard = router_.shard(i);
        if (shard.is_local()) continue;
        TraceDumpResponse remote;
        std::string shard_error;
        if (shard.trace_dump(remote, shard_error) != RpcStatus::Ok) continue;
        const std::string prefix = "shard" + std::to_string(i) + "/";
        reply.event_count += remote.event_count;
        reply.text += namespace_trace_text(remote.text, prefix);
        chrome_parts.push_back(namespace_chrome_trace(
            remote.chrome_json, static_cast<int>(i) + 2, prefix));
      }
      reply.chrome_json = chrome_parts.size() == 1
                              ? std::move(chrome_parts.front())
                              : merge_chrome_traces(chrome_parts);
      encode_trace_dump_response(body, reply);
      break;
    }
    case MessageType::Drain: {
      if (!reader.complete())
        return fail(RpcStatus::BadRequest, "unexpected Drain body");
      DrainResponse reply;
      RpcStatus status = router_.drain(reply, error);
      if (status != RpcStatus::Ok) return fail(status, error);
      encode_drain_response(body, reply);
      break;
    }
    case MessageType::Shutdown: {
      if (!reader.complete())
        return fail(RpcStatus::BadRequest, "unexpected Shutdown body");
      MetricsResponse fleet;
      body.real(router_.metrics(fleet, error) == RpcStatus::Ok
                    ? fleet.virtual_now
                    : 0.0);
      break;
    }
    case MessageType::GetAlerts: {
      if (request.version < 8)
        return fail(RpcStatus::BadRequest, "GetAlerts requires protocol v8");
      if (!reader.complete())
        return fail(RpcStatus::BadRequest, "unexpected GetAlerts body");
      encode_alerts_response(body, collect_alerts());
      break;
    }
    case MessageType::SubscribeTelemetry: {
      // Streaming is a per-shard concern: in an RPC-addressable deployment
      // subscribe to the shard servers directly.
      return fail(RpcStatus::BadRequest,
                  "SubscribeTelemetry is not served by the router");
    }
  }
  response.status = RpcStatus::Ok;
  response.body = body.take();
  return response;
}

}  // namespace cosched
