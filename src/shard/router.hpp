// ShardRouter — one front door over N independent scheduler shards.
//
// Scaling story (DESIGN.md §8): a single OnlineScheduler serializes every
// replan, and the HA* co-scheduling solve grows super-linearly in fleet
// size — so past a point, one big fleet replans slower than several small
// ones. The router splits the machine fleet into N shards, each a full
// LiveSchedulerService (own scheduler thread, own virtual clock, own
// metrics), and keeps the deployment behaving like one service:
//
//  * Admission is deterministic consistent hashing: the tenant key (job
//    name up to the first '/', so "tenantA/job17" and "tenantA/job18"
//    co-locate and keep degrading each other honestly) hashes onto a
//    virtual-node ring (HashRing). Same key → same shard, across runs and
//    processes, no coordination.
//  * Spillover is the load-aware exception: when the ring shard's command
//    queue is deeper than `spill_queue_depth` or its replan p95 exceeds
//    `spill_replan_p95_seconds`, the key is re-homed to the least-loaded
//    shard and the remap is recorded — later jobs of the key stick to the
//    new shard and QueryJobStatus still resolves (ids carry the shard).
//  * Job ids are global: global = local * shard_count + shard_index, so an
//    id alone names its shard; no lookup table, ids stay dense per shard.
//  * Observability fans in: GetMetrics merges per-shard counters into
//    fleet totals (Σ invariant: every total equals the sum of the shard
//    entries it ships alongside) and the Prometheus page merges per-shard
//    latency histograms through Histogram::merge — exemplars included.
//  * Health fans in too: health() probes per-shard liveness behind a
//    bounded-staleness cache (a fresh verdict is served from cache, a
//    stale one re-probes — one GetMetrics round-trip for remote shards)
//    and folds the fleet into ok / degraded / down. The Prometheus page
//    carries cosched_shard_up gauges and the per-kind
//    cosched_shard_rpc_errors_total counters the backends accumulate.
//
// Thread-safety: every public call is safe from any thread. Router state
// (ring, remap table, counters, histograms) sits behind one mutex held
// only for bookkeeping — never across a shard call, so a slow shard stalls
// its own callers, not the router.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/histogram.hpp"
#include "shard/backend.hpp"
#include "shard/hash_ring.hpp"

namespace cosched {

struct RouterOptions {
  std::int32_t vnodes_per_shard = 64;
  /// Spillover triggers: ring shard's command-queue depth strictly above
  /// this (0 disables)...
  std::size_t spill_queue_depth = 64;
  /// ...or its replan p95 strictly above this many wall seconds (<= 0
  /// disables).
  Real spill_replan_p95_seconds = 0.0;
  /// Remap table cap. At the cap new spillovers are refused (the key stays
  /// on its ring shard) — bounded memory beats unbounded stickiness.
  std::size_t max_remap_entries = 4096;
  /// Command budget for local shards, seconds.
  double shard_timeout_seconds = 30.0;
  /// Staleness bound of the health cache: verdicts older than this are
  /// re-probed by the next health() / render_prometheus() call.
  double health_max_age_seconds = 2.0;
};

/// One shard's liveness verdict, as cached by the health fan-in.
struct ShardHealth {
  std::int32_t shard_id = -1;
  bool local = false;
  bool up = true;
  double age_seconds = 0.0;   ///< staleness of the verdict at assembly time
  std::string error;          ///< last probe failure; empty when up
  ShardRpcErrors rpc_errors;  ///< folded RPC failures by kind
};

/// Fleet-level health fold: ok (every shard up), degraded (some up, some
/// down), down (no shard reachable).
struct FleetHealth {
  enum class State { Ok, Degraded, Down };
  State state = State::Ok;
  std::size_t shards_up = 0;
  std::vector<ShardHealth> shards;
};

const char* to_string(FleetHealth::State state);

/// Router-side accounting, all monotone.
struct RouterStats {
  std::uint64_t requests = 0;        ///< submits routed (incl. rejected)
  std::uint64_t submitted_ok = 0;    ///< submits a shard accepted
  std::uint64_t spillovers = 0;      ///< keys re-homed off their ring shard
  std::uint64_t remapped_keys = 0;   ///< live remap-table entries
  std::uint64_t remap_refused = 0;   ///< spillovers refused at the cap
  std::vector<std::uint64_t> per_shard_requests;
};

class ShardRouter {
 public:
  explicit ShardRouter(RouterOptions options = {});

  /// Fleet construction — add shards before the first submit; shard index
  /// (position of the call) is the shard id baked into global job ids.
  void add_local_shard(LiveServiceOptions service_options);
  void add_remote_shard(ClientOptions client_options,
                        std::int32_t total_cores);

  std::size_t shard_count() const { return shards_.size(); }
  ShardBackend& shard(std::size_t index) { return *shards_[index].backend; }
  std::int32_t total_cores() const;

  /// Tenant key of a job name: the prefix before the first '/', or the
  /// whole name. Keeping one tenant's jobs on one shard preserves the
  /// degradation interactions the co-scheduler models between them.
  static std::string tenant_key(const std::string& job_name);

  /// Ring shard of `job_name` ignoring remaps/spillover — what pure
  /// consistent hashing would do.
  std::int32_t ring_shard(const std::string& job_name) const;

  // ---- the five verbs, global-id domain ---------------------------------
  /// `trace_id` (when nonzero) keys the routed shard's latency exemplar, so
  /// the fleet page can point at the trace behind a slow admission.
  RpcStatus submit(const TraceJob& job, SubmitJobResponse& out,
                   std::string& error, std::uint64_t trace_id = 0);
  RpcStatus job_status(std::int64_t global_id, JobStatusResponse& out,
                       std::string& error);
  /// v7 "explain this placement": resolves the owning shard from the
  /// global id, pulls its decision-journal timeline, rewrites job and
  /// co-runner ids into the global domain and prepends the router's own
  /// spillover events for the job (timestamped 0.0, i.e. before any shard
  /// virtual time, so the merged list stays ordered).
  RpcStatus job_timeline(std::int64_t global_id, JobTimelineResponse& out,
                         std::string& error);
  /// Merged fleet view: machines concatenated in shard order, clocks
  /// reported at the max, job/process ids rewritten to the global domain.
  RpcStatus snapshot(ServiceSnapshot& out, std::string& error);
  /// Fan-in: per-shard entries plus fleet totals. Every total field equals
  /// the sum over `out.shards` (the invariant the replay test pins).
  RpcStatus metrics(MetricsResponse& out, std::string& error);
  /// Drains every shard (each runs its queue to completion).
  RpcStatus drain(DrainResponse& out, std::string& error);

  RouterStats stats() const;

  /// Router-owned decision journal: one Spillover event per submit that
  /// landed off its ring shard (keyed by global job id), plus the router
  /// watchdog's alert transitions (appended via the non-const overload).
  /// Thread-safe.
  const DecisionJournal& journal() const { return journal_; }
  DecisionJournal& journal() { return journal_; }

  /// Liveness fan-in behind the bounded-staleness cache: shards whose
  /// cached verdict is older than `max_age_seconds` are re-probed (one
  /// GetMetrics round-trip for remote shards, free for local ones);
  /// fresher verdicts answer from cache, so a scrape storm cannot turn
  /// into a probe storm. Thread-safe; probes run outside the router lock.
  FleetHealth health(double max_age_seconds);
  /// health() at the configured RouterOptions::health_max_age_seconds.
  FleetHealth health() { return health(options_.health_max_age_seconds); }

  /// JSON breakdown of a health fold — the /healthz response body. Firing
  /// alert rule names (when any) fold an otherwise-ok fleet into
  /// "degraded" and ride along as a "firing_alerts" array, so the front
  /// door's health verdict reflects the watchdog's judgement.
  static std::string health_json(const FleetHealth& health,
                                 const std::vector<std::string>&
                                     firing_alerts = {});

  /// Combined Prometheus page: router counters, per-shard gauges
  /// (including cosched_shard_up and the per-kind RPC failure counters),
  /// and the per-shard request-latency histograms merged into one fleet
  /// histogram (Histogram::merge — exemplars survive). Refreshes stale
  /// health verdicts, hence non-const.
  std::string render_prometheus();

  /// Refreshes cached load probes of remote shards (one GetMetrics each).
  /// Local shards are always live.
  void refresh_remote_loads();

  /// Test hook: pins shard `index`'s load probe to `probe` so spillover
  /// decisions become deterministic. Pass `enabled = false` to go back to
  /// the live probe.
  void set_load_probe_override(std::size_t index, const LoadProbe& probe,
                               bool enabled = true);

 private:
  struct ShardSlot {
    std::unique_ptr<ShardBackend> backend;
    bool probe_override = false;
    LoadProbe probe;  ///< the override, when enabled
    // Health cache, guarded by mutex_ (probes run unlocked).
    bool health_probed = false;  ///< false until the first probe
    bool health_up = true;
    std::string health_error;
    double health_checked_at = 0.0;  ///< now_seconds() of the verdict
  };

  LoadProbe probe_of(std::size_t index);
  /// Routing decision for one submit: ring shard, then remap table, then
  /// spillover. Updates counters/remap under mutex_; returns the shard
  /// index to submit to.
  std::size_t route_for_submit(const std::string& job_name);
  std::size_t least_loaded_shard_locked(
      const std::vector<LoadProbe>& probes) const;
  void rewrite_view_global(JobStatusView& view, std::size_t shard_index) const;

  std::int64_t to_global(std::int64_t local_id, std::size_t shard) const {
    return local_id < 0 ? local_id
                        : local_id * static_cast<std::int64_t>(
                                         shards_.size()) +
                              static_cast<std::int64_t>(shard);
  }

  RouterOptions options_;
  HashRing ring_;
  std::vector<ShardSlot> shards_;

  mutable std::mutex mutex_;
  /// key hash -> shard index, written by spillover. Bounded by
  /// max_remap_entries.
  std::unordered_map<std::uint64_t, std::size_t> remap_;
  RouterStats stats_;
  /// Spillover attribution, own mutex (see journal.hpp).
  DecisionJournal journal_;
  /// Per-shard router-side submit latency (wall seconds), exemplar per
  /// bucket keyed by the request's trace id. Merged for the fleet page.
  std::vector<Histogram> latency_;
};

}  // namespace cosched
