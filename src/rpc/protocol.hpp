// Versioned request/response protocol of the co-scheduling service.
//
// Every frame payload (see net/frame.hpp) is one envelope:
//
//   request:   version u16 | type u8 | request_id u64 |
//              [v3+: trace_id u64] | body ...
//   response:  version u16 | type u8 | request_id u64 |
//              [v3+: trace_id u64] | status u8 |
//              error str   | body ... (present only when status == Ok)
//
// The version is checked before anything else; a mismatched peer gets a
// VersionMismatch response carrying the server's version, never a silent
// misparse. The request_id is echoed verbatim so clients can detect
// desynchronized streams. Bodies reuse the bounds-checked big-endian wire
// encoding (net/wire.hpp); Reals travel as IEEE-754 bit patterns, which is
// what makes the RPC submission path byte-identical to trace replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "online/live_service.hpp"
#include "online/scheduler.hpp"
#include "online/trace.hpp"

namespace cosched {

/// Version 2 adds the TraceDump message and appends observability fields to
/// the GetMetrics response body. Version 3 adds an end-to-end trace_id to
/// both envelopes (client may supply one; the server echoes the effective
/// id), the SubscribeTelemetry streaming message and further GetMetrics
/// extension fields (queue-wait histogram, tracer drop counter). Version 4
/// appends tail-sampler accounting plus a request-latency exemplar to
/// GetMetrics and a frame-level sampling_mode label to telemetry frames.
/// Version 5 makes the protocol shard-aware: the SubmitJob ack carries the
/// id of the shard that admitted the job, and GetMetrics gains a fan-in
/// block — the answering instance's shard id, command-queue depth and
/// replan p95 (the spillover signals), the router's spillover/remap
/// accounting, and one summary entry per fronted shard (empty when a
/// single CoschedServer answers). Version 6 appends the health fan-in
/// block to GetMetrics: one entry per fronted shard with its cached
/// liveness verdict and the per-kind RPC failure counters the router's
/// RemoteShard backend accumulated against it (transport / protocol /
/// application — the client error taxonomy).
/// Version 7 adds the QueryJobTimeline message: a job id resolves to the
/// ordered decision-journal events behind it (admission, batch trigger,
/// placement with policy/co-runners/predicted degradation delta,
/// spillover, migration, completion — see online/journal.hpp), each
/// carrying the trace id of the replan that made the call. The message is
/// v7-only (older peers never sent it); every pre-v7 reply body is
/// unchanged.
/// Version 8 adds the GetAlerts message: the answering instance's alert
/// rule states (the SLO watchdog — see obs/alerts.hpp), one entry per
/// rule with its state machine position, evaluated value and bound. A
/// router fans in every fronted shard's alerts, shard-labelled, next to
/// its own. The message is v8-only (pre-v8 peers get BadRequest); every
/// pre-v8 reply body is unchanged.
/// The server accepts every version in [kMinProtocolVersion,
/// kProtocolVersion] and answers in the requester's version — a v1..v7
/// peer gets exactly the bytes it always got (extension fields are appended
/// after the older body and decoded only when present; the envelope
/// trace_id travels on v3+ wires only).
inline constexpr std::uint16_t kProtocolVersion = 8;
inline constexpr std::uint16_t kMinProtocolVersion = 1;

enum class MessageType : std::uint8_t {
  SubmitJob = 1,
  QueryJobStatus = 2,
  QueryScheduleSnapshot = 3,
  GetMetrics = 4,
  Drain = 5,
  Shutdown = 6,
  TraceDump = 7,  ///< v2: the server's structured trace, text + Chrome JSON
  SubscribeTelemetry = 8,  ///< v3: server-push metrics + span stream
  QueryJobTimeline = 9,  ///< v7: decision-journal events of one job
  GetAlerts = 10,  ///< v8: alert rule states (router: fleet fan-in)
};

const char* to_string(MessageType type);
bool valid_message_type(std::uint8_t raw);

/// Application-level outcome carried in every response envelope.
enum class RpcStatus : std::uint8_t {
  Ok = 0,
  VersionMismatch = 1,  ///< peer speaks a different kProtocolVersion
  BadRequest = 2,       ///< envelope or body failed to decode
  Draining = 3,         ///< drain mode: no further admissions
  InvalidJob = 4,       ///< job shape rejected (size, non-positive work)
  UnknownJob = 5,       ///< job id out of range
  DeadlineExpired = 6,  ///< server-side per-request deadline ran out
  ServerError = 7,      ///< internal failure (message has details)
};

const char* to_string(RpcStatus status);

struct RequestEnvelope {
  std::uint16_t version = kProtocolVersion;
  MessageType type = MessageType::GetMetrics;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;  ///< v3+: 0 = let the server assign one
  std::vector<std::uint8_t> body;
};

struct ResponseEnvelope {
  std::uint16_t version = kProtocolVersion;
  MessageType type = MessageType::GetMetrics;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;  ///< v3+: effective trace id, echoed
  RpcStatus status = RpcStatus::Ok;
  std::string error;  ///< human-readable detail for non-Ok statuses
  std::vector<std::uint8_t> body;
};

std::vector<std::uint8_t> encode_request(const RequestEnvelope& request);
/// False when the bytes are not a structurally valid request (bad version
/// is still *valid* here — the server answers VersionMismatch).
bool decode_request(const std::vector<std::uint8_t>& bytes,
                    RequestEnvelope& request);

std::vector<std::uint8_t> encode_response(const ResponseEnvelope& response);
bool decode_response(const std::vector<std::uint8_t>& bytes,
                     ResponseEnvelope& response);

// ---- message bodies ------------------------------------------------------

struct SubmitJobResponse {
  std::int64_t job_id = -1;
  Real virtual_now = 0.0;
  JobStatusView status;
  // ---- v5 extension field (-1 when a v1..v4 peer answered) ---------------
  /// Shard that admitted the job: the router stamps the routed shard, a
  /// shard-deployed CoschedServer its configured id, a standalone server -1.
  std::int32_t shard_id = -1;
};

struct JobStatusResponse {
  bool found = false;
  Real virtual_now = 0.0;
  JobStatusView status;
};

/// Per-shard summary carried in the v5 GetMetrics fan-in block. The
/// scheduler counters are the shard's own (its virtual clock advances
/// independently); `requests` counts what the router routed to it, so the
/// fleet invariant Σ shards[i].requests == router requests_ok is checkable
/// from one response.
struct ShardMetricsEntry {
  std::int32_t shard_id = -1;
  std::uint64_t requests = 0;  ///< router-routed requests (0 via fan-in RPC)
  std::uint64_t arrivals = 0;
  std::uint64_t admissions = 0;
  std::uint64_t completions = 0;
  std::uint64_t replans = 0;
  std::uint64_t migrations = 0;
  Real virtual_now = 0.0;      ///< shard-local virtual clock
  std::uint64_t queue_depth = 0;
  Real replan_p95_seconds = 0.0;
};

/// Per-shard transport health carried in the v6 GetMetrics fan-in block:
/// the router's cached liveness verdict plus the RPC failures its
/// RemoteShard backend has folded, split by the client error taxonomy.
/// Local (in-process) shards are always up with zero counters.
struct ShardHealthEntry {
  std::int32_t shard_id = -1;
  bool up = true;
  std::uint64_t transport_errors = 0;    ///< bytes never made it
  std::uint64_t protocol_errors = 0;     ///< both ends disagree on the rules
  std::uint64_t application_errors = 0;  ///< shard understood and said no
};

struct MetricsResponse {
  Real virtual_now = 0.0;
  std::uint64_t arrivals = 0;
  std::uint64_t admissions = 0;
  std::uint64_t completions = 0;
  std::uint64_t replans = 0;
  std::uint64_t migrations = 0;
  Real running_mean_degradation = 0.0;
  DegradationCache::Stats cache;  ///< compactions travels only on v2 wires
  std::string deterministic_csv;
  // ---- v2 extension fields (zero when a v1 peer answered) ----------------
  std::uint64_t astar_searches = 0;
  std::uint64_t astar_expansions = 0;
  std::uint64_t astar_heuristic_evals = 0;
  std::uint64_t rpc_requests_ok = 0;
  std::uint64_t rpc_requests_failed = 0;
  std::uint64_t rpc_request_count = 0;    ///< latency histogram count
  Real rpc_request_seconds_sum = 0.0;     ///< latency histogram sum
  Real rpc_request_seconds_p99 = 0.0;     ///< interpolated from buckets
  // ---- v3 extension fields (zero when a v1/v2 peer answered) -------------
  std::uint64_t queue_wait_count = 0;     ///< admission queue-wait samples
  Real queue_wait_seconds_sum = 0.0;      ///< virtual seconds waited, total
  Real queue_wait_seconds_p99 = 0.0;      ///< interpolated from buckets
  std::uint64_t tracer_dropped_events = 0;  ///< ring overwrites since reset
  // ---- v4 extension fields (zero when a v1/v2/v3 peer answered) -----------
  std::uint64_t tail_considered = 0;   ///< root spans observed by the sampler
  std::uint64_t tail_kept = 0;         ///< spans retained (all reasons)
  std::uint64_t tail_dropped = 0;      ///< spans rejected by every policy
  std::uint64_t tail_pending = 0;      ///< spans parked awaiting a verdict
  std::uint64_t tail_retained_spans = 0;  ///< retained ring residency
  /// Newest request-latency exemplar: the trace behind a recent
  /// cosched_rpc_request_seconds observation (0 = none yet).
  std::uint64_t latency_exemplar_trace_id = 0;
  Real latency_exemplar_seconds = 0.0;
  // ---- v5 extension fields (defaults when a v1..v4 peer answered) ---------
  std::int32_t shard_id = -1;  ///< answering instance's shard id (-1 = none)
  /// Commands enqueued and not yet executed by the scheduler thread — the
  /// router's primary spillover signal.
  std::uint64_t command_queue_depth = 0;
  Real replan_p95_seconds = 0.0;  ///< wall-clock replan duration p95
  /// Router accounting (zero when a plain CoschedServer answers): keys
  /// routed off their ring shard by the load-aware spillover policy, and
  /// keys currently carrying a recorded remap.
  std::uint64_t router_spillovers = 0;
  std::uint64_t router_remapped_keys = 0;
  /// One entry per fronted shard — the fan-in block a router answers with.
  /// Empty for a single CoschedServer.
  std::vector<ShardMetricsEntry> shards;
  // ---- v6 extension fields (empty when a v1..v5 peer answered) -------------
  /// Health fan-in: liveness + per-kind RPC failure counters per fronted
  /// shard. Empty for a single CoschedServer.
  std::vector<ShardHealthEntry> shard_health;
};

struct TraceDumpResponse {
  bool enabled = false;          ///< tracer runtime switch at dump time
  std::uint64_t event_count = 0;
  std::string text;              ///< deterministic indented dump
  std::string chrome_json;       ///< Chrome trace-event JSON array
};

struct DrainResponse {
  std::uint64_t completions = 0;
  Real virtual_now = 0.0;
};

// ---- streaming telemetry (v3) --------------------------------------------
// SubscribeTelemetry turns the connection into a server-push stream: the
// server acks with a TelemetrySubscribeAck body, then sends one Ok response
// envelope per TelemetryFrame every interval until the subscriber
// disconnects, sends any frame back (polite unsubscribe — the server
// answers with one final frame marked `last`), max_frames is reached, or
// the server stops.

struct TelemetrySubscribeRequest {
  std::uint32_t interval_ms = 500;  ///< frame cadence; clamped to >= 10
  std::uint32_t max_frames = 0;     ///< 0 = stream until disconnect
  std::uint32_t max_spans_per_frame = 0;  ///< 0 = server default (512)
  std::string prefix;  ///< span/metric name prefix filter; empty = all
};

struct TelemetrySubscribeAck {
  std::uint32_t interval_ms = 0;          ///< effective, after clamping
  std::uint32_t max_spans_per_frame = 0;  ///< effective per-frame cap
};

/// One sampled span/instant/counter event, name materialised.
struct TelemetrySpanSample {
  std::string name;
  std::uint8_t phase = 0;  ///< Tracer::Phase raw value
  std::uint64_t trace_id = 0;
  std::uint64_t seq = 0;
  std::int32_t tid = 0;
  std::int32_t depth = 0;
  Real wall_us = 0.0;
  Real virtual_time = -1.0;
  Real value = 0.0;
  std::string args;
};

/// One metric sample from the Prometheus exposition ("name{labels}").
struct TelemetryMetricSample {
  std::string name;
  Real value = 0.0;
};

struct TelemetryFrame {
  std::uint64_t frame_seq = 0;
  bool last = false;  ///< final frame of a clean unsubscribe / shutdown
  std::uint64_t dropped_spans = 0;  ///< shed by per-subscriber backpressure
  std::vector<TelemetryMetricSample> metrics;
  std::vector<TelemetrySpanSample> spans;
  /// v4: which sampling configuration produced the spans in this frame, so
  /// consumers can interpret gaps — e.g. "head:1-in-64" or
  /// "head:1-in-64,tail(slow-replans)". Empty when a v3 peer subscribed
  /// (the field is appended to the frame only on v4 wires).
  std::string sampling_mode;
};

struct ShutdownResponse {
  Real virtual_now = 0.0;
};

// ---- decision-journal timeline (v7) --------------------------------------
// QueryJobTimeline request body: one i64 job id (global when asked of a
// router, local when asked of a single shard). The response carries the
// journal events of that job in decision order; `truncated` says the
// journal's bounded ring has evicted events and the retained timeline may
// be missing its earliest decisions (a well-formed answer, not an error).

struct JobTimelineResponse {
  std::int64_t job_id = -1;
  bool found = false;      ///< false: the id was never submitted here
  bool truncated = false;  ///< ring evictions may have removed events
  Real virtual_now = 0.0;
  std::vector<JournalEvent> events;  ///< ascending seq
};

// ---- alert fan-in (v8) ----------------------------------------------------
// GetAlerts request body: empty. The response carries one entry per alert
// rule of the answering instance; a router additionally fans in every
// fronted shard's entries with their shard ids stamped (its own rules
// travel as shard_id == -1).

/// One alert rule's state, as served by /alerts and GetAlerts.
struct AlertEntry {
  std::int32_t shard_id = -1;  ///< -1 = the answering instance itself
  std::string rule;
  std::uint8_t state = 0;     ///< AlertState raw (inactive/pending/...)
  std::uint8_t severity = 0;  ///< AlertSeverity raw (info/warn/critical)
  Real value = 0.0;           ///< last evaluated value
  Real threshold = 0.0;       ///< bound (burn-rate rules: the burn factor)
  Real since_seconds = 0.0;   ///< time spent in the current state
  std::string detail;         ///< free-form "k=v ..." extras
};

struct AlertsResponse {
  bool engine_enabled = false;  ///< false: watchdog compiled out / disabled
  std::uint64_t firing = 0;     ///< firing entries across the response
  std::vector<AlertEntry> alerts;
};

// Field-level encoders shared by client and server. Decoders return false
// on malformed input and leave the output in an unspecified state.
void encode_trace_job(WireWriter& w, const TraceJob& job);
bool decode_trace_job(WireReader& r, TraceJob& job);

void encode_job_status_view(WireWriter& w, const JobStatusView& view);
bool decode_job_status_view(WireReader& r, JobStatusView& view);

void encode_service_snapshot(WireWriter& w, const ServiceSnapshot& snapshot);
bool decode_service_snapshot(WireReader& r, ServiceSnapshot& snapshot);

/// `version` gates the trailing shard_id field (v5+); the decoder reads it
/// only when bytes remain, so a v4 peer's ack bytes are untouched.
void encode_submit_response(WireWriter& w, const SubmitJobResponse& response,
                            std::uint16_t version = kProtocolVersion);
bool decode_submit_response(WireReader& r, SubmitJobResponse& response);

void encode_status_response(WireWriter& w, const JobStatusResponse& response);
bool decode_status_response(WireReader& r, JobStatusResponse& response);

/// `version` selects the wire layout: v1 stops after deterministic_csv, v2
/// appends the first extension block, v3 appends the queue-wait/tracer
/// block, v4 appends the tail-sampler/exemplar block, v5 appends the
/// shard/fan-in block, v6 appends the shard-health block. The decoder reads
/// each extension block only when bytes remain, so either end may be the
/// older one.
void encode_metrics_response(WireWriter& w, const MetricsResponse& response,
                             std::uint16_t version = kProtocolVersion);
bool decode_metrics_response(WireReader& r, MetricsResponse& response);

void encode_trace_dump_response(WireWriter& w,
                                const TraceDumpResponse& response);
bool decode_trace_dump_response(WireReader& r, TraceDumpResponse& response);

void encode_drain_response(WireWriter& w, const DrainResponse& response);
bool decode_drain_response(WireReader& r, DrainResponse& response);

void encode_telemetry_subscribe_request(
    WireWriter& w, const TelemetrySubscribeRequest& request);
bool decode_telemetry_subscribe_request(WireReader& r,
                                        TelemetrySubscribeRequest& request);

void encode_telemetry_subscribe_ack(WireWriter& w,
                                    const TelemetrySubscribeAck& ack);
bool decode_telemetry_subscribe_ack(WireReader& r, TelemetrySubscribeAck& ack);

/// `version` gates the trailing sampling_mode field (v4+); the decoder
/// reads it only when bytes remain, so a v3 subscriber decodes v3 frames
/// unchanged and a v4 subscriber tolerates a v3 server.
void encode_telemetry_frame(WireWriter& w, const TelemetryFrame& frame,
                            std::uint16_t version = kProtocolVersion);
bool decode_telemetry_frame(WireReader& r, TelemetryFrame& frame);

void encode_journal_event(WireWriter& w, const JournalEvent& event);
bool decode_journal_event(WireReader& r, JournalEvent& event);

void encode_timeline_response(WireWriter& w,
                              const JobTimelineResponse& response);
bool decode_timeline_response(WireReader& r, JobTimelineResponse& response);

void encode_alerts_response(WireWriter& w, const AlertsResponse& response);
bool decode_alerts_response(WireReader& r, AlertsResponse& response);

}  // namespace cosched
