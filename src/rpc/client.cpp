#include "rpc/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace cosched {

const char* to_string(RpcErrorKind kind) {
  switch (kind) {
    case RpcErrorKind::None: return "none";
    case RpcErrorKind::Transport: return "transport";
    case RpcErrorKind::Protocol: return "protocol";
    case RpcErrorKind::Application: return "application";
  }
  return "?";
}

std::string RpcError::describe() const {
  if (ok()) return "ok";
  std::string out = to_string(kind);
  out += " error";
  if (kind == RpcErrorKind::Application) {
    out += " (";
    out += to_string(app);
    out += ")";
  }
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  out += " [attempts=" + std::to_string(attempts) + "]";
  return out;
}

CoschedClient::CoschedClient(ClientOptions options)
    : options_(std::move(options)), jitter_(options_.jitter_seed) {
  COSCHED_EXPECTS(options_.max_attempts >= 1);
}

double CoschedClient::backoff_seconds(int attempt) {
  double exp = options_.backoff_base_seconds *
               static_cast<double>(1u << std::min(attempt, 20));
  double capped = std::min(exp, options_.backoff_max_seconds);
  // Jitter in [0.5, 1.0] de-synchronizes clients hammering one server.
  return capped * (0.5 + 0.5 * jitter_.uniform01());
}

bool CoschedClient::ensure_connected(RpcError& error) {
  if (socket_.valid()) return true;
  NetStatus status = NetStatus::Ok;
  socket_ = Socket::connect_to(
      options_.host, options_.port,
      Deadline::after(options_.connect_timeout_seconds), status);
  if (status != NetStatus::Ok) {
    error.kind = RpcErrorKind::Transport;
    error.net = status;
    error.message = std::string("connect to ") + options_.host + ":" +
                    std::to_string(options_.port) + " failed (" +
                    to_string(status) + ")";
    return false;
  }
  return true;
}

RpcError CoschedClient::attempt(MessageType type,
                                const std::vector<std::uint8_t>& body,
                                ResponseEnvelope& out, bool& sent) {
  RpcError error;
  sent = false;

  // A live telemetry stream owns the connection; a unary call tears it
  // down and reconnects so the framing cannot desynchronize.
  if (streaming_) disconnect();
  if (!ensure_connected(error)) return error;

  RequestEnvelope request;
  request.type = type;
  request.request_id = next_request_id_++;
  // Deterministic per-request trace id unless the caller pinned one; | 1
  // keeps it nonzero (0 would ask the server to mint its own).
  request.trace_id =
      trace_id_ != 0
          ? trace_id_
          : SplitMix64(options_.jitter_seed ^ request.request_id).next() | 1;
  request.body = body;
  std::vector<std::uint8_t> payload = encode_request(request);

  Deadline deadline = Deadline::after(options_.request_timeout_seconds);
  sent = true;  // from here on, bytes may have reached the server
  FrameStatus frame_status = write_frame(socket_, payload, deadline);
  if (frame_status != FrameStatus::Ok) {
    socket_.close();
    error.kind = RpcErrorKind::Transport;
    error.frame = frame_status;
    error.message =
        std::string("sending request failed (") + to_string(frame_status) + ")";
    return error;
  }

  std::vector<std::uint8_t> reply;
  frame_status = read_frame(socket_, reply, deadline, options_.max_frame_bytes);
  if (frame_status != FrameStatus::Ok) {
    socket_.close();
    // Undecodable framing is a protocol bug, not a flaky wire.
    bool is_protocol = frame_status == FrameStatus::BadMagic ||
                       frame_status == FrameStatus::Oversized;
    error.kind = is_protocol ? RpcErrorKind::Protocol : RpcErrorKind::Transport;
    error.frame = frame_status;
    error.message = std::string("reading response failed (") +
                    to_string(frame_status) + ")";
    return error;
  }

  if (!decode_response(reply, out)) {
    socket_.close();
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable response envelope";
    return error;
  }
  if (out.version < kMinProtocolVersion || out.version > kProtocolVersion) {
    socket_.close();
    error.kind = RpcErrorKind::Protocol;
    error.message = "server protocol version " + std::to_string(out.version) +
                    " outside " + std::to_string(kMinProtocolVersion) + ".." +
                    std::to_string(kProtocolVersion);
    return error;
  }
  if (out.request_id != request.request_id || out.type != type) {
    socket_.close();
    error.kind = RpcErrorKind::Protocol;
    error.message = "response does not match request (stream desync)";
    return error;
  }
  // A v3 server echoes the effective trace id; for a request that carried
  // one, anything else is a desynchronized stream.
  if (out.version >= 3 && out.status == RpcStatus::Ok &&
      out.trace_id != request.trace_id) {
    socket_.close();
    error.kind = RpcErrorKind::Protocol;
    error.message = "response trace_id does not echo the request";
    return error;
  }
  last_trace_id_ = out.version >= 3 ? out.trace_id : request.trace_id;
  if (out.status != RpcStatus::Ok) {
    error.kind = RpcErrorKind::Application;
    error.app = out.status;
    error.message = out.error;
    return error;
  }
  return error;  // ok
}

RpcError CoschedClient::call(MessageType type,
                             const std::vector<std::uint8_t>& body,
                             bool idempotent, ResponseEnvelope& out) {
  RpcError error;
  for (int tried = 0; tried < options_.max_attempts; ++tried) {
    bool sent = false;
    error = attempt(type, body, out, sent);
    error.attempts = tried + 1;
    if (error.ok()) return error;
    if (error.kind != RpcErrorKind::Transport) return error;
    if (sent && !idempotent) return error;  // may already be applied
    if (tried + 1 >= options_.max_attempts) return error;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(backoff_seconds(tried)));
  }
  return error;
}

RpcError CoschedClient::submit_job(const TraceJob& job,
                                   SubmitJobResponse& out) {
  WireWriter w;
  encode_trace_job(w, job);
  ResponseEnvelope envelope;
  RpcError error = call(MessageType::SubmitJob, w.bytes(), false, envelope);
  if (!error.ok()) return error;
  WireReader r(envelope.body);
  if (!decode_submit_response(r, out) || !r.complete()) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable SubmitJob response body";
  }
  return error;
}

RpcError CoschedClient::query_job_status(std::int64_t job_id,
                                         JobStatusResponse& out) {
  WireWriter w;
  w.i64(job_id);
  ResponseEnvelope envelope;
  RpcError error = call(MessageType::QueryJobStatus, w.bytes(), true, envelope);
  if (!error.ok()) return error;
  WireReader r(envelope.body);
  if (!decode_status_response(r, out) || !r.complete()) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable QueryJobStatus response body";
  }
  return error;
}

RpcError CoschedClient::query_job_timeline(std::int64_t job_id,
                                           JobTimelineResponse& out) {
  WireWriter w;
  w.i64(job_id);
  ResponseEnvelope envelope;
  RpcError error =
      call(MessageType::QueryJobTimeline, w.bytes(), true, envelope);
  if (!error.ok()) return error;
  WireReader r(envelope.body);
  if (!decode_timeline_response(r, out) || !r.complete()) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable QueryJobTimeline response body";
  }
  return error;
}

RpcError CoschedClient::query_snapshot(ServiceSnapshot& out) {
  ResponseEnvelope envelope;
  RpcError error = call(MessageType::QueryScheduleSnapshot, {}, true, envelope);
  if (!error.ok()) return error;
  WireReader r(envelope.body);
  if (!decode_service_snapshot(r, out) || !r.complete()) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable QueryScheduleSnapshot response body";
  }
  return error;
}

RpcError CoschedClient::get_metrics(MetricsResponse& out) {
  ResponseEnvelope envelope;
  RpcError error = call(MessageType::GetMetrics, {}, true, envelope);
  if (!error.ok()) return error;
  WireReader r(envelope.body);
  if (!decode_metrics_response(r, out) || !r.complete()) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable GetMetrics response body";
  }
  return error;
}

RpcError CoschedClient::get_alerts(AlertsResponse& out) {
  ResponseEnvelope envelope;
  RpcError error = call(MessageType::GetAlerts, {}, true, envelope);
  if (!error.ok()) return error;
  WireReader r(envelope.body);
  if (!decode_alerts_response(r, out) || !r.complete()) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable GetAlerts response body";
  }
  return error;
}

RpcError CoschedClient::trace_dump(TraceDumpResponse& out) {
  ResponseEnvelope envelope;
  RpcError error = call(MessageType::TraceDump, {}, true, envelope);
  if (!error.ok()) return error;
  WireReader r(envelope.body);
  if (!decode_trace_dump_response(r, out) || !r.complete()) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable TraceDump response body";
  }
  return error;
}

RpcError CoschedClient::drain(DrainResponse& out) {
  // Drain is idempotent: repeating it cannot admit or lose work.
  ResponseEnvelope envelope;
  RpcError error = call(MessageType::Drain, {}, true, envelope);
  if (!error.ok()) return error;
  WireReader r(envelope.body);
  if (!decode_drain_response(r, out) || !r.complete()) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable Drain response body";
  }
  return error;
}

RpcError CoschedClient::subscribe_telemetry(
    const TelemetrySubscribeRequest& request, TelemetrySubscribeAck& ack) {
  RpcError error;
  if (streaming_) disconnect();  // one stream per connection
  if (!ensure_connected(error)) return error;

  RequestEnvelope envelope;
  envelope.type = MessageType::SubscribeTelemetry;
  envelope.request_id = next_request_id_++;
  envelope.trace_id =
      trace_id_ != 0
          ? trace_id_
          : SplitMix64(options_.jitter_seed ^ envelope.request_id).next() | 1;
  WireWriter w;
  encode_telemetry_subscribe_request(w, request);
  envelope.body = w.take();

  Deadline deadline = Deadline::after(options_.request_timeout_seconds);
  FrameStatus frame_status =
      write_frame(socket_, encode_request(envelope), deadline);
  if (frame_status != FrameStatus::Ok) {
    disconnect();
    error.kind = RpcErrorKind::Transport;
    error.frame = frame_status;
    error.message = std::string("sending subscription failed (") +
                    to_string(frame_status) + ")";
    return error;
  }

  std::vector<std::uint8_t> reply;
  frame_status =
      read_frame(socket_, reply, deadline, options_.max_frame_bytes);
  if (frame_status != FrameStatus::Ok) {
    disconnect();
    error.kind = frame_status == FrameStatus::BadMagic ||
                         frame_status == FrameStatus::Oversized
                     ? RpcErrorKind::Protocol
                     : RpcErrorKind::Transport;
    error.frame = frame_status;
    error.message = std::string("reading subscription ack failed (") +
                    to_string(frame_status) + ")";
    return error;
  }

  ResponseEnvelope response;
  if (!decode_response(reply, response) ||
      response.type != MessageType::SubscribeTelemetry ||
      response.request_id != envelope.request_id) {
    disconnect();
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable subscription ack";
    return error;
  }
  if (response.status != RpcStatus::Ok) {
    error.kind = RpcErrorKind::Application;
    error.app = response.status;
    error.message = response.error;
    return error;
  }
  WireReader r(response.body);
  if (!decode_telemetry_subscribe_ack(r, ack) || !r.complete()) {
    disconnect();
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable subscription ack body";
    return error;
  }
  last_trace_id_ = response.trace_id;
  streaming_ = true;
  stream_request_id_ = envelope.request_id;
  return error;
}

RpcError CoschedClient::read_telemetry_frame(TelemetryFrame& out,
                                             double timeout_seconds) {
  RpcError error;
  if (!streaming_) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "no telemetry stream on this connection";
    return error;
  }
  std::vector<std::uint8_t> payload;
  FrameStatus frame_status =
      read_frame(socket_, payload, Deadline::after(timeout_seconds),
                 options_.max_frame_bytes);
  if (frame_status != FrameStatus::Ok) {
    if (frame_status != FrameStatus::Timeout) disconnect();
    error.kind = frame_status == FrameStatus::Timeout ||
                         frame_status == FrameStatus::Closed
                     ? RpcErrorKind::Transport
                     : RpcErrorKind::Protocol;
    error.frame = frame_status;
    error.message = std::string("reading telemetry frame failed (") +
                    to_string(frame_status) + ")";
    return error;
  }
  ResponseEnvelope envelope;
  if (!decode_response(payload, envelope) ||
      envelope.type != MessageType::SubscribeTelemetry ||
      envelope.request_id != stream_request_id_ ||
      envelope.status != RpcStatus::Ok) {
    disconnect();
    error.kind = RpcErrorKind::Protocol;
    error.message = "telemetry stream desynchronized";
    return error;
  }
  WireReader r(envelope.body);
  if (!decode_telemetry_frame(r, out) || !r.complete()) {
    disconnect();
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable telemetry frame";
    return error;
  }
  if (out.last) disconnect();  // server ends the stream after this frame
  return error;
}

RpcError CoschedClient::stop_telemetry() {
  RpcError error;
  if (!streaming_) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "no telemetry stream on this connection";
    return error;
  }
  // Any client frame asks the server to finish; an empty payload is the
  // conventional "unsubscribe".
  FrameStatus frame_status =
      write_frame(socket_, {},
                  Deadline::after(options_.request_timeout_seconds));
  if (frame_status != FrameStatus::Ok) {
    disconnect();
    error.kind = RpcErrorKind::Transport;
    error.frame = frame_status;
    error.message = std::string("sending unsubscribe failed (") +
                    to_string(frame_status) + ")";
  }
  return error;
}

RpcError CoschedClient::shutdown_server(ShutdownResponse& out) {
  ResponseEnvelope envelope;
  RpcError error = call(MessageType::Shutdown, {}, false, envelope);
  if (!error.ok()) return error;
  WireReader r(envelope.body);
  out.virtual_now = r.real();
  if (!r.complete()) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable Shutdown response body";
  }
  return error;
}

}  // namespace cosched
