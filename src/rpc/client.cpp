#include "rpc/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace cosched {

const char* to_string(RpcErrorKind kind) {
  switch (kind) {
    case RpcErrorKind::None: return "none";
    case RpcErrorKind::Transport: return "transport";
    case RpcErrorKind::Protocol: return "protocol";
    case RpcErrorKind::Application: return "application";
  }
  return "?";
}

std::string RpcError::describe() const {
  if (ok()) return "ok";
  std::string out = to_string(kind);
  out += " error";
  if (kind == RpcErrorKind::Application) {
    out += " (";
    out += to_string(app);
    out += ")";
  }
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  out += " [attempts=" + std::to_string(attempts) + "]";
  return out;
}

CoschedClient::CoschedClient(ClientOptions options)
    : options_(std::move(options)), jitter_(options_.jitter_seed) {
  COSCHED_EXPECTS(options_.max_attempts >= 1);
}

double CoschedClient::backoff_seconds(int attempt) {
  double exp = options_.backoff_base_seconds *
               static_cast<double>(1u << std::min(attempt, 20));
  double capped = std::min(exp, options_.backoff_max_seconds);
  // Jitter in [0.5, 1.0] de-synchronizes clients hammering one server.
  return capped * (0.5 + 0.5 * jitter_.uniform01());
}

RpcError CoschedClient::attempt(MessageType type,
                                const std::vector<std::uint8_t>& body,
                                ResponseEnvelope& out, bool& sent) {
  RpcError error;
  sent = false;

  if (!socket_.valid()) {
    NetStatus status = NetStatus::Ok;
    socket_ = Socket::connect_to(
        options_.host, options_.port,
        Deadline::after(options_.connect_timeout_seconds), status);
    if (status != NetStatus::Ok) {
      error.kind = RpcErrorKind::Transport;
      error.net = status;
      error.message = std::string("connect to ") + options_.host + ":" +
                      std::to_string(options_.port) + " failed (" +
                      to_string(status) + ")";
      return error;
    }
  }

  RequestEnvelope request;
  request.type = type;
  request.request_id = next_request_id_++;
  request.body = body;
  std::vector<std::uint8_t> payload = encode_request(request);

  Deadline deadline = Deadline::after(options_.request_timeout_seconds);
  sent = true;  // from here on, bytes may have reached the server
  FrameStatus frame_status = write_frame(socket_, payload, deadline);
  if (frame_status != FrameStatus::Ok) {
    socket_.close();
    error.kind = RpcErrorKind::Transport;
    error.frame = frame_status;
    error.message =
        std::string("sending request failed (") + to_string(frame_status) + ")";
    return error;
  }

  std::vector<std::uint8_t> reply;
  frame_status = read_frame(socket_, reply, deadline, options_.max_frame_bytes);
  if (frame_status != FrameStatus::Ok) {
    socket_.close();
    // Undecodable framing is a protocol bug, not a flaky wire.
    bool is_protocol = frame_status == FrameStatus::BadMagic ||
                       frame_status == FrameStatus::Oversized;
    error.kind = is_protocol ? RpcErrorKind::Protocol : RpcErrorKind::Transport;
    error.frame = frame_status;
    error.message = std::string("reading response failed (") +
                    to_string(frame_status) + ")";
    return error;
  }

  if (!decode_response(reply, out)) {
    socket_.close();
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable response envelope";
    return error;
  }
  if (out.version < kMinProtocolVersion || out.version > kProtocolVersion) {
    socket_.close();
    error.kind = RpcErrorKind::Protocol;
    error.message = "server protocol version " + std::to_string(out.version) +
                    " outside " + std::to_string(kMinProtocolVersion) + ".." +
                    std::to_string(kProtocolVersion);
    return error;
  }
  if (out.request_id != request.request_id || out.type != type) {
    socket_.close();
    error.kind = RpcErrorKind::Protocol;
    error.message = "response does not match request (stream desync)";
    return error;
  }
  if (out.status != RpcStatus::Ok) {
    error.kind = RpcErrorKind::Application;
    error.app = out.status;
    error.message = out.error;
    return error;
  }
  return error;  // ok
}

RpcError CoschedClient::call(MessageType type,
                             const std::vector<std::uint8_t>& body,
                             bool idempotent, ResponseEnvelope& out) {
  RpcError error;
  for (int tried = 0; tried < options_.max_attempts; ++tried) {
    bool sent = false;
    error = attempt(type, body, out, sent);
    error.attempts = tried + 1;
    if (error.ok()) return error;
    if (error.kind != RpcErrorKind::Transport) return error;
    if (sent && !idempotent) return error;  // may already be applied
    if (tried + 1 >= options_.max_attempts) return error;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(backoff_seconds(tried)));
  }
  return error;
}

RpcError CoschedClient::submit_job(const TraceJob& job,
                                   SubmitJobResponse& out) {
  WireWriter w;
  encode_trace_job(w, job);
  ResponseEnvelope envelope;
  RpcError error = call(MessageType::SubmitJob, w.bytes(), false, envelope);
  if (!error.ok()) return error;
  WireReader r(envelope.body);
  if (!decode_submit_response(r, out) || !r.complete()) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable SubmitJob response body";
  }
  return error;
}

RpcError CoschedClient::query_job_status(std::int64_t job_id,
                                         JobStatusResponse& out) {
  WireWriter w;
  w.i64(job_id);
  ResponseEnvelope envelope;
  RpcError error = call(MessageType::QueryJobStatus, w.bytes(), true, envelope);
  if (!error.ok()) return error;
  WireReader r(envelope.body);
  if (!decode_status_response(r, out) || !r.complete()) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable QueryJobStatus response body";
  }
  return error;
}

RpcError CoschedClient::query_snapshot(ServiceSnapshot& out) {
  ResponseEnvelope envelope;
  RpcError error = call(MessageType::QueryScheduleSnapshot, {}, true, envelope);
  if (!error.ok()) return error;
  WireReader r(envelope.body);
  if (!decode_service_snapshot(r, out) || !r.complete()) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable QueryScheduleSnapshot response body";
  }
  return error;
}

RpcError CoschedClient::get_metrics(MetricsResponse& out) {
  ResponseEnvelope envelope;
  RpcError error = call(MessageType::GetMetrics, {}, true, envelope);
  if (!error.ok()) return error;
  WireReader r(envelope.body);
  if (!decode_metrics_response(r, out) || !r.complete()) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable GetMetrics response body";
  }
  return error;
}

RpcError CoschedClient::trace_dump(TraceDumpResponse& out) {
  ResponseEnvelope envelope;
  RpcError error = call(MessageType::TraceDump, {}, true, envelope);
  if (!error.ok()) return error;
  WireReader r(envelope.body);
  if (!decode_trace_dump_response(r, out) || !r.complete()) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable TraceDump response body";
  }
  return error;
}

RpcError CoschedClient::drain(DrainResponse& out) {
  // Drain is idempotent: repeating it cannot admit or lose work.
  ResponseEnvelope envelope;
  RpcError error = call(MessageType::Drain, {}, true, envelope);
  if (!error.ok()) return error;
  WireReader r(envelope.body);
  if (!decode_drain_response(r, out) || !r.complete()) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable Drain response body";
  }
  return error;
}

RpcError CoschedClient::shutdown_server(ShutdownResponse& out) {
  ResponseEnvelope envelope;
  RpcError error = call(MessageType::Shutdown, {}, false, envelope);
  if (!error.ok()) return error;
  WireReader r(envelope.body);
  out.virtual_now = r.real();
  if (!r.complete()) {
    error.kind = RpcErrorKind::Protocol;
    error.message = "undecodable Shutdown response body";
  }
  return error;
}

}  // namespace cosched
