// CoschedClient — blocking RPC client with bounded retry.
//
// Error taxonomy, because "it failed" is useless to a caller:
//   * Transport — the bytes never made it (connect refused, timeout, peer
//     reset, truncated frame). Retryable; the client retries automatically
//     with exponential backoff + jitter, but only when it is safe: connect-
//     phase failures always, post-send failures only for idempotent
//     requests (a SubmitJob whose response was lost may have been applied).
//   * Protocol — the bytes arrived but are not a valid conversation (bad
//     magic, undecodable envelope, version or request-id mismatch). Never
//     retried: both ends disagree about the rules.
//   * Application — the server understood and said no (draining, invalid
//     job, unknown id, deadline expired). Never retried; the status tells
//     the caller what to do.
//
// One client = one connection = one outstanding request; the transport is
// reconnected lazily after any failure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "rpc/protocol.hpp"
#include "util/rng.hpp"

namespace cosched {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double connect_timeout_seconds = 2.0;
  double request_timeout_seconds = 5.0;
  /// Total tries per call (first attempt included). 1 disables retry.
  int max_attempts = 3;
  double backoff_base_seconds = 0.02;
  double backoff_max_seconds = 0.5;
  /// Jitter draws are seeded, so a test's retry schedule is reproducible.
  std::uint64_t jitter_seed = 0x5EED;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

enum class RpcErrorKind {
  None,
  Transport,
  Protocol,
  Application,
};

const char* to_string(RpcErrorKind kind);

struct RpcError {
  RpcErrorKind kind = RpcErrorKind::None;
  NetStatus net = NetStatus::Ok;        ///< transport detail
  FrameStatus frame = FrameStatus::Ok;  ///< transport/protocol detail
  RpcStatus app = RpcStatus::Ok;        ///< application detail
  int attempts = 1;                     ///< tries consumed by this call
  std::string message;

  bool ok() const { return kind == RpcErrorKind::None; }
  std::string describe() const;
};

class CoschedClient {
 public:
  explicit CoschedClient(ClientOptions options);

  CoschedClient(const CoschedClient&) = delete;
  CoschedClient& operator=(const CoschedClient&) = delete;

  RpcError submit_job(const TraceJob& job, SubmitJobResponse& out);
  RpcError query_job_status(std::int64_t job_id, JobStatusResponse& out);
  /// v7: the decision journal's admission → placement → migration →
  /// completion timeline of one job.
  RpcError query_job_timeline(std::int64_t job_id, JobTimelineResponse& out);
  RpcError query_snapshot(ServiceSnapshot& out);
  RpcError get_metrics(MetricsResponse& out);
  /// v8: the SLO watchdog's alert rule states (router: fleet fan-in,
  /// shard-labelled).
  RpcError get_alerts(AlertsResponse& out);
  /// v2: the server's structured trace (text dump + Chrome JSON).
  RpcError trace_dump(TraceDumpResponse& out);
  RpcError drain(DrainResponse& out);
  RpcError shutdown_server(ShutdownResponse& out);

  // ---- end-to-end trace correlation (v3) -------------------------------
  /// Trace id stamped on subsequent requests. 0 (the default) lets the
  /// client derive a deterministic per-request id from the jitter seed; a
  /// nonzero id is used as-is, so a caller can follow its own request
  /// through the server's spans and telemetry stream.
  void set_trace_id(std::uint64_t trace_id) { trace_id_ = trace_id; }
  /// Effective trace id of the last completed call, as echoed by a v3
  /// server (client-side value when the server spoke v1/v2).
  std::uint64_t last_trace_id() const { return last_trace_id_; }

  // ---- streaming telemetry (v3) ----------------------------------------
  /// Starts a SubscribeTelemetry stream on this connection. After an Ok
  /// return the connection is dedicated to the stream: drain frames with
  /// read_telemetry_frame(); any unary call tears the stream down first.
  RpcError subscribe_telemetry(const TelemetrySubscribeRequest& request,
                               TelemetrySubscribeAck& ack);
  /// Blocks for the next pushed frame. When `out.last` is true the server
  /// has ended the stream and the connection is closed.
  RpcError read_telemetry_frame(TelemetryFrame& out, double timeout_seconds);
  /// Polite unsubscribe: asks the server for one final frame (marked
  /// `last`). Keep reading until it arrives.
  RpcError stop_telemetry();

  bool connected() const { return socket_.valid(); }
  bool streaming() const { return streaming_; }
  void disconnect() {
    socket_.close();
    streaming_ = false;
  }

 private:
  /// One full call: connect if needed, send, receive, validate envelope.
  /// Retries per the taxonomy above until attempts run out.
  RpcError call(MessageType type, const std::vector<std::uint8_t>& body,
                bool idempotent, ResponseEnvelope& out);
  /// Single attempt. `sent` reports whether any request bytes may have
  /// reached the server (gates retry of non-idempotent calls).
  RpcError attempt(MessageType type, const std::vector<std::uint8_t>& body,
                   ResponseEnvelope& out, bool& sent);
  double backoff_seconds(int attempt);

  /// Connects socket_ if needed. Fills `error` and returns false on failure.
  bool ensure_connected(RpcError& error);

  ClientOptions options_;
  Socket socket_;
  Rng jitter_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t trace_id_ = 0;       ///< explicit id; 0 = derive per call
  std::uint64_t last_trace_id_ = 0;  ///< effective id of the last call
  bool streaming_ = false;
  std::uint64_t stream_request_id_ = 0;  ///< envelope echo check for frames
};

}  // namespace cosched
